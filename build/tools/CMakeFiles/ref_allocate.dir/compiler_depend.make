# Empty compiler generated dependencies file for ref_allocate.
# This may be replaced when dependencies are built.
