file(REMOVE_RECURSE
  "CMakeFiles/ref_allocate.dir/ref_allocate.cc.o"
  "CMakeFiles/ref_allocate.dir/ref_allocate.cc.o.d"
  "ref_allocate"
  "ref_allocate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_allocate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
