# Empty compiler generated dependencies file for ref_profile.
# This may be replaced when dependencies are built.
