file(REMOVE_RECURSE
  "CMakeFiles/ref_profile.dir/ref_profile.cc.o"
  "CMakeFiles/ref_profile.dir/ref_profile.cc.o.d"
  "ref_profile"
  "ref_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
