file(REMOVE_RECURSE
  "CMakeFiles/ref_fit.dir/ref_fit.cc.o"
  "CMakeFiles/ref_fit.dir/ref_fit.cc.o.d"
  "ref_fit"
  "ref_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
