# Empty compiler generated dependencies file for ref_fit.
# This may be replaced when dependencies are built.
