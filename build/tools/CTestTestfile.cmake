# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.ref_allocate.ref "/root/repo/build/tools/ref_allocate" "--agents" "example_agents.csv" "--capacity" "24,12")
set_tests_properties(cli.ref_allocate.ref PROPERTIES  WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.ref_allocate.csv_output "/root/repo/build/tools/ref_allocate" "--agents" "example_agents.csv" "--capacity" "24,12" "--mechanism" "max-welfare-fair" "--csv")
set_tests_properties(cli.ref_allocate.csv_output PROPERTIES  WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.ref_allocate.rejects_unknown_mechanism "/root/repo/build/tools/ref_allocate" "--agents" "example_agents.csv" "--capacity" "24,12" "--mechanism" "nonsense")
set_tests_properties(cli.ref_allocate.rejects_unknown_mechanism PROPERTIES  WILL_FAIL "TRUE" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.ref_fit.report "/root/repo/build/tools/ref_fit" "--profile" "example_profile.csv")
set_tests_properties(cli.ref_fit.report PROPERTIES  WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.ref_profile.list "/root/repo/build/tools/ref_profile" "--list")
set_tests_properties(cli.ref_profile.list PROPERTIES  PASS_REGULAR_EXPRESSION "dedup" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.ref_profile.emits_csv "/root/repo/build/tools/ref_profile" "--workload" "radiosity" "--ops" "5000")
set_tests_properties(cli.ref_profile.emits_csv PROPERTIES  PASS_REGULAR_EXPRESSION "x0,x1,performance" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.ref_fit.append_row "/root/repo/build/tools/ref_fit" "--profile" "example_profile.csv" "--append" "demo")
set_tests_properties(cli.ref_fit.append_row PROPERTIES  PASS_REGULAR_EXPRESSION "^demo," WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;49;add_test;/root/repo/tools/CMakeLists.txt;0;")
