# Empty dependencies file for bench_fig11_c_m_unfair.
# This may be replaced when dependencies are built.
