file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_c_m_unfair.dir/bench_fig11_c_m_unfair.cc.o"
  "CMakeFiles/bench_fig11_c_m_unfair.dir/bench_fig11_c_m_unfair.cc.o.d"
  "bench_fig11_c_m_unfair"
  "bench_fig11_c_m_unfair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_c_m_unfair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
