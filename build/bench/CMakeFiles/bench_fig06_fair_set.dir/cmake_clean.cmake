file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_fair_set.dir/bench_fig06_fair_set.cc.o"
  "CMakeFiles/bench_fig06_fair_set.dir/bench_fig06_fair_set.cc.o.d"
  "bench_fig06_fair_set"
  "bench_fig06_fair_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_fair_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
