# Empty dependencies file for bench_fig06_fair_set.
# This may be replaced when dependencies are built.
