# Empty compiler generated dependencies file for bench_fig10_c_m_fair.
# This may be replaced when dependencies are built.
