file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_c_m_fair.dir/bench_fig10_c_m_fair.cc.o"
  "CMakeFiles/bench_fig10_c_m_fair.dir/bench_fig10_c_m_fair.cc.o.d"
  "bench_fig10_c_m_fair"
  "bench_fig10_c_m_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_c_m_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
