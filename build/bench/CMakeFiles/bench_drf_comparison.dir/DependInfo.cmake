
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_drf_comparison.cc" "bench/CMakeFiles/bench_drf_comparison.dir/bench_drf_comparison.cc.o" "gcc" "bench/CMakeFiles/bench_drf_comparison.dir/bench_drf_comparison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ref_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ref_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ref_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ref_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ref_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ref_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
