file(REMOVE_RECURSE
  "CMakeFiles/bench_drf_comparison.dir/bench_drf_comparison.cc.o"
  "CMakeFiles/bench_drf_comparison.dir/bench_drf_comparison.cc.o.d"
  "bench_drf_comparison"
  "bench_drf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
