# Empty dependencies file for bench_drf_comparison.
# This may be replaced when dependencies are built.
