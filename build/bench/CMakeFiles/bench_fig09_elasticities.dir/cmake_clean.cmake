file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_elasticities.dir/bench_fig09_elasticities.cc.o"
  "CMakeFiles/bench_fig09_elasticities.dir/bench_fig09_elasticities.cc.o.d"
  "bench_fig09_elasticities"
  "bench_fig09_elasticities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_elasticities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
