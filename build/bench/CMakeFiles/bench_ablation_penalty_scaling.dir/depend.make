# Empty dependencies file for bench_ablation_penalty_scaling.
# This may be replaced when dependencies are built.
