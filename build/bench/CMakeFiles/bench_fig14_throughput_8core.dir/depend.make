# Empty dependencies file for bench_fig14_throughput_8core.
# This may be replaced when dependencies are built.
