file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_throughput_8core.dir/bench_fig14_throughput_8core.cc.o"
  "CMakeFiles/bench_fig14_throughput_8core.dir/bench_fig14_throughput_8core.cc.o.d"
  "bench_fig14_throughput_8core"
  "bench_fig14_throughput_8core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_throughput_8core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
