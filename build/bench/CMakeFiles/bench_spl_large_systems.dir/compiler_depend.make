# Empty compiler generated dependencies file for bench_spl_large_systems.
# This may be replaced when dependencies are built.
