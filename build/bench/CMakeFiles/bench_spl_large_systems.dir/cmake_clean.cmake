file(REMOVE_RECURSE
  "CMakeFiles/bench_spl_large_systems.dir/bench_spl_large_systems.cc.o"
  "CMakeFiles/bench_spl_large_systems.dir/bench_spl_large_systems.cc.o.d"
  "bench_spl_large_systems"
  "bench_spl_large_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spl_large_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
