file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_sharing_incentives.dir/bench_fig07_sharing_incentives.cc.o"
  "CMakeFiles/bench_fig07_sharing_incentives.dir/bench_fig07_sharing_incentives.cc.o.d"
  "bench_fig07_sharing_incentives"
  "bench_fig07_sharing_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_sharing_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
