# Empty compiler generated dependencies file for bench_fig07_sharing_incentives.
# This may be replaced when dependencies are built.
