# Empty dependencies file for bench_fig05_contract_curve.
# This may be replaced when dependencies are built.
