file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_indifference.dir/bench_fig03_indifference.cc.o"
  "CMakeFiles/bench_fig03_indifference.dir/bench_fig03_indifference.cc.o.d"
  "bench_fig03_indifference"
  "bench_fig03_indifference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_indifference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
