# Empty dependencies file for bench_fig03_indifference.
# This may be replaced when dependencies are built.
