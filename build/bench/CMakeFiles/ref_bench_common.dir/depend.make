# Empty dependencies file for ref_bench_common.
# This may be replaced when dependencies are built.
