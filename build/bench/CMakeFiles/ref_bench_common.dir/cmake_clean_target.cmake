file(REMOVE_RECURSE
  "libref_bench_common.a"
)
