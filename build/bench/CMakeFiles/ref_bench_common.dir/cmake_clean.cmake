file(REMOVE_RECURSE
  "CMakeFiles/ref_bench_common.dir/common.cc.o"
  "CMakeFiles/ref_bench_common.dir/common.cc.o.d"
  "CMakeFiles/ref_bench_common.dir/throughput.cc.o"
  "CMakeFiles/ref_bench_common.dir/throughput.cc.o.d"
  "libref_bench_common.a"
  "libref_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
