# Empty dependencies file for bench_fig12_c_c_unfair.
# This may be replaced when dependencies are built.
