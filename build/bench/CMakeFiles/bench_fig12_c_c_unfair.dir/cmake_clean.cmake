file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_c_c_unfair.dir/bench_fig12_c_c_unfair.cc.o"
  "CMakeFiles/bench_fig12_c_c_unfair.dir/bench_fig12_c_c_unfair.cc.o.d"
  "bench_fig12_c_c_unfair"
  "bench_fig12_c_c_unfair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_c_c_unfair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
