# Empty compiler generated dependencies file for bench_fig04_leontief.
# This may be replaced when dependencies are built.
