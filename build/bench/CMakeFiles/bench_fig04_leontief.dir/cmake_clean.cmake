file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_leontief.dir/bench_fig04_leontief.cc.o"
  "CMakeFiles/bench_fig04_leontief.dir/bench_fig04_leontief.cc.o.d"
  "bench_fig04_leontief"
  "bench_fig04_leontief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_leontief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
