file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_edgeworth.dir/bench_fig01_edgeworth.cc.o"
  "CMakeFiles/bench_fig01_edgeworth.dir/bench_fig01_edgeworth.cc.o.d"
  "bench_fig01_edgeworth"
  "bench_fig01_edgeworth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_edgeworth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
