# Empty compiler generated dependencies file for bench_fig01_edgeworth.
# This may be replaced when dependencies are built.
