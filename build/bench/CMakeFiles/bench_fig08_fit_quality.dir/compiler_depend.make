# Empty compiler generated dependencies file for bench_fig08_fit_quality.
# This may be replaced when dependencies are built.
