file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_envy_free.dir/bench_fig02_envy_free.cc.o"
  "CMakeFiles/bench_fig02_envy_free.dir/bench_fig02_envy_free.cc.o.d"
  "bench_fig02_envy_free"
  "bench_fig02_envy_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_envy_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
