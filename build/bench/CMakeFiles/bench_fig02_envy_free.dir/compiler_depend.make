# Empty compiler generated dependencies file for bench_fig02_envy_free.
# This may be replaced when dependencies are built.
