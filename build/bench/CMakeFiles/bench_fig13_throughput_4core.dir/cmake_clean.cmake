file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_throughput_4core.dir/bench_fig13_throughput_4core.cc.o"
  "CMakeFiles/bench_fig13_throughput_4core.dir/bench_fig13_throughput_4core.cc.o.d"
  "bench_fig13_throughput_4core"
  "bench_fig13_throughput_4core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_throughput_4core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
