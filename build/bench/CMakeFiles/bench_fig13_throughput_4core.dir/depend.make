# Empty dependencies file for bench_fig13_throughput_4core.
# This may be replaced when dependencies are built.
