file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_enforcement.dir/bench_ablation_enforcement.cc.o"
  "CMakeFiles/bench_ablation_enforcement.dir/bench_ablation_enforcement.cc.o.d"
  "bench_ablation_enforcement"
  "bench_ablation_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
