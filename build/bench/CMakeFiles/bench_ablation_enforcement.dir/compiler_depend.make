# Empty compiler generated dependencies file for bench_ablation_enforcement.
# This may be replaced when dependencies are built.
