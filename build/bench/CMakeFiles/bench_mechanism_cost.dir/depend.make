# Empty dependencies file for bench_mechanism_cost.
# This may be replaced when dependencies are built.
