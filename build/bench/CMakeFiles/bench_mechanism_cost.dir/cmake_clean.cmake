file(REMOVE_RECURSE
  "CMakeFiles/bench_mechanism_cost.dir/bench_mechanism_cost.cc.o"
  "CMakeFiles/bench_mechanism_cost.dir/bench_mechanism_cost.cc.o.d"
  "bench_mechanism_cost"
  "bench_mechanism_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mechanism_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
