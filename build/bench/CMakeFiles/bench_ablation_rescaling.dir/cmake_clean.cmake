file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rescaling.dir/bench_ablation_rescaling.cc.o"
  "CMakeFiles/bench_ablation_rescaling.dir/bench_ablation_rescaling.cc.o.d"
  "bench_ablation_rescaling"
  "bench_ablation_rescaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rescaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
