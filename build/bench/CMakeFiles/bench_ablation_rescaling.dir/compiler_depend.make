# Empty compiler generated dependencies file for bench_ablation_rescaling.
# This may be replaced when dependencies are built.
