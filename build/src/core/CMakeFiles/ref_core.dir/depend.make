# Empty dependencies file for ref_core.
# This may be replaced when dependencies are built.
