
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/ref_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/ceei.cc" "src/core/CMakeFiles/ref_core.dir/ceei.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/ceei.cc.o.d"
  "/root/repo/src/core/cobb_douglas.cc" "src/core/CMakeFiles/ref_core.dir/cobb_douglas.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/cobb_douglas.cc.o.d"
  "/root/repo/src/core/drf.cc" "src/core/CMakeFiles/ref_core.dir/drf.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/drf.cc.o.d"
  "/root/repo/src/core/edgeworth.cc" "src/core/CMakeFiles/ref_core.dir/edgeworth.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/edgeworth.cc.o.d"
  "/root/repo/src/core/fairness.cc" "src/core/CMakeFiles/ref_core.dir/fairness.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/fairness.cc.o.d"
  "/root/repo/src/core/fitting.cc" "src/core/CMakeFiles/ref_core.dir/fitting.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/fitting.cc.o.d"
  "/root/repo/src/core/gp_program.cc" "src/core/CMakeFiles/ref_core.dir/gp_program.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/gp_program.cc.o.d"
  "/root/repo/src/core/leontief.cc" "src/core/CMakeFiles/ref_core.dir/leontief.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/leontief.cc.o.d"
  "/root/repo/src/core/profile_io.cc" "src/core/CMakeFiles/ref_core.dir/profile_io.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/profile_io.cc.o.d"
  "/root/repo/src/core/proportional_elasticity.cc" "src/core/CMakeFiles/ref_core.dir/proportional_elasticity.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/proportional_elasticity.cc.o.d"
  "/root/repo/src/core/resource.cc" "src/core/CMakeFiles/ref_core.dir/resource.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/resource.cc.o.d"
  "/root/repo/src/core/strategic.cc" "src/core/CMakeFiles/ref_core.dir/strategic.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/strategic.cc.o.d"
  "/root/repo/src/core/utilitarian.cc" "src/core/CMakeFiles/ref_core.dir/utilitarian.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/utilitarian.cc.o.d"
  "/root/repo/src/core/welfare.cc" "src/core/CMakeFiles/ref_core.dir/welfare.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/welfare.cc.o.d"
  "/root/repo/src/core/welfare_mechanisms.cc" "src/core/CMakeFiles/ref_core.dir/welfare_mechanisms.cc.o" "gcc" "src/core/CMakeFiles/ref_core.dir/welfare_mechanisms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/ref_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ref_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
