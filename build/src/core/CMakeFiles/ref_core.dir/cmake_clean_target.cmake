file(REMOVE_RECURSE
  "libref_core.a"
)
