file(REMOVE_RECURSE
  "CMakeFiles/ref_sched.dir/enforce.cc.o"
  "CMakeFiles/ref_sched.dir/enforce.cc.o.d"
  "CMakeFiles/ref_sched.dir/lottery.cc.o"
  "CMakeFiles/ref_sched.dir/lottery.cc.o.d"
  "CMakeFiles/ref_sched.dir/partition.cc.o"
  "CMakeFiles/ref_sched.dir/partition.cc.o.d"
  "CMakeFiles/ref_sched.dir/stride.cc.o"
  "CMakeFiles/ref_sched.dir/stride.cc.o.d"
  "CMakeFiles/ref_sched.dir/wfq.cc.o"
  "CMakeFiles/ref_sched.dir/wfq.cc.o.d"
  "libref_sched.a"
  "libref_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
