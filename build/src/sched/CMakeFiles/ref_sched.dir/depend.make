# Empty dependencies file for ref_sched.
# This may be replaced when dependencies are built.
