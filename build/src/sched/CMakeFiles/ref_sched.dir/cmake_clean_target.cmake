file(REMOVE_RECURSE
  "libref_sched.a"
)
