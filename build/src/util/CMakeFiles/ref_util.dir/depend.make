# Empty dependencies file for ref_util.
# This may be replaced when dependencies are built.
