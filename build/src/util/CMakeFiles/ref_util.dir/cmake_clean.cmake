file(REMOVE_RECURSE
  "CMakeFiles/ref_util.dir/csv.cc.o"
  "CMakeFiles/ref_util.dir/csv.cc.o.d"
  "CMakeFiles/ref_util.dir/logging.cc.o"
  "CMakeFiles/ref_util.dir/logging.cc.o.d"
  "CMakeFiles/ref_util.dir/math.cc.o"
  "CMakeFiles/ref_util.dir/math.cc.o.d"
  "CMakeFiles/ref_util.dir/random.cc.o"
  "CMakeFiles/ref_util.dir/random.cc.o.d"
  "CMakeFiles/ref_util.dir/table.cc.o"
  "CMakeFiles/ref_util.dir/table.cc.o.d"
  "libref_util.a"
  "libref_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
