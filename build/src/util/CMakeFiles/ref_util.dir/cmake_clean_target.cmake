file(REMOVE_RECURSE
  "libref_util.a"
)
