
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/barrier.cc" "src/solver/CMakeFiles/ref_solver.dir/barrier.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/barrier.cc.o.d"
  "/root/repo/src/solver/descent.cc" "src/solver/CMakeFiles/ref_solver.dir/descent.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/descent.cc.o.d"
  "/root/repo/src/solver/function.cc" "src/solver/CMakeFiles/ref_solver.dir/function.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/function.cc.o.d"
  "/root/repo/src/solver/line_search.cc" "src/solver/CMakeFiles/ref_solver.dir/line_search.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/line_search.cc.o.d"
  "/root/repo/src/solver/nelder_mead.cc" "src/solver/CMakeFiles/ref_solver.dir/nelder_mead.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/nelder_mead.cc.o.d"
  "/root/repo/src/solver/penalty.cc" "src/solver/CMakeFiles/ref_solver.dir/penalty.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/penalty.cc.o.d"
  "/root/repo/src/solver/scalar.cc" "src/solver/CMakeFiles/ref_solver.dir/scalar.cc.o" "gcc" "src/solver/CMakeFiles/ref_solver.dir/scalar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
