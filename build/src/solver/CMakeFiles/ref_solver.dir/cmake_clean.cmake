file(REMOVE_RECURSE
  "CMakeFiles/ref_solver.dir/barrier.cc.o"
  "CMakeFiles/ref_solver.dir/barrier.cc.o.d"
  "CMakeFiles/ref_solver.dir/descent.cc.o"
  "CMakeFiles/ref_solver.dir/descent.cc.o.d"
  "CMakeFiles/ref_solver.dir/function.cc.o"
  "CMakeFiles/ref_solver.dir/function.cc.o.d"
  "CMakeFiles/ref_solver.dir/line_search.cc.o"
  "CMakeFiles/ref_solver.dir/line_search.cc.o.d"
  "CMakeFiles/ref_solver.dir/nelder_mead.cc.o"
  "CMakeFiles/ref_solver.dir/nelder_mead.cc.o.d"
  "CMakeFiles/ref_solver.dir/penalty.cc.o"
  "CMakeFiles/ref_solver.dir/penalty.cc.o.d"
  "CMakeFiles/ref_solver.dir/scalar.cc.o"
  "CMakeFiles/ref_solver.dir/scalar.cc.o.d"
  "libref_solver.a"
  "libref_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
