file(REMOVE_RECURSE
  "libref_solver.a"
)
