# Empty compiler generated dependencies file for ref_solver.
# This may be replaced when dependencies are built.
