file(REMOVE_RECURSE
  "CMakeFiles/ref_sim.dir/cache.cc.o"
  "CMakeFiles/ref_sim.dir/cache.cc.o.d"
  "CMakeFiles/ref_sim.dir/config.cc.o"
  "CMakeFiles/ref_sim.dir/config.cc.o.d"
  "CMakeFiles/ref_sim.dir/dram.cc.o"
  "CMakeFiles/ref_sim.dir/dram.cc.o.d"
  "CMakeFiles/ref_sim.dir/profiler.cc.o"
  "CMakeFiles/ref_sim.dir/profiler.cc.o.d"
  "CMakeFiles/ref_sim.dir/system.cc.o"
  "CMakeFiles/ref_sim.dir/system.cc.o.d"
  "CMakeFiles/ref_sim.dir/trace.cc.o"
  "CMakeFiles/ref_sim.dir/trace.cc.o.d"
  "CMakeFiles/ref_sim.dir/workloads.cc.o"
  "CMakeFiles/ref_sim.dir/workloads.cc.o.d"
  "libref_sim.a"
  "libref_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
