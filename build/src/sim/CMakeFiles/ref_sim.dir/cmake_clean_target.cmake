file(REMOVE_RECURSE
  "libref_sim.a"
)
