# Empty compiler generated dependencies file for ref_sim.
# This may be replaced when dependencies are built.
