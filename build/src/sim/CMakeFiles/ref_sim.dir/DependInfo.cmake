
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ref_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/ref_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/ref_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/sim/CMakeFiles/ref_sim.dir/profiler.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/profiler.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/ref_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/system.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/ref_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/sim/CMakeFiles/ref_sim.dir/workloads.cc.o" "gcc" "src/sim/CMakeFiles/ref_sim.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ref_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ref_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ref_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
