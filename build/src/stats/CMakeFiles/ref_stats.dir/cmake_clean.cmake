file(REMOVE_RECURSE
  "CMakeFiles/ref_stats.dir/descriptive.cc.o"
  "CMakeFiles/ref_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/ref_stats.dir/linear_model.cc.o"
  "CMakeFiles/ref_stats.dir/linear_model.cc.o.d"
  "libref_stats.a"
  "libref_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
