# Empty dependencies file for ref_stats.
# This may be replaced when dependencies are built.
