
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/ref_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/ref_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/linear_model.cc" "src/stats/CMakeFiles/ref_stats.dir/linear_model.cc.o" "gcc" "src/stats/CMakeFiles/ref_stats.dir/linear_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
