file(REMOVE_RECURSE
  "libref_stats.a"
)
