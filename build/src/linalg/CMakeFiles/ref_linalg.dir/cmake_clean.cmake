file(REMOVE_RECURSE
  "CMakeFiles/ref_linalg.dir/decompose.cc.o"
  "CMakeFiles/ref_linalg.dir/decompose.cc.o.d"
  "CMakeFiles/ref_linalg.dir/least_squares.cc.o"
  "CMakeFiles/ref_linalg.dir/least_squares.cc.o.d"
  "CMakeFiles/ref_linalg.dir/matrix.cc.o"
  "CMakeFiles/ref_linalg.dir/matrix.cc.o.d"
  "libref_linalg.a"
  "libref_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
