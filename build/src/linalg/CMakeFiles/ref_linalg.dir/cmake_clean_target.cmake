file(REMOVE_RECURSE
  "libref_linalg.a"
)
