# Empty compiler generated dependencies file for ref_linalg.
# This may be replaced when dependencies are built.
