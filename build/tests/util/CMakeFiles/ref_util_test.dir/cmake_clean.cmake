file(REMOVE_RECURSE
  "CMakeFiles/ref_util_test.dir/csv_test.cc.o"
  "CMakeFiles/ref_util_test.dir/csv_test.cc.o.d"
  "CMakeFiles/ref_util_test.dir/logging_test.cc.o"
  "CMakeFiles/ref_util_test.dir/logging_test.cc.o.d"
  "CMakeFiles/ref_util_test.dir/math_test.cc.o"
  "CMakeFiles/ref_util_test.dir/math_test.cc.o.d"
  "CMakeFiles/ref_util_test.dir/random_test.cc.o"
  "CMakeFiles/ref_util_test.dir/random_test.cc.o.d"
  "CMakeFiles/ref_util_test.dir/table_test.cc.o"
  "CMakeFiles/ref_util_test.dir/table_test.cc.o.d"
  "ref_util_test"
  "ref_util_test.pdb"
  "ref_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
