
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cache_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/cache_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/cache_test.cc.o.d"
  "/root/repo/tests/sim/config_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/config_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/config_test.cc.o.d"
  "/root/repo/tests/sim/dram_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/dram_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/dram_test.cc.o.d"
  "/root/repo/tests/sim/multichannel_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/multichannel_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/multichannel_test.cc.o.d"
  "/root/repo/tests/sim/profiler_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/profiler_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/profiler_test.cc.o.d"
  "/root/repo/tests/sim/system_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/system_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/system_test.cc.o.d"
  "/root/repo/tests/sim/trace_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/trace_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/trace_test.cc.o.d"
  "/root/repo/tests/sim/workloads_test.cc" "tests/sim/CMakeFiles/ref_sim_test.dir/workloads_test.cc.o" "gcc" "tests/sim/CMakeFiles/ref_sim_test.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/ref_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ref_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ref_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ref_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ref_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
