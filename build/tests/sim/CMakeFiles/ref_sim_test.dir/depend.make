# Empty dependencies file for ref_sim_test.
# This may be replaced when dependencies are built.
