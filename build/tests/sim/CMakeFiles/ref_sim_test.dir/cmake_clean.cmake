file(REMOVE_RECURSE
  "CMakeFiles/ref_sim_test.dir/cache_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/cache_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/config_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/config_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/dram_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/dram_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/multichannel_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/multichannel_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/profiler_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/profiler_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/system_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/system_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/trace_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/trace_test.cc.o.d"
  "CMakeFiles/ref_sim_test.dir/workloads_test.cc.o"
  "CMakeFiles/ref_sim_test.dir/workloads_test.cc.o.d"
  "ref_sim_test"
  "ref_sim_test.pdb"
  "ref_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
