# Empty compiler generated dependencies file for ref_stats_test.
# This may be replaced when dependencies are built.
