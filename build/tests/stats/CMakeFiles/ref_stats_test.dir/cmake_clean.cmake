file(REMOVE_RECURSE
  "CMakeFiles/ref_stats_test.dir/descriptive_test.cc.o"
  "CMakeFiles/ref_stats_test.dir/descriptive_test.cc.o.d"
  "CMakeFiles/ref_stats_test.dir/linear_model_test.cc.o"
  "CMakeFiles/ref_stats_test.dir/linear_model_test.cc.o.d"
  "ref_stats_test"
  "ref_stats_test.pdb"
  "ref_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
