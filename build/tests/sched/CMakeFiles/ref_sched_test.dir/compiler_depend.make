# Empty compiler generated dependencies file for ref_sched_test.
# This may be replaced when dependencies are built.
