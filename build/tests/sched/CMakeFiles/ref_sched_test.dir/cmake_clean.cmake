file(REMOVE_RECURSE
  "CMakeFiles/ref_sched_test.dir/enforce_test.cc.o"
  "CMakeFiles/ref_sched_test.dir/enforce_test.cc.o.d"
  "CMakeFiles/ref_sched_test.dir/lottery_test.cc.o"
  "CMakeFiles/ref_sched_test.dir/lottery_test.cc.o.d"
  "CMakeFiles/ref_sched_test.dir/partition_test.cc.o"
  "CMakeFiles/ref_sched_test.dir/partition_test.cc.o.d"
  "CMakeFiles/ref_sched_test.dir/stride_test.cc.o"
  "CMakeFiles/ref_sched_test.dir/stride_test.cc.o.d"
  "CMakeFiles/ref_sched_test.dir/wfq_test.cc.o"
  "CMakeFiles/ref_sched_test.dir/wfq_test.cc.o.d"
  "ref_sched_test"
  "ref_sched_test.pdb"
  "ref_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
