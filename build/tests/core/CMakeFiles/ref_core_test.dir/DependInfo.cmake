
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/allocation_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/allocation_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/allocation_test.cc.o.d"
  "/root/repo/tests/core/ceei_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/ceei_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/ceei_test.cc.o.d"
  "/root/repo/tests/core/cobb_douglas_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/cobb_douglas_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/cobb_douglas_test.cc.o.d"
  "/root/repo/tests/core/drf_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/drf_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/drf_test.cc.o.d"
  "/root/repo/tests/core/edgeworth_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/edgeworth_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/edgeworth_test.cc.o.d"
  "/root/repo/tests/core/fairness_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/fairness_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/fairness_test.cc.o.d"
  "/root/repo/tests/core/fitting_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/fitting_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/fitting_test.cc.o.d"
  "/root/repo/tests/core/gp_program_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/gp_program_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/gp_program_test.cc.o.d"
  "/root/repo/tests/core/leontief_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/leontief_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/leontief_test.cc.o.d"
  "/root/repo/tests/core/profile_io_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/profile_io_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/profile_io_test.cc.o.d"
  "/root/repo/tests/core/proportional_elasticity_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/proportional_elasticity_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/proportional_elasticity_test.cc.o.d"
  "/root/repo/tests/core/resource_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/resource_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/resource_test.cc.o.d"
  "/root/repo/tests/core/strategic_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/strategic_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/strategic_test.cc.o.d"
  "/root/repo/tests/core/utilitarian_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/utilitarian_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/utilitarian_test.cc.o.d"
  "/root/repo/tests/core/welfare_mechanisms_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/welfare_mechanisms_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/welfare_mechanisms_test.cc.o.d"
  "/root/repo/tests/core/welfare_test.cc" "tests/core/CMakeFiles/ref_core_test.dir/welfare_test.cc.o" "gcc" "tests/core/CMakeFiles/ref_core_test.dir/welfare_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/ref_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ref_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ref_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/ref_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ref_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ref_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
