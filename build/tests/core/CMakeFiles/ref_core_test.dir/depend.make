# Empty dependencies file for ref_core_test.
# This may be replaced when dependencies are built.
