file(REMOVE_RECURSE
  "CMakeFiles/ref_integration_test.dir/drf_vs_ref_test.cc.o"
  "CMakeFiles/ref_integration_test.dir/drf_vs_ref_test.cc.o.d"
  "CMakeFiles/ref_integration_test.dir/end_to_end_test.cc.o"
  "CMakeFiles/ref_integration_test.dir/end_to_end_test.cc.o.d"
  "CMakeFiles/ref_integration_test.dir/mechanism_equivalence_test.cc.o"
  "CMakeFiles/ref_integration_test.dir/mechanism_equivalence_test.cc.o.d"
  "CMakeFiles/ref_integration_test.dir/pipeline_property_test.cc.o"
  "CMakeFiles/ref_integration_test.dir/pipeline_property_test.cc.o.d"
  "ref_integration_test"
  "ref_integration_test.pdb"
  "ref_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
