# CMake generated Testfile for 
# Source directory: /root/repo/tests/linalg
# Build directory: /root/repo/build/tests/linalg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg/ref_linalg_test[1]_include.cmake")
