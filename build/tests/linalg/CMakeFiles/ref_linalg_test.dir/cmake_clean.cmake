file(REMOVE_RECURSE
  "CMakeFiles/ref_linalg_test.dir/decompose_test.cc.o"
  "CMakeFiles/ref_linalg_test.dir/decompose_test.cc.o.d"
  "CMakeFiles/ref_linalg_test.dir/least_squares_test.cc.o"
  "CMakeFiles/ref_linalg_test.dir/least_squares_test.cc.o.d"
  "CMakeFiles/ref_linalg_test.dir/matrix_test.cc.o"
  "CMakeFiles/ref_linalg_test.dir/matrix_test.cc.o.d"
  "ref_linalg_test"
  "ref_linalg_test.pdb"
  "ref_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
