# Empty dependencies file for ref_solver_test.
# This may be replaced when dependencies are built.
