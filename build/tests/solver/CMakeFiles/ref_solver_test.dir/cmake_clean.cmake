file(REMOVE_RECURSE
  "CMakeFiles/ref_solver_test.dir/barrier_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/barrier_test.cc.o.d"
  "CMakeFiles/ref_solver_test.dir/descent_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/descent_test.cc.o.d"
  "CMakeFiles/ref_solver_test.dir/function_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/function_test.cc.o.d"
  "CMakeFiles/ref_solver_test.dir/nelder_mead_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/nelder_mead_test.cc.o.d"
  "CMakeFiles/ref_solver_test.dir/options_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/options_test.cc.o.d"
  "CMakeFiles/ref_solver_test.dir/penalty_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/penalty_test.cc.o.d"
  "CMakeFiles/ref_solver_test.dir/scalar_test.cc.o"
  "CMakeFiles/ref_solver_test.dir/scalar_test.cc.o.d"
  "ref_solver_test"
  "ref_solver_test.pdb"
  "ref_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
