# Empty dependencies file for three_resources.
# This may be replaced when dependencies are built.
