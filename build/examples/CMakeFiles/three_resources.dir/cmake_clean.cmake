file(REMOVE_RECURSE
  "CMakeFiles/three_resources.dir/three_resources.cpp.o"
  "CMakeFiles/three_resources.dir/three_resources.cpp.o.d"
  "three_resources"
  "three_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
