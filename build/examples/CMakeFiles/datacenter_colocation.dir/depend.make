# Empty dependencies file for datacenter_colocation.
# This may be replaced when dependencies are built.
