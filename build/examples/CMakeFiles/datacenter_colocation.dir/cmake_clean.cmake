file(REMOVE_RECURSE
  "CMakeFiles/datacenter_colocation.dir/datacenter_colocation.cpp.o"
  "CMakeFiles/datacenter_colocation.dir/datacenter_colocation.cpp.o.d"
  "datacenter_colocation"
  "datacenter_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
