# Empty dependencies file for edgeworth_box.
# This may be replaced when dependencies are built.
