file(REMOVE_RECURSE
  "CMakeFiles/edgeworth_box.dir/edgeworth_box.cpp.o"
  "CMakeFiles/edgeworth_box.dir/edgeworth_box.cpp.o.d"
  "edgeworth_box"
  "edgeworth_box.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeworth_box.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
