# Empty dependencies file for online_profiling.
# This may be replaced when dependencies are built.
