file(REMOVE_RECURSE
  "CMakeFiles/online_profiling.dir/online_profiling.cpp.o"
  "CMakeFiles/online_profiling.dir/online_profiling.cpp.o.d"
  "online_profiling"
  "online_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
