file(REMOVE_RECURSE
  "CMakeFiles/spl_audit.dir/spl_audit.cpp.o"
  "CMakeFiles/spl_audit.dir/spl_audit.cpp.o.d"
  "spl_audit"
  "spl_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spl_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
