# Empty compiler generated dependencies file for spl_audit.
# This may be replaced when dependencies are built.
