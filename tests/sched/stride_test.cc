#include "sched/stride.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::sched::StrideScheduler;

TEST(Stride, ExactProportionsOverRoundMultiples)
{
    StrideScheduler stride({3.0, 1.0});
    for (int i = 0; i < 4000; ++i)
        stride.next();
    EXPECT_EQ(stride.quantaGranted(0), 3000u);
    EXPECT_EQ(stride.quantaGranted(1), 1000u);
}

TEST(Stride, DeviationBoundedByOneQuantum)
{
    // Stride's headline property: at every prefix, each holder's
    // grant count is within one quantum of its entitlement.
    StrideScheduler stride({5.0, 2.0, 1.0});
    const double total = 8.0;
    const std::vector<double> entitled{5.0 / total, 2.0 / total,
                                       1.0 / total};
    for (int t = 1; t <= 5000; ++t) {
        stride.next();
        for (std::size_t h = 0; h < 3; ++h) {
            const double expected = entitled[h] * t;
            EXPECT_LE(std::abs(static_cast<double>(
                          stride.quantaGranted(h)) -
                          expected),
                      1.0 + 1e-9)
                << "holder " << h << " at quantum " << t;
        }
    }
}

TEST(Stride, DeterministicSequence)
{
    StrideScheduler a({2.0, 1.0});
    StrideScheduler b({2.0, 1.0});
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Stride, EqualTicketsInterleave)
{
    StrideScheduler stride({1.0, 1.0});
    int first = 0;
    for (int i = 0; i < 100; ++i)
        first += stride.next() == 0;
    EXPECT_EQ(first, 50);
}

TEST(Stride, SetTicketsRebalancesGoingForward)
{
    StrideScheduler stride({1.0, 1.0});
    for (int i = 0; i < 1000; ++i)
        stride.next();
    stride.setTickets(0, 4.0);
    const auto before = stride.quantaGranted(0);
    for (int i = 0; i < 5000; ++i)
        stride.next();
    const double late_share =
        static_cast<double>(stride.quantaGranted(0) - before) / 5000.0;
    EXPECT_NEAR(late_share, 0.8, 0.02);
}

TEST(Stride, ShareGrantedTracksQuanta)
{
    StrideScheduler stride({1.0, 3.0});
    EXPECT_DOUBLE_EQ(stride.shareGranted(0), 0.0);
    for (int i = 0; i < 400; ++i)
        stride.next();
    EXPECT_NEAR(stride.shareGranted(1), 0.75, 0.01);
    EXPECT_EQ(stride.totalQuanta(), 400u);
}

TEST(Stride, RejectsBadInput)
{
    EXPECT_THROW(StrideScheduler({}), ref::FatalError);
    EXPECT_THROW(StrideScheduler({1.0, 0.0}), ref::FatalError);
    StrideScheduler stride({1.0});
    EXPECT_THROW(stride.setTickets(1, 1.0), ref::FatalError);
    EXPECT_THROW(stride.setTickets(0, -1.0), ref::FatalError);
    EXPECT_THROW(stride.quantaGranted(2), ref::FatalError);
}

} // namespace
