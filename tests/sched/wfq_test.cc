#include "sched/wfq.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::sched::WfqScheduler;

TEST(Wfq, FifoWithinOneFlow)
{
    WfqScheduler wfq({1.0});
    wfq.enqueue(0, 11, 10);
    wfq.enqueue(0, 22, 10);
    wfq.enqueue(0, 33, 10);
    EXPECT_EQ(wfq.pop().tag, 11u);
    EXPECT_EQ(wfq.pop().tag, 22u);
    EXPECT_EQ(wfq.pop().tag, 33u);
    EXPECT_TRUE(wfq.empty());
}

TEST(Wfq, EqualWeightsInterleave)
{
    WfqScheduler wfq({1.0, 1.0});
    for (std::uint64_t i = 0; i < 4; ++i) {
        wfq.enqueue(0, 100 + i, 10);
        wfq.enqueue(1, 200 + i, 10);
    }
    int flow0_in_first_four = 0;
    for (int i = 0; i < 4; ++i)
        flow0_in_first_four += wfq.pop().flow == 0;
    EXPECT_EQ(flow0_in_first_four, 2);
}

TEST(Wfq, ServiceConvergesToWeights)
{
    // 3:1 weights with equal-cost requests: the heavy flow gets ~75%
    // of the service while both stay backlogged.
    WfqScheduler wfq({3.0, 1.0});
    for (std::uint64_t i = 0; i < 400; ++i) {
        wfq.enqueue(0, i, 10);
        wfq.enqueue(1, 1000 + i, 10);
    }
    for (int i = 0; i < 400; ++i)
        wfq.pop();
    EXPECT_NEAR(wfq.serviceShare(0), 0.75, 0.02);
    EXPECT_NEAR(wfq.serviceShare(1), 0.25, 0.02);
}

TEST(Wfq, WeightsRespectedWithUnequalRequestSizes)
{
    // Flow 0 sends big requests, flow 1 small ones; service units
    // (not request counts) follow the 1:1 weights.
    WfqScheduler wfq({1.0, 1.0});
    for (std::uint64_t i = 0; i < 300; ++i) {
        wfq.enqueue(0, i, 40);
        wfq.enqueue(1, 1000 + i, 10);
    }
    for (int i = 0; i < 350; ++i)
        wfq.pop();
    EXPECT_NEAR(wfq.serviceShare(0), 0.5, 0.1);
}

TEST(Wfq, IdleFlowDoesNotStarveOthers)
{
    WfqScheduler wfq({1.0, 1.0, 1.0});
    // Only flow 2 is active.
    for (std::uint64_t i = 0; i < 10; ++i)
        wfq.enqueue(2, i, 5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(wfq.pop().flow, 2u);
    EXPECT_DOUBLE_EQ(wfq.serviceShare(2), 1.0);
}

TEST(Wfq, LateArrivalDoesNotInheritOldVirtualTime)
{
    // Flow 1 arrives after flow 0 consumed service; its first
    // request competes from the current virtual time, not from 0, so
    // it does not monopolize the scheduler to "catch up".
    WfqScheduler wfq({1.0, 1.0});
    for (std::uint64_t i = 0; i < 50; ++i)
        wfq.enqueue(0, i, 10);
    for (int i = 0; i < 50; ++i)
        wfq.pop();
    // Both flows now backlogged.
    for (std::uint64_t i = 0; i < 100; ++i) {
        wfq.enqueue(0, 1000 + i, 10);
        wfq.enqueue(1, 2000 + i, 10);
    }
    std::uint64_t flow1_served = 0;
    for (int i = 0; i < 100; ++i)
        flow1_served += wfq.pop().flow == 1;
    EXPECT_NEAR(static_cast<double>(flow1_served), 50.0, 2.0);
}

TEST(Wfq, SizeTracksQueuedRequests)
{
    WfqScheduler wfq({1.0, 2.0});
    EXPECT_TRUE(wfq.empty());
    wfq.enqueue(0, 1, 10);
    wfq.enqueue(1, 2, 10);
    EXPECT_EQ(wfq.size(), 2u);
    wfq.pop();
    EXPECT_EQ(wfq.size(), 1u);
}

TEST(Wfq, FlowStatsCount)
{
    WfqScheduler wfq({1.0, 1.0});
    wfq.enqueue(0, 1, 30);
    wfq.pop();
    EXPECT_EQ(wfq.flowStats(0).requestsServed, 1u);
    EXPECT_EQ(wfq.flowStats(0).unitsServed, 30u);
    EXPECT_EQ(wfq.flowStats(1).requestsServed, 0u);
}

TEST(Wfq, RejectsBadUsage)
{
    EXPECT_THROW(WfqScheduler({}), ref::FatalError);
    EXPECT_THROW(WfqScheduler({1.0, 0.0}), ref::FatalError);
    WfqScheduler wfq({1.0});
    EXPECT_THROW(wfq.pop(), ref::FatalError);
    EXPECT_THROW(wfq.enqueue(1, 0, 10), ref::FatalError);
    EXPECT_THROW(wfq.enqueue(0, 0, 0), ref::FatalError);
    EXPECT_THROW(wfq.flowStats(2), ref::FatalError);
}

} // namespace
