#include "sched/lottery.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::sched::LotteryScheduler;

TEST(Lottery, SharesConvergeToTicketRatios)
{
    LotteryScheduler lottery({3.0, 1.0}, 42);
    constexpr int quanta = 100000;
    for (int i = 0; i < quanta; ++i)
        lottery.draw();
    EXPECT_NEAR(lottery.shareWon(0), 0.75, 0.01);
    EXPECT_NEAR(lottery.shareWon(1), 0.25, 0.01);
    EXPECT_EQ(lottery.quantaWon(0) + lottery.quantaWon(1),
              static_cast<std::uint64_t>(quanta));
}

TEST(Lottery, DeterministicForEqualSeeds)
{
    LotteryScheduler a({1.0, 2.0, 3.0}, 7);
    LotteryScheduler b({1.0, 2.0, 3.0}, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.draw(), b.draw());
}

TEST(Lottery, FractionalTicketsWork)
{
    LotteryScheduler lottery({0.6, 0.4}, 11);
    for (int i = 0; i < 50000; ++i)
        lottery.draw();
    EXPECT_NEAR(lottery.shareWon(0), 0.6, 0.02);
}

TEST(Lottery, SetTicketsRebalances)
{
    LotteryScheduler lottery({1.0, 1.0}, 13);
    for (int i = 0; i < 10000; ++i)
        lottery.draw();
    // Starve holder 1 going forward.
    lottery.setTickets(0, 9.0);
    const auto before = lottery.quantaWon(1);
    for (int i = 0; i < 50000; ++i)
        lottery.draw();
    const double late_share =
        static_cast<double>(lottery.quantaWon(1) - before) / 50000.0;
    EXPECT_NEAR(late_share, 0.1, 0.02);
}

TEST(Lottery, SingleHolderAlwaysWins)
{
    LotteryScheduler lottery({5.0}, 17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(lottery.draw(), 0u);
    EXPECT_DOUBLE_EQ(lottery.shareWon(0), 1.0);
}

TEST(Lottery, ShareIsZeroBeforeAnyDraw)
{
    LotteryScheduler lottery({1.0, 1.0}, 19);
    EXPECT_DOUBLE_EQ(lottery.shareWon(0), 0.0);
    EXPECT_EQ(lottery.totalQuanta(), 0u);
}

TEST(Lottery, RejectsBadInput)
{
    EXPECT_THROW(LotteryScheduler({}), ref::FatalError);
    EXPECT_THROW(LotteryScheduler({1.0, 0.0}), ref::FatalError);
    LotteryScheduler lottery({1.0});
    EXPECT_THROW(lottery.setTickets(1, 1.0), ref::FatalError);
    EXPECT_THROW(lottery.setTickets(0, 0.0), ref::FatalError);
    EXPECT_THROW(lottery.quantaWon(3), ref::FatalError);
}

} // namespace
