#include "sched/enforce.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::sched;
using namespace ref::sim;

Trace
streamingTrace(std::uint64_t seed, std::size_t ops = 20000)
{
    TraceParams params;
    params.workingSetBytes = 64 * 1024;
    params.memIntensity = 0.3;
    params.streamFraction = 0.95;
    params.seed = seed;
    return TraceGenerator(params).generate(ops);
}

Trace
cacheTrace(std::uint64_t seed, std::size_t ops = 20000)
{
    TraceParams params;
    params.workingSetBytes = 512 * 1024;
    params.zipfExponent = 0.9;
    params.memIntensity = 0.15;
    params.seed = seed;
    return TraceGenerator(params).generate(ops);
}

PlatformConfig
sharedPlatform()
{
    PlatformConfig config = PlatformConfig::table1();
    config.l2.sizeBytes = 1024 * 1024;
    config.dram.bandwidthGBps = 3.2;
    return config;
}

TEST(Enforce, RunsAllAgentsToCompletion)
{
    EnforcedCmpSystem system(sharedPlatform(), {0.5, 0.5},
                             {0.5, 0.5});
    const auto results =
        system.run({streamingTrace(1), streamingTrace(2)},
                   {TimingParams{4.0, 0.0}, TimingParams{4.0, 0.0}});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &result : results) {
        EXPECT_GT(result.instructions, 0u);
        EXPECT_GT(result.cycles, 0.0);
        EXPECT_GT(result.ipc, 0.0);
        EXPECT_GT(result.l2Misses, 0u);
    }
}

TEST(Enforce, WfqDeliversBandwidthShares)
{
    // Two identical backlogged streamers with a 3:1 bandwidth split
    // must measure ~75%/25% DRAM service.
    EnforcedCmpSystem system(sharedPlatform(), {0.5, 0.5},
                             {0.75, 0.25});
    const auto results =
        system.run({streamingTrace(1), streamingTrace(2)},
                   {TimingParams{8.0, 0.0}, TimingParams{8.0, 0.0}});
    EXPECT_NEAR(results[0].bandwidthShare, 0.75, 0.08);
    EXPECT_NEAR(results[1].bandwidthShare, 0.25, 0.08);
}

TEST(Enforce, BandwidthShareTranslatesToProgress)
{
    // The favored streamer finishes the same trace in fewer cycles.
    EnforcedCmpSystem system(sharedPlatform(), {0.5, 0.5},
                             {0.8, 0.2});
    const auto results =
        system.run({streamingTrace(3), streamingTrace(4)},
                   {TimingParams{8.0, 0.0}, TimingParams{8.0, 0.0}});
    EXPECT_GT(results[0].ipc, results[1].ipc * 1.5);
}

TEST(Enforce, CachePartitionProtectsCacheShare)
{
    // A cache-friendly agent keeps its hit rate when its partition
    // is large, and loses it when squeezed to one way while a
    // streamer thrashes the rest.
    const auto trace_a = cacheTrace(5);
    const auto trace_b = streamingTrace(6);
    const std::vector<TimingParams> timings{TimingParams{2.0, 0.0},
                                            TimingParams{8.0, 0.0}};

    EnforcedCmpSystem generous(sharedPlatform(), {7.0 / 8, 1.0 / 8},
                               {0.5, 0.5});
    const auto big = generous.run({trace_a, trace_b}, timings);

    EnforcedCmpSystem stingy(sharedPlatform(), {1.0 / 8, 7.0 / 8},
                             {0.5, 0.5});
    const auto small = stingy.run({trace_a, trace_b}, timings);

    const double big_miss_rate =
        static_cast<double>(big[0].l2Misses) / big[0].l2Accesses;
    const double small_miss_rate =
        static_cast<double>(small[0].l2Misses) / small[0].l2Accesses;
    EXPECT_LT(big_miss_rate, small_miss_rate);
    EXPECT_GT(big[0].ipc, small[0].ipc);
}

TEST(Enforce, ReportsRealizedCacheShares)
{
    EnforcedCmpSystem system(sharedPlatform(), {0.75, 0.25},
                             {0.5, 0.5});
    const auto results =
        system.run({streamingTrace(7, 2000), streamingTrace(8, 2000)},
                   {TimingParams{2.0, 0.0}, TimingParams{2.0, 0.0}});
    EXPECT_DOUBLE_EQ(results[0].cacheShare, 0.75);
    EXPECT_DOUBLE_EQ(results[1].cacheShare, 0.25);
}

TEST(Enforce, FourAgentsShareStably)
{
    EnforcedCmpSystem system(sharedPlatform(),
                             {0.25, 0.25, 0.25, 0.25},
                             {0.4, 0.3, 0.2, 0.1});
    std::vector<Trace> traces;
    std::vector<TimingParams> timings;
    for (std::uint64_t i = 0; i < 4; ++i) {
        traces.push_back(streamingTrace(10 + i, 8000));
        timings.push_back(TimingParams{4.0, 0.0});
    }
    const auto results = system.run(traces, timings);
    // Monotone: larger bandwidth share, larger measured share.
    EXPECT_GT(results[0].bandwidthShare, results[1].bandwidthShare);
    EXPECT_GT(results[1].bandwidthShare, results[2].bandwidthShare);
    EXPECT_GT(results[2].bandwidthShare, results[3].bandwidthShare);
}

TEST(Enforce, UnmanagedModeLetsStreamerCrowdOutCacheWork)
{
    // Without partitioning and with a FIFO channel, the streaming
    // agent thrashes the shared L2 and hogs the bus; the
    // cache-friendly agent does measurably better once REF-style
    // enforcement is on.
    const auto trace_c = cacheTrace(21);
    const auto trace_m = streamingTrace(22);
    const std::vector<TimingParams> timings{TimingParams{2.0, 0.0},
                                            TimingParams{8.0, 0.0}};

    EnforcementPolicy unmanaged;
    unmanaged.partitionCache = false;
    unmanaged.wfqBandwidth = false;
    EnforcedCmpSystem free_for_all(sharedPlatform(), {0.5, 0.5},
                                   {0.5, 0.5}, unmanaged);
    const auto wild = free_for_all.run({trace_c, trace_m}, timings);

    EnforcedCmpSystem enforced(sharedPlatform(), {6.0 / 8, 2.0 / 8},
                               {0.5, 0.5});
    const auto managed = enforced.run({trace_c, trace_m}, timings);

    EXPECT_GT(managed[0].ipc, wild[0].ipc);
}

TEST(Enforce, UnmanagedCacheShareReportsFullAccess)
{
    EnforcementPolicy unmanaged;
    unmanaged.partitionCache = false;
    EnforcedCmpSystem system(sharedPlatform(), {0.5, 0.5},
                             {0.5, 0.5}, unmanaged);
    const auto results =
        system.run({streamingTrace(31, 2000), streamingTrace(32, 2000)},
                   {TimingParams{2.0, 0.0}, TimingParams{2.0, 0.0}});
    EXPECT_DOUBLE_EQ(results[0].cacheShare, 1.0);
    EXPECT_DOUBLE_EQ(results[1].cacheShare, 1.0);
}

TEST(Enforce, FifoChannelServesByDemand)
{
    // With FIFO arbitration, service shares follow demand, not the
    // configured fractions: an intense streamer out-consumes a mild
    // one even with "equal" nominal fractions.
    TraceParams intense;
    intense.workingSetBytes = 64 * 1024;
    intense.memIntensity = 0.5;
    intense.streamFraction = 0.95;
    intense.seed = 41;
    TraceParams mild = intense;
    mild.memIntensity = 0.02;
    mild.seed = 42;

    EnforcementPolicy unmanaged;
    unmanaged.wfqBandwidth = false;
    unmanaged.partitionCache = false;
    EnforcedCmpSystem system(sharedPlatform(), {0.5, 0.5},
                             {0.5, 0.5}, unmanaged);
    const auto results = system.run(
        {TraceGenerator(intense).generate(20000),
         TraceGenerator(mild).generate(20000)},
        {TimingParams{8.0, 0.0}, TimingParams{2.0, 0.0}});
    EXPECT_GT(results[0].bandwidthShare,
              results[1].bandwidthShare * 1.5);
}

TEST(Enforce, RejectsBadShapes)
{
    EXPECT_THROW(EnforcedCmpSystem(sharedPlatform(), {0.5, 0.5},
                                   {1.0}),
                 ref::FatalError);
    EnforcedCmpSystem system(sharedPlatform(), {0.5, 0.5},
                             {0.5, 0.5});
    EXPECT_THROW(system.run({streamingTrace(1)},
                            {TimingParams{}, TimingParams{}}),
                 ref::FatalError);
}

} // namespace
