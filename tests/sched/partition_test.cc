#include "sched/partition.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::sched::partitionWays;

TEST(Partition, ExactFractionsGiveExactWays)
{
    const auto partition = partitionWays({0.5, 0.25, 0.25}, 8);
    EXPECT_EQ(partition.ways[0], 4u);
    EXPECT_EQ(partition.ways[1], 2u);
    EXPECT_EQ(partition.ways[2], 2u);
}

TEST(Partition, WaysSumToAssociativity)
{
    const auto partition = partitionWays({0.37, 0.21, 0.42}, 8);
    unsigned total = 0;
    for (unsigned w : partition.ways)
        total += w;
    EXPECT_EQ(total, 8u);
}

TEST(Partition, EveryAgentGetsAtLeastOneWay)
{
    const auto partition =
        partitionWays({0.94, 0.02, 0.02, 0.02}, 8);
    for (unsigned w : partition.ways)
        EXPECT_GE(w, 1u);
}

TEST(Partition, LargestRemainderFavorsClosestFraction)
{
    // Ideal ways: 5.6, 1.2, 1.2 -> floors 5,1,1 leave one extra way
    // for the largest remainder (agent 0).
    const auto partition = partitionWays({0.7, 0.15, 0.15}, 8);
    EXPECT_EQ(partition.ways[0], 6u);
    EXPECT_EQ(partition.ways[1], 1u);
    EXPECT_EQ(partition.ways[2], 1u);
}

TEST(Partition, MasksAreDisjointAndCoverAllWays)
{
    const auto partition = partitionWays({0.4, 0.35, 0.25}, 16);
    std::uint64_t combined = 0;
    for (std::size_t i = 0; i < partition.masks.size(); ++i) {
        EXPECT_EQ(combined & partition.masks[i], 0u)
            << "overlap at agent " << i;
        combined |= partition.masks[i];
    }
    EXPECT_EQ(combined, (std::uint64_t{1} << 16) - 1);
}

TEST(Partition, MaskPopcountMatchesWays)
{
    const auto partition = partitionWays({0.6, 0.4}, 8);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(static_cast<unsigned>(
                      __builtin_popcountll(partition.masks[i])),
                  partition.ways[i]);
    }
}

TEST(Partition, RealizedFractionsSumToOne)
{
    const auto partition = partitionWays({0.3, 0.3, 0.4}, 8);
    double total = 0;
    for (double f : partition.realizedFractions)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Partition, SingleAgentOwnsEverything)
{
    const auto partition = partitionWays({1.0}, 8);
    EXPECT_EQ(partition.ways[0], 8u);
    EXPECT_EQ(partition.masks[0], 0xFFu);
}

TEST(Partition, RejectsBadInput)
{
    EXPECT_THROW(partitionWays({}, 8), ref::FatalError);
    EXPECT_THROW(partitionWays({0.5, 0.5}, 1), ref::FatalError);
    EXPECT_THROW(partitionWays({0.9, 0.3}, 8), ref::FatalError);
    EXPECT_THROW(partitionWays({0.5, -0.5}, 8), ref::FatalError);
    std::vector<double> too_many(65, 1.0 / 65.0);
    EXPECT_THROW(partitionWays(too_many, 65), ref::FatalError);
}

} // namespace
