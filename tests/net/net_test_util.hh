/**
 * @file
 * Shared harness for the socket front-end tests: an in-process
 * SocketServer on an ephemeral loopback port driven from a
 * background thread, and a raw-socket TestClient with deadline-based
 * reads so tests never hang on a lost reply.
 */

#ifndef REF_TESTS_NET_TEST_UTIL_HH
#define REF_TESTS_NET_TEST_UTIL_HH

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/socket_server.hh"
#include "svc/allocation_service.hh"
#include "svc/wire.hh"
#include "util/record_io.hh"

namespace ref::test {

/** In-process server: start() binds before the thread spins up, so
 *  the port is known; stats() is safe to read after join(). */
class ServerHarness
{
  public:
    explicit ServerHarness(svc::ServiceConfig config = {},
                           net::ServerOptions options = {})
        : service_(config)
    {
        if (options.listenAddress.empty())
            options.listenAddress = "127.0.0.1:0";
        server_ =
            std::make_unique<net::SocketServer>(service_, options);
        server_->start();
        thread_ = std::thread(
            [this] { stats_ = server_->run(); });
    }

    ~ServerHarness() { stop(); }

    std::uint16_t port() const { return server_->tcpPort(); }
    svc::AllocationService &service() { return service_; }

    /** Ask the loop to drain and wait for it. Idempotent. */
    const net::ServerStats &stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
        return stats_;
    }

    /** Server-run totals; call after stop() (or after the run ended
     *  via a SHUTDOWN command — join() first). */
    const net::ServerStats &stats() const { return stats_; }

  private:
    svc::AllocationService service_;
    std::unique_ptr<net::SocketServer> server_;
    std::thread thread_;
    net::ServerStats stats_;
};

/** Blocking-with-deadline client over one TCP connection. */
class TestClient
{
  public:
    explicit TestClient(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0) << std::strerror(errno);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0)
            << std::strerror(errno);
    }

    ~TestClient() { close(); }
    TestClient(const TestClient &) = delete;
    TestClient &operator=(const TestClient &) = delete;

    int fd() const { return fd_; }

    void close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    /** Shrink the kernel receive buffer (slow-loris tests want the
     *  server's backlog to fill fast). Call before traffic. */
    void setSmallReceiveBuffer(int bytes = 4096)
    {
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes,
                     sizeof(bytes));
    }

    /** Write every byte (server reads are nonblocking, so a test
     *  client may block here only while the server catches up). */
    void sendAll(std::string_view bytes)
    {
        std::size_t done = 0;
        while (done < bytes.size()) {
            const ssize_t wrote =
                ::send(fd_, bytes.data() + done,
                       bytes.size() - done, MSG_NOSIGNAL);
            if (wrote < 0 && errno == EINTR)
                continue;
            ASSERT_GT(wrote, 0) << std::strerror(errno);
            done += static_cast<std::size_t>(wrote);
        }
    }

    /**
     * Read until @p lines complete lines are buffered or the
     * deadline passes; returns the lines (trailing part beyond the
     * count stays buffered for the next call).
     */
    std::string readLines(std::size_t lines, int timeoutMs = 5000)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs);
        for (;;) {
            std::size_t seen = 0;
            std::size_t end = 0;
            for (std::size_t i = 0;
                 i < buffer_.size() && seen < lines; ++i) {
                if (buffer_[i] == '\n') {
                    ++seen;
                    end = i + 1;
                }
            }
            if (seen >= lines) {
                std::string head = buffer_.substr(0, end);
                buffer_.erase(0, end);
                return head;
            }
            if (eof_ || !fillBuffer(deadline))
                return std::string();
        }
    }

    /** Read everything until the server closes the connection (or
     *  the deadline passes — the test then fails on content). */
    std::string readToEof(int timeoutMs = 5000)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs);
        while (!eof_ && fillBuffer(deadline)) {
        }
        std::string all;
        all.swap(buffer_);
        return all;
    }

    /** Half-close: no more bytes from us, reads stay open — how a
     *  binary test hands the server a torn frame at EOF. */
    void shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

    /** Send the binary hello and consume the ack frame; true when
     *  the server acknowledged the negotiation. */
    bool negotiateBinary(int timeoutMs = 5000)
    {
        sendAll(svc::wire::helloMagic());
        std::string payload;
        if (!readFrameUnit(payload, timeoutMs))
            return false;
        return svc::wire::decodeReply(payload).status ==
               svc::wire::ReplyStatus::Hello;
    }

    /** Frame and send one binary request payload. */
    void sendFrame(std::string_view payload)
    {
        sendAll(frameRecord(payload));
    }

    /** Read one whole CRC32 frame; false on timeout, EOF, or a
     *  corrupt frame from the server (tests treat all as failure). */
    bool readFrameUnit(std::string &payload, int timeoutMs = 5000)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs);
        for (;;) {
            std::size_t at = 0;
            std::string_view view;
            const FrameStatus status =
                ref::readFrame(buffer_, at, view);
            if (status == FrameStatus::Ok) {
                payload.assign(view);
                buffer_.erase(0, at);
                return true;
            }
            if (status == FrameStatus::Corrupt)
                return false;
            if (eof_ || !fillBuffer(deadline))
                return false;
        }
    }

    /** True when the server closed this connection within the
     *  deadline (any still-buffered bytes are discarded). */
    bool waitForClose(int timeoutMs = 5000)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs);
        while (!eof_ && fillBuffer(deadline)) {
        }
        return eof_;
    }

  private:
    /** One poll+read pass bounded by @p deadline. False on timeout
     *  or error; EOF sets eof_ and returns false. */
    bool fillBuffer(std::chrono::steady_clock::time_point deadline)
    {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline || fd_ < 0)
            return false;
        // Round up: a sub-millisecond remainder must still buy one
        // poll pass, or short deadlines never read at all.
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count() +
            1;
        pollfd pfd{fd_, POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(left));
        if (ready <= 0)
            return false;
        char chunk[4096];
        const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
        if (got < 0) {
            if (errno == EINTR)
                return true;
            // ECONNRESET: an abortive server-side drop (close with
            // unread input pending) counts as connection closed.
            eof_ = true;
            return false;
        }
        if (got == 0) {
            eof_ = true;
            return false;
        }
        buffer_.append(chunk, static_cast<std::size_t>(got));
        return true;
    }

    int fd_ = -1;
    std::string buffer_;
    bool eof_ = false;
};

/** Count lines beginning with @p prefix in a transcript. */
inline std::size_t
countPrefixed(const std::string &text, const std::string &prefix)
{
    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        if (text.compare(pos, prefix.size(), prefix) == 0)
            ++count;
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos)
            break;
        pos = newline + 1;
    }
    return count;
}

} // namespace ref::test

#endif // REF_TESTS_NET_TEST_UTIL_HH
