/**
 * @file
 * Adversarial binary framing: every malformed frame — oversized
 * declared length, CRC corruption, an undecodable payload, torn
 * bytes at EOF — draws exactly one framed ERR and never a
 * disconnect, mirroring the text transport's one-ERR-per-bad-line
 * contract. A seeded corruption storm then checks the accounting
 * closes exactly: N bad frames in, N ERR replies out, and the
 * connection still serves valid requests afterwards.
 */

#include <random>
#include <string>

#include "net_test_util.hh"
#include "repl/repl_protocol.hh"
#include "repl/replication_hub.hh"
#include "svc/wire.hh"
#include "util/crc32.hh"
#include "util/record_io.hh"

namespace ref::test {
namespace {

using svc::Command;
namespace wire = svc::wire;

std::string
statsFrame()
{
    Command stats;
    stats.op = Command::Op::Stats;
    return wire::encodeCommand(stats);
}

/** A frame whose CRC field is flipped; the payload itself is
 *  well-formed. */
std::string
corruptCrcFrame(const std::string &payload)
{
    std::string framed = frameRecord(payload);
    framed[4] ^= 0x5a;  // CRC is bytes [4, 8).
    return framed;
}

/** A header declaring @p length with no intention of honouring it. */
std::string
headerDeclaring(std::uint32_t length)
{
    ByteWriter writer;
    writer.u32(length);
    writer.u32(0xdeadbeef);
    return writer.take();
}

wire::Reply
expectReply(TestClient &client, int timeoutMs = 5000)
{
    std::string payload;
    EXPECT_TRUE(client.readFrameUnit(payload, timeoutMs));
    return wire::decodeReply(payload);
}

TEST(BinaryFuzz, CrcMismatchDrawsOneErrAndResyncs)
{
    ServerHarness harness;
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    client.sendAll(corruptCrcFrame(statsFrame()));
    const wire::Reply err = expectReply(client);
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);
    EXPECT_NE(err.text.find("CRC"), std::string::npos) << err.text;

    // The stream resynced past the bad frame: the next valid frame
    // is served normally.
    client.sendFrame(statsFrame());
    EXPECT_EQ(expectReply(client).status, wire::ReplyStatus::Ok);
    client.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.frames, 1u);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST(BinaryFuzz, OversizedFrameIsSwallowedWithoutAllocation)
{
    net::ServerOptions options;
    options.maxFrameBytes = 1024;
    ServerHarness harness({}, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    // Declare 1 MiB against a 1 KiB bound, then actually send that
    // many bytes: the server must reply one ERR immediately and
    // swallow the payload as it arrives (bounded memory), then serve
    // the next valid frame.
    const std::uint32_t declared = 1 << 20;
    client.sendAll(headerDeclaring(declared));
    const wire::Reply err = expectReply(client);
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);
    EXPECT_NE(err.text.find("byte bound"), std::string::npos)
        << err.text;
    client.sendAll(std::string(declared, 'x'));
    client.sendFrame(statsFrame());
    EXPECT_EQ(expectReply(client, 20000).status,
              wire::ReplyStatus::Ok);
    client.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST(BinaryFuzz, AbsurdLengthNeverDisconnects)
{
    net::ServerOptions options;
    options.maxFrameBytes = 4096;
    ServerHarness harness({}, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    // A ~4 GiB declaration: one ERR now; the discard counter covers
    // bytes that will never come, and a fresh header after a
    // *matching* amount of garbage would resync. Instead just
    // confirm the ERR and that the server neither allocated nor
    // dropped us (the connection dies by our close, not its).
    client.sendAll(headerDeclaring(0xfffffff0u));
    const wire::Reply err = expectReply(client);
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);
    client.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST(BinaryFuzz, UndecodablePayloadDrawsOneErr)
{
    ServerHarness harness;
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    // CRC-valid frames whose payloads are garbage to the command
    // decoder: unknown opcode, empty, truncated ADMIT.
    for (const std::string &payload :
         {std::string("\x7f", 1), std::string(),
          wire::encodeCommand([] {
              Command admit;
              admit.op = Command::Op::Admit;
              admit.name = "x";
              admit.elasticities = {0.5};
              return admit;
          }())
              .substr(0, 3)}) {
        client.sendFrame(payload);
        const wire::Reply err = expectReply(client);
        EXPECT_EQ(err.status, wire::ReplyStatus::Err);
        EXPECT_EQ(err.text.rfind("ERR", 0), 0u) << err.text;
    }
    client.sendFrame(statsFrame());
    EXPECT_EQ(expectReply(client).status, wire::ReplyStatus::Ok);
    client.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 3u);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST(BinaryFuzz, TornFrameAtEofDrawsOneErrThenCloses)
{
    ServerHarness harness;
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    // A frame header promising more than we ever send, then EOF:
    // the transport analogue of the journal's torn tail.
    const std::string whole = frameRecord(statsFrame());
    client.sendAll(
        std::string_view(whole).substr(0, whole.size() - 3));
    client.shutdownWrite();
    const wire::Reply err = expectReply(client);
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);
    EXPECT_NE(err.text.find("torn"), std::string::npos) << err.text;
    EXPECT_TRUE(client.waitForClose());
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
}

TEST(BinaryFuzz, SeededCorruptionStormAccountsExactly)
{
    net::ServerOptions options;
    options.maxFrameBytes = 8192;
    ServerHarness harness({}, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    std::mt19937_64 rng(99);
    std::size_t expectErr = 0;
    std::size_t expectOk = 0;
    std::size_t sent = 0;
    for (std::size_t i = 0; i < 200; ++i) {
        const std::string payload = statsFrame();
        switch (rng() % 4) {
        case 0: {  // Valid.
            client.sendAll(frameRecord(payload));
            ++expectOk;
            break;
        }
        case 1: {  // CRC flip.
            client.sendAll(corruptCrcFrame(payload));
            ++expectErr;
            break;
        }
        case 2: {  // Oversized, payload delivered in full.
            const std::uint32_t declared =
                8193 + static_cast<std::uint32_t>(rng() % 1000);
            client.sendAll(headerDeclaring(declared));
            client.sendAll(std::string(declared, 'z'));
            ++expectErr;
            break;
        }
        default: {  // CRC-valid garbage payload.
            std::string garbage(1 + rng() % 16, '\0');
            for (char &byte : garbage)
                byte = static_cast<char>(rng() & 0xff);
            // Opcode bytes that happen to be decodable are fine —
            // then the payload is either a valid command (OK/ERR by
            // semantics) or truncated (ERR). Force the undecodable
            // case with an opcode no Command uses.
            garbage[0] = '\x6e';
            client.sendAll(frameRecord(garbage));
            ++expectErr;
            break;
        }
        }
        ++sent;
        // Lock-step: one reply per unit keeps the storm and the
        // accounting in sync (and a hang here is a lost reply).
        const wire::Reply reply = expectReply(client, 20000);
        if (reply.status == wire::ReplyStatus::Err) {
            EXPECT_EQ(reply.text.rfind("ERR", 0), 0u);
        }
    }

    // Exact closure: every malformed unit drew one ERR, every valid
    // one an OK, nobody was disconnected.
    client.sendFrame(statsFrame());
    const wire::Reply last = expectReply(client);
    EXPECT_EQ(last.status, wire::ReplyStatus::Ok);
    client.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.frames, expectOk + 1);
    EXPECT_EQ(stats.badFrames, expectErr);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.protocol.errors, expectErr);
    EXPECT_EQ(sent, expectOk + expectErr);
}

// --- Replication (SYNC) channel -----------------------------------
//
// The WAL shipping stream rides the same CRC framing, so it owes the
// same adversarial contract: a torn or corrupt frame in either
// direction draws one ERR (or a clean drop that the follower's
// reconnect heals via snapshot) — never a silently divergent replica.

std::string
syncFrame(std::uint64_t streamId = 0, std::uint64_t seq = 0)
{
    Command sync;
    sync.op = Command::Op::Sync;
    sync.syncStreamId = streamId;
    sync.syncSeq = seq;
    return wire::encodeCommand(sync);
}

/** Next wire Reply, skipping interleaved replication frames (the
 *  primary may slot a heartbeat between our request and its answer). */
bool
nextReply(TestClient &client, wire::Reply &out, int timeoutMs = 5000)
{
    std::string payload;
    while (client.readFrameUnit(payload, timeoutMs)) {
        if (!repl::isReplMessage(payload)) {
            out = wire::decodeReply(payload);
            return true;
        }
    }
    return false;
}

/** Next replication frame of @p kind, skipping heartbeats and
 *  replies. */
bool
nextReplFrame(TestClient &client, repl::MessageKind kind,
              repl::ReplMessage &out, int timeoutMs = 5000)
{
    std::string payload;
    while (client.readFrameUnit(payload, timeoutMs)) {
        if (!repl::isReplMessage(payload))
            continue;
        out = repl::decodeReplMessage(payload);
        if (out.kind == kind)
            return true;
    }
    return false;
}

TEST(BinaryFuzz, TornSyncHelloDrawsOneErrThenCloses)
{
    repl::ReplicationHub hub;
    net::ServerOptions options;
    options.replicationHub = &hub;
    ServerHarness harness({}, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    // The subscription hello torn mid-frame, then EOF: the server
    // must answer the torn-tail ERR and never register a replica.
    const std::string whole = frameRecord(syncFrame());
    client.sendAll(
        std::string_view(whole).substr(0, whole.size() - 3));
    client.shutdownWrite();
    wire::Reply err;
    ASSERT_TRUE(nextReply(client, err));
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);
    EXPECT_NE(err.text.find("torn"), std::string::npos) << err.text;
    EXPECT_TRUE(client.waitForClose());
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.replicas, 0u);
}

TEST(BinaryFuzz, CorruptSyncHelloDrawsOneErrThenCleanSubscribe)
{
    repl::ReplicationHub hub;
    net::ServerOptions options;
    options.replicationHub = &hub;
    ServerHarness harness({}, options);
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    // CRC-flipped SYNC: one ERR, the channel survives.
    client.sendAll(corruptCrcFrame(syncFrame()));
    wire::Reply err;
    ASSERT_TRUE(nextReply(client, err));
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);
    EXPECT_NE(err.text.find("CRC"), std::string::npos) << err.text;

    // The retried SYNC subscribes cleanly: OK hello, then the full
    // snapshot (cursor 0 on a fresh stream always resyncs).
    client.sendFrame(syncFrame());
    wire::Reply ok;
    ASSERT_TRUE(nextReply(client, ok));
    EXPECT_EQ(ok.status, wire::ReplyStatus::Ok);
    EXPECT_NE(ok.text.find("sync"), std::string::npos) << ok.text;
    repl::ReplMessage snapshot;
    ASSERT_TRUE(nextReplFrame(client, repl::MessageKind::Snapshot,
                              snapshot));
    EXPECT_EQ(snapshot.streamId, hub.streamId());
    client.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.replicas, 1u);
}

TEST(BinaryFuzz, CorruptAckMidStreamKeepsRecordsFlowing)
{
    repl::ReplicationHub hub;
    net::ServerOptions options;
    options.replicationHub = &hub;
    options.heartbeatIntervalMs = 50;
    ServerHarness harness({}, options);
    harness.service().setReplicationSink(&hub);

    TestClient follower(harness.port());
    ASSERT_TRUE(follower.negotiateBinary());
    follower.sendFrame(syncFrame());
    wire::Reply ok;
    ASSERT_TRUE(nextReply(follower, ok));
    ASSERT_EQ(ok.status, wire::ReplyStatus::Ok);
    repl::ReplMessage snapshot;
    ASSERT_TRUE(nextReplFrame(follower, repl::MessageKind::Snapshot,
                              snapshot));

    // A CRC-corrupt Ack mid-stream: framing-level damage draws the
    // standard one ERR and the subscription stays live.
    repl::ReplMessage ack;
    ack.kind = repl::MessageKind::Ack;
    follower.sendAll(
        corruptCrcFrame(repl::encodeReplMessage(ack)));
    wire::Reply err;
    ASSERT_TRUE(nextReply(follower, err));
    EXPECT_EQ(err.status, wire::ReplyStatus::Err);

    // New WAL records still reach the surviving subscription.
    TestClient driver(harness.port());
    driver.sendAll("ADMIT web 1.0 0.4\nTICK 1\n");
    driver.readLines(2);
    repl::ReplMessage record;
    ASSERT_TRUE(nextReplFrame(follower, repl::MessageKind::Record,
                              record));
    EXPECT_GE(record.seq, 1u);

    follower.close();
    driver.close();
    harness.service().setReplicationSink(nullptr);
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.replicas, 1u);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST(BinaryFuzz, UndecodableReplicaFrameDropsThenResyncHeals)
{
    repl::ReplicationHub hub;
    net::ServerOptions options;
    options.replicationHub = &hub;
    ServerHarness harness({}, options);
    harness.service().setReplicationSink(&hub);

    TestClient broken(harness.port());
    ASSERT_TRUE(broken.negotiateBinary());
    broken.sendFrame(syncFrame());
    wire::Reply ok;
    ASSERT_TRUE(nextReply(broken, ok));
    ASSERT_EQ(ok.status, wire::ReplyStatus::Ok);

    // CRC-valid but not an Ack (a truncated Record kind byte): a
    // replica off-protocol is dropped — the reconnect path owns the
    // repair, so a lying peer can never feed the gauges garbage.
    broken.sendFrame(std::string("\x41", 1));
    EXPECT_TRUE(broken.waitForClose());

    // The drop healed, not hid: a fresh subscription resyncs from a
    // snapshot as if nothing happened.
    TestClient again(harness.port());
    ASSERT_TRUE(again.negotiateBinary());
    again.sendFrame(syncFrame());
    ASSERT_TRUE(nextReply(again, ok));
    EXPECT_EQ(ok.status, wire::ReplyStatus::Ok);
    repl::ReplMessage snapshot;
    ASSERT_TRUE(nextReplFrame(again, repl::MessageKind::Snapshot,
                              snapshot));
    again.close();
    harness.service().setReplicationSink(nullptr);
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.replicas, 2u);
}

} // namespace
} // namespace ref::test
