/**
 * Multi-client fan-in consistency: K concurrent TCP clients drive a
 * randomized ADMIT/UPDATE/DEPART churn + TICK sequence against one
 * server (lock-step, so the logical global command order is known),
 * then — after a drain barrier where every client's replies are
 * fully consumed — the final QUERY/PLAN output must be bit-identical
 * to a single-client stdio replay of the same logical sequence
 * through runSession(). The stdio replay runs with the incremental
 * self-check on, so this leans on the PR 2 ExactSum guarantee: the
 * fan-in path may not diverge from a from-scratch recompute by even
 * one bit.
 */

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net_test_util.hh"
#include "svc/protocol.hh"

namespace {

using namespace ref;

/** One logical command assigned to one client. */
struct Step
{
    std::size_t client;
    std::string line;
};

/** Seeded churn schedule: every step is a single-reply-line command
 *  (ADMIT/UPDATE/DEPART/TICK) so lock-step draining is exact. */
std::vector<Step>
generateSchedule(std::uint32_t seed, std::size_t clients,
                 std::size_t steps)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> elasticity(0.05, 4.0);
    std::vector<Step> schedule;
    std::vector<std::string> live;
    std::size_t nextId = 0;

    for (std::size_t i = 0; i < steps; ++i) {
        const std::size_t client = rng() % clients;
        std::ostringstream line;
        const int roll = static_cast<int>(rng() % 10);
        if (live.empty() || roll < 3) {
            const std::string name =
                "c" + std::to_string(client) + "w" +
                std::to_string(nextId++);
            line << "ADMIT " << name << " " << elasticity(rng)
                 << " " << elasticity(rng);
            live.push_back(name);
        } else if (roll < 5) {
            line << "UPDATE " << live[rng() % live.size()] << " "
                 << elasticity(rng) << " " << elasticity(rng);
        } else if (roll < 7 && live.size() > 1) {
            const std::size_t victim = rng() % live.size();
            line << "DEPART " << live[victim];
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        } else {
            line << "TICK";
        }
        schedule.push_back({client, line.str()});
    }
    // Settle on a final epoch so QUERY reflects every mutation.
    schedule.push_back({0, "TICK"});
    return schedule;
}

TEST(FanInConsistency, SocketChurnMatchesStdioReplayBitForBit)
{
    constexpr std::size_t kClients = 6;
    constexpr std::size_t kSteps = 400;
    const std::vector<Step> schedule =
        generateSchedule(/*seed=*/20140302u, kClients, kSteps);

    svc::ServiceConfig config;
    config.epoch.verifyIncremental = true;
    config.epoch.hysteresis = 0.02;  // Exercise hold + update.

    // --- Socket side: K connections, lock-step fan-in. ---
    std::string socketFinal;
    {
        test::ServerHarness harness(config);
        std::vector<std::unique_ptr<test::TestClient>> clients;
        for (std::size_t c = 0; c < kClients; ++c)
            clients.push_back(std::make_unique<test::TestClient>(
                harness.port()));

        for (const Step &step : schedule) {
            test::TestClient &client = *clients[step.client];
            client.sendAll(step.line + "\n");
            // Drain barrier per step: every command above replies
            // with exactly one line.
            const std::string reply = client.readLines(1);
            ASSERT_FALSE(reply.empty()) << step.line;
            ASSERT_EQ(reply.find("ERR "), std::string::npos)
                << step.line << " -> " << reply;
        }

        // Final state through a different client than most churn.
        test::TestClient &reader = *clients[kClients - 1];
        reader.sendAll("QUERY\nPLAN\nSHUTDOWN\n");
        socketFinal = reader.readToEof();
        for (auto &client : clients)
            client->close();
        harness.stop();
        EXPECT_EQ(harness.stats().protocol.errors, 0u);
        EXPECT_EQ(harness.stats().protocol.epochFailures, 0u);
    }

    // --- Stdio side: identical logical sequence, one session. ---
    std::string stdioFinal;
    {
        std::ostringstream script;
        for (const Step &step : schedule)
            script << step.line << "\n";
        script << "QUERY\nPLAN\nSHUTDOWN\n";

        svc::AllocationService service(config);
        std::istringstream in(script.str());
        std::ostringstream out;
        const auto result = svc::runSession(service, in, out);
        EXPECT_TRUE(result.clean());
        EXPECT_TRUE(result.shutdown);

        // Cut the transcript down to the final QUERY/PLAN/SHUTDOWN
        // block (everything after the last EPOCH reply).
        const std::string all = out.str();
        const std::size_t snapshot = all.rfind("SNAPSHOT epoch=");
        ASSERT_NE(snapshot, std::string::npos);
        stdioFinal = all.substr(snapshot);
    }

    ASSERT_FALSE(socketFinal.empty());
    EXPECT_EQ(socketFinal, stdioFinal);
}

} // namespace
