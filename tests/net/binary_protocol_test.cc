/**
 * @file
 * Binary transport behaviour: hello negotiation routes a connection
 * onto CRC32 framing without disturbing text clients, and — the
 * load-bearing property — a seeded command stream produces a
 * bit-identical reply transcript over text lines and binary frames,
 * so the binary path inherits the text protocol's entire test
 * surface.
 */

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "net_test_util.hh"
#include "svc/wire.hh"
#include "util/record_io.hh"

namespace ref::test {
namespace {

using svc::Command;
namespace wire = svc::wire;

/** Text rendering of a command, matching what a shell client types.
 *  Elasticities use one-decimal values so text parsing reproduces
 *  the binary doubles exactly. */
std::string
toLine(const Command &command)
{
    std::ostringstream line;
    switch (command.op) {
    case Command::Op::Admit:
    case Command::Op::Update:
        line << (command.op == Command::Op::Admit ? "ADMIT "
                                                  : "UPDATE ")
             << command.name;
        for (const double e : command.elasticities)
            line << " " << e;
        break;
    case Command::Op::Depart:
        line << "DEPART " << command.name;
        break;
    case Command::Op::Tick:
        line << "TICK " << command.tickCount;
        break;
    case Command::Op::Query:
        line << "QUERY";
        if (command.hasName)
            line << " " << command.name;
        break;
    case Command::Op::Plan:
        line << "PLAN";
        break;
    case Command::Op::Stats:
        line << "STATS";
        break;
    case Command::Op::Shutdown:
        line << "SHUTDOWN";
        break;
    case Command::Op::Metrics:
        line << "METRICS " << command.metricsFormat;
        break;
    case Command::Op::Sync:
        line << "SYNC " << command.syncStreamId << " "
             << command.syncSeq;
        break;
    case Command::Op::Promote:
        line << "PROMOTE";
        break;
    case Command::Op::Pool:
        line << "POOL ";
        switch (command.poolOp) {
        case Command::PoolOp::Create:
            line << "CREATE " << command.poolPath << " "
                 << command.poolWeight;
            break;
        case Command::PoolOp::Assign:
            line << "ASSIGN " << command.name << " "
                 << command.poolPath;
            break;
        case Command::PoolOp::Query:
            line << "QUERY";
            if (!command.poolPath.empty())
                line << " " << command.poolPath;
            break;
        }
        break;
    }
    line << "\n";
    return line.str();
}

/**
 * A seeded mixed script: churn, ticks, queries, plans, and deliberate
 * semantic errors (duplicate admits, unknown departs/queries,
 * out-of-range ticks) whose ERR text must also match across
 * framings.
 */
std::vector<Command>
makeScript(std::uint64_t seed, std::size_t ops)
{
    std::mt19937_64 rng(seed);
    std::vector<Command> script;
    std::vector<std::string> live;
    std::uint64_t admitted = 0;
    const auto oneDecimal = [&]() {
        return static_cast<double>(1 + rng() % 9) / 10.0;
    };
    for (std::size_t i = 0; i < ops; ++i) {
        Command command;
        switch (rng() % 10) {
        case 0:
        case 1:
        case 2: {
            command.op = Command::Op::Admit;
            command.name = "a" + std::to_string(admitted++);
            command.elasticities = {oneDecimal(), oneDecimal()};
            live.push_back(command.name);
            break;
        }
        case 3:
            command.op = Command::Op::Update;
            if (live.empty() || rng() % 4 == 0) {
                command.name = "ghost";  // ERR path.
            } else {
                command.name = live[rng() % live.size()];
            }
            command.elasticities = {oneDecimal(), oneDecimal()};
            break;
        case 4:
            command.op = Command::Op::Depart;
            if (live.empty() || rng() % 4 == 0) {
                command.name = "ghost";  // ERR path.
            } else {
                const std::size_t victim = rng() % live.size();
                command.name = live[victim];
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(victim));
            }
            break;
        case 5:
        case 6:
            command.op = Command::Op::Tick;
            command.tickCount = 1 + rng() % 3;
            break;
        case 7:
            command.op = Command::Op::Query;
            if (!live.empty() && rng() % 2 == 0) {
                command.hasName = true;
                command.name = live[rng() % live.size()];
            }
            break;
        case 8:
            command.op = Command::Op::Plan;
            break;
        default:
            command.op = Command::Op::Tick;
            command.tickCount = svc::kMaxTickCount + 1;  // ERR path.
            break;
        }
        script.push_back(std::move(command));
    }
    return script;
}

/**
 * A pooled variant: the flat mix plus POOL CREATE / ASSIGN / QUERY
 * traffic, ghost assigns and weight conflicts included, so the
 * transcript-equality property covers the whole pool grammar.
 */
std::vector<Command>
makePooledScript(std::uint64_t seed, std::size_t ops)
{
    std::mt19937_64 rng(seed);
    std::vector<Command> base = makeScript(seed, ops);
    std::vector<Command> script;
    std::size_t pools = 0;
    for (Command &command : base) {
        if (rng() % 4 == 0) {
            Command pool;
            pool.op = Command::Op::Pool;
            switch (rng() % 3) {
            case 0:
                pool.poolOp = Command::PoolOp::Create;
                if (pools > 0 && rng() % 4 == 0) {
                    // Re-create with a conflicting weight: ERR path.
                    pool.poolPath = "p0";
                    pool.poolWeight = 7.0;
                } else {
                    pool.poolPath =
                        "p" + std::to_string(pools++);
                    pool.poolWeight = 1.0;
                }
                break;
            case 1:
                pool.poolOp = Command::PoolOp::Assign;
                // The agent may be live, departed, or never admitted;
                // ghost pools too. All four outcomes must match.
                pool.name = "a" + std::to_string(rng() % (ops / 2));
                pool.poolPath =
                    pools > 0 && rng() % 3 != 0
                        ? "p" + std::to_string(rng() % pools)
                        : "ghost";
                break;
            default:
                pool.poolOp = Command::PoolOp::Query;
                if (pools > 0 && rng() % 2 == 0)
                    pool.poolPath =
                        "p" + std::to_string(rng() % pools);
                break;
            }
            script.push_back(std::move(pool));
        }
        if (command.op == Command::Op::Plan)
            command.op = Command::Op::Query;  // No pooled PLAN.
        script.push_back(std::move(command));
    }
    return script;
}

svc::ServiceConfig
pooledConfig()
{
    svc::ServiceConfig config;
    config.pooled = true;
    config.buildEnforcement = false;
    return config;
}

/** Run the script over a text connection; the full reply transcript
 *  (server closes after SHUTDOWN). */
std::string
runText(const std::vector<Command> &script,
        svc::ServiceConfig config = {})
{
    ServerHarness harness(config);
    TestClient client(harness.port());
    std::string lines;
    for (const Command &command : script)
        lines += toLine(command);
    lines += "SHUTDOWN\n";
    client.sendAll(lines);
    const std::string transcript = client.readToEof(20000);
    harness.stop();
    return transcript;
}

/** Run the script over a binary connection; the concatenation of
 *  every reply frame's text. */
std::string
runBinary(const std::vector<Command> &script,
          std::vector<wire::ReplyStatus> *statuses = nullptr,
          svc::ServiceConfig config = {})
{
    ServerHarness harness(config);
    TestClient client(harness.port());
    EXPECT_TRUE(client.negotiateBinary());
    for (const Command &command : script)
        client.sendFrame(wire::encodeCommand(command));
    Command shutdown;
    shutdown.op = Command::Op::Shutdown;
    client.sendFrame(wire::encodeCommand(shutdown));

    std::string transcript;
    std::string payload;
    for (std::size_t i = 0; i <= script.size(); ++i) {
        EXPECT_TRUE(client.readFrameUnit(payload, 20000))
            << "missing reply frame " << i;
        const wire::Reply reply = wire::decodeReply(payload);
        transcript += reply.text;
        if (statuses)
            statuses->push_back(reply.status);
    }
    EXPECT_TRUE(client.waitForClose(10000));
    harness.stop();
    return transcript;
}

TEST(BinaryProtocol, HelloNegotiationAcksAndServesFrames)
{
    ServerHarness harness;
    TestClient client(harness.port());
    ASSERT_TRUE(client.negotiateBinary());

    Command stats;
    stats.op = Command::Op::Stats;
    client.sendFrame(wire::encodeCommand(stats));
    std::string payload;
    ASSERT_TRUE(client.readFrameUnit(payload));
    const wire::Reply reply = wire::decodeReply(payload);
    EXPECT_EQ(reply.status, wire::ReplyStatus::Ok);
    EXPECT_NE(reply.text.find("admits="), std::string::npos);
    client.close();
    const net::ServerStats &stats2 = harness.stop();
    EXPECT_EQ(stats2.binaryConnections, 1u);
    EXPECT_EQ(stats2.frames, 1u);
}

TEST(BinaryProtocol, TextClientsAreUntouchedBySniffing)
{
    ServerHarness harness;
    // A text client whose first bytes share nothing with the magic,
    // and one whose first byte alone would be ambiguous if the magic
    // did not start with NUL.
    TestClient text(harness.port());
    text.sendAll("STATS\n");
    EXPECT_NE(text.readLines(1).find("admits="),
              std::string::npos);

    // A split write: the sniff must not eat or delay text bytes.
    TestClient split(harness.port());
    split.sendAll("STA");
    split.sendAll("TS\n");
    EXPECT_NE(split.readLines(1).find("admits="),
              std::string::npos);
    text.close();
    split.close();
    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.binaryConnections, 0u);
}

TEST(BinaryProtocol, HelloSplitAcrossWritesStillNegotiates)
{
    ServerHarness harness;
    TestClient client(harness.port());
    const std::string_view magic = wire::helloMagic();
    client.sendAll(magic.substr(0, 3));
    client.sendAll(magic.substr(3));
    std::string payload;
    ASSERT_TRUE(client.readFrameUnit(payload));
    EXPECT_EQ(wire::decodeReply(payload).status,
              wire::ReplyStatus::Hello);
}

TEST(BinaryProtocol, DisabledBinaryTreatsMagicAsText)
{
    net::ServerOptions options;
    options.enableBinary = false;
    ServerHarness harness({}, options);
    TestClient client(harness.port());
    client.sendAll(std::string(wire::helloMagic()) + "\n");
    // The magic bytes are garbage as a text line: one ERR, no ack.
    const std::string reply = client.readLines(1);
    EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
}

TEST(BinaryProtocol, SeededTranscriptsAreBitIdenticalAcrossFramings)
{
    const std::vector<Command> script = makeScript(1234, 120);
    std::vector<wire::ReplyStatus> statuses;
    const std::string text = runText(script);
    const std::string binary = runBinary(script, &statuses);
    // The whole point of the reply-payload design: byte equality of
    // the full transcript, ERR lines and all.
    ASSERT_EQ(text, binary);
    EXPECT_EQ(statuses.back(), wire::ReplyStatus::Shutdown);
    // The script plants deliberate ERRs; both framings saw them (in
    // the same places, by transcript equality — just confirm some
    // exist so the ERR path was actually exercised).
    std::size_t errs = 0;
    for (const wire::ReplyStatus status : statuses)
        if (status == wire::ReplyStatus::Err)
            ++errs;
    EXPECT_GT(errs, 0u);
    EXPECT_EQ(errs, countPrefixed(text, "ERR"));
}

TEST(BinaryProtocol, PooledSeededTranscriptsMatchAcrossFramings)
{
    const std::vector<Command> script = makePooledScript(77, 120);
    std::vector<wire::ReplyStatus> statuses;
    const std::string text = runText(script, pooledConfig());
    const std::string binary =
        runBinary(script, &statuses, pooledConfig());
    ASSERT_EQ(text, binary);
    // The pool grammar was actually exercised, happy and ERR paths.
    EXPECT_NE(text.find("OK pool "), std::string::npos);
    EXPECT_NE(text.find("POOLS count="), std::string::npos);
    EXPECT_GT(countPrefixed(text, "ERR"), 0u);
}

TEST(BinaryProtocol, MixedClientsShareOneService)
{
    ServerHarness harness;
    TestClient binary(harness.port());
    ASSERT_TRUE(binary.negotiateBinary());
    TestClient text(harness.port());

    Command admit;
    admit.op = Command::Op::Admit;
    admit.name = "shared";
    admit.elasticities = {0.6, 0.4};
    binary.sendFrame(wire::encodeCommand(admit));
    std::string payload;
    ASSERT_TRUE(binary.readFrameUnit(payload));
    EXPECT_EQ(wire::decodeReply(payload).status,
              wire::ReplyStatus::Ok);

    // A tick folds the admit into the epoch snapshot...
    Command tick;
    tick.op = Command::Op::Tick;
    tick.tickCount = 1;
    binary.sendFrame(wire::encodeCommand(tick));
    ASSERT_TRUE(binary.readFrameUnit(payload));
    EXPECT_EQ(wire::decodeReply(payload).status,
              wire::ReplyStatus::Ok);

    // ...so the text client sees the agent the binary one admitted.
    text.sendAll("QUERY shared\n");
    const std::string reply = text.readLines(1);
    EXPECT_EQ(reply.rfind("SHARE shared", 0), 0u) << reply;

    // SHUTDOWN over binary stops the server for everyone.
    Command shutdown;
    shutdown.op = Command::Op::Shutdown;
    binary.sendFrame(wire::encodeCommand(shutdown));
    ASSERT_TRUE(binary.readFrameUnit(payload));
    EXPECT_EQ(wire::decodeReply(payload).status,
              wire::ReplyStatus::Shutdown);
    EXPECT_TRUE(binary.waitForClose());
    EXPECT_TRUE(text.waitForClose());
    const net::ServerStats &stats = harness.stop();
    EXPECT_TRUE(stats.shutdown);
    EXPECT_EQ(stats.binaryConnections, 1u);
}

} // namespace
} // namespace ref::test
