/**
 * Adversarial protocol fuzzing against a live socket server: a
 * seeded deterministic client replays malformed framing — oversized
 * lines beyond the bound, NUL / CR-LF / split-UTF-8 bytes, commands
 * split across many 1-byte writes, garbage between valid commands —
 * and asserts the server's contract: exactly one ERR per bad line,
 * no disconnect of the fuzzed client or of an innocent bystander,
 * and a byte-identical transcript across two runs of the same seed.
 */

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net_test_util.hh"

namespace {

using namespace ref;

constexpr std::size_t kLineBound = 512;

/** One generated session: the raw byte stream plus the reply-line
 *  bookkeeping needed to read it back deterministically. */
struct FuzzScript
{
    std::string bytes;
    std::size_t replyLines = 0;  //!< Total lines the server owes.
    std::size_t badLines = 0;    //!< Lines owed exactly one ERR.
    std::size_t goodLines = 0;   //!< Valid commands (OK/EPOCH).
};

/** Deterministic malformed-session generator. Every event appends
 *  one line (possibly overlong, possibly CRLF-terminated) and
 *  records how many reply lines it earns. */
FuzzScript
generateScript(std::uint32_t seed, std::size_t events)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> elasticity(0.05, 4.0);
    FuzzScript script;
    std::vector<std::string> live;
    std::size_t nextId = 0;

    const auto lineEnd = [&]() {
        return rng() % 4 == 0 ? "\r\n" : "\n";
    };

    for (std::size_t i = 0; i < events; ++i) {
        // The first event admits so TICKs always have an agent.
        const int roll = i == 0 ? 0 : static_cast<int>(rng() % 10);
        std::ostringstream line;
        switch (roll) {
        case 0:
        case 1: {  // Valid ADMIT.
            const std::string name = "f" + std::to_string(nextId++);
            line << "ADMIT " << name << " " << elasticity(rng)
                 << " " << elasticity(rng);
            live.push_back(name);
            ++script.goodLines;
            ++script.replyLines;
            break;
        }
        case 2: {  // Valid TICK.
            line << "TICK";
            ++script.goodLines;
            ++script.replyLines;
            break;
        }
        case 3: {  // Valid DEPART (keep at least one live agent).
            if (live.size() > 1) {
                const std::size_t victim = rng() % live.size();
                line << "DEPART " << live[victim];
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(victim));
            } else {
                line << "TICK";
            }
            ++script.goodLines;
            ++script.replyLines;
            break;
        }
        case 4: {  // Comment / blank noise: no reply owed.
            line << (rng() % 2 == 0 ? "# noise" : "");
            break;
        }
        case 5: {  // Bad elasticities (inf / overflow / trailing junk).
            static const char *kBad[] = {"inf", "1e999", "0.x4",
                                         "nan"};
            line << "ADMIT cheat " << kBad[rng() % 4] << " 0.4";
            ++script.badLines;
            ++script.replyLines;
            break;
        }
        case 6: {  // Binary garbage: NULs and a split-up UTF-8 pair.
            line << "@@";
            const std::size_t len = 1 + rng() % 12;
            for (std::size_t b = 0; b < len; ++b) {
                switch (rng() % 4) {
                case 0: line << '\0'; break;
                case 1: line << "\xE2\x82"; break;  // Truncated '€'.
                case 2: line << static_cast<char>('a' + rng() % 26);
                        break;
                default: line << ' '; break;
                }
            }
            ++script.badLines;
            ++script.replyLines;
            break;
        }
        case 7: {  // Oversized line: one ERR, bound enforced.
            line << "@@";
            const std::size_t len = kLineBound + 1 + rng() % 512;
            for (std::size_t b = 0; b < len; ++b)
                line << static_cast<char>('A' + rng() % 26);
            ++script.badLines;
            ++script.replyLines;
            break;
        }
        default: {  // Unknown command / usage errors.
            static const char *kJunk[] = {"FROB a b", "TICK 0",
                                          "QUERY nobody",
                                          "ADMIT lonely"};
            line << kJunk[rng() % 4];
            ++script.badLines;
            ++script.replyLines;
            break;
        }
        }
        script.bytes += line.str();
        script.bytes += lineEnd();
    }
    return script;
}

/** Drive one fuzz session; returns the fuzzed client's transcript. */
std::string
runFuzzSession(std::uint32_t seed, const FuzzScript &script)
{
    svc::ServiceConfig config;
    config.epoch.verifyIncremental = true;
    net::ServerOptions options;
    options.maxLineBytes = kLineBound;
    test::ServerHarness harness(config, options);

    test::TestClient bystander(harness.port());
    test::TestClient fuzzer(harness.port());

    // Replay the byte stream in adversarial chunkings: often 1-byte
    // writes (commands split across many packets), sometimes large
    // bursts — seeded, so both runs chunk identically.
    std::mt19937 rng(seed ^ 0x9e3779b9u);
    std::size_t sent = 0;
    while (sent < script.bytes.size()) {
        std::size_t chunk;
        switch (rng() % 4) {
        case 0: chunk = 1; break;
        case 1: chunk = 1 + rng() % 7; break;
        default: chunk = 1 + rng() % 512; break;
        }
        chunk = std::min(chunk, script.bytes.size() - sent);
        fuzzer.sendAll(
            std::string_view(script.bytes).substr(sent, chunk));
        sent += chunk;
    }

    const std::string transcript =
        fuzzer.readLines(script.replyLines, 20000);
    // No reply may follow the owed ones (one ERR per bad line, not
    // several).
    EXPECT_EQ(fuzzer.readLines(1, 150), "");

    // The bystander's session must be untouched by the abuse.
    bystander.sendAll("ADMIT innocent 0.5 0.5\nTICK\n");
    const std::string bystanderReply = bystander.readLines(2);
    EXPECT_NE(bystanderReply.find("OK admitted innocent"),
              std::string::npos);
    EXPECT_NE(bystanderReply.find("selfcheck=ok"),
              std::string::npos);

    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.dropped, 0u) << "fuzzing must never disconnect";
    EXPECT_EQ(stats.overlongLines,
              test::countPrefixed(transcript,
                                  "ERR line exceeds"));
    return transcript;
}

TEST(AdversarialClient, OneErrPerBadLineAndNoDisconnect)
{
    const FuzzScript script = generateScript(20140301u, 220);
    const std::string transcript =
        runFuzzSession(20140301u, script);

    EXPECT_EQ(test::countPrefixed(transcript, "ERR "),
              script.badLines);
    EXPECT_EQ(test::countPrefixed(transcript, "OK ") +
                  test::countPrefixed(transcript, "EPOCH "),
              script.goodLines);
}

TEST(AdversarialClient, TranscriptIsByteIdenticalAcrossRuns)
{
    const std::uint32_t seed = 77003917u;
    const FuzzScript script = generateScript(seed, 180);
    const std::string first = runFuzzSession(seed, script);
    const std::string second = runFuzzSession(seed, script);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

// A command sliced into nothing but 1-byte writes still parses, and
// an overlong line draws its single ERR even when the bytes arrive
// one at a time with garbage on both sides.
TEST(AdversarialClient, OneByteWritesAndOversizedLine)
{
    net::ServerOptions options;
    options.maxLineBytes = 64;
    test::ServerHarness harness({}, options);
    test::TestClient client(harness.port());

    std::string bytes = "@@pre-garbage\nADMIT solo 0.6 0.4\n";
    bytes += std::string(300, 'X');  // Way past the 64-byte bound.
    bytes += "\nTICK\n@@post\n";
    for (char byte : bytes)
        client.sendAll(std::string_view(&byte, 1));

    const std::string transcript = client.readLines(5);
    const std::vector<std::string> expectedStarts = {
        "ERR ", "OK admitted solo", "ERR line exceeds 64",
        "EPOCH 1", "ERR "};
    std::istringstream lines(transcript);
    std::string line;
    for (const std::string &expected : expectedStarts) {
        ASSERT_TRUE(std::getline(lines, line)) << transcript;
        EXPECT_EQ(line.substr(0, expected.size()), expected)
            << transcript;
    }
    EXPECT_EQ(client.readLines(1, 150), "");

    const net::ServerStats &stats = harness.stop();
    EXPECT_EQ(stats.overlongLines, 1u);
    EXPECT_EQ(stats.dropped, 0u);
}

} // namespace
