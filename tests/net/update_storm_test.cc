/**
 * @file
 * Mid-epoch UPDATE storms: several connections (text and binary)
 * blast interleaved, unsynchronized re-reports — valid, invalid, and
 * repeated — while a separate connection keeps ticking epochs. The
 * server must answer every line, keep the incremental allocation
 * bit-identical to the from-scratch recompute (selfcheck=ok on every
 * EPOCH), and never violate SI/EF: fairness holds for the *reported*
 * profile no matter how chaotically reports churn between ticks.
 * This is the storm the strategic fleet (src/adv) creates on
 * purpose, driven here to far nastier interleavings.
 */

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net_test_util.hh"
#include "net/sharded_server.hh"
#include "svc/protocol.hh"

namespace {

using namespace ref;

/** ServerHarness analogue for ShardedServer with a ServiceConfig. */
class ShardedHarness
{
  public:
    ShardedHarness(svc::ServiceConfig config, std::size_t shards)
        : service_(config)
    {
        net::ServerOptions options;
        options.listenAddress = "127.0.0.1:0";
        server_ = std::make_unique<net::ShardedServer>(
            service_, options, shards);
        server_->start();
        thread_ = std::thread([this] { server_->run(); });
    }

    ~ShardedHarness()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
    }

    std::uint16_t port() const { return server_->tcpPort(); }
    svc::AllocationService &service() { return service_; }

  private:
    svc::AllocationService service_;
    std::unique_ptr<net::ShardedServer> server_;
    std::thread thread_;
};

constexpr std::size_t kAgents = 12;
constexpr std::size_t kRounds = 12;
constexpr std::size_t kBurst = 8;  //!< UPDATEs per client per round.

std::string
agentName(std::size_t index)
{
    return "storm" + std::to_string(index);
}

/** One storm connection's burst for one round: the raw text lines
 *  and how many replies they earn. */
struct Burst
{
    std::vector<std::string> lines;
    std::size_t badLines = 0;
};

Burst
makeBurst(std::mt19937 &rng)
{
    std::uniform_real_distribution<double> elasticity(0.05, 4.0);
    Burst burst;
    for (std::size_t i = 0; i < kBurst; ++i) {
        const std::size_t agent = rng() % kAgents;
        std::ostringstream line;
        switch (rng() % 8) {
        case 0: {  // Invalid elasticity: one ERR, no state change.
            static const char *kBad[] = {"inf", "nan", "-1", "0",
                                         "1e999"};
            line << "UPDATE " << agentName(agent) << " "
                 << kBad[rng() % 5] << " 0.4";
            ++burst.badLines;
            break;
        }
        case 1: {  // Unknown agent: one ERR.
            line << "UPDATE ghost" << rng() % 100 << " 0.5 0.5";
            ++burst.badLines;
            break;
        }
        case 2: {  // Wrong arity: one ERR.
            line << "UPDATE " << agentName(agent) << " 0.5";
            ++burst.badLines;
            break;
        }
        default: {  // Valid re-report.
            line << "UPDATE " << agentName(agent) << " "
                 << elasticity(rng) << " " << elasticity(rng);
            break;
        }
        }
        burst.lines.push_back(line.str());
    }
    return burst;
}

TEST(UpdateStorm, NeverTripsSelfCheckOrFairness)
{
    svc::ServiceConfig config;
    config.epoch.verifyIncremental = true;
    ASSERT_TRUE(config.epoch.checkProperties);
    test::ServerHarness harness(config);

    test::TestClient control(harness.port());
    {
        std::string admits;
        for (std::size_t i = 0; i < kAgents; ++i)
            admits += "ADMIT " + agentName(i) + " 0.6 0.4\n";
        control.sendAll(admits);
        const std::string replies =
            control.readLines(kAgents);
        EXPECT_EQ(test::countPrefixed(replies, "OK admitted"),
                  kAgents);
    }

    // Three text stormers plus one binary one, all re-reporting the
    // same agents: the server's view of an agent is whatever UPDATE
    // it processed last, and the selfcheck must agree regardless.
    constexpr std::size_t kTextClients = 3;
    std::vector<std::unique_ptr<test::TestClient>> stormers;
    for (std::size_t c = 0; c < kTextClients; ++c)
        stormers.push_back(
            std::make_unique<test::TestClient>(harness.port()));
    test::TestClient binaryStormer(harness.port());
    ASSERT_TRUE(binaryStormer.negotiateBinary());

    std::mt19937 rng(20260808);
    std::uniform_real_distribution<double> elasticity(0.05, 4.0);
    std::size_t totalBad = 0;
    std::size_t totalErrs = 0;

    for (std::size_t round = 0; round < kRounds; ++round) {
        // 1. Every stormer's whole burst goes out before any reply
        // is read — the server sees the writes genuinely interleaved
        // across connections, mid-epoch.
        std::vector<Burst> bursts;
        for (std::size_t c = 0; c < kTextClients; ++c) {
            bursts.push_back(makeBurst(rng));
            std::string wire;
            for (const std::string &line : bursts[c].lines)
                wire += line + "\n";
            stormers[c]->sendAll(wire);
        }
        std::vector<std::string> binaryUpdates;
        for (std::size_t i = 0; i < kBurst; ++i) {
            svc::Command update;
            update.op = svc::Command::Op::Update;
            update.name = agentName(rng() % kAgents);
            update.elasticities = {elasticity(rng),
                                   elasticity(rng)};
            binaryUpdates.push_back(
                svc::wire::encodeCommand(update));
        }
        for (const std::string &payload : binaryUpdates)
            binaryStormer.sendFrame(payload);

        // 2. Tick while the bursts are still in flight.
        control.sendAll("TICK\n");

        // 3. Drain: every line earns exactly one reply, ERRs only
        // for the malformed ones, and the epoch must be clean.
        for (std::size_t c = 0; c < kTextClients; ++c) {
            const std::string replies =
                stormers[c]->readLines(bursts[c].lines.size());
            ASSERT_FALSE(replies.empty()) << "round " << round;
            const std::size_t errs =
                test::countPrefixed(replies, "ERR ");
            EXPECT_EQ(errs, bursts[c].badLines)
                << "round " << round << " client " << c;
            totalBad += bursts[c].badLines;
            totalErrs += errs;
        }
        for (std::size_t i = 0; i < binaryUpdates.size(); ++i) {
            std::string payload;
            ASSERT_TRUE(binaryStormer.readFrameUnit(payload));
            const auto reply = svc::wire::decodeReply(payload);
            EXPECT_EQ(reply.status, svc::wire::ReplyStatus::Ok)
                << reply.text;
        }
        const std::string epoch = control.readLines(1);
        ASSERT_EQ(test::countPrefixed(epoch, "EPOCH "), 1u)
            << epoch;
        EXPECT_NE(epoch.find(" si=ok"), std::string::npos) << epoch;
        EXPECT_NE(epoch.find(" ef=ok"), std::string::npos) << epoch;
        EXPECT_NE(epoch.find("selfcheck=ok"), std::string::npos)
            << epoch;
    }

    EXPECT_GT(totalBad, 0u);  // The generator did fuzz something.
    EXPECT_EQ(totalErrs, totalBad);
    const auto metrics = harness.service().metrics();
    EXPECT_EQ(metrics.selfCheckFailures, 0u);
    EXPECT_EQ(metrics.epochs, kRounds);
}

/**
 * The same storm with bursts racing a TICK *between* every frame on
 * a sharded server: shard threads interleave at frame granularity,
 * and two identical-seed runs must land on identical share vectors
 * (order independence is what makes the fleet experiment
 * reproducible on sharded servers).
 */
TEST(UpdateStorm, ShardedStormConvergesToOrderIndependentShares)
{
    const auto runOnce = [](std::size_t shards) {
        svc::ServiceConfig config;
        config.epoch.verifyIncremental = true;
        ShardedHarness harness(config, shards);

        test::TestClient control(harness.port());
        std::string admits;
        for (std::size_t i = 0; i < kAgents; ++i)
            admits += "ADMIT " + agentName(i) + " 0.6 0.4\n";
        control.sendAll(admits);
        EXPECT_EQ(test::countPrefixed(control.readLines(kAgents),
                                      "OK admitted"),
                  kAgents);

        // One connection per agent so every shard sees traffic.
        std::vector<std::unique_ptr<test::TestClient>> conns;
        for (std::size_t i = 0; i < kAgents; ++i)
            conns.push_back(std::make_unique<test::TestClient>(
                harness.port()));
        std::mt19937 rng(7);
        std::uniform_real_distribution<double> elasticity(0.05,
                                                          4.0);
        for (std::size_t round = 0; round < 6; ++round) {
            // The same final per-agent report regardless of shard
            // interleaving: each agent's last write is on its own
            // connection, so last-write-wins is per-agent ordered.
            for (std::size_t i = 0; i < kAgents; ++i) {
                std::ostringstream line;
                line << "UPDATE " << agentName(i) << " "
                     << elasticity(rng) << " " << elasticity(rng)
                     << "\n";
                conns[i]->sendAll(line.str());
            }
            for (std::size_t i = 0; i < kAgents; ++i)
                EXPECT_EQ(test::countPrefixed(
                              conns[i]->readLines(1), "OK updated"),
                          1u);
            control.sendAll("TICK\n");
            const std::string epoch = control.readLines(1);
            EXPECT_NE(epoch.find("selfcheck=ok"),
                      std::string::npos)
                << epoch;
        }
        control.sendAll("QUERY\n");
        const std::string shares = control.readLines(kAgents);
        EXPECT_EQ(harness.service().metrics().selfCheckFailures,
                  0u);
        return shares;
    };

    const std::string oneShard = runOnce(1);
    const std::string fourShards = runOnce(4);
    ASSERT_FALSE(oneShard.empty());
    EXPECT_EQ(oneShard, fourShards);
}

} // namespace
