/**
 * @file
 * Multi-shard front-end: N SO_REUSEPORT event loops over one
 * service. Checks the structural contract (all shards share one
 * port, connections land somewhere, per-connection ordering holds,
 * state is shared), the shutdown fan-out (SHUTDOWN on whichever
 * shard stops them all), aggregate accounting, and the {shard="i"}
 * metric labelling.
 */

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net_test_util.hh"
#include "net/sharded_server.hh"
#include "obs/metrics.hh"
#include "svc/wire.hh"
#include "util/logging.hh"

namespace ref::test {
namespace {

namespace wire = svc::wire;

/** ServerHarness analogue for ShardedServer. */
class ShardedHarness
{
  public:
    explicit ShardedHarness(std::size_t shards,
                            net::ServerOptions options = {})
        : service_(svc::ServiceConfig{})
    {
        if (options.listenAddress.empty())
            options.listenAddress = "127.0.0.1:0";
        server_ = std::make_unique<net::ShardedServer>(
            service_, options, shards);
        server_->start();
        thread_ = std::thread([this] { stats_ = server_->run(); });
    }

    ~ShardedHarness() { stop(); }

    std::uint16_t port() const { return server_->tcpPort(); }

    const net::ShardedStats &stop()
    {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
        return stats_;
    }

  private:
    svc::AllocationService service_;
    std::unique_ptr<net::ShardedServer> server_;
    std::thread thread_;
    net::ShardedStats stats_;
};

TEST(ShardedServer, SingleShardDegeneratesToClassicServer)
{
    ShardedHarness harness(1);
    TestClient client(harness.port());
    client.sendAll("ADMIT solo 0.6 0.4\nSHUTDOWN\n");
    const std::string transcript = client.readToEof();
    EXPECT_NE(transcript.find("OK admitted solo"),
              std::string::npos);
    EXPECT_NE(transcript.find("OK shutdown"), std::string::npos);
    const net::ShardedStats &stats = harness.stop();
    ASSERT_EQ(stats.shards.size(), 1u);
    EXPECT_TRUE(stats.total.shutdown);
    EXPECT_EQ(stats.total.accepted, 1u);
}

TEST(ShardedServer, ClientsShareOneServiceAcrossShards)
{
    ShardedHarness harness(3);
    // Enough connections that SO_REUSEPORT scatters them; each
    // admits its own agent, then every client must see every agent.
    constexpr std::size_t kClients = 12;
    std::vector<std::unique_ptr<TestClient>> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
        clients.push_back(
            std::make_unique<TestClient>(harness.port()));
        std::ostringstream admit;
        admit << "ADMIT agent" << i << " 0.6 0.4\n";
        clients.back()->sendAll(admit.str());
        const std::string reply = clients.back()->readLines(1);
        ASSERT_EQ(reply.rfind("OK admitted", 0), 0u) << reply;
    }
    // One tick folds every admit into the epoch snapshot all
    // clients query below.
    clients.front()->sendAll("TICK\n");
    ASSERT_EQ(clients.front()->readLines(1).rfind("EPOCH", 0), 0u);
    for (auto &client : clients) {
        client->sendAll("QUERY\n");
        const std::string snapshot =
            client->readLines(1 + kClients);
        EXPECT_EQ(countPrefixed(snapshot, "SHARE "), kClients);
    }
    clients.clear();
    const net::ShardedStats &stats = harness.stop();
    ASSERT_EQ(stats.shards.size(), 3u);
    EXPECT_EQ(stats.total.accepted, kClients);
    std::uint64_t sum = 0;
    for (const net::ServerStats &shard : stats.shards)
        sum += shard.accepted;
    EXPECT_EQ(sum, kClients);
}

TEST(ShardedServer, ShutdownOnAnyShardStopsAll)
{
    ShardedHarness harness(2);
    // Several open connections (scattered over both shards by the
    // kernel), one of which sends SHUTDOWN: every peer must see its
    // connection drain and close, and the run must end without
    // requestStop.
    std::vector<std::unique_ptr<TestClient>> idle;
    for (std::size_t i = 0; i < 6; ++i) {
        idle.push_back(std::make_unique<TestClient>(harness.port()));
        idle.back()->sendAll("STATS\n");
        ASSERT_FALSE(idle.back()->readLines(1).empty());
    }
    TestClient killer(harness.port());
    killer.sendAll("SHUTDOWN\n");
    EXPECT_NE(killer.readLines(1).find("OK shutdown"),
              std::string::npos);
    EXPECT_TRUE(killer.waitForClose());
    for (auto &client : idle)
        EXPECT_TRUE(client->waitForClose());
    const net::ShardedStats &stats = harness.stop();
    EXPECT_TRUE(stats.total.shutdown);
    EXPECT_EQ(stats.total.accepted, 7u);
}

TEST(ShardedServer, BinaryAndTextMixAcrossShards)
{
    ShardedHarness harness(2);
    TestClient binary(harness.port());
    ASSERT_TRUE(binary.negotiateBinary());
    TestClient text(harness.port());

    svc::Command admit;
    admit.op = svc::Command::Op::Admit;
    admit.name = "mixed";
    admit.elasticities = {0.5, 0.5};
    binary.sendFrame(wire::encodeCommand(admit));
    std::string payload;
    ASSERT_TRUE(binary.readFrameUnit(payload));
    EXPECT_EQ(wire::decodeReply(payload).status,
              wire::ReplyStatus::Ok);

    svc::Command tick;
    tick.op = svc::Command::Op::Tick;
    tick.tickCount = 1;
    binary.sendFrame(wire::encodeCommand(tick));
    ASSERT_TRUE(binary.readFrameUnit(payload));

    text.sendAll("QUERY mixed\n");
    EXPECT_EQ(text.readLines(1).rfind("SHARE mixed", 0), 0u);

    binary.close();
    text.close();
    const net::ShardedStats &stats = harness.stop();
    EXPECT_EQ(stats.total.binaryConnections, 1u);
    EXPECT_EQ(stats.total.frames, 2u);
}

TEST(ShardedServer, ShardsLabelTheirMetricSeries)
{
    {
        ShardedHarness harness(2);
        TestClient client(harness.port());
        client.sendAll("STATS\n");
        ASSERT_FALSE(client.readLines(1).empty());
    }
    std::ostringstream scrape;
    obs::MetricsRegistry::global().writePrometheus(scrape);
    const std::string text = scrape.str();
    // Per-shard series exist and share one HELP header with the
    // unlabeled (single-shard) series.
    EXPECT_NE(text.find("ref_net_accepted_total{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find("ref_net_accepted_total{shard=\"1\"}"),
              std::string::npos);
    const std::string help = "# HELP ref_net_accepted_total";
    const std::size_t first = text.find(help);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(help, first + 1), std::string::npos)
        << "HELP header duplicated for labeled series";
}

TEST(ShardedServer, MultiShardRequiresTcp)
{
    svc::AllocationService service(svc::ServiceConfig{});
    net::ServerOptions options;
    options.unixPath = "/tmp/ref_sharded_test.sock";
    net::ShardedServer server(service, options, 2);
    EXPECT_THROW(server.start(), FatalError);
}

} // namespace
} // namespace ref::test
