/**
 * Degenerate-peer handling: a slow-loris reader (asks for endless
 * output, never drains its socket) must trip the write timeout and a
 * half-open peer (connects, goes silent, never FINs) must trip the
 * idle timeout — both dropped with the matching counters bumped,
 * and neither may stall epoch processing for healthy clients. The
 * latency bound is asserted twice: on the healthy client's observed
 * TICK round-trip and on the service's ref_epoch_latency_ns
 * histogram (via MetricsSnapshot), which the slow peer must not be
 * able to inflate.
 */

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "net_test_util.hh"
#include "obs/metrics.hh"

namespace {

using namespace ref;
using Clock = std::chrono::steady_clock;

// TSan slows every instrumented path several-fold; stretch the
// write timeout and the latency budgets together so the assertion
// stays "round-trips ≪ the timeout the loris trips", not a wall
// clock race against instrumentation overhead.
#if defined(__SANITIZE_THREAD__)
constexpr std::int64_t kTimingSlack = 4;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr std::int64_t kTimingSlack = 4;
#else
constexpr std::int64_t kTimingSlack = 1;
#endif
#else
constexpr std::int64_t kTimingSlack = 1;
#endif

TEST(SlowClient, SlowLorisReaderIsDroppedWithoutStallingTicks)
{
    // The drop is observed through the live write-timeout counter:
    // reading the loris's socket from the test to probe for EOF
    // would grant the server write progress and defeat the timeout.
    obs::Counter &timeouts = obs::MetricsRegistry::global().counter(
        "ref_net_write_timeouts_total",
        "Connections dropped by the write timeout (slow readers)");
    const std::uint64_t timeoutsBefore = timeouts.value();

    net::ServerOptions options;
    options.writeTimeoutMs = 400 * kTimingSlack;
    options.idleTimeoutMs = 0;  // Isolate the write timeout.
    // Generous backlog cap: the loris must be cut by the write
    // timeout itself, not saved first by the overflow drop.
    options.maxPendingBytes = 64 << 20;
    test::ServerHarness harness({}, options);

    test::TestClient healthy(harness.port());
    healthy.sendAll("ADMIT steady 0.6 0.4\nADMIT peer 0.2 0.8\n");
    ASSERT_EQ(test::countPrefixed(healthy.readLines(2), "OK "), 2u);

    // The loris requests a large METRICS exposition many times and
    // never reads a byte back: the kernel buffers fill, the reply
    // backlog stalls, and lastProgress stops advancing.
    test::TestClient loris(harness.port());
    loris.setSmallReceiveBuffer();
    std::string flood;
    for (int i = 0; i < 2000; ++i)
        flood += "METRICS prom\n";
    loris.sendAll(flood);

    // Healthy traffic keeps ticking while the loris clogs; every
    // round-trip must stay far below the write timeout the loris is
    // busy tripping.
    std::int64_t worstRoundTripMs = 0;
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    bool lorisDropped = false;
    while (Clock::now() < deadline && !lorisDropped) {
        const auto before = Clock::now();
        healthy.sendAll("TICK\n");
        const std::string reply = healthy.readLines(1);
        ASSERT_NE(reply.find("EPOCH "), std::string::npos) << reply;
        const auto tripMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - before)
                .count();
        worstRoundTripMs = std::max<std::int64_t>(worstRoundTripMs,
                                                  tripMs);
        lorisDropped = timeouts.value() > timeoutsBefore;
    }
    EXPECT_TRUE(lorisDropped)
        << "write timeout never tripped for the slow reader";

    // The drop is visible client-side too, once the loris finally
    // drains what the kernel had buffered.
    EXPECT_TRUE(loris.waitForClose(10000));

    // One more healthy exchange after the drop.
    healthy.sendAll("QUERY steady\n");
    EXPECT_NE(healthy.readLines(1).find("SHARE steady"),
              std::string::npos);

    const net::ServerStats &stats = harness.stop();
    EXPECT_GE(stats.writeTimeouts, 1u);
    EXPECT_GE(stats.dropped, 1u);

    // Latency bound, client-observed: a loris-stalled event loop
    // would push round-trips toward the write timeout.
    EXPECT_LT(worstRoundTripMs, 300 * kTimingSlack);

    // Latency bound, service-side: the ref_epoch_latency_ns
    // histogram must show epoch compute stayed far below the
    // timeout scale (1e8 ns = 100 ms is generous for two agents).
    const auto metrics = harness.service().metrics();
    EXPECT_GT(metrics.epochs, 0u);
    EXPECT_LT(metrics.latencyMaxNs,
              100'000'000ull * static_cast<std::uint64_t>(kTimingSlack));
}

TEST(SlowClient, HalfOpenPeerTripsIdleTimeout)
{
    net::ServerOptions options;
    options.idleTimeoutMs = 300;
    options.writeTimeoutMs = 0;
    test::ServerHarness harness({}, options);

    test::TestClient healthy(harness.port());
    healthy.sendAll("ADMIT steady 0.6 0.4\n");
    ASSERT_FALSE(healthy.readLines(1).empty());

    // The half-open peer sends a partial command (no newline, so
    // nothing dispatches) and then goes silent without closing.
    test::TestClient halfOpen(harness.port());
    halfOpen.sendAll("ADM");

    // The server must cut it loose via the idle timeout; the healthy
    // client keeps its session only by staying active.
    const auto start = Clock::now();
    bool dropped = false;
    while (!dropped &&
           Clock::now() - start < std::chrono::seconds(5)) {
        healthy.sendAll("TICK\n");
        ASSERT_FALSE(healthy.readLines(1).empty());
        dropped = halfOpen.waitForClose(/*timeoutMs=*/50);
    }
    EXPECT_TRUE(dropped) << "idle timeout never tripped";
    const auto droppedAfterMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - start)
            .count();
    EXPECT_GE(droppedAfterMs, 250)
        << "dropped before the idle deadline could have passed";

    const net::ServerStats &stats = harness.stop();
    EXPECT_GE(stats.idleTimeouts, 1u);
    EXPECT_GE(stats.dropped, 1u);
    EXPECT_EQ(stats.accepted, 2u);
}

} // namespace
