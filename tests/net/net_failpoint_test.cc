/**
 * Fault injection at the socket syscall sites ("net.accept",
 * "net.read", "net.write") through the svc::Failpoints registry:
 * injected EIO on read drops only the afflicted connection, injected
 * EIO on write loses the reply but never the already-applied
 * command, persistent short writes still deliver a byte-exact
 * transcript, and an injected accept failure is counted and retried
 * without losing the queued client.
 */

#include <string>

#include <gtest/gtest.h>

#include "net_test_util.hh"
#include "svc/failpoints.hh"

namespace {

using namespace ref;

class NetFailpoint : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        svc::Failpoints::instance().clearAll();
    }
    void TearDown() override
    {
        svc::Failpoints::instance().clearAll();
    }

    static svc::FailpointSpec eioOnce()
    {
        svc::FailpointSpec spec;
        spec.action = svc::FailAction::Error;
        spec.errnoValue = EIO;
        spec.count = 1;
        return spec;
    }
};

TEST_F(NetFailpoint, ReadEioDropsOnlyTheAfflictedConnection)
{
    test::ServerHarness harness;

    test::TestClient healthy(harness.port());
    healthy.sendAll("ADMIT steady 0.6 0.4\n");
    ASSERT_NE(healthy.readLines(1).find("OK admitted"),
              std::string::npos);

    // Arm while the only readable socket will be the victim's.
    svc::Failpoints::instance().arm("net.read", eioOnce());
    test::TestClient victim(harness.port());
    victim.sendAll("TICK\n");
    EXPECT_TRUE(victim.waitForClose(2000))
        << "injected read EIO must drop the connection";
    svc::Failpoints::instance().clearAll();

    // The bystander's session survives and the allocator is intact:
    // the victim's TICK never dispatched, so this is epoch 1.
    healthy.sendAll("TICK\nQUERY steady\n");
    const std::string replies = healthy.readLines(2);
    EXPECT_NE(replies.find("EPOCH 1"), std::string::npos) << replies;
    EXPECT_NE(replies.find("SHARE steady"), std::string::npos)
        << replies;

    const net::ServerStats &stats = harness.stop();
    EXPECT_GE(stats.ioErrors, 1u);
    EXPECT_GE(stats.dropped, 1u);
}

TEST_F(NetFailpoint, WriteEioLosesTheReplyButNotTheCommand)
{
    test::ServerHarness harness;

    test::TestClient writer(harness.port());
    test::TestClient reader(harness.port());
    writer.sendAll("ADMIT first 0.6 0.4\n");
    ASSERT_NE(writer.readLines(1).find("OK admitted"),
              std::string::npos);

    // The next reply write fails with EIO after the command has
    // already gone through the allocation service.
    svc::Failpoints::instance().arm("net.write", eioOnce());
    writer.sendAll("ADMIT applied 0.3 0.7\n");
    EXPECT_TRUE(writer.waitForClose(2000))
        << "injected write EIO must drop the connection";
    svc::Failpoints::instance().clearAll();

    // A different client observes the applied mutation.
    reader.sendAll("TICK\nQUERY applied\n");
    const std::string replies = reader.readLines(2);
    EXPECT_NE(replies.find("EPOCH 1"), std::string::npos) << replies;
    EXPECT_NE(replies.find("SHARE applied"), std::string::npos)
        << "the command must be applied even when its reply is lost: "
        << replies;

    const net::ServerStats &stats = harness.stop();
    EXPECT_GE(stats.ioErrors, 1u);
    EXPECT_GE(stats.dropped, 1u);
}

TEST_F(NetFailpoint, PersistentShortWritesKeepTranscriptExact)
{
    // Reference transcript with no fault armed; the SHUTDOWN makes
    // the server drain and close, so readToEof is deterministic.
    const std::string script = "ADMIT a 0.6 0.4\nADMIT b 0.2 0.8\n"
                               "TICK\nQUERY\nPLAN\nSHUTDOWN\n";
    std::string clean;
    {
        test::ServerHarness harness;
        test::TestClient client(harness.port());
        client.sendAll(script);
        clean = client.readToEof();
    }

    // Same session with every write cut short forever: each pass
    // moves at least one byte, so the full transcript must still
    // arrive, byte for byte.
    svc::FailpointSpec shortForever;
    shortForever.action = svc::FailAction::ShortWrite;
    shortForever.count = 0;  // Never disarm.
    svc::Failpoints::instance().arm("net.write", shortForever);

    std::string stuttered;
    {
        test::ServerHarness harness;
        test::TestClient client(harness.port());
        client.sendAll(script);
        stuttered = client.readToEof(10000);
        svc::Failpoints::instance().clearAll();
        const net::ServerStats &stats = harness.stop();
        EXPECT_EQ(stats.dropped, 0u)
            << "short writes are progress, not errors";
    }

    ASSERT_FALSE(stuttered.empty());
    EXPECT_EQ(stuttered, clean);
    EXPECT_GE(test::countPrefixed(stuttered, "SHARE "), 2u);
}

TEST_F(NetFailpoint, AcceptEioIsCountedAndTheClientStillLands)
{
    test::ServerHarness harness;

    // The injected accept failure leaves the queued connection in
    // the kernel backlog; the level-triggered loop retries on the
    // next pass and the client never notices.
    svc::Failpoints::instance().arm("net.accept", eioOnce());
    test::TestClient client(harness.port());
    client.sendAll("ADMIT landed 0.5 0.5\nTICK\n");
    const std::string replies = client.readLines(2);
    EXPECT_NE(replies.find("OK admitted landed"), std::string::npos)
        << replies;
    EXPECT_NE(replies.find("EPOCH 1"), std::string::npos) << replies;

    const net::ServerStats &stats = harness.stop();
    EXPECT_GE(stats.ioErrors, 1u);
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.dropped, 0u);
}

} // namespace
