#include "stats/linear_model.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using ref::linalg::Matrix;
using ref::stats::LinearModel;

TEST(LinearModel, RecoversExactLine)
{
    const Matrix x = Matrix::fromRows({{1}, {2}, {3}, {4}});
    const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x.
    const LinearModel model(x, y);
    EXPECT_NEAR(model.intercept(), 1.0, 1e-10);
    EXPECT_NEAR(model.slopes()[0], 2.0, 1e-10);
    EXPECT_NEAR(model.rSquared(), 1.0, 1e-12);
    EXPECT_NEAR(model.residualStdError(), 0.0, 1e-10);
}

TEST(LinearModel, PredictMatchesCoefficients)
{
    const Matrix x = Matrix::fromRows({{1, 0}, {0, 1}, {1, 1}, {2, 1}});
    const std::vector<double> y{3, 4, 6, 8};  // y = 1 + 2a + 3b.
    const LinearModel model(x, y);
    EXPECT_NEAR(model.predict({2.0, 2.0}), 11.0, 1e-9);
}

TEST(LinearModel, NoInterceptFitsThroughOrigin)
{
    const Matrix x = Matrix::fromRows({{1}, {2}, {3}});
    const std::vector<double> y{2, 4, 6};
    const LinearModel model(x, y, false);
    EXPECT_DOUBLE_EQ(model.intercept(), 0.0);
    EXPECT_NEAR(model.slopes()[0], 2.0, 1e-12);
}

TEST(LinearModel, RSquaredPenalizesNoise)
{
    ref::Rng rng(3);
    const std::size_t n = 200;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        y[i] = 1.0 + 2.0 * x(i, 0) + rng.normal(0.0, 2.0);
    }
    const LinearModel model(x, y);
    EXPECT_GT(model.rSquared(), 0.8);
    EXPECT_LT(model.rSquared(), 1.0);
    EXPECT_NEAR(model.slopes()[0], 2.0, 0.1);
    EXPECT_NEAR(model.residualStdError(), 2.0, 0.4);
    EXPECT_LT(model.adjustedRSquared(), model.rSquared());
}

TEST(LinearModel, MultivariateRecovery)
{
    ref::Rng rng(5);
    const std::size_t n = 300;
    Matrix x(n, 3);
    std::vector<double> y(n);
    const std::vector<double> beta{0.5, -1.5, 3.0};
    for (std::size_t i = 0; i < n; ++i) {
        double value = 2.0;
        for (std::size_t j = 0; j < 3; ++j) {
            x(i, j) = rng.uniform(-1.0, 1.0);
            value += beta[j] * x(i, j);
        }
        y[i] = value + rng.normal(0.0, 0.05);
    }
    const LinearModel model(x, y);
    EXPECT_NEAR(model.intercept(), 2.0, 0.02);
    for (std::size_t j = 0; j < 3; ++j)
        EXPECT_NEAR(model.slopes()[j], beta[j], 0.03);
}

TEST(LinearModel, ConstantResponseYieldsZeroSlopes)
{
    const Matrix x = Matrix::fromRows({{1}, {2}, {3}, {4}});
    const std::vector<double> y{5, 5, 5, 5};
    const LinearModel model(x, y);
    EXPECT_NEAR(model.slopes()[0], 0.0, 1e-12);
    EXPECT_NEAR(model.intercept(), 5.0, 1e-12);
    // Zero variance explained exactly: defined as R^2 = 1.
    EXPECT_DOUBLE_EQ(model.rSquared(), 1.0);
}

TEST(LinearModel, RejectsUnderdeterminedFits)
{
    const Matrix x = Matrix::fromRows({{1}, {2}});
    EXPECT_THROW(LinearModel(x, {1.0, 2.0}), ref::FatalError);
}

TEST(LinearModel, RejectsSizeMismatch)
{
    const Matrix x = Matrix::fromRows({{1}, {2}, {3}});
    EXPECT_THROW(LinearModel(x, {1.0, 2.0}), ref::FatalError);
}

TEST(LinearModel, RejectsCollinearPredictors)
{
    const Matrix x =
        Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}, {4, 8}});
    EXPECT_THROW(LinearModel(x, {1.0, 2.0, 3.0, 4.0}),
                 ref::FatalError);
}

TEST(LinearModel, PredictRejectsWrongArity)
{
    const Matrix x = Matrix::fromRows({{1}, {2}, {3}});
    const LinearModel model(x, {1.0, 2.0, 3.0});
    EXPECT_THROW(model.predict({1.0, 2.0}), ref::FatalError);
}

} // namespace
