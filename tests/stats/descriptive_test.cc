#include "stats/descriptive.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

namespace stats = ref::stats;

TEST(Descriptive, MeanAndVariance)
{
    const std::vector<double> sample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                     7.0, 9.0};
    EXPECT_DOUBLE_EQ(stats::mean(sample), 5.0);
    EXPECT_DOUBLE_EQ(stats::variance(sample), 4.0);
    EXPECT_DOUBLE_EQ(stats::stddev(sample), 2.0);
}

TEST(Descriptive, SampleVarianceUsesBesselCorrection)
{
    const std::vector<double> sample{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::variance(sample), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats::sampleVariance(sample), 1.0);
}

TEST(Descriptive, MinMaxMedian)
{
    const std::vector<double> sample{3.0, 1.0, 4.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::minimum(sample), 1.0);
    EXPECT_DOUBLE_EQ(stats::maximum(sample), 5.0);
    EXPECT_DOUBLE_EQ(stats::median(sample), 3.0);
    EXPECT_DOUBLE_EQ(stats::median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Descriptive, TotalSumOfSquares)
{
    EXPECT_DOUBLE_EQ(stats::totalSumOfSquares({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(stats::totalSumOfSquares({5.0, 5.0}), 0.0);
}

TEST(Descriptive, CorrelationDetectsPerfectAndInverse)
{
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    std::vector<double> neg_y{-2.0, -4.0, -6.0, -8.0};
    EXPECT_NEAR(stats::correlation(x, y), 1.0, 1e-12);
    EXPECT_NEAR(stats::correlation(x, neg_y), -1.0, 1e-12);
}

TEST(Descriptive, CorrelationNearZeroForOrthogonalPattern)
{
    const std::vector<double> x{-1.0, 0.0, 1.0};
    const std::vector<double> y{1.0, -2.0, 1.0};
    EXPECT_NEAR(stats::correlation(x, y), 0.0, 1e-12);
}

TEST(Descriptive, RejectsDegenerateInput)
{
    EXPECT_THROW(stats::mean({}), ref::FatalError);
    EXPECT_THROW(stats::minimum({}), ref::FatalError);
    EXPECT_THROW(stats::median({}), ref::FatalError);
    EXPECT_THROW(stats::sampleVariance({1.0}), ref::FatalError);
    EXPECT_THROW(stats::correlation({1.0}, {1.0}), ref::FatalError);
    EXPECT_THROW(stats::correlation({1.0, 1.0}, {1.0, 2.0}),
                 ref::FatalError);
}

} // namespace
