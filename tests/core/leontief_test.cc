#include "core/leontief.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::core::LeontiefUtility;
using ref::core::Vector;

TEST(Leontief, EvaluatesPaperEquationEight)
{
    // u1 = min{x1, 2 y1}: demand vector (2 GB/s, 1 MB) scaled so the
    // paper's example demands 2:1 bandwidth:cache.
    const LeontiefUtility u({2.0, 1.0});
    EXPECT_DOUBLE_EQ(u.value({4.0, 2.0}), 2.0);
    // Disproportional allocations give the same utility (waste).
    EXPECT_DOUBLE_EQ(u.value({10.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(u.value({4.0, 10.0}), 2.0);
}

TEST(Leontief, NoSubstitution)
{
    // Unlike Cobb-Douglas, extra cache cannot compensate for less
    // bandwidth.
    const LeontiefUtility u({2.0, 1.0});
    EXPECT_LT(u.value({1.0, 8.0}), u.value({4.0, 2.0}));
}

TEST(Leontief, BindingResources)
{
    const LeontiefUtility u({2.0, 1.0});
    const auto binding = u.bindingResources({10.0, 2.0});
    ASSERT_EQ(binding.size(), 1u);
    EXPECT_EQ(binding[0], 1u);
    const auto both = u.bindingResources({4.0, 2.0});
    EXPECT_EQ(both.size(), 2u);
}

TEST(Leontief, MinimalEquivalentRemovesWaste)
{
    const LeontiefUtility u({2.0, 1.0});
    const Vector minimal = u.minimalEquivalent({10.0, 2.0});
    EXPECT_DOUBLE_EQ(minimal[0], 4.0);
    EXPECT_DOUBLE_EQ(minimal[1], 2.0);
    EXPECT_DOUBLE_EQ(u.value(minimal), u.value({10.0, 2.0}));
}

TEST(Leontief, WeakPreference)
{
    const LeontiefUtility u({1.0, 1.0});
    EXPECT_TRUE(u.weaklyPrefers({2.0, 2.0}, {1.0, 5.0}));
    EXPECT_FALSE(u.weaklyPrefers({1.0, 5.0}, {2.0, 2.0}));
    EXPECT_TRUE(u.weaklyPrefers({1.0, 5.0}, {5.0, 1.0}));
}

TEST(Leontief, ZeroAllocationZeroUtility)
{
    const LeontiefUtility u({1.0, 2.0});
    EXPECT_DOUBLE_EQ(u.value({0.0, 4.0}), 0.0);
}

TEST(Leontief, RejectsInvalidInput)
{
    EXPECT_THROW(LeontiefUtility({}), ref::FatalError);
    EXPECT_THROW(LeontiefUtility({0.0, 0.0}), ref::FatalError);
    EXPECT_THROW(LeontiefUtility({1.0, -0.5}), ref::FatalError);
    const LeontiefUtility u({1.0, 1.0});
    EXPECT_THROW(u.value({1.0}), ref::FatalError);
    EXPECT_THROW(u.value({-1.0, 1.0}), ref::FatalError);
    EXPECT_THROW(u.demand(2), ref::FatalError);
}

TEST(Leontief, ZeroDemandResourcesAreIgnored)
{
    // A CPU-only task (DRF-style): utility set by resource 0 alone.
    const LeontiefUtility u({2.0, 0.0});
    EXPECT_DOUBLE_EQ(u.value({4.0, 0.0}), 2.0);
    EXPECT_DOUBLE_EQ(u.value({4.0, 100.0}), 2.0);
    const auto binding = u.bindingResources({4.0, 0.0});
    ASSERT_EQ(binding.size(), 1u);
    EXPECT_EQ(binding[0], 0u);
    // Minimal equivalent holds none of the undemanded resource.
    const Vector minimal = u.minimalEquivalent({4.0, 100.0});
    EXPECT_DOUBLE_EQ(minimal[1], 0.0);
}

} // namespace
