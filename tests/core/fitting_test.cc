#include "core/fitting.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

PerformanceProfile
syntheticProfile(double a0, double ax, double ay, double noise_sd,
                 std::uint64_t seed)
{
    ref::Rng rng(seed);
    PerformanceProfile profile;
    for (double x : {0.8, 1.6, 3.2, 6.4, 12.8}) {
        for (double y : {0.125, 0.25, 0.5, 1.0, 2.0}) {
            const double clean =
                a0 * std::pow(x, ax) * std::pow(y, ay);
            const double noisy =
                clean * std::exp(rng.normal(0.0, noise_sd));
            profile.push_back(ProfilePoint{{x, y}, noisy});
        }
    }
    return profile;
}

TEST(Fitting, RecoversExactCobbDouglas)
{
    const auto profile = syntheticProfile(0.7, 0.6, 0.4, 0.0, 1);
    const auto fit = fitCobbDouglas(profile);
    EXPECT_NEAR(fit.utility.scale(), 0.7, 1e-9);
    EXPECT_NEAR(fit.utility.elasticity(0), 0.6, 1e-9);
    EXPECT_NEAR(fit.utility.elasticity(1), 0.4, 1e-9);
    EXPECT_NEAR(fit.rSquaredLog, 1.0, 1e-12);
    EXPECT_NEAR(fit.rSquaredLinear, 1.0, 1e-9);
    EXPECT_EQ(fit.clampedElasticities, 0);
}

TEST(Fitting, RecoversUnderModerateNoise)
{
    const auto profile = syntheticProfile(1.2, 0.3, 0.7, 0.05, 2);
    const auto fit = fitCobbDouglas(profile);
    EXPECT_NEAR(fit.utility.elasticity(0), 0.3, 0.05);
    EXPECT_NEAR(fit.utility.elasticity(1), 0.7, 0.1);
    EXPECT_GT(fit.rSquaredLog, 0.9);
    EXPECT_LT(fit.rSquaredLog, 1.0);
}

TEST(Fitting, PredictMatchesUtilityEvaluation)
{
    const auto profile = syntheticProfile(1.0, 0.5, 0.5, 0.0, 3);
    const auto fit = fitCobbDouglas(profile);
    EXPECT_NEAR(fit.predict({4.0, 1.0}), 2.0, 1e-9);
}

TEST(Fitting, HeavyNoiseLowersRSquared)
{
    const auto clean = fitCobbDouglas(
        syntheticProfile(1.0, 0.5, 0.5, 0.02, 4));
    const auto noisy = fitCobbDouglas(
        syntheticProfile(1.0, 0.5, 0.5, 0.5, 4));
    EXPECT_LT(noisy.rSquaredLog, clean.rSquaredLog);
}

TEST(Fitting, FlatProfileClampsElasticities)
{
    // Performance independent of both resources: slopes ~0, clamped
    // to the floor (the radiosity case).
    ref::Rng rng(5);
    PerformanceProfile profile;
    for (double x : {1.0, 2.0, 4.0}) {
        for (double y : {1.0, 2.0, 4.0}) {
            profile.push_back(ProfilePoint{
                {x, y}, 0.9 * std::exp(rng.normal(0.0, 0.01))});
        }
    }
    const auto saved = ref::logLevel();
    ref::setLogLevel(ref::LogLevel::Silent);
    const auto fit = fitCobbDouglas(profile);
    ref::setLogLevel(saved);
    EXPECT_GT(fit.utility.elasticity(0), 0.0);
    EXPECT_GT(fit.utility.elasticity(1), 0.0);
    EXPECT_LE(fit.utility.elasticity(0), 0.02);
}

TEST(Fitting, NegativeSlopeClampedToFloor)
{
    // Performance decreasing in resource 1: elasticity would be
    // negative; the fit floors it and reports the clamp.
    PerformanceProfile profile;
    for (double x : {1.0, 2.0, 4.0, 8.0}) {
        for (double y : {1.0, 2.0, 4.0, 8.0}) {
            profile.push_back(ProfilePoint{
                {x, y}, std::pow(x, 0.5) * std::pow(y, -0.2)});
        }
    }
    const auto saved = ref::logLevel();
    ref::setLogLevel(ref::LogLevel::Silent);
    FitOptions options;
    options.elasticityFloor = 1e-3;
    const auto fit = fitCobbDouglas(profile, options);
    ref::setLogLevel(saved);
    EXPECT_EQ(fit.clampedElasticities, 1);
    EXPECT_DOUBLE_EQ(fit.utility.elasticity(1), 1e-3);
    EXPECT_NEAR(fit.utility.elasticity(0), 0.5, 1e-6);
}

TEST(Fitting, RejectsDegenerateProfiles)
{
    EXPECT_THROW(fitCobbDouglas({}), ref::FatalError);

    PerformanceProfile bad_perf{{{1.0, 1.0}, 0.0}};
    EXPECT_THROW(fitCobbDouglas(bad_perf), ref::FatalError);

    PerformanceProfile bad_alloc{{{0.0, 1.0}, 1.0}};
    EXPECT_THROW(fitCobbDouglas(bad_alloc), ref::FatalError);

    // Too few points for 2 resources + intercept.
    PerformanceProfile tiny{{{1.0, 1.0}, 1.0}, {{2.0, 2.0}, 2.0}};
    EXPECT_THROW(fitCobbDouglas(tiny), ref::FatalError);

    // Collinear in log space: x always equals y.
    PerformanceProfile collinear;
    for (double v : {1.0, 2.0, 4.0, 8.0})
        collinear.push_back(ProfilePoint{{v, v}, v});
    EXPECT_THROW(fitCobbDouglas(collinear), ref::FatalError);

    PerformanceProfile mismatched{{{1.0, 1.0}, 1.0},
                                  {{2.0}, 2.0}};
    EXPECT_THROW(fitCobbDouglas(mismatched), ref::FatalError);
}

TEST(Fitting, ThreeResourceFit)
{
    ref::Rng rng(7);
    PerformanceProfile profile;
    for (int n = 0; n < 60; ++n) {
        const Vector x{rng.uniform(0.5, 8.0), rng.uniform(0.5, 8.0),
                       rng.uniform(0.5, 8.0)};
        const double u = 2.0 * std::pow(x[0], 0.2) *
                         std::pow(x[1], 0.5) * std::pow(x[2], 0.3);
        profile.push_back(ProfilePoint{x, u});
    }
    const auto fit = fitCobbDouglas(profile);
    EXPECT_NEAR(fit.utility.elasticity(0), 0.2, 1e-9);
    EXPECT_NEAR(fit.utility.elasticity(1), 0.5, 1e-9);
    EXPECT_NEAR(fit.utility.elasticity(2), 0.3, 1e-9);
}

} // namespace
