#include "core/profile_io.hh"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/fitting.hh"
#include "util/logging.hh"

namespace {

using namespace ref::core;

TEST(ProfileIo, ProfileRoundTrips)
{
    PerformanceProfile original{
        {{0.8, 0.125}, 0.05}, {{12.8, 2.0}, 0.35}, {{3.2, 1.0}, 0.2}};
    std::stringstream buffer;
    writeProfileCsv(buffer, original);
    const auto loaded = readProfileCsv(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t n = 0; n < original.size(); ++n) {
        EXPECT_EQ(loaded[n].allocation, original[n].allocation);
        EXPECT_DOUBLE_EQ(loaded[n].performance,
                         original[n].performance);
    }
}

TEST(ProfileIo, LoadedProfileFitsIdentically)
{
    PerformanceProfile original;
    for (double x : {1.0, 2.0, 4.0, 8.0}) {
        for (double y : {1.0, 2.0, 4.0}) {
            original.push_back(ProfilePoint{
                {x, y}, 0.7 * std::pow(x, 0.6) * std::pow(y, 0.4)});
        }
    }
    std::stringstream buffer;
    writeProfileCsv(buffer, original);
    const auto fit = fitCobbDouglas(readProfileCsv(buffer));
    EXPECT_NEAR(fit.utility.elasticity(0), 0.6, 1e-6);
    EXPECT_NEAR(fit.utility.elasticity(1), 0.4, 1e-6);
}

TEST(ProfileIo, ProfileHeaderShape)
{
    PerformanceProfile profile{{{1.0, 2.0, 3.0}, 0.5}};
    std::stringstream buffer;
    writeProfileCsv(buffer, profile);
    std::string header;
    std::getline(buffer, header);
    EXPECT_EQ(header, "x0,x1,x2,performance");
}

TEST(ProfileIo, ReadProfileRejectsMalformedInput)
{
    std::stringstream empty;
    EXPECT_THROW(readProfileCsv(empty), ref::FatalError);

    std::stringstream header_only("x0,performance\n");
    EXPECT_THROW(readProfileCsv(header_only), ref::FatalError);

    std::stringstream short_row("x0,x1,performance\n1.0,2.0\n");
    EXPECT_THROW(readProfileCsv(short_row), ref::FatalError);

    std::stringstream bad_number(
        "x0,performance\nnot-a-number,1.0\n");
    EXPECT_THROW(readProfileCsv(bad_number), ref::FatalError);

    std::stringstream trailing("x0,performance\n1.0x,1.0\n");
    EXPECT_THROW(readProfileCsv(trailing), ref::FatalError);
}

TEST(ProfileIo, ReadProfileSkipsBlankLines)
{
    std::stringstream buffer("x0,performance\n1.0,0.5\n\n2.0,0.7\n");
    const auto profile = readProfileCsv(buffer);
    EXPECT_EQ(profile.size(), 2u);
}

TEST(ProfileIo, AgentsRoundTrip)
{
    AgentList original;
    original.emplace_back("user1",
                          CobbDouglasUtility(1.5, {0.6, 0.4}));
    original.emplace_back("user2",
                          CobbDouglasUtility({0.2, 0.8}));
    std::stringstream buffer;
    writeAgentsCsv(buffer, original);
    const auto loaded = readAgentsCsv(buffer);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].name(), "user1");
    EXPECT_NEAR(loaded[0].utility().scale(), 1.5, 1e-6);
    EXPECT_NEAR(loaded[0].utility().elasticity(0), 0.6, 1e-6);
    EXPECT_NEAR(loaded[1].utility().elasticity(1), 0.8, 1e-6);
}

TEST(ProfileIo, ReadAgentsRejectsMalformedInput)
{
    std::stringstream empty;
    EXPECT_THROW(readAgentsCsv(empty), ref::FatalError);

    std::stringstream no_elasticities("name,scale\nuser,1.0\n");
    EXPECT_THROW(readAgentsCsv(no_elasticities), ref::FatalError);

    // Non-positive elasticity rejected by the utility invariant.
    std::stringstream bad_alpha(
        "name,scale,alpha0,alpha1\nuser,1.0,0.5,-0.5\n");
    EXPECT_THROW(readAgentsCsv(bad_alpha), ref::FatalError);

    std::stringstream bad_scale(
        "name,scale,alpha0\nuser,0.0,0.5\n");
    EXPECT_THROW(readAgentsCsv(bad_scale), ref::FatalError);
}

TEST(ProfileIo, WriteRejectsDegenerateInput)
{
    std::stringstream buffer;
    EXPECT_THROW(writeProfileCsv(buffer, {}), ref::FatalError);
    EXPECT_THROW(writeAgentsCsv(buffer, {}), ref::FatalError);
    // Inconsistent widths.
    PerformanceProfile mixed{{{1.0, 2.0}, 0.5}, {{1.0}, 0.5}};
    EXPECT_THROW(writeProfileCsv(buffer, mixed), ref::FatalError);
}

} // namespace
