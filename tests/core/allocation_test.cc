#include "core/allocation.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::core::Allocation;
using ref::core::SystemCapacity;
using ref::core::Vector;

TEST(Allocation, EqualSplitMatchesCapacityOverN)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto allocation = Allocation::equalSplit(3, capacity);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(allocation.at(i, 0), 8.0);
        EXPECT_DOUBLE_EQ(allocation.at(i, 1), 4.0);
    }
    EXPECT_TRUE(allocation.exhaustive(capacity));
}

TEST(Allocation, AgentShareRoundTrips)
{
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {18.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});
    EXPECT_EQ(allocation.agentShare(0), (Vector{18.0, 4.0}));
    EXPECT_EQ(allocation.agentShare(1), (Vector{6.0, 8.0}));
    EXPECT_DOUBLE_EQ(allocation.at(1, 1), 8.0);
}

TEST(Allocation, TotalsSumPerResource)
{
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {18.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});
    EXPECT_EQ(allocation.totals(), (Vector{24.0, 12.0}));
}

TEST(Allocation, FeasibilityDetectsOverAllocation)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {20.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});  // 26 > 24 GB/s.
    EXPECT_FALSE(allocation.feasible(capacity));
}

TEST(Allocation, FeasibilityDetectsNegativeAmounts)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {-1.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});
    EXPECT_FALSE(allocation.feasible(capacity));
}

TEST(Allocation, UnderAllocationFeasibleButNotExhaustive)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {10.0, 4.0});
    allocation.setAgentShare(1, {6.0, 6.0});
    EXPECT_TRUE(allocation.feasible(capacity));
    EXPECT_FALSE(allocation.exhaustive(capacity));
}

TEST(Allocation, FractionsAgainstCapacity)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {18.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});
    const Vector fractions = allocation.fractions(0, capacity);
    EXPECT_DOUBLE_EQ(fractions[0], 0.75);
    EXPECT_DOUBLE_EQ(fractions[1], 1.0 / 3.0);
}

TEST(Allocation, RejectsDegenerateShapes)
{
    EXPECT_THROW(Allocation(0, 2), ref::FatalError);
    EXPECT_THROW(Allocation(2, 0), ref::FatalError);
    Allocation allocation(2, 2);
    EXPECT_THROW(allocation.setAgentShare(0, {1.0}), ref::FatalError);
}

} // namespace
