#include "core/resource.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::core::Resource;
using ref::core::SystemCapacity;

TEST(SystemCapacity, ExampleMatchesPaper)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    EXPECT_EQ(capacity.count(), 2u);
    EXPECT_DOUBLE_EQ(capacity.capacity(0), 24.0);
    EXPECT_DOUBLE_EQ(capacity.capacity(1), 12.0);
    EXPECT_EQ(capacity.resource(0).unit, "GB/s");
    EXPECT_EQ(capacity.resource(1).unit, "MB");
}

TEST(SystemCapacity, FromCapacitiesNamesResources)
{
    const auto capacity =
        SystemCapacity::fromCapacities({1.0, 2.0, 3.0});
    EXPECT_EQ(capacity.count(), 3u);
    EXPECT_EQ(capacity.resource(2).name, "resource-2");
    EXPECT_DOUBLE_EQ(capacity.capacity(2), 3.0);
}

TEST(SystemCapacity, CapacitiesVectorRoundTrips)
{
    const auto capacity = SystemCapacity::fromCapacities({4.0, 8.0});
    const auto caps = capacity.capacities();
    EXPECT_EQ(caps, (ref::core::Vector{4.0, 8.0}));
}

TEST(SystemCapacity, EqualShareDividesEveryResource)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto share = capacity.equalShare(4);
    EXPECT_DOUBLE_EQ(share[0], 6.0);
    EXPECT_DOUBLE_EQ(share[1], 3.0);
}

TEST(SystemCapacity, RejectsDegenerateInput)
{
    EXPECT_THROW(SystemCapacity({}), ref::FatalError);
    EXPECT_THROW(SystemCapacity({Resource{"x", "", 0.0}}),
                 ref::FatalError);
    EXPECT_THROW(SystemCapacity({Resource{"x", "", -1.0}}),
                 ref::FatalError);
    const auto capacity = SystemCapacity::fromCapacities({1.0});
    EXPECT_THROW(capacity.capacity(1), ref::FatalError);
    EXPECT_THROW(capacity.equalShare(0), ref::FatalError);
}

} // namespace
