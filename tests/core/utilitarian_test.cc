#include "core/utilitarian.hh"

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "core/welfare_mechanisms.hh"
#include "util/logging.hh"

namespace {

using namespace ref::core;

AgentList
paperAgents()
{
    AgentList agents;
    agents.emplace_back("user1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

TEST(Utilitarian, FeasibleAndExhaustive)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        UtilitarianMechanism().allocate(paperAgents(), capacity);
    EXPECT_TRUE(allocation.exhaustive(capacity, 1e-6));
}

TEST(Utilitarian, UpperBoundsNashOptimumOnThroughput)
{
    // The (approximate) utilitarian optimum targets exactly the
    // weighted-throughput metric, so it must beat or match the Nash
    // product optimum on it.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const double utilitarian = weightedSystemThroughput(
        agents, UtilitarianMechanism().allocate(agents, capacity),
        capacity);
    const double nash = weightedSystemThroughput(
        agents, makeMaxWelfareUnfair().allocate(agents, capacity),
        capacity);
    EXPECT_GE(utilitarian + 1e-4, nash);
}

TEST(Utilitarian, SingleAgentGetsEverything)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList solo;
    solo.emplace_back("solo", CobbDouglasUtility({0.5, 0.5}));
    const auto allocation =
        UtilitarianMechanism().allocate(solo, capacity);
    EXPECT_NEAR(allocation.at(0, 0), 24.0, 1e-6);
    EXPECT_NEAR(allocation.at(0, 1), 12.0, 1e-6);
}

TEST(Utilitarian, IdenticalHomogeneousAgentsAreInterchangeable)
{
    // With identical degree-one agents, any capacity-exhausting
    // split gives the same total; the mechanism must return a valid
    // one.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.5}));
    agents.emplace_back("b", CobbDouglasUtility({0.5, 0.5}));
    const auto allocation =
        UtilitarianMechanism().allocate(agents, capacity);
    EXPECT_TRUE(allocation.feasible(capacity, 1e-6));
    const double total = weightedSystemThroughput(agents, allocation,
                                                  capacity);
    // Degree-one utilities: best achievable sum over any split of
    // matched proportions is 1.
    EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Utilitarian, FairVariantSatisfiesFairness)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    UtilitarianMechanism::Options options;
    options.withFairness = true;
    const auto allocation =
        UtilitarianMechanism(options).allocate(agents, capacity);
    FairnessTolerance tol;
    tol.utility = 1e-3;
    tol.mrs = 5e-2;
    tol.capacity = 1e-6;
    const auto report =
        checkFairness(agents, capacity, allocation, tol);
    EXPECT_TRUE(report.sharingIncentives.satisfied)
        << report.sharingIncentives.binding;
    EXPECT_TRUE(report.envyFreeness.satisfied)
        << report.envyFreeness.binding;
}

TEST(Utilitarian, FairVariantCostsThroughput)
{
    // Fairness constraints can only reduce the attainable sum.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("flat", CobbDouglasUtility({0.3, 0.1}));
    agents.emplace_back("steep", CobbDouglasUtility({0.9, 0.9}));
    UtilitarianMechanism::Options fair_options;
    fair_options.withFairness = true;
    const double unconstrained = weightedSystemThroughput(
        agents, UtilitarianMechanism().allocate(agents, capacity),
        capacity);
    const double constrained = weightedSystemThroughput(
        agents,
        UtilitarianMechanism(fair_options).allocate(agents, capacity),
        capacity);
    EXPECT_GE(unconstrained + 1e-4, constrained);
}

TEST(Utilitarian, NamesReflectVariant)
{
    EXPECT_EQ(UtilitarianMechanism().name(), "utilitarian");
    UtilitarianMechanism::Options options;
    options.withFairness = true;
    EXPECT_EQ(UtilitarianMechanism(options).name(),
              "utilitarian+fairness");
}

TEST(Utilitarian, RejectsBadShapes)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    EXPECT_THROW(UtilitarianMechanism().allocate({}, capacity),
                 ref::FatalError);
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.3, 0.2}));
    EXPECT_THROW(UtilitarianMechanism().allocate(agents, capacity),
                 ref::FatalError);
}

} // namespace
