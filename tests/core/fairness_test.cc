#include "core/fairness.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::core;

AgentList
paperAgents()
{
    AgentList agents;
    agents.emplace_back("user1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

Allocation
paperRefAllocation()
{
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {18.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});
    return allocation;
}

TEST(Fairness, PaperAllocationSatisfiesEverything)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto report = checkFairness(paperAgents(), capacity,
                                      paperRefAllocation());
    EXPECT_TRUE(report.sharingIncentives.satisfied);
    EXPECT_TRUE(report.envyFreeness.satisfied);
    EXPECT_TRUE(report.paretoEfficiency.satisfied);
    EXPECT_TRUE(report.capacity.satisfied);
    EXPECT_TRUE(report.fair());
    EXPECT_TRUE(report.allHold());
}

TEST(Fairness, EqualSplitIsEnvyFreeButNotPareto)
{
    // The midpoint is always EF and SI (weakly), but the two users'
    // MRS differ there, so it is not PE.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto equal = Allocation::equalSplit(2, capacity);
    const auto report = checkFairness(paperAgents(), capacity, equal);
    EXPECT_TRUE(report.sharingIncentives.satisfied);
    EXPECT_TRUE(report.envyFreeness.satisfied);
    EXPECT_FALSE(report.paretoEfficiency.satisfied);
}

TEST(Fairness, LopsidedAllocationViolatesSiAndEf)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation lopsided(2, 2);
    lopsided.setAgentShare(0, {22.0, 11.0});
    lopsided.setAgentShare(1, {2.0, 1.0});
    const auto agents = paperAgents();
    const auto si = checkSharingIncentives(agents, capacity, lopsided);
    const auto ef = checkEnvyFreeness(agents, lopsided);
    EXPECT_FALSE(si.satisfied);
    EXPECT_FALSE(ef.satisfied);
    // The starved agent is the binding one.
    EXPECT_NE(si.binding.find("user2"), std::string::npos);
    EXPECT_LT(si.worstSlack, 0.0);
    EXPECT_LT(ef.worstSlack, 0.0);
}

TEST(Fairness, WastefulAllocationIsNotPareto)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation wasteful(2, 2);
    wasteful.setAgentShare(0, {9.0, 2.0});
    wasteful.setAgentShare(1, {3.0, 4.0});  // Half of everything idle.
    const auto pe = checkParetoEfficiency(paperAgents(), capacity,
                                          wasteful);
    EXPECT_FALSE(pe.satisfied);
    EXPECT_NE(pe.binding.find("unallocated"), std::string::npos);
}

TEST(Fairness, CornerAllocationReportedNotPareto)
{
    // All of one resource to each user: zero utilities, EF holds
    // trivially, but we report PE false (degenerate corner).
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation corner(2, 2);
    corner.setAgentShare(0, {24.0, 0.0});
    corner.setAgentShare(1, {0.0, 12.0});
    const auto agents = paperAgents();
    EXPECT_TRUE(checkEnvyFreeness(agents, corner).satisfied);
    EXPECT_FALSE(
        checkParetoEfficiency(agents, capacity, corner).satisfied);
}

TEST(Fairness, CapacityCheckCatchesViolations)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation over(2, 2);
    over.setAgentShare(0, {20.0, 8.0});
    over.setAgentShare(1, {6.0, 8.0});
    EXPECT_FALSE(checkCapacity(capacity, over).satisfied);

    Allocation negative(2, 2);
    negative.setAgentShare(0, {25.0, 4.0});
    negative.setAgentShare(1, {-1.0, 8.0});
    const auto check = checkCapacity(capacity, negative);
    EXPECT_FALSE(check.satisfied);
    EXPECT_EQ(check.binding, "negative amount");
}

TEST(Fairness, MrsMismatchScalesWithDistanceFromContractCurve)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    // Start at the fair point and push user 1 off the curve.
    Allocation near = paperRefAllocation();
    near.at(0, 1) += 0.1;
    near.at(1, 1) -= 0.1;
    Allocation far = paperRefAllocation();
    far.at(0, 1) += 2.0;
    far.at(1, 1) -= 2.0;
    const auto near_pe =
        checkParetoEfficiency(agents, capacity, near);
    const auto far_pe = checkParetoEfficiency(agents, capacity, far);
    EXPECT_FALSE(near_pe.satisfied);
    EXPECT_FALSE(far_pe.satisfied);
    EXPECT_GT(near_pe.worstSlack, far_pe.worstSlack);
}

TEST(Fairness, SingleAgentGetsEverything)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("solo", CobbDouglasUtility({0.5, 0.5}));
    Allocation allocation(1, 2);
    allocation.setAgentShare(0, capacity.capacities());
    const auto report = checkFairness(agents, capacity, allocation);
    EXPECT_TRUE(report.allHold());
}

TEST(Fairness, RejectsShapeMismatches)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    Allocation wrong_agents(3, 2);
    EXPECT_THROW(checkFairness(agents, capacity, wrong_agents),
                 ref::FatalError);
    Allocation wrong_resources(2, 3);
    EXPECT_THROW(checkFairness(agents, capacity, wrong_resources),
                 ref::FatalError);
    EXPECT_THROW(checkFairness({}, capacity, Allocation(1, 2)),
                 ref::FatalError);
}

TEST(Fairness, ToleranceControlsStrictness)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    Allocation almost = paperRefAllocation();
    almost.at(0, 0) -= 1e-5;  // Leaves 1e-5 GB/s unallocated.
    FairnessTolerance loose;
    loose.mrs = 1e-2;
    loose.capacity = 1e-4;
    FairnessTolerance strict;
    strict.mrs = 1e-9;
    strict.capacity = 1e-12;
    EXPECT_TRUE(checkParetoEfficiency(paperAgents(), capacity, almost,
                                      loose)
                    .satisfied);
    EXPECT_FALSE(checkParetoEfficiency(paperAgents(), capacity, almost,
                                       strict)
                     .satisfied);
}

} // namespace
