#include "core/proportional_elasticity.hh"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

TEST(ProportionalElasticity, ReproducesPaperSection41Example)
{
    // Elasticities (0.6, 0.4) and (0.2, 0.8) over 24 GB/s and 12 MB
    // must yield (18, 4) and (6, 8) — the worked example.
    AgentList agents;
    agents.emplace_back("user1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", CobbDouglasUtility({0.2, 0.8}));
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    EXPECT_NEAR(allocation.at(0, 0), 18.0, 1e-12);
    EXPECT_NEAR(allocation.at(0, 1), 4.0, 1e-12);
    EXPECT_NEAR(allocation.at(1, 0), 6.0, 1e-12);
    EXPECT_NEAR(allocation.at(1, 1), 8.0, 1e-12);
}

TEST(ProportionalElasticity, InvariantToElasticityScaling)
{
    // The mechanism re-scales internally (Eq. 12), so multiplying an
    // agent's elasticities by a constant changes nothing.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList a;
    a.emplace_back("u1", CobbDouglasUtility({0.6, 0.4}));
    a.emplace_back("u2", CobbDouglasUtility({0.2, 0.8}));
    AgentList b;
    b.emplace_back("u1", CobbDouglasUtility(5.0, {1.2, 0.8}));
    b.emplace_back("u2", CobbDouglasUtility(0.1, {0.05, 0.2}));
    const ProportionalElasticityMechanism mechanism;
    const auto alloc_a = mechanism.allocate(a, capacity);
    const auto alloc_b = mechanism.allocate(b, capacity);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 2; ++r)
            EXPECT_NEAR(alloc_a.at(i, r), alloc_b.at(i, r), 1e-12);
}

TEST(ProportionalElasticity, IdenticalAgentsSplitEqually)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    for (int i = 0; i < 4; ++i) {
        agents.emplace_back("clone-" + std::to_string(i),
                            CobbDouglasUtility({0.5, 0.5}));
    }
    const auto allocation =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(allocation.at(i, 0), 6.0, 1e-12);
        EXPECT_NEAR(allocation.at(i, 1), 3.0, 1e-12);
    }
}

TEST(ProportionalElasticity, ExhaustsEveryResource)
{
    const auto capacity = SystemCapacity::fromCapacities({7.0, 3.0, 11.0});
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.3, 0.2}));
    agents.emplace_back("b", CobbDouglasUtility({0.1, 0.8, 0.1}));
    agents.emplace_back("c", CobbDouglasUtility({0.3, 0.3, 0.4}));
    const auto allocation =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    EXPECT_TRUE(allocation.exhaustive(capacity, 1e-9));
}

TEST(ProportionalElasticity, RescaledElasticitiesExposed)
{
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.9, 0.3}));
    agents.emplace_back("b", CobbDouglasUtility({0.2, 0.2}));
    const auto rescaled =
        ProportionalElasticityMechanism::rescaledElasticities(agents);
    EXPECT_NEAR(rescaled(0, 0), 0.75, 1e-12);
    EXPECT_NEAR(rescaled(0, 1), 0.25, 1e-12);
    EXPECT_NEAR(rescaled(1, 0), 0.5, 1e-12);
    EXPECT_NEAR(rescaled(1, 1), 0.5, 1e-12);
}

TEST(ProportionalElasticity, RejectsMismatchedShapes)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.3, 0.2}));
    EXPECT_THROW(
        ProportionalElasticityMechanism().allocate(agents, capacity),
        ref::FatalError);
    EXPECT_THROW(
        ProportionalElasticityMechanism().allocate({}, capacity),
        ref::FatalError);
}

// Regression: an infinite elasticity used to pass the "> 0" check in
// CobbDouglasUtility and reach the mechanism, where the rescaling of
// Eq. 12 turned it into NaN shares for EVERY agent. All non-positive
// and non-finite elasticities (and scales) must be rejected at
// construction with a clear diagnostic.
TEST(ProportionalElasticity, RejectsNonPositiveAndNonFiniteInputs)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();

    EXPECT_THROW(CobbDouglasUtility({0.0, 0.4}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({-0.6, 0.4}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({inf, 0.4}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({0.6, nan}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({}), ref::FatalError);

    EXPECT_THROW(CobbDouglasUtility(0.0, {0.6, 0.4}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility(-1.0, {0.6, 0.4}),
                 ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility(inf, {0.6, 0.4}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility(nan, {0.6, 0.4}), ref::FatalError);

    // An honest population is unaffected by the rejections above, and
    // its allocation stays finite — the property the validation
    // protects.
    AgentList agents;
    agents.emplace_back("u1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("u2", CobbDouglasUtility({0.2, 0.8}));
    const auto allocation = ProportionalElasticityMechanism().allocate(
        agents, SystemCapacity::cacheAndBandwidthExample());
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 2; ++r)
            EXPECT_TRUE(std::isfinite(allocation.at(i, r)));
}

/**
 * Property sweep: for random agent populations, the REF allocation
 * always satisfies SI, EF, PE, and capacity — the paper's central
 * theorem (Section 4.2).
 */
class RefFairnessProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(RefFairnessProperty, AlwaysFair)
{
    const auto [n_agents, n_resources, seed] = GetParam();
    ref::Rng rng(static_cast<std::uint64_t>(seed));

    std::vector<double> capacities(n_resources);
    for (auto &cap : capacities)
        cap = rng.uniform(1.0, 100.0);
    const auto capacity = SystemCapacity::fromCapacities(capacities);

    AgentList agents;
    for (int i = 0; i < n_agents; ++i) {
        Vector alphas(n_resources);
        for (auto &alpha : alphas)
            alpha = rng.uniform(0.05, 1.0);
        agents.emplace_back("agent-" + std::to_string(i),
                            CobbDouglasUtility(rng.uniform(0.5, 2.0),
                                               alphas));
    }

    const auto allocation =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    const auto report = checkFairness(agents, capacity, allocation);
    EXPECT_TRUE(report.sharingIncentives.satisfied)
        << report.sharingIncentives.binding;
    EXPECT_TRUE(report.envyFreeness.satisfied)
        << report.envyFreeness.binding;
    EXPECT_TRUE(report.paretoEfficiency.satisfied)
        << report.paretoEfficiency.binding;
    EXPECT_TRUE(report.capacity.satisfied) << report.capacity.binding;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RefFairnessProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 8, 16, 64),
                       ::testing::Values(2, 3, 5),
                       ::testing::Values(1, 2, 3)));

} // namespace
