#include "core/welfare.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::core;

AgentList
paperAgents()
{
    AgentList agents;
    agents.emplace_back("user1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

TEST(Welfare, WeightedUtilityIsOneAtFullCapacity)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    EXPECT_NEAR(weightedUtility(agents[0], capacity.capacities(),
                                capacity),
                1.0, 1e-12);
}

TEST(Welfare, WeightedUtilityIgnoresScaleConstant)
{
    // U = u(x)/u(C) cancels a0, matching the slowdown analogy.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const Agent plain("p", CobbDouglasUtility({0.6, 0.4}));
    const Agent scaled("s", CobbDouglasUtility(7.0, {0.6, 0.4}));
    const Vector bundle{6.0, 3.0};
    EXPECT_NEAR(weightedUtility(plain, bundle, capacity),
                weightedUtility(scaled, bundle, capacity), 1e-12);
}

TEST(Welfare, EqualSplitWeightedUtilityForHomogeneousAgent)
{
    // With rescaled elasticities, U(C/N) = 1/N exactly.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const Agent agent("h", CobbDouglasUtility({0.6, 0.4}));
    EXPECT_NEAR(weightedUtility(agent, capacity.equalShare(2),
                                capacity),
                0.5, 1e-12);
}

TEST(Welfare, ThroughputSumsWeightedUtilities)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, {18.0, 4.0});
    allocation.setAgentShare(1, {6.0, 8.0});
    const auto utilities =
        weightedUtilities(agents, allocation, capacity);
    EXPECT_NEAR(weightedSystemThroughput(agents, allocation, capacity),
                utilities[0] + utilities[1], 1e-12);
    EXPECT_NEAR(nashWelfare(agents, allocation, capacity),
                utilities[0] * utilities[1], 1e-12);
    EXPECT_NEAR(egalitarianWelfare(agents, allocation, capacity),
                std::min(utilities[0], utilities[1]), 1e-12);
}

TEST(Welfare, UnfairnessIndexIsOneForEqualSlowdowns)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.5}));
    agents.emplace_back("b", CobbDouglasUtility({0.5, 0.5}));
    const auto equal = Allocation::equalSplit(2, capacity);
    EXPECT_NEAR(unfairnessIndex(agents, equal, capacity), 1.0, 1e-12);
}

TEST(Welfare, UnfairnessIndexGrowsWithImbalance)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    Allocation lopsided(2, 2);
    lopsided.setAgentShare(0, {20.0, 10.0});
    lopsided.setAgentShare(1, {4.0, 2.0});
    EXPECT_GT(unfairnessIndex(agents, lopsided, capacity), 2.0);
}

TEST(Welfare, ZeroBundleGivesZeroWeightedUtility)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    EXPECT_DOUBLE_EQ(
        weightedUtility(agents[0], {0.0, 5.0}, capacity), 0.0);
    Allocation with_zero(2, 2);
    with_zero.setAgentShare(0, {24.0, 12.0});
    with_zero.setAgentShare(1, {0.0, 0.0});
    EXPECT_THROW(unfairnessIndex(agents, with_zero, capacity),
                 ref::FatalError);
}

} // namespace
