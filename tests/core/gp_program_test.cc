#include "core/gp_program.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "solver/function.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;
using ref::solver::Vector;

AgentList
twoAgents()
{
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("b", CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

Vector
randomLogPoint(const gp::ProgramShape &shape, ref::Rng &rng)
{
    Vector y(shape.variables());
    for (auto &value : y)
        value = rng.uniform(-1.0, 3.0);
    return y;
}

/** Compare an analytic gradient against central differences. */
void
expectGradientMatches(const ref::solver::DifferentiableFunction &fn,
                      const Vector &point, double tolerance = 1e-5)
{
    const Vector analytic = fn.gradient(point);
    const Vector numeric = ref::solver::numericalGradient(
        [&](const Vector &y) { return fn.value(y); }, point);
    ASSERT_EQ(analytic.size(), numeric.size());
    for (std::size_t i = 0; i < analytic.size(); ++i)
        EXPECT_NEAR(analytic[i], numeric[i], tolerance) << "dim " << i;
}

TEST(GpProgram, ShapeIndexing)
{
    const gp::ProgramShape shape{3, 2, false};
    EXPECT_EQ(shape.variables(), 6u);
    EXPECT_EQ(shape.index(0, 0), 0u);
    EXPECT_EQ(shape.index(2, 1), 5u);
    const gp::ProgramShape epi{3, 2, true};
    EXPECT_EQ(epi.variables(), 7u);
}

TEST(GpProgram, CapacityConstraintValueAndGradient)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const gp::ProgramShape shape{2, 2, false};
    const auto constraint =
        gp::makeCapacityConstraint(shape, capacity, 0);

    // Exactly at capacity: log(12 + 12) - log(24) = 0.
    const Vector at_capacity{std::log(12.0), 0.0, std::log(12.0), 0.0};
    EXPECT_NEAR(constraint->value(at_capacity), 0.0, 1e-12);

    // Half used: log(12) - log(24) < 0.
    const Vector half{std::log(6.0), 0.0, std::log(6.0), 0.0};
    EXPECT_NEAR(constraint->value(half), std::log(0.5), 1e-12);

    ref::Rng rng(3);
    for (int trial = 0; trial < 5; ++trial)
        expectGradientMatches(*constraint, randomLogPoint(shape, rng));
}

TEST(GpProgram, SharingIncentiveConstraintSignsAndGradient)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = twoAgents();
    const gp::ProgramShape shape{2, 2, false};
    const auto constraint = gp::makeSharingIncentiveConstraint(
        shape, agents, capacity, 0);

    // At the equal split the constraint is tight (== 0).
    const Vector equal{std::log(12.0), std::log(6.0), std::log(12.0),
                       std::log(6.0)};
    EXPECT_NEAR(constraint->value(equal), 0.0, 1e-12);

    // More than the split: satisfied (negative).
    const Vector generous{std::log(18.0), std::log(8.0),
                          std::log(6.0), std::log(4.0)};
    EXPECT_LT(constraint->value(generous), 0.0);

    ref::Rng rng(5);
    for (int trial = 0; trial < 5; ++trial)
        expectGradientMatches(*constraint, randomLogPoint(shape, rng));
}

TEST(GpProgram, EnvyFreeConstraintMatchesUtilityComparison)
{
    const auto agents = twoAgents();
    const gp::ProgramShape shape{2, 2, false};
    const auto constraint =
        gp::makeEnvyFreeConstraint(shape, agents, 0, 1);

    // Agent 0 at the paper's REF point does not envy agent 1.
    const Vector ref_point{std::log(18.0), std::log(4.0),
                           std::log(6.0), std::log(8.0)};
    EXPECT_LT(constraint->value(ref_point), 0.0);

    // Swap the bundles: now agent 0 holds the worse one and envies.
    const Vector swapped{std::log(6.0), std::log(8.0),
                         std::log(18.0), std::log(4.0)};
    EXPECT_GT(constraint->value(swapped), 0.0);

    ref::Rng rng(7);
    for (int trial = 0; trial < 5; ++trial)
        expectGradientMatches(*constraint, randomLogPoint(shape, rng));
}

TEST(GpProgram, ParetoConstraintZeroOnContractCurve)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = twoAgents();
    const gp::ProgramShape shape{2, 2, false};
    const auto constraint =
        gp::makeParetoConstraint(shape, agents, 1, 1);

    // The REF point satisfies the Eq. 10 tangency exactly.
    const Vector ref_point{std::log(18.0), std::log(4.0),
                           std::log(6.0), std::log(8.0)};
    EXPECT_NEAR(constraint->value(ref_point), 0.0, 1e-12);

    // The equal split does not (different MRS).
    const Vector equal{std::log(12.0), std::log(6.0), std::log(12.0),
                       std::log(6.0)};
    EXPECT_GT(std::abs(constraint->value(equal)), 0.1);

    ref::Rng rng(9);
    for (int trial = 0; trial < 5; ++trial)
        expectGradientMatches(*constraint, randomLogPoint(shape, rng));
}

TEST(GpProgram, LogWeightedUtilityMatchesDirectComputation)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = twoAgents();
    const gp::ProgramShape shape{2, 2, false};
    const Vector point{std::log(18.0), std::log(4.0), std::log(6.0),
                       std::log(8.0)};
    const double expected =
        0.6 * std::log(18.0 / 24.0) + 0.4 * std::log(4.0 / 12.0);
    EXPECT_NEAR(
        gp::logWeightedUtility(shape, agents, capacity, point, 0),
        expected, 1e-12);
}

TEST(GpProgram, AppendFairnessConstraintCounts)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    for (int i = 0; i < 4; ++i) {
        agents.emplace_back("a" + std::to_string(i),
                            CobbDouglasUtility({0.5, 0.5}));
    }
    const gp::ProgramShape shape{4, 2, false};
    ref::solver::ConstrainedProgram program;
    gp::appendFairnessConstraints(shape, agents, capacity, program);
    // SI: N, EF: N(N-1), PE equalities: (N-1)(R-1).
    EXPECT_EQ(program.inequalities.size(), 4u + 12u);
    EXPECT_EQ(program.equalities.size(), 3u);
}

TEST(GpProgram, EqualSplitStartIsStrictlyInsideCapacity)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const gp::ProgramShape shape{3, 2, false};
    const Vector start = gp::equalSplitStart(shape, capacity);
    for (std::size_t r = 0; r < 2; ++r) {
        const auto constraint =
            gp::makeCapacityConstraint(shape, capacity, r);
        EXPECT_LT(constraint->value(start), 0.0);
    }
}

} // namespace
