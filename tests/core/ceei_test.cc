#include "core/ceei.hh"

#include <gtest/gtest.h>

#include "core/proportional_elasticity.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

AgentList
paperAgents()
{
    AgentList agents;
    agents.emplace_back("user1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

TEST(Ceei, ClosedFormEqualsProportionalElasticity)
{
    // The paper's Section 4.2 equivalence: CEEI == REF for re-scaled
    // Cobb-Douglas utilities.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const auto ceei =
        CeeiMarket(agents, capacity).solveClosedForm();
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 2; ++r)
            EXPECT_NEAR(ceei.allocation.at(i, r), ref_alloc.at(i, r),
                        1e-12);
}

TEST(Ceei, TatonnementConvergesToClosedForm)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const CeeiMarket market(paperAgents(), capacity);
    const auto closed = market.solveClosedForm();
    const auto iterative = market.solveTatonnement();
    EXPECT_TRUE(iterative.converged);
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t r = 0; r < 2; ++r) {
            EXPECT_NEAR(iterative.allocation.at(i, r),
                        closed.allocation.at(i, r), 1e-6);
        }
    }
}

TEST(Ceei, MarketClearsAtEquilibriumPrices)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const CeeiMarket market(paperAgents(), capacity);
    const auto solution = market.solveClosedForm();
    const auto totals = solution.allocation.totals();
    EXPECT_NEAR(totals[0], 24.0, 1e-9);
    EXPECT_NEAR(totals[1], 12.0, 1e-9);
}

TEST(Ceei, PricesNormalizedToTotalBudget)
{
    // sum_r p_r C_r == 1 (all budgets spent).
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto solution =
        CeeiMarket(paperAgents(), capacity).solveClosedForm();
    double market_value = 0;
    for (std::size_t r = 0; r < 2; ++r)
        market_value += solution.prices[r] * capacity.capacity(r);
    EXPECT_NEAR(market_value, 1.0, 1e-12);
}

TEST(Ceei, ScarceDemandedResourceIsPricier)
{
    // Two agents both craving resource 0 push its (per-unit) price
    // above the equal-value level.
    const auto capacity = SystemCapacity::fromCapacities({1.0, 1.0});
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.9, 0.1}));
    agents.emplace_back("b", CobbDouglasUtility({0.8, 0.2}));
    const auto solution =
        CeeiMarket(agents, capacity).solveClosedForm();
    EXPECT_GT(solution.prices[0], solution.prices[1]);
}

TEST(Ceei, DemandSpendsElasticityFractionOfBudget)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const CeeiMarket market(paperAgents(), capacity);
    const Vector prices{0.02, 0.05};
    const Vector bundle = market.demand(0, prices, 0.5);
    // Agent 0 (rescaled 0.6/0.4) spends 0.3 on resource 0.
    EXPECT_NEAR(bundle[0] * prices[0], 0.3, 1e-12);
    EXPECT_NEAR(bundle[1] * prices[1], 0.2, 1e-12);
}

TEST(Ceei, RandomPopulationsAgreeWithRef)
{
    ref::Rng rng(31);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t n = 2 + trial;
        const std::size_t r = 2 + trial % 2;
        std::vector<double> caps(r);
        for (auto &c : caps)
            c = rng.uniform(1.0, 50.0);
        const auto capacity = SystemCapacity::fromCapacities(caps);
        AgentList agents;
        for (std::size_t i = 0; i < n; ++i) {
            Vector alphas(r);
            for (auto &a : alphas)
                a = rng.uniform(0.1, 1.0);
            agents.emplace_back("a" + std::to_string(i),
                                CobbDouglasUtility(alphas));
        }
        const auto ceei =
            CeeiMarket(agents, capacity).solveClosedForm();
        const auto ref_alloc =
            ProportionalElasticityMechanism().allocate(agents,
                                                       capacity);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t k = 0; k < r; ++k) {
                EXPECT_NEAR(ceei.allocation.at(i, k),
                            ref_alloc.at(i, k), 1e-9);
            }
        }
    }
}

TEST(Ceei, RejectsBadInput)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    EXPECT_THROW(CeeiMarket({}, capacity), ref::FatalError);
    const CeeiMarket market(paperAgents(), capacity);
    EXPECT_THROW(market.demand(5, {0.1, 0.1}, 0.5), ref::FatalError);
    EXPECT_THROW(market.demand(0, {0.1}, 0.5), ref::FatalError);
    EXPECT_THROW(market.demand(0, {0.1, 0.0}, 0.5), ref::FatalError);
    EXPECT_THROW(market.demand(0, {0.1, 0.1}, 0.0), ref::FatalError);
}

} // namespace
