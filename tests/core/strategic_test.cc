#include "core/strategic.hh"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/math.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

AgentList
uniformRandomAgents(std::size_t n, std::size_t resources,
                    std::uint64_t seed)
{
    ref::Rng rng(seed);
    AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        Vector alphas(resources);
        for (auto &alpha : alphas)
            alpha = rng.uniform(0.05, 1.0);
        agents.emplace_back("agent-" + std::to_string(i),
                            CobbDouglasUtility(alphas));
    }
    return agents;
}

TEST(Strategic, TruthfulUtilityMatchesRefAllocation)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("u1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("u2", CobbDouglasUtility({0.2, 0.8}));
    const StrategicAnalysis analysis(agents, capacity);
    // Truthful report yields the (18, 4) bundle valued with the true
    // rescaled utility.
    const double expected =
        std::pow(18.0, 0.6) * std::pow(4.0, 0.4);
    EXPECT_NEAR(analysis.utilityFromReport(0, {0.6, 0.4}), expected,
                1e-9);
}

TEST(Strategic, ReportIsScaleInvariant)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = uniformRandomAgents(3, 2, 7);
    const StrategicAnalysis analysis(agents, capacity);
    EXPECT_NEAR(analysis.utilityFromReport(0, {0.3, 0.7}),
                analysis.utilityFromReport(0, {3.0, 7.0}), 1e-9);
}

TEST(Strategic, SmallSystemRewardsLying)
{
    // With only two agents, strategy-proofness fails: the best
    // response deviates from the truth and gains.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("u1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("u2", CobbDouglasUtility({0.2, 0.8}));
    const StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(0);
    EXPECT_GT(best.gainRatio, 1.01);
    EXPECT_GT(best.reportDeviation, 0.05);
}

TEST(Strategic, GainNeverBelowTruthful)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto agents = uniformRandomAgents(4, 2, seed);
        const StrategicAnalysis analysis(agents, capacity);
        const auto best = analysis.bestResponse(0);
        EXPECT_GE(best.gainRatio, 1.0);
    }
}

/**
 * SPL property (Section 4.3): as the population grows, the best
 * response converges to the truth and the gain ratio to one. The
 * paper's example uses 64 tasks with uniform elasticities.
 */
class SplConvergence : public ::testing::TestWithParam<int>
{};

TEST_P(SplConvergence, GainShrinksWithPopulation)
{
    const int n = GetParam();
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = uniformRandomAgents(
        static_cast<std::size_t>(n), 2, 42);
    const StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(0);
    // Thresholds loose for small n, tight for the 64-task example.
    const double bound = n >= 64 ? 1.0005 : (n >= 16 ? 1.01 : 1.2);
    EXPECT_LT(best.gainRatio, bound) << "n = " << n;
    if (n >= 64) {
        EXPECT_LT(best.reportDeviation, 0.05);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplConvergence,
                         ::testing::Values(2, 4, 16, 64, 128));

TEST(Strategic, ThreeResourceBestResponseUsesSimplexSearch)
{
    const auto capacity =
        SystemCapacity::fromCapacities({10.0, 20.0, 30.0});
    const auto agents = uniformRandomAgents(32, 3, 11);
    const StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(3);
    EXPECT_GE(best.gainRatio, 1.0);
    EXPECT_LT(best.gainRatio, 1.01);
    // Report stays on the simplex.
    double total = 0;
    for (double v : best.report)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

/**
 * SPL at finite N, quantified (Appendix A): lying always weakly
 * gains, the gain decays monotonically in trend as the honest
 * population grows from 2 to 256, and the best response itself
 * converges to the truthful report.
 */
TEST(Strategic, FiniteNGainDecaysMonotonically)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    double previousGain = std::numeric_limits<double>::infinity();
    double previousDeviation =
        std::numeric_limits<double>::infinity();
    for (const std::size_t n : {2, 4, 8, 16, 32, 64, 128, 256}) {
        const auto agents = uniformRandomAgents(n, 2, 42);
        const StrategicAnalysis analysis(agents, capacity);
        const auto best = analysis.bestResponse(0);
        // Lying never loses: the truthful report is always feasible.
        EXPECT_GE(best.gainRatio, 1.0) << "n = " << n;
        // Trend decay: doubling the population never increases the
        // liar's edge by more than numerical slack.
        EXPECT_LE(best.gainRatio, previousGain * (1.0 + 1e-9))
            << "n = " << n;
        EXPECT_LE(best.reportDeviation,
                  previousDeviation + 1e-9)
            << "n = " << n;
        previousGain = best.gainRatio;
        previousDeviation = best.reportDeviation;
    }
    // At n = 256 the mechanism is strategy-proof for all practical
    // purposes: the report deviation has collapsed toward zero.
    EXPECT_LT(previousGain, 1.00001);
    EXPECT_LT(previousDeviation, 0.002);
}

/** The free-function form agrees with the registry-backed one. */
TEST(Strategic, BestResponseAgainstMatchesAnalysis)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = uniformRandomAgents(5, 2, 9);
    const StrategicAnalysis analysis(agents, capacity);
    const auto viaAnalysis = analysis.bestResponse(2);

    Vector others(2, 0.0);
    for (std::size_t i = 0; i < agents.size(); ++i) {
        if (i == 2)
            continue;
        const Vector rescaled =
            ref::normalizeToUnitSum(agents[i].utility().elasticities());
        for (std::size_t r = 0; r < 2; ++r)
            others[r] += rescaled[r];
    }
    const auto direct = bestResponseAgainst(
        agents[2].utility().elasticities(), others, capacity);
    EXPECT_NEAR(direct.gainRatio, viaAnalysis.gainRatio, 1e-9);
    EXPECT_NEAR(direct.utility, viaAnalysis.utility, 1e-9);
}

/**
 * Degenerate simplex corners must not produce NaN/Inf reports: the
 * search is parameterized in clamped log-ratios exactly so that
 * near-zero elasticities and lopsided opponent mass stay finite.
 */
TEST(Strategic, BestResponseSurvivesDegenerateCorners)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const std::vector<std::pair<Vector, Vector>> corners = {
        // Truth pinned at a simplex corner.
        {{1e-12, 1.0}, {0.5, 0.5}},
        {{1.0, 1e-12}, {0.5, 0.5}},
        // Opponent mass entirely on one resource: the liar owns the
        // other resource outright.
        {{0.6, 0.4}, {0.0, 5.0}},
        {{0.6, 0.4}, {5.0, 0.0}},
        // No opponents at all: every report wins everything, so the
        // search must floor back to the truth.
        {{0.6, 0.4}, {0.0, 0.0}},
        // Both degenerate at once.
        {{1e-12, 1.0}, {0.0, 3.0}},
    };
    for (const auto &[alphas, others] : corners) {
        const auto best =
            bestResponseAgainst(alphas, others, capacity);
        SCOPED_TRACE(::testing::Message()
                     << "alphas = {" << alphas[0] << ", " << alphas[1]
                     << "}, others = {" << others[0] << ", "
                     << others[1] << "}");
        EXPECT_TRUE(std::isfinite(best.utility));
        EXPECT_TRUE(std::isfinite(best.gainRatio));
        EXPECT_GE(best.gainRatio, 1.0);
        double total = 0;
        for (const double v : best.report) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0);
            total += v;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

/** Same hardening on the 3-resource Nelder-Mead path. */
TEST(Strategic, SimplexSearchSurvivesDegenerateCorners)
{
    const auto capacity =
        SystemCapacity::fromCapacities({10.0, 20.0, 30.0});
    const std::vector<std::pair<Vector, Vector>> corners = {
        {{1e-12, 1e-12, 1.0}, {0.4, 0.3, 0.3}},
        {{0.4, 0.3, 0.3}, {0.0, 0.0, 4.0}},
        {{1e-12, 0.5, 0.5}, {2.0, 0.0, 0.0}},
        {{0.3, 0.3, 0.4}, {0.0, 0.0, 0.0}},
    };
    for (const auto &[alphas, others] : corners) {
        const auto best =
            bestResponseAgainst(alphas, others, capacity);
        SCOPED_TRACE(::testing::Message()
                     << "alphas[2] = " << alphas[2]
                     << ", others[2] = " << others[2]);
        EXPECT_TRUE(std::isfinite(best.utility));
        EXPECT_GE(best.gainRatio, 1.0);
        double total = 0;
        for (const double v : best.report) {
            EXPECT_TRUE(std::isfinite(v));
            total += v;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

/**
 * Regression: the pre-hardening search seeded Nelder-Mead with raw
 * log(a_r / a_0), which overflowed exp() for tiny a_0 and returned a
 * NaN utility that then compared false against every alternative.
 * The clamped parameterization must instead recover a finite answer
 * that at least matches truth-telling.
 */
TEST(Strategic, TinyFirstElasticityDoesNotPoisonSearch)
{
    const auto capacity =
        SystemCapacity::fromCapacities({10.0, 20.0, 30.0});
    const Vector alphas = {1e-300, 0.5, 0.5};
    const Vector others = {0.7, 0.9, 1.1};
    const auto best = bestResponseAgainst(alphas, others, capacity);
    EXPECT_TRUE(std::isfinite(best.utility));
    EXPECT_TRUE(std::isfinite(best.truthfulUtility));
    EXPECT_GE(best.utility, best.truthfulUtility);
}

TEST(Strategic, RejectsBadInput)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList one;
    one.emplace_back("solo", CobbDouglasUtility({0.5, 0.5}));
    EXPECT_THROW(StrategicAnalysis(one, capacity), ref::FatalError);

    const auto agents = uniformRandomAgents(2, 2, 1);
    const StrategicAnalysis analysis(agents, capacity);
    EXPECT_THROW(analysis.utilityFromReport(5, {0.5, 0.5}),
                 ref::FatalError);
    EXPECT_THROW(analysis.utilityFromReport(0, {0.5}),
                 ref::FatalError);
    EXPECT_THROW(analysis.bestResponse(9), ref::FatalError);
}

} // namespace
