#include "core/strategic.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

AgentList
uniformRandomAgents(std::size_t n, std::size_t resources,
                    std::uint64_t seed)
{
    ref::Rng rng(seed);
    AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        Vector alphas(resources);
        for (auto &alpha : alphas)
            alpha = rng.uniform(0.05, 1.0);
        agents.emplace_back("agent-" + std::to_string(i),
                            CobbDouglasUtility(alphas));
    }
    return agents;
}

TEST(Strategic, TruthfulUtilityMatchesRefAllocation)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("u1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("u2", CobbDouglasUtility({0.2, 0.8}));
    const StrategicAnalysis analysis(agents, capacity);
    // Truthful report yields the (18, 4) bundle valued with the true
    // rescaled utility.
    const double expected =
        std::pow(18.0, 0.6) * std::pow(4.0, 0.4);
    EXPECT_NEAR(analysis.utilityFromReport(0, {0.6, 0.4}), expected,
                1e-9);
}

TEST(Strategic, ReportIsScaleInvariant)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = uniformRandomAgents(3, 2, 7);
    const StrategicAnalysis analysis(agents, capacity);
    EXPECT_NEAR(analysis.utilityFromReport(0, {0.3, 0.7}),
                analysis.utilityFromReport(0, {3.0, 7.0}), 1e-9);
}

TEST(Strategic, SmallSystemRewardsLying)
{
    // With only two agents, strategy-proofness fails: the best
    // response deviates from the truth and gains.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("u1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("u2", CobbDouglasUtility({0.2, 0.8}));
    const StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(0);
    EXPECT_GT(best.gainRatio, 1.01);
    EXPECT_GT(best.reportDeviation, 0.05);
}

TEST(Strategic, GainNeverBelowTruthful)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto agents = uniformRandomAgents(4, 2, seed);
        const StrategicAnalysis analysis(agents, capacity);
        const auto best = analysis.bestResponse(0);
        EXPECT_GE(best.gainRatio, 1.0);
    }
}

/**
 * SPL property (Section 4.3): as the population grows, the best
 * response converges to the truth and the gain ratio to one. The
 * paper's example uses 64 tasks with uniform elasticities.
 */
class SplConvergence : public ::testing::TestWithParam<int>
{};

TEST_P(SplConvergence, GainShrinksWithPopulation)
{
    const int n = GetParam();
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = uniformRandomAgents(
        static_cast<std::size_t>(n), 2, 42);
    const StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(0);
    // Thresholds loose for small n, tight for the 64-task example.
    const double bound = n >= 64 ? 1.0005 : (n >= 16 ? 1.01 : 1.2);
    EXPECT_LT(best.gainRatio, bound) << "n = " << n;
    if (n >= 64)
        EXPECT_LT(best.reportDeviation, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplConvergence,
                         ::testing::Values(2, 4, 16, 64, 128));

TEST(Strategic, ThreeResourceBestResponseUsesSimplexSearch)
{
    const auto capacity =
        SystemCapacity::fromCapacities({10.0, 20.0, 30.0});
    const auto agents = uniformRandomAgents(32, 3, 11);
    const StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(3);
    EXPECT_GE(best.gainRatio, 1.0);
    EXPECT_LT(best.gainRatio, 1.01);
    // Report stays on the simplex.
    double total = 0;
    for (double v : best.report)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Strategic, RejectsBadInput)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList one;
    one.emplace_back("solo", CobbDouglasUtility({0.5, 0.5}));
    EXPECT_THROW(StrategicAnalysis(one, capacity), ref::FatalError);

    const auto agents = uniformRandomAgents(2, 2, 1);
    const StrategicAnalysis analysis(agents, capacity);
    EXPECT_THROW(analysis.utilityFromReport(5, {0.5, 0.5}),
                 ref::FatalError);
    EXPECT_THROW(analysis.utilityFromReport(0, {0.5}),
                 ref::FatalError);
    EXPECT_THROW(analysis.bestResponse(9), ref::FatalError);
}

} // namespace
