#include "core/edgeworth.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "util/random.hh"
#include "util/logging.hh"

namespace {

using namespace ref::core;

EdgeworthBox
paperBox()
{
    return EdgeworthBox(
        Agent("user1", CobbDouglasUtility({0.6, 0.4})),
        Agent("user2", CobbDouglasUtility({0.2, 0.8})),
        SystemCapacity::cacheAndBandwidthExample());
}

TEST(Edgeworth, DimensionsMatchCapacities)
{
    const auto box = paperBox();
    EXPECT_DOUBLE_EQ(box.width(), 24.0);
    EXPECT_DOUBLE_EQ(box.height(), 12.0);
}

TEST(Edgeworth, ToAllocationComplements)
{
    // Figure 1's example point: user 1 at (6 GB/s, 8 MB) leaves
    // user 2 with (18 GB/s, 4 MB).
    const auto allocation = paperBox().toAllocation(6.0, 8.0);
    EXPECT_DOUBLE_EQ(allocation.at(1, 0), 18.0);
    EXPECT_DOUBLE_EQ(allocation.at(1, 1), 4.0);
}

TEST(Edgeworth, ContractCurveSatisfiesTangency)
{
    const auto box = paperBox();
    for (double x1 : {2.0, 6.0, 12.0, 18.0, 22.0}) {
        const double y1 = box.contractCurve(x1);
        ASSERT_GT(y1, 0.0);
        ASSERT_LT(y1, box.height());
        // Eq. 10: (0.6/0.4)(y1/x1) == (0.2/0.8)(y2/x2).
        const double lhs = (0.6 / 0.4) * (y1 / x1);
        const double rhs =
            (0.2 / 0.8) * ((12.0 - y1) / (24.0 - x1));
        EXPECT_NEAR(lhs, rhs, 1e-9);
        EXPECT_TRUE(box.isParetoEfficient(x1, y1, 1e-6));
    }
}

TEST(Edgeworth, ContractCurveEndsAtOrigins)
{
    const auto box = paperBox();
    EXPECT_NEAR(box.contractCurve(1e-9), 0.0, 1e-6);
    EXPECT_NEAR(box.contractCurve(24.0 - 1e-9), 12.0, 1e-6);
}

TEST(Edgeworth, RefPointLiesOnContractCurve)
{
    const auto box = paperBox();
    EXPECT_NEAR(box.contractCurve(18.0), 4.0, 1e-9);
}

TEST(Edgeworth, MidpointAndCornersAreEnvyFree)
{
    // Section 3.2: the midpoint and the two corners are always EF.
    const auto box = paperBox();
    EXPECT_TRUE(box.isEnvyFree(12.0, 6.0));
    EXPECT_TRUE(box.isEnvyFree(0.0, 12.0));
    EXPECT_TRUE(box.isEnvyFree(24.0, 0.0));
}

TEST(Edgeworth, EnvyBoundarySeparatesRegions)
{
    const auto box = paperBox();
    const auto boundary = box.envyBoundary(1, 10.0);
    ASSERT_TRUE(boundary.has_value());
    // User 1 is envy-free above its boundary, envious below.
    const Vector above{10.0, *boundary + 0.5};
    const Vector below{10.0, *boundary - 0.5};
    const auto &u1 = box.user1().utility();
    EXPECT_TRUE(u1.weaklyPrefers(
        above, {24.0 - 10.0, 12.0 - above[1]}));
    EXPECT_FALSE(u1.weaklyPrefers(
        below, {24.0 - 10.0, 12.0 - below[1]}, 1e-9));
}

TEST(Edgeworth, SharingIncentiveBoundaryPassesThroughMidpoint)
{
    const auto box = paperBox();
    const auto boundary = box.sharingIncentiveBoundary(1, 12.0);
    ASSERT_TRUE(boundary.has_value());
    EXPECT_NEAR(*boundary, 6.0, 1e-9);
    EXPECT_TRUE(box.hasSharingIncentives(12.0, 6.0));
}

TEST(Edgeworth, IndifferenceCurvePreservesUtility)
{
    const auto box = paperBox();
    const Vector through{6.0, 8.0};
    const auto &u1 = box.user1().utility();
    const double level = u1.logValue(through);
    for (double x : {2.0, 6.0, 10.0, 20.0}) {
        const double y = box.indifferenceCurve(1, through, x);
        EXPECT_NEAR(u1.logValue({x, y}), level, 1e-9);
    }
}

TEST(Edgeworth, IndifferenceCurveSlopesDownward)
{
    const auto box = paperBox();
    const Vector through{6.0, 8.0};
    const double y_left = box.indifferenceCurve(1, through, 4.0);
    const double y_right = box.indifferenceCurve(1, through, 8.0);
    EXPECT_GT(y_left, y_right);
}

TEST(Edgeworth, FairSegmentContainsRefPoint)
{
    // Figures 6-7: the REF allocation lies on the contract curve,
    // inside the EF set, and inside the SI-constrained fair set.
    const auto box = paperBox();
    const auto fair = box.fairSegment(false);
    ASSERT_FALSE(fair.empty);
    EXPECT_LE(fair.x1Low, 18.0);
    EXPECT_GE(fair.x1High, 18.0);
    const auto fair_si = box.fairSegment(true);
    ASSERT_FALSE(fair_si.empty);
    EXPECT_LE(fair_si.x1Low, 18.0);
    EXPECT_GE(fair_si.x1High, 18.0);
}

TEST(Edgeworth, SharingIncentivesShrinkTheFairSet)
{
    // Figure 7: SI constrains the fair set further.
    const auto box = paperBox();
    const auto fair = box.fairSegment(false);
    const auto fair_si = box.fairSegment(true);
    EXPECT_GE(fair_si.x1Low, fair.x1Low - 1e-9);
    EXPECT_LE(fair_si.x1High, fair.x1High + 1e-9);
    EXPECT_LT(fair_si.x1High - fair_si.x1Low,
              fair.x1High - fair.x1Low);
}

TEST(Edgeworth, FairSegmentPointsSatisfyAllProperties)
{
    const auto box = paperBox();
    const auto segment = box.fairSegment(true);
    ASSERT_FALSE(segment.empty);
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents{box.user1(), box.user2()};
    for (double t : {0.1, 0.5, 0.9}) {
        const double x1 =
            segment.x1Low + t * (segment.x1High - segment.x1Low);
        const double y1 = box.contractCurve(x1);
        FairnessTolerance tol;
        tol.utility = 1e-6;
        tol.mrs = 1e-6;
        const auto report = checkFairness(
            agents, capacity, box.toAllocation(x1, y1), tol);
        EXPECT_TRUE(report.allHold()) << "x1 = " << x1;
    }
}

TEST(Edgeworth, SymmetricUsersFairPointIsMidpoint)
{
    const EdgeworthBox box(
        Agent("a", CobbDouglasUtility({0.5, 0.5})),
        Agent("b", CobbDouglasUtility({0.5, 0.5})),
        SystemCapacity::fromCapacities({10.0, 10.0}));
    const double mid = box.contractCurve(5.0);
    EXPECT_NEAR(mid, 5.0, 1e-9);
    EXPECT_TRUE(box.isEnvyFree(5.0, 5.0));
    EXPECT_TRUE(box.hasSharingIncentives(5.0, 5.0));
}

/**
 * Property sweep: for ANY pair of Cobb-Douglas users, the REF
 * allocation lies on the contract curve inside the SI-constrained
 * fair set — the geometric form of the paper's Section 4.2 theorem.
 */
class EdgeworthFairSetProperty : public ::testing::TestWithParam<int>
{};

TEST_P(EdgeworthFairSetProperty, RefPointInsideFairSegment)
{
    ref::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
    for (int trial = 0; trial < 20; ++trial) {
        const CobbDouglasUtility u1(
            {rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95)});
        const CobbDouglasUtility u2(
            {rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95)});
        const auto capacity = SystemCapacity::fromCapacities(
            {rng.uniform(1.0, 50.0), rng.uniform(1.0, 50.0)});
        const EdgeworthBox box(Agent("u1", u1), Agent("u2", u2),
                               capacity);

        AgentList agents{box.user1(), box.user2()};
        const auto allocation =
            ProportionalElasticityMechanism().allocate(agents,
                                                       capacity);
        const double x1 = allocation.at(0, 0);
        const double y1 = allocation.at(0, 1);

        // On the contract curve...
        EXPECT_NEAR(box.contractCurve(x1), y1, 1e-9 * box.height())
            << "trial " << trial;
        // ...inside the SI-constrained fair segment.
        const auto segment = box.fairSegment(true);
        ASSERT_FALSE(segment.empty) << "trial " << trial;
        EXPECT_GE(x1, segment.x1Low - 1e-9) << "trial " << trial;
        EXPECT_LE(x1, segment.x1High + 1e-9) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeworthFairSetProperty,
                         ::testing::Values(1, 2, 3));

TEST(Edgeworth, RejectsBadConstruction)
{
    const auto cap3 = SystemCapacity::fromCapacities({1.0, 2.0, 3.0});
    EXPECT_THROW(
        EdgeworthBox(Agent("a", CobbDouglasUtility({0.5, 0.5})),
                     Agent("b", CobbDouglasUtility({0.5, 0.5})), cap3),
        ref::FatalError);
    const auto box = paperBox();
    EXPECT_THROW(box.contractCurve(0.0), ref::FatalError);
    EXPECT_THROW(box.contractCurve(24.0), ref::FatalError);
    EXPECT_THROW(box.envyBoundary(3, 5.0), ref::FatalError);
    EXPECT_THROW(box.toAllocation(-1.0, 5.0), ref::FatalError);
}

} // namespace
