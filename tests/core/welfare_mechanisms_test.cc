#include "core/welfare_mechanisms.hh"

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

AgentList
paperAgents()
{
    AgentList agents;
    agents.emplace_back("user1", CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

AgentList
randomAgents(std::size_t n, std::size_t resources, ref::Rng &rng)
{
    AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        Vector alphas(resources);
        for (auto &alpha : alphas)
            alpha = rng.uniform(0.1, 1.0);
        agents.emplace_back("agent-" + std::to_string(i),
                            CobbDouglasUtility(alphas));
    }
    return agents;
}

TEST(MaxWelfareUnfair, MatchesClosedFormRawProportionality)
{
    // Maximizing prod U_i subject only to capacity has the closed
    // form x_ir = a_ir / sum_j a_jr * C_r with RAW elasticities —
    // the analytic check for the GP solver.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.9, 0.3}));
    agents.emplace_back("b", CobbDouglasUtility({0.2, 0.6}));
    const auto allocation =
        makeMaxWelfareUnfair().allocate(agents, capacity);
    EXPECT_NEAR(allocation.at(0, 0), 0.9 / 1.1 * 24.0, 1e-3);
    EXPECT_NEAR(allocation.at(0, 1), 0.3 / 0.9 * 12.0, 1e-3);
    EXPECT_NEAR(allocation.at(1, 0), 0.2 / 1.1 * 24.0, 1e-3);
    EXPECT_NEAR(allocation.at(1, 1), 0.6 / 0.9 * 12.0, 1e-3);
}

TEST(MaxWelfareUnfair, EqualsRefForRescaledElasticities)
{
    // When all reported elasticities already sum to one, raw == re-
    // scaled proportionality, so the unfair Nash optimum IS the REF
    // point (the paper's Nash-bargaining equivalence, Eq. 14).
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const auto gp = makeMaxWelfareUnfair().allocate(agents, capacity);
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 2; ++r)
            EXPECT_NEAR(gp.at(i, r), ref_alloc.at(i, r), 1e-3);
}

TEST(EqualSlowdown, EqualizesWeightedUtilities)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const auto allocation =
        makeEqualSlowdown().allocate(agents, capacity);
    const auto utilities =
        weightedUtilities(agents, allocation, capacity);
    EXPECT_NEAR(utilities[0], utilities[1], 1e-3);
    EXPECT_NEAR(unfairnessIndex(agents, allocation, capacity), 1.0,
                1e-3);
}

TEST(EqualSlowdown, BeatsEqualSplitForTheWorstAgent)
{
    // The max-min optimum can be no worse than the equal split's
    // minimum weighted utility.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    ref::Rng rng(17);
    const auto agents = randomAgents(4, 2, rng);
    const auto allocation =
        makeEqualSlowdown().allocate(agents, capacity);
    const auto equal = Allocation::equalSplit(4, capacity);
    EXPECT_GE(egalitarianWelfare(agents, allocation, capacity) + 1e-4,
              egalitarianWelfare(agents, equal, capacity));
}

TEST(MaxWelfareFair, SatisfiesAllFairnessProperties)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const auto allocation =
        makeMaxWelfareFair().allocate(agents, capacity);
    FairnessTolerance tol;
    tol.utility = 1e-3;
    tol.mrs = 1e-2;
    tol.capacity = 1e-6;
    const auto report =
        checkFairness(agents, capacity, allocation, tol);
    EXPECT_TRUE(report.allHold());
}

TEST(MaxWelfareFair, CoincidesWithRefOnPaperExample)
{
    // Figures 13-14 find "no performance difference" between REF and
    // welfare maximization under fairness constraints; on the 2x2
    // example the allocations themselves coincide.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const auto gp = makeMaxWelfareFair().allocate(agents, capacity);
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t r = 0; r < 2; ++r)
            EXPECT_NEAR(gp.at(i, r), ref_alloc.at(i, r), 0.05);
}

TEST(WelfareMechanisms, UnfairUpperBoundsConstrainedWelfare)
{
    // Adding fairness constraints can only reduce attainable Nash
    // welfare.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    ref::Rng rng(23);
    const auto agents = randomAgents(4, 2, rng);
    const auto unfair =
        makeMaxWelfareUnfair().allocate(agents, capacity);
    const auto fair = makeMaxWelfareFair().allocate(agents, capacity);
    EXPECT_GE(nashWelfare(agents, unfair, capacity) + 1e-6,
              nashWelfare(agents, fair, capacity));
}

TEST(WelfareMechanisms, NamesDistinguishVariants)
{
    EXPECT_EQ(makeMaxWelfareUnfair().name(), "max-welfare");
    EXPECT_EQ(makeMaxWelfareFair().name(), "max-welfare+fairness");
    EXPECT_EQ(makeEqualSlowdown().name(), "equal-slowdown");
    EXPECT_EQ(makeEgalitarianFair().name(),
              "equal-slowdown+fairness");
}

TEST(WelfareMechanisms, EgalitarianFairSatisfiesFairness)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    const auto allocation =
        makeEgalitarianFair().allocate(agents, capacity);
    FairnessTolerance tol;
    tol.utility = 1e-3;
    tol.mrs = 5e-2;
    tol.capacity = 1e-6;
    const auto report =
        checkFairness(agents, capacity, allocation, tol);
    EXPECT_TRUE(report.allHold())
        << "SI: " << report.sharingIncentives.binding
        << " EF: " << report.envyFreeness.binding
        << " PE: " << report.paretoEfficiency.binding;
}

TEST(WelfareMechanisms, ProjectionExhaustsCapacity)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = paperAgents();
    for (const auto &mechanism :
         {makeMaxWelfareUnfair(), makeEqualSlowdown(),
          makeMaxWelfareFair()}) {
        const auto allocation = mechanism.allocate(agents, capacity);
        EXPECT_TRUE(allocation.exhaustive(capacity, 1e-6))
            << mechanism.name();
    }
}

TEST(WelfareMechanisms, RejectBadShapes)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.3, 0.2}));
    EXPECT_THROW(makeMaxWelfareUnfair().allocate(agents, capacity),
                 ref::FatalError);
    EXPECT_THROW(makeEqualSlowdown().allocate({}, capacity),
                 ref::FatalError);
}

/**
 * Property sweep: fairness-constrained welfare mechanisms satisfy SI
 * and EF for random populations, and equal slowdown equalizes the
 * weighted utilities it optimizes.
 */
class WelfareMechanismProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(WelfareMechanismProperty, FairVariantsSatisfySiAndEf)
{
    const auto [n, seed] = GetParam();
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    ref::Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
    const auto agents =
        randomAgents(static_cast<std::size_t>(n), 2, rng);
    const auto allocation =
        makeMaxWelfareFair().allocate(agents, capacity);
    FairnessTolerance tol;
    tol.utility = 2e-3;
    tol.mrs = 5e-2;
    tol.capacity = 1e-6;
    const auto report =
        checkFairness(agents, capacity, allocation, tol);
    EXPECT_TRUE(report.sharingIncentives.satisfied)
        << report.sharingIncentives.binding;
    EXPECT_TRUE(report.envyFreeness.satisfied)
        << report.envyFreeness.binding;
}

TEST_P(WelfareMechanismProperty, EqualSlowdownEqualizes)
{
    const auto [n, seed] = GetParam();
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    ref::Rng rng(static_cast<std::uint64_t>(seed) * 11 + 3);
    const auto agents =
        randomAgents(static_cast<std::size_t>(n), 2, rng);
    const auto allocation =
        makeEqualSlowdown().allocate(agents, capacity);
    EXPECT_NEAR(unfairnessIndex(agents, allocation, capacity), 1.0,
                0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WelfareMechanismProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(1, 2)));

TEST(WelfareMechanisms, ThreeResourceFairVariant)
{
    const auto capacity =
        SystemCapacity::fromCapacities({10.0, 20.0, 30.0});
    AgentList agents;
    agents.emplace_back("a", CobbDouglasUtility({0.5, 0.3, 0.2}));
    agents.emplace_back("b", CobbDouglasUtility({0.2, 0.2, 0.6}));
    agents.emplace_back("c", CobbDouglasUtility({0.3, 0.5, 0.2}));
    const auto allocation =
        makeMaxWelfareFair().allocate(agents, capacity);
    FairnessTolerance tol;
    tol.utility = 2e-3;
    tol.mrs = 5e-2;
    tol.capacity = 1e-6;
    const auto report =
        checkFairness(agents, capacity, allocation, tol);
    EXPECT_TRUE(report.allHold())
        << "SI: " << report.sharingIncentives.binding
        << " EF: " << report.envyFreeness.binding
        << " PE: " << report.paretoEfficiency.binding;
}

TEST(WelfareMechanisms, FourAgentMixedPopulation)
{
    // A C-heavy and M-heavy mix: fairness-constrained welfare must
    // sit between the REF point's welfare and the unfair optimum.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("c1", CobbDouglasUtility({0.3, 0.7}));
    agents.emplace_back("c2", CobbDouglasUtility({0.4, 0.6}));
    agents.emplace_back("m1", CobbDouglasUtility({0.8, 0.2}));
    agents.emplace_back("m2", CobbDouglasUtility({0.7, 0.3}));
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    const auto fair = makeMaxWelfareFair().allocate(agents, capacity);
    const auto unfair =
        makeMaxWelfareUnfair().allocate(agents, capacity);
    const double w_ref = nashWelfare(agents, ref_alloc, capacity);
    const double w_fair = nashWelfare(agents, fair, capacity);
    const double w_unfair = nashWelfare(agents, unfair, capacity);
    EXPECT_GE(w_fair + 1e-6, w_ref);
    EXPECT_GE(w_unfair + 1e-6, w_fair);
}

} // namespace
