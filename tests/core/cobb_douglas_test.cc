#include "core/cobb_douglas.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using ref::core::CobbDouglasUtility;
using ref::core::Vector;

TEST(CobbDouglas, EvaluatesPaperExample)
{
    // u1 = x^0.6 y^0.4 from Section 3.
    const CobbDouglasUtility u1({0.6, 0.4});
    EXPECT_NEAR(u1.value({18.0, 4.0}),
                std::pow(18.0, 0.6) * std::pow(4.0, 0.4), 1e-12);
}

TEST(CobbDouglas, ScaleMultiplies)
{
    const CobbDouglasUtility u(2.5, {0.5, 0.5});
    EXPECT_NEAR(u.value({4.0, 9.0}), 2.5 * 6.0, 1e-12);
}

TEST(CobbDouglas, ZeroAllocationGivesZeroUtility)
{
    const CobbDouglasUtility u({0.6, 0.4});
    EXPECT_DOUBLE_EQ(u.value({0.0, 5.0}), 0.0);
    EXPECT_DOUBLE_EQ(u.value({5.0, 0.0}), 0.0);
    EXPECT_TRUE(std::isinf(u.logValue({0.0, 5.0})));
}

TEST(CobbDouglas, LogValueConsistentWithValue)
{
    const CobbDouglasUtility u(1.5, {0.3, 0.7});
    const Vector x{2.0, 8.0};
    EXPECT_NEAR(std::exp(u.logValue(x)), u.value(x), 1e-12);
}

TEST(CobbDouglas, MrsMatchesEquationNine)
{
    // MRS_{x,y} = (0.6/0.4) * (y/x) for user 1 of the example.
    const CobbDouglasUtility u1({0.6, 0.4});
    EXPECT_NEAR(u1.marginalRateOfSubstitution(0, 1, {6.0, 8.0}),
                (0.6 / 0.4) * (8.0 / 6.0), 1e-12);
}

TEST(CobbDouglas, MrsIsReciprocalUnderSwap)
{
    const CobbDouglasUtility u({0.25, 0.75});
    const Vector x{3.0, 5.0};
    EXPECT_NEAR(u.marginalRateOfSubstitution(0, 1, x) *
                    u.marginalRateOfSubstitution(1, 0, x),
                1.0, 1e-12);
}

TEST(CobbDouglas, RescaledSumsToOne)
{
    const CobbDouglasUtility u(3.0, {0.9, 0.3, 0.6});
    const CobbDouglasUtility rescaled = u.rescaled();
    EXPECT_NEAR(rescaled.elasticitySum(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(rescaled.scale(), 1.0);
    EXPECT_NEAR(rescaled.elasticity(0), 0.5, 1e-12);
    EXPECT_NEAR(rescaled.elasticity(1), 1.0 / 6.0, 1e-12);
    EXPECT_TRUE(rescaled.isRescaled());
    EXPECT_FALSE(u.isRescaled());
}

TEST(CobbDouglas, RescalingPreservesPreferences)
{
    // Rescaling is a monotone transform: orderings survive.
    ref::Rng rng(5);
    const CobbDouglasUtility u(2.0, {0.8, 0.5});
    const CobbDouglasUtility rescaled = u.rescaled();
    for (int trial = 0; trial < 200; ++trial) {
        const Vector a{rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)};
        const Vector b{rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)};
        EXPECT_EQ(u.strictlyPrefers(a, b),
                  rescaled.strictlyPrefers(a, b));
    }
}

TEST(CobbDouglas, RescaledIsHomogeneousOfDegreeOne)
{
    // u(kx) = k u(x), the property behind the CEEI equivalence.
    const CobbDouglasUtility u =
        CobbDouglasUtility(4.0, {0.7, 0.2, 0.4}).rescaled();
    const Vector x{1.0, 2.0, 3.0};
    const Vector doubled{2.0, 4.0, 6.0};
    EXPECT_NEAR(u.value(doubled), 2.0 * u.value(x), 1e-12);
}

TEST(CobbDouglas, UnscaledIsNotHomogeneousOfDegreeOne)
{
    const CobbDouglasUtility u({0.9, 0.9});  // Degree 1.8.
    const Vector x{1.0, 1.0};
    EXPECT_GT(u.value({2.0, 2.0}), 2.0 * u.value(x) + 0.5);
}

TEST(CobbDouglas, PreferenceRelations)
{
    const CobbDouglasUtility u({0.6, 0.4});
    const Vector better{10.0, 10.0};
    const Vector worse{1.0, 1.0};
    EXPECT_TRUE(u.strictlyPrefers(better, worse));
    EXPECT_FALSE(u.strictlyPrefers(worse, better));
    EXPECT_TRUE(u.weaklyPrefers(better, worse));
    EXPECT_TRUE(u.weaklyPrefers(better, better));
    EXPECT_TRUE(u.indifferent(better, better));
    EXPECT_FALSE(u.indifferent(better, worse));
}

TEST(CobbDouglas, IndifferenceAlongSubstitution)
{
    // (4, 1) and (1, 8): the Section 3 substitution example requires
    // equal utility for elasticities (0.6, 0.4) scaled suitably; use
    // exact algebra: x^a y^b equal when x1^a y1^b == x2^a y2^b.
    const CobbDouglasUtility u({0.5, 0.5});
    EXPECT_TRUE(u.indifferent({4.0, 1.0}, {1.0, 4.0}));
}

TEST(CobbDouglas, BothBundlesWorthlessAreIndifferent)
{
    const CobbDouglasUtility u({0.6, 0.4});
    EXPECT_TRUE(u.indifferent({0.0, 5.0}, {3.0, 0.0}));
    EXPECT_TRUE(u.weaklyPrefers({0.0, 1.0}, {0.0, 2.0}));
}

TEST(CobbDouglas, RejectsInvalidConstruction)
{
    EXPECT_THROW(CobbDouglasUtility(0.0, {0.5}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({0.5, 0.0}), ref::FatalError);
    EXPECT_THROW(CobbDouglasUtility({0.5, -0.1}), ref::FatalError);
}

TEST(CobbDouglas, RejectsInvalidEvaluation)
{
    const CobbDouglasUtility u({0.5, 0.5});
    EXPECT_THROW(u.value({1.0}), ref::FatalError);
    EXPECT_THROW(u.value({1.0, -1.0}), ref::FatalError);
    EXPECT_THROW(u.marginalRateOfSubstitution(0, 1, {0.0, 1.0}),
                 ref::FatalError);
    EXPECT_THROW(u.marginalRateOfSubstitution(2, 0, {1.0, 1.0}),
                 ref::FatalError);
}

TEST(CobbDouglas, DiminishingMarginalReturns)
{
    // Doubling one resource less than doubles utility when its
    // elasticity is below one.
    const CobbDouglasUtility u({0.6, 0.4});
    const double base = u.value({2.0, 3.0});
    const double more = u.value({4.0, 3.0});
    EXPECT_GT(more, base);
    EXPECT_LT(more, 2.0 * base);
    // And each additional unit of the resource is worth less than
    // the previous one (concavity in the resource amount).
    const double gain_first = u.value({3.0, 3.0}) - u.value({2.0, 3.0});
    const double gain_second =
        u.value({4.0, 3.0}) - u.value({3.0, 3.0});
    EXPECT_LT(gain_second, gain_first);
}

} // namespace
