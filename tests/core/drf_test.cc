#include "core/drf.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::core;

TEST(Drf, ReproducesGhodsiNsdiExample)
{
    // The canonical DRF example: 9 CPUs and 18 GB; user A demands
    // (1 CPU, 4 GB) per task, user B (3 CPU, 1 GB). DRF gives A
    // three tasks and B two: dominant shares 2/3 each.
    const SystemCapacity capacity({{"cpu", "", 9.0},
                                   {"memory", "GB", 18.0}});
    std::vector<LeontiefAgent> agents;
    agents.emplace_back("A", LeontiefUtility({1.0, 4.0}));
    agents.emplace_back("B", LeontiefUtility({3.0, 1.0}));

    const auto result = allocateDrf(agents, capacity);
    EXPECT_NEAR(result.tasksGranted[0], 3.0, 1e-9);
    EXPECT_NEAR(result.tasksGranted[1], 2.0, 1e-9);
    EXPECT_NEAR(result.dominantShares[0], 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(result.dominantShares[1], 2.0 / 3.0, 1e-9);
    // A holds (3, 12), B holds (6, 2).
    EXPECT_NEAR(result.allocation.at(0, 0), 3.0, 1e-9);
    EXPECT_NEAR(result.allocation.at(0, 1), 12.0, 1e-9);
    EXPECT_NEAR(result.allocation.at(1, 0), 6.0, 1e-9);
    EXPECT_NEAR(result.allocation.at(1, 1), 2.0, 1e-9);
}

TEST(Drf, EqualDemandsSplitEqually)
{
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({10.0, 20.0});
    std::vector<LeontiefAgent> agents;
    for (int i = 0; i < 4; ++i) {
        agents.emplace_back("t" + std::to_string(i),
                            LeontiefUtility({1.0, 2.0}));
    }
    const auto result = allocateDrf(agents, capacity);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(result.allocation.at(i, 0), 2.5, 1e-9);
        EXPECT_NEAR(result.allocation.at(i, 1), 5.0, 1e-9);
    }
}

TEST(Drf, AllocationIsFeasibleAndSaturatesSomeResource)
{
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({7.0, 13.0, 5.0});
    std::vector<LeontiefAgent> agents;
    agents.emplace_back("a", LeontiefUtility({1.0, 2.0, 0.2}));
    agents.emplace_back("b", LeontiefUtility({0.5, 3.0, 1.0}));
    agents.emplace_back("c", LeontiefUtility({2.0, 0.5, 0.3}));
    const auto result = allocateDrf(agents, capacity);
    EXPECT_TRUE(result.allocation.feasible(capacity, 1e-9));
    const auto totals = result.allocation.totals();
    bool saturated = false;
    for (std::size_t r = 0; r < 3; ++r) {
        saturated = saturated ||
                    totals[r] >= capacity.capacity(r) * (1 - 1e-9);
    }
    EXPECT_TRUE(saturated);
}

TEST(Drf, MultiRoundProgressiveFilling)
{
    // Agent A uses only resource 0; agents B and C use only
    // resource 1. When resource 1 saturates, B and C freeze but A
    // keeps filling resource 0 (two filling rounds).
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({10.0, 10.0});
    std::vector<LeontiefAgent> agents;
    agents.emplace_back("A", LeontiefUtility({1.0, 0.0}));
    agents.emplace_back("B", LeontiefUtility({0.0, 1.0}));
    agents.emplace_back("C", LeontiefUtility({0.0, 1.0}));
    const auto result = allocateDrf(agents, capacity);
    // B and C split resource 1 at dominant share 0.5; A then takes
    // all of resource 0.
    EXPECT_NEAR(result.allocation.at(0, 0), 10.0, 1e-9);
    EXPECT_NEAR(result.allocation.at(1, 1), 5.0, 1e-9);
    EXPECT_NEAR(result.allocation.at(2, 1), 5.0, 1e-9);
    EXPECT_NEAR(result.dominantShares[0], 1.0, 1e-9);
}

TEST(Drf, EnvyFreeInLeontiefSense)
{
    // No agent values another's bundle more than its own.
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({9.0, 18.0});
    std::vector<LeontiefAgent> agents;
    agents.emplace_back("A", LeontiefUtility({1.0, 4.0}));
    agents.emplace_back("B", LeontiefUtility({3.0, 1.0}));
    const auto result = allocateDrf(agents, capacity);
    for (std::size_t i = 0; i < agents.size(); ++i) {
        const double own = agents[i].utility().value(
            result.allocation.agentShare(i));
        for (std::size_t j = 0; j < agents.size(); ++j) {
            const double other = agents[i].utility().value(
                result.allocation.agentShare(j));
            EXPECT_GE(own + 1e-9, other)
                << "agent " << i << " envies " << j;
        }
    }
}

TEST(Drf, SharingIncentivesInLeontiefSense)
{
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({9.0, 18.0});
    std::vector<LeontiefAgent> agents;
    agents.emplace_back("A", LeontiefUtility({1.0, 4.0}));
    agents.emplace_back("B", LeontiefUtility({3.0, 1.0}));
    const auto result = allocateDrf(agents, capacity);
    const Vector equal_split = capacity.equalShare(2);
    for (std::size_t i = 0; i < agents.size(); ++i) {
        EXPECT_GE(agents[i].utility().value(
                      result.allocation.agentShare(i)) +
                      1e-9,
                  agents[i].utility().value(equal_split));
    }
}

TEST(Drf, DominantShareHelper)
{
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({10.0, 20.0});
    const LeontiefUtility u({2.0, 1.0});
    // One task: 2/10 = 0.2 of resource 0, 1/20 = 0.05 of resource 1.
    EXPECT_NEAR(dominantShare(u, 1.0, capacity), 0.2, 1e-12);
    EXPECT_NEAR(dominantShare(u, 3.0, capacity), 0.6, 1e-12);
}

TEST(Drf, RejectsBadInput)
{
    const SystemCapacity capacity =
        SystemCapacity::fromCapacities({1.0, 1.0});
    EXPECT_THROW(allocateDrf({}, capacity), ref::FatalError);
    std::vector<LeontiefAgent> wrong;
    wrong.emplace_back("x", LeontiefUtility({1.0}));
    EXPECT_THROW(allocateDrf(wrong, capacity), ref::FatalError);
}

} // namespace
