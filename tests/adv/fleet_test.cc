/**
 * @file
 * The adversarial fleet against an in-process socket server: the
 * strategy-proofness experiment end to end. Liars gain at small N,
 * the gain decays as the honest population grows, text and binary
 * framings measure bit-identical numbers, the labelled cohort
 * telemetry carries the honest agents' SI/EF margins, and none of
 * it ever trips the incremental-vs-scratch self-check.
 */

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "adv/fleet.hh"
#include "net/net_test_util.hh"

namespace {

using namespace ref;

class FleetTest : public ::testing::Test
{
  protected:
    FleetTest()
    {
        svc::ServiceConfig config;
        config.epoch.verifyIncremental = true;
        harness_ =
            std::make_unique<test::ServerHarness>(config);
        connect_ =
            "127.0.0.1:" + std::to_string(harness_->port());
    }

    adv::FleetOptions options(std::size_t agents, std::size_t liars)
    {
        adv::FleetOptions opt;
        opt.connect = connect_;
        opt.agents = agents;
        opt.liars = liars;
        return opt;
    }

    std::unique_ptr<test::ServerHarness> harness_;
    std::string connect_;
};

TEST_F(FleetTest, SmallPopulationRewardsLying)
{
    const adv::FleetReport report = adv::runFleet(options(2, 1));
    // At N = 2 the liar's best response strictly beats truth.
    EXPECT_GT(report.gainRatio, 1.001);
    EXPECT_GT(report.reportDeviation, 0.01);
    EXPECT_GE(report.rounds, 1u);
    // Lying shifts shares but never breaks the mechanism's reported
    // fairness: margins are computed against the *reported* profile.
    EXPECT_GE(report.honestSiMargin, 1.0);
    EXPECT_GE(report.liarSiMargin, 1.0);
    EXPECT_EQ(harness_->service().metrics().selfCheckFailures, 0u);
}

TEST_F(FleetTest, GainDecaysWithHonestPopulation)
{
    // departAfter (the default) lets one server host both runs.
    const adv::FleetReport small = adv::runFleet(options(2, 1));
    const adv::FleetReport large = adv::runFleet(options(64, 1));
    EXPECT_GE(small.gainRatio, 1.0);
    EXPECT_GE(large.gainRatio, 1.0);
    EXPECT_LT(large.gainRatio, small.gainRatio);
    // SPL at N = 64: lying is worth a fraction of a percent.
    EXPECT_LT(large.gainRatio, 1.001);
    EXPECT_LT(large.reportDeviation, small.reportDeviation);
    EXPECT_EQ(harness_->service().metrics().selfCheckFailures, 0u);
}

TEST_F(FleetTest, TextAndBinaryFramingsMeasureIdenticalNumbers)
{
    adv::FleetOptions text = options(8, 2);
    adv::FleetOptions binary = text;
    binary.binary = true;
    const adv::FleetReport a = adv::runFleet(text);
    const adv::FleetReport b = adv::runFleet(binary);
    // Bitwise equality, not near-equality: the text framing round-
    // trips doubles losslessly, so the experiment cannot tell the
    // framings apart.
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.commands, b.commands);
    EXPECT_EQ(a.gainRatio, b.gainRatio);
    EXPECT_EQ(a.meanGainRatio, b.meanGainRatio);
    EXPECT_EQ(a.reportDeviation, b.reportDeviation);
    EXPECT_EQ(a.welfareTruthful, b.welfareTruthful);
    EXPECT_EQ(a.welfareFinal, b.welfareFinal);
    EXPECT_EQ(a.utilizationLoss, b.utilizationLoss);
    EXPECT_EQ(a.honestSiMargin, b.honestSiMargin);
    EXPECT_EQ(a.honestEfMargin, b.honestEfMargin);
    EXPECT_EQ(a.liarSiMargin, b.liarSiMargin);
}

TEST_F(FleetTest, CohortTelemetryReportsHonestMargins)
{
    const adv::FleetReport report = adv::runFleet(options(6, 2));
    // The labelled series must have produced real margins (the
    // defaults are exactly 1.0 only when no row was found, and a
    // checked flat-mode epoch always yields one).
    EXPECT_GE(report.honestSiMargin, 1.0);
    EXPECT_GE(report.honestEfMargin, 1.0);
    EXPECT_GT(report.honestSiMargin * report.honestEfMargin, 1.0);
    EXPECT_GE(report.liarSiMargin, 1.0);
}

TEST_F(FleetTest, ManyLiarsStillConvergeCleanly)
{
    adv::FleetOptions opt = options(8, 8);  // Everyone lies.
    opt.maxRounds = 32;
    const adv::FleetReport report = adv::runFleet(opt);
    EXPECT_GE(report.rounds, 1u);
    // With every agent strategic, individual gains are not
    // guaranteed, but the measurement must stay finite and the
    // service must stay self-consistent.
    EXPECT_TRUE(std::isfinite(report.gainRatio));
    EXPECT_TRUE(std::isfinite(report.utilizationLoss));
    EXPECT_EQ(harness_->service().metrics().selfCheckFailures, 0u);
}

TEST_F(FleetTest, RepeatedRunsAreDeterministic)
{
    const adv::FleetReport a = adv::runFleet(options(16, 4));
    const adv::FleetReport b = adv::runFleet(options(16, 4));
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.gainRatio, b.gainRatio);
    EXPECT_EQ(a.welfareFinal, b.welfareFinal);
    EXPECT_EQ(a.honestSiMargin, b.honestSiMargin);
}

} // namespace
