/**
 * @file
 * Integration: the Sections 2/6 argument against Leontief preferences
 * for hardware, pinned as tests. Cobb-Douglas agents forced through
 * fixed-ratio demand vectors and DRF lose utility relative to REF,
 * and DRF can strand capacity that REF always allocates.
 */

#include <gtest/gtest.h>

#include "core/drf.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

LeontiefUtility
demandVectorFor(const CobbDouglasUtility &utility,
                const SystemCapacity &capacity)
{
    const auto rescaled = utility.rescaled();
    Vector demands(capacity.count());
    for (std::size_t r = 0; r < capacity.count(); ++r)
        demands[r] = rescaled.elasticity(r) * capacity.capacity(r);
    return LeontiefUtility(demands);
}

TEST(DrfVsRef, RefNeverLosesThroughputOnRandomPopulations)
{
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    ref::Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        AgentList agents;
        std::vector<LeontiefAgent> leontief_agents;
        const std::size_t n = 2 + trial % 4;
        for (std::size_t i = 0; i < n; ++i) {
            const CobbDouglasUtility utility(
                {rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)});
            agents.emplace_back("a" + std::to_string(i), utility);
            leontief_agents.emplace_back(
                "a" + std::to_string(i),
                demandVectorFor(utility, capacity));
        }
        const auto drf = allocateDrf(leontief_agents, capacity);
        const auto ref_alloc =
            ProportionalElasticityMechanism().allocate(agents,
                                                       capacity);
        const double drf_throughput = weightedSystemThroughput(
            agents, drf.allocation, capacity);
        const double ref_throughput = weightedSystemThroughput(
            agents, ref_alloc, capacity);
        EXPECT_GE(ref_throughput + 1e-9, drf_throughput)
            << "trial " << trial;
    }
}

TEST(DrfVsRef, DrfStrandsCapacityForSkewedDemands)
{
    // One bandwidth-dominant and one balanced agent: DRF exhausts the
    // bandwidth but cannot hand out the remaining cache, because
    // fixed-ratio bundles tie the two together.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("bw-heavy", CobbDouglasUtility({0.9, 0.1}));
    agents.emplace_back("bw-lean", CobbDouglasUtility({0.7, 0.3}));
    std::vector<LeontiefAgent> leontief_agents;
    for (const auto &agent : agents) {
        leontief_agents.emplace_back(
            agent.name(), demandVectorFor(agent.utility(), capacity));
    }
    const auto drf = allocateDrf(leontief_agents, capacity);
    const auto totals = drf.allocation.totals();
    // Bandwidth saturates; a meaningful chunk of cache is stranded.
    EXPECT_NEAR(totals[0], capacity.capacity(0), 1e-6);
    EXPECT_LT(totals[1], 0.9 * capacity.capacity(1));
    // REF wastes nothing.
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    EXPECT_TRUE(ref_alloc.exhaustive(capacity, 1e-9));
}

TEST(DrfVsRef, IdenticalAgentsCoincide)
{
    // With identical preferences both mechanisms hand out equal
    // shares; the DRF bundles equal REF's.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    std::vector<LeontiefAgent> leontief_agents;
    for (int i = 0; i < 3; ++i) {
        const CobbDouglasUtility utility({0.5, 0.5});
        agents.emplace_back("t" + std::to_string(i), utility);
        leontief_agents.emplace_back(
            "t" + std::to_string(i),
            demandVectorFor(utility, capacity));
    }
    const auto drf = allocateDrf(leontief_agents, capacity);
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t r = 0; r < 2; ++r) {
            EXPECT_NEAR(drf.allocation.at(i, r), ref_alloc.at(i, r),
                        1e-9);
        }
    }
}

} // namespace
