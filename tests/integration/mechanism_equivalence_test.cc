/**
 * @file
 * Cross-mechanism equivalences the paper proves in Section 4.2:
 * proportional elasticity == Nash bargaining argmax == CEEI, and the
 * role of rescaling in those equivalences.
 */

#include <gtest/gtest.h>

#include "core/ceei.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "core/welfare_mechanisms.hh"
#include "util/random.hh"

namespace {

using namespace ref::core;

AgentList
randomAgents(std::size_t n, std::size_t resources, std::uint64_t seed,
             bool rescaled)
{
    ref::Rng rng(seed);
    AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        Vector alphas(resources);
        for (auto &alpha : alphas)
            alpha = rng.uniform(0.1, 1.0);
        CobbDouglasUtility utility(alphas);
        agents.emplace_back("agent-" + std::to_string(i),
                            rescaled ? utility.rescaled() : utility);
    }
    return agents;
}

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(EquivalenceSweep, RefEqualsCeeiClosedForm)
{
    const auto [n, seed] = GetParam();
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = randomAgents(static_cast<std::size_t>(n), 2,
                                     static_cast<std::uint64_t>(seed),
                                     false);
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    const auto ceei = CeeiMarket(agents, capacity).solveClosedForm();
    for (std::size_t i = 0; i < agents.size(); ++i)
        for (std::size_t r = 0; r < 2; ++r)
            EXPECT_NEAR(ref_alloc.at(i, r), ceei.allocation.at(i, r),
                        1e-9);
}

TEST_P(EquivalenceSweep, RefEqualsNashBargainingForRescaledAgents)
{
    // Eq. 14: for rescaled utilities, maximizing the Nash product
    // subject to capacity lands exactly on the REF allocation. The
    // GP solver provides the independent maximization.
    const auto [n, seed] = GetParam();
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = randomAgents(static_cast<std::size_t>(n), 2,
                                     static_cast<std::uint64_t>(seed),
                                     true);
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    const auto nash = makeMaxWelfareUnfair().allocate(agents, capacity);
    for (std::size_t i = 0; i < agents.size(); ++i) {
        for (std::size_t r = 0; r < 2; ++r) {
            EXPECT_NEAR(nash.at(i, r), ref_alloc.at(i, r),
                        1e-2 * capacity.capacity(r));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(1, 2)));

TEST(Equivalence, RescalingMattersForNashEquivalence)
{
    // With RAW (unnormalized) elasticities, Nash welfare maximizes
    // proportionally to raw alphas, which differs from REF whenever
    // agents' elasticity sums differ — the reason Eq. 12 exists.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    AgentList agents;
    agents.emplace_back("low-sum", CobbDouglasUtility({0.3, 0.1}));
    agents.emplace_back("high-sum", CobbDouglasUtility({0.9, 0.9}));
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    const auto nash = makeMaxWelfareUnfair().allocate(agents, capacity);
    // REF rescales: agent 0 gets 0.75 of resource 0's elasticity
    // weight; raw Nash gives it only 0.3/1.2.
    EXPECT_NEAR(ref_alloc.at(0, 0), 0.75 / 1.25 * 24.0, 1e-9);
    EXPECT_NEAR(nash.at(0, 0), 0.3 / 1.2 * 24.0, 0.1);
    EXPECT_GT(ref_alloc.at(0, 0) - nash.at(0, 0), 5.0);
}

TEST(Equivalence, NashProductIsMaximalAtRefPointForRescaledAgents)
{
    // Perturbing the REF allocation along the capacity surface can
    // only reduce the Nash product of rescaled utilities.
    const auto capacity = SystemCapacity::cacheAndBandwidthExample();
    const auto agents = randomAgents(3, 2, 9, true);
    const auto ref_alloc =
        ProportionalElasticityMechanism().allocate(agents, capacity);
    const double base = nashWelfare(agents, ref_alloc, capacity);
    ref::Rng rng(10);
    for (int trial = 0; trial < 50; ++trial) {
        Allocation perturbed = ref_alloc;
        // Transfer a small amount of each resource between a random
        // pair of agents: still feasible, still exhaustive.
        for (std::size_t r = 0; r < 2; ++r) {
            const auto from = rng.uniformInt(std::uint64_t{3});
            const auto to = rng.uniformInt(std::uint64_t{3});
            const double amount =
                0.05 * capacity.capacity(r) * rng.uniform();
            if (perturbed.at(from, r) > amount) {
                perturbed.at(from, r) -= amount;
                perturbed.at(to, r) += amount;
            }
        }
        EXPECT_LE(nashWelfare(agents, perturbed, capacity),
                  base + 1e-12);
    }
}

} // namespace
