/**
 * @file
 * Full-pipeline integration: simulate -> profile -> fit -> allocate
 * -> verify fairness -> enforce, the complete REF workflow of the
 * paper's Sections 4.4 and 5.
 */

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "sched/enforce.hh"
#include "sim/profiler.hh"
#include "util/logging.hh"

namespace {

using namespace ref;

core::AgentList
fitAgents(const std::vector<std::string> &names, std::size_t trace_ops)
{
    const sim::Profiler profiler(sim::PlatformConfig::table1(),
                                 trace_ops);
    core::AgentList agents;
    for (const auto &name : names) {
        const auto fit =
            profiler.profileAndFit(sim::workloadByName(name));
        agents.emplace_back(name, fit.utility);
    }
    return agents;
}

TEST(EndToEnd, ProfileFitAllocateVerify)
{
    // The paper's Figure 11 pair: barnes (C) and canneal (M).
    const auto agents = fitAgents({"barnes", "canneal"}, 40000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();

    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);
    const auto report =
        core::checkFairness(agents, capacity, allocation);
    EXPECT_TRUE(report.allHold());

    // canneal (M) must receive more than half the bandwidth — the
    // paper's Figure 11 observation about proportional elasticity.
    EXPECT_GT(allocation.at(1, 0), capacity.capacity(0) / 2);
    // barnes (C) more than half the cache.
    EXPECT_GT(allocation.at(0, 1), capacity.capacity(1) / 2);
}

TEST(EndToEnd, FittedAllocationEnforcedInSimulator)
{
    const auto agents = fitAgents({"histogram", "dedup"}, 30000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);

    // Convert REF's continuous shares into enforceable fractions.
    std::vector<double> cache_fractions, bandwidth_fractions;
    for (std::size_t i = 0; i < 2; ++i) {
        const auto fractions = allocation.fractions(i, capacity);
        bandwidth_fractions.push_back(fractions[0]);
        cache_fractions.push_back(fractions[1]);
    }

    sim::PlatformConfig config = sim::PlatformConfig::table1();
    config.dram.bandwidthGBps = 3.2;
    sched::EnforcedCmpSystem system(config, cache_fractions,
                                    bandwidth_fractions);

    std::vector<sim::Trace> traces;
    std::vector<sim::TimingParams> timings;
    for (const char *name : {"histogram", "dedup"}) {
        const auto &workload = sim::workloadByName(name);
        traces.push_back(
            sim::TraceGenerator(workload.trace).generate(20000));
        timings.push_back(workload.timing);
    }
    const auto results = system.run(traces, timings);

    // Measured DRAM service tracks the allocated bandwidth split.
    // dedup saturates its share; histogram may underuse its own, so
    // only an upper bound applies to the cache-bound agent.
    EXPECT_NEAR(results[1].bandwidthShare, bandwidth_fractions[1],
                0.25);
    EXPECT_EQ(results[0].cacheShare + results[1].cacheShare, 1.0);
}

TEST(EndToEnd, OnlineProfilingConvergesTowardOffline)
{
    // Section 4.4's on-line story: a naive 0.5/0.5 user re-fits from
    // observed samples and approaches the offline elasticities.
    const auto &workload = sim::workloadByName("dedup");
    const sim::Profiler profiler(sim::PlatformConfig::table1(),
                                 30000);
    const auto offline = profiler.profileAndFit(workload);

    // Online: a growing subset of the sweep becomes visible. The
    // stride walks the grid diagonally so even small subsets vary
    // both resources (the first few allocations a live system tries
    // would differ in both dimensions too).
    const auto points = profiler.sweep(workload);
    std::vector<std::size_t> visit_order;
    for (std::size_t k = 0; k < points.size(); ++k)
        visit_order.push_back(k * 7 % points.size());
    core::PerformanceProfile seen;
    double last_gap = 1.0;
    for (std::size_t epoch = 5; epoch <= points.size(); epoch += 5) {
        seen.clear();
        for (std::size_t i = 0; i < epoch; ++i) {
            const auto &point = points[visit_order[i]];
            seen.push_back(core::ProfilePoint{
                {point.bandwidthGBps, point.cacheMB}, point.ipc});
        }
        const auto fit = core::fitCobbDouglas(seen);
        const auto rescaled = fit.utility.rescaled();
        const auto target = offline.utility.rescaled();
        last_gap = std::abs(rescaled.elasticity(0) -
                            target.elasticity(0));
    }
    EXPECT_LT(last_gap, 0.05);
}

TEST(EndToEnd, WeightedThroughputComparableAcrossMechanisms)
{
    const auto agents =
        fitAgents({"histogram", "linear_regression", "water_nsquared",
                   "bodytrack"},
                  25000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);
    const double throughput = core::weightedSystemThroughput(
        agents, allocation, capacity);
    // Four agents, each with weighted utility in (0, 1].
    EXPECT_GT(throughput, 0.5);
    EXPECT_LT(throughput, 4.0);
}

} // namespace
