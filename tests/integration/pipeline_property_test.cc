/**
 * @file
 * Property sweep over the FULL pipeline with randomized synthetic
 * workloads: generate a workload with random behavioural parameters,
 * profile it on the simulator, fit its utility, run REF over the
 * fitted population, and assert the paper's guarantees hold on the
 * result. This is the strongest end-to-end invariant the repository
 * offers: fairness survives measurement noise and fitting error.
 */

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/strategic.hh"
#include "sim/profiler.hh"
#include "util/random.hh"

namespace {

using namespace ref;

sim::WorkloadSpec
randomWorkload(Rng &rng, std::uint64_t seed)
{
    sim::WorkloadSpec workload;
    workload.name = "synthetic-" + std::to_string(seed);
    workload.suite = sim::Suite::Parsec;
    workload.trace.workingSetBytes = static_cast<std::size_t>(
        rng.uniform(128.0, 4096.0)) * 1024;
    workload.trace.zipfExponent = rng.uniform(0.2, 1.2);
    workload.trace.memIntensity = rng.uniform(0.05, 0.3);
    workload.trace.streamFraction = rng.uniform(0.0, 0.8);
    workload.trace.burstiness = rng.uniform(0.0, 0.4);
    workload.trace.seed = seed;
    workload.timing.mlp = rng.uniform(1.0, 8.0);
    workload.timing.nonMemCpi = rng.uniform(0.0, 0.5);
    return workload;
}

class PipelineProperty : public ::testing::TestWithParam<int>
{};

TEST_P(PipelineProperty, FittedPopulationAllocatesFairly)
{
    const auto master_seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(master_seed);
    const sim::Profiler profiler(sim::PlatformConfig::table1(), 30000);

    core::AgentList agents;
    const int population = 3;
    for (int i = 0; i < population; ++i) {
        const auto workload =
            randomWorkload(rng, master_seed * 100 + i);
        const auto fit = profiler.profileAndFit(workload);
        agents.emplace_back(workload.name, fit.utility);
        // The fit must be usable at all.
        EXPECT_GT(fit.utility.elasticity(0), 0.0);
        EXPECT_GT(fit.utility.elasticity(1), 0.0);
    }

    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);
    const auto report =
        core::checkFairness(agents, capacity, allocation);
    EXPECT_TRUE(report.sharingIncentives.satisfied)
        << report.sharingIncentives.binding;
    EXPECT_TRUE(report.envyFreeness.satisfied)
        << report.envyFreeness.binding;
    EXPECT_TRUE(report.paretoEfficiency.satisfied)
        << report.paretoEfficiency.binding;
    EXPECT_TRUE(report.capacity.satisfied);
    EXPECT_TRUE(allocation.exhaustive(capacity, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(PipelineProperty, StrategicGainSmallForFittedPopulations)
{
    // SPL holds on fitted (not hand-picked) utilities too: with a
    // dozen synthetic tenants, lying pays under 2%.
    Rng rng(77);
    const sim::Profiler profiler(sim::PlatformConfig::table1(), 20000);
    core::AgentList agents;
    for (int i = 0; i < 12; ++i) {
        const auto workload = randomWorkload(rng, 7700 + i);
        agents.emplace_back(workload.name,
                            profiler.profileAndFit(workload).utility);
    }
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::StrategicAnalysis analysis(agents, capacity);
    const auto best = analysis.bestResponse(0);
    EXPECT_LT(best.gainRatio, 1.02);
}

} // namespace
