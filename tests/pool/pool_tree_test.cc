/**
 * @file
 * Pool-tree unit and property tests.
 *
 * The load-bearing claim: with all-unit weights, a pool tree under
 * arbitrary churn (admits, updates, departs, re-assigns, pool
 * creates, any shard count) allocates BIT-IDENTICALLY to the flat
 * REF closed form over the same agents — checked against
 * ProportionalElasticityMechanism directly and through the tree's
 * own three-way ExactSum self-check.
 */

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/proportional_elasticity.hh"
#include "pool/pool_tree.hh"
#include "util/logging.hh"

namespace {

using namespace ref;
using pool::PoolTree;

core::SystemCapacity
capacity()
{
    return core::SystemCapacity::fromCapacities({24.0, 12.0});
}

/** Bitwise equality of two allocations, cell by cell. */
void
expectBitwiseEqual(const core::Allocation &a,
                   const core::Allocation &b)
{
    ASSERT_EQ(a.agents(), b.agents());
    ASSERT_EQ(a.resources(), b.resources());
    for (std::size_t i = 0; i < a.agents(); ++i)
        for (std::size_t r = 0; r < a.resources(); ++r)
            EXPECT_EQ(a.at(i, r), b.at(i, r))
                << "agent " << i << " resource " << r;
}

TEST(PoolTree, RootExistsAndNestedCreationNeedsParents)
{
    PoolTree tree(capacity());
    EXPECT_TRUE(tree.hasPool(pool::kRootPath));
    EXPECT_EQ(tree.poolCount(), 1u);

    tree.createPool("a", 1.0);
    tree.createPool("a/b", 1.0, /*epoch=*/3);
    EXPECT_TRUE(tree.hasPool("a/b"));
    EXPECT_EQ(tree.poolCount(), 3u);
    EXPECT_EQ(tree.maxDepth(), 2u);

    // Idempotent re-create with the identical weight...
    tree.createPool("a", 1.0);
    EXPECT_EQ(tree.poolCount(), 3u);
    // ...but a differing weight is a configuration conflict.
    EXPECT_THROW(tree.createPool("a", 2.0), FatalError);
    // The parent must exist first.
    EXPECT_THROW(tree.createPool("ghost/child", 1.0), FatalError);

    const auto views = tree.pools();
    ASSERT_EQ(views.size(), 3u);
    EXPECT_EQ(views[0].path, pool::kRootPath);
    EXPECT_EQ(views[2].path, "a/b");
    EXPECT_EQ(views[2].createdEpoch, 3u);
}

TEST(PoolTree, PathValidationRejectsMalformedAndReservedNames)
{
    PoolTree tree(capacity());
    for (const std::string bad :
         {"", "/a", "a/", "a//b", "has space", "com,ma", "qu\"ote",
          "back\\slash", "br{ace", "br}ace", "eq=ual", "_total"})
        EXPECT_THROW(tree.createPool(bad, 1.0), FatalError) << bad;

    // "/" is the ever-present root: re-creating it with its weight
    // is the usual idempotent no-op, any other weight conflicts.
    tree.createPool(pool::kRootPath, 1.0);
    EXPECT_THROW(tree.createPool(pool::kRootPath, 2.0), FatalError);

    EXPECT_THROW(tree.createPool("w", 0.0), FatalError);
    EXPECT_THROW(tree.createPool("w", -1.0), FatalError);
    EXPECT_THROW(tree.createPool("w", 1.0 / 0.0), FatalError);

    // Depth cap: a chain one past kMaxPoolDepth must throw.
    std::string path = "d";
    for (std::size_t depth = 1; depth <= pool::kMaxPoolDepth;
         ++depth) {
        tree.createPool(path, 1.0);
        path += "/d";
    }
    EXPECT_THROW(tree.createPool(path, 1.0), FatalError);

    // Length cap.
    EXPECT_THROW(
        tree.createPool(std::string(pool::kMaxPoolPathLength + 1,
                                    'x'),
                        1.0),
        FatalError);
}

TEST(PoolTree, AgentErrorPathsMatchFlatSemantics)
{
    PoolTree tree(capacity());
    tree.createPool("p", 1.0);
    tree.admit("a", {0.6, 0.4}, "p");
    EXPECT_THROW(tree.admit("a", {0.5, 0.5}), FatalError);
    EXPECT_THROW(tree.admit("b", {0.5, 0.5}, "ghost"), FatalError);
    EXPECT_THROW(tree.update("ghost", {0.5, 0.5}), FatalError);
    EXPECT_THROW(tree.depart("ghost"), FatalError);
    EXPECT_THROW(tree.assign("ghost", "p"), FatalError);
    EXPECT_THROW(tree.assign("a", "ghost"), FatalError);
    EXPECT_THROW(tree.poolOf("ghost"), FatalError);
    EXPECT_EQ(tree.poolOf("a"), "p");
    EXPECT_EQ(tree.size(), 1u);
}

/** Seeded churn over a small pool forest, self-checking as it goes
 *  and ending on the bitwise flat-equality compare. */
void
churnAndVerify(std::size_t shards, std::uint32_t seed)
{
    PoolTree tree(capacity(), shards);
    tree.createPool("p0", 1.0);
    tree.createPool("p1", 1.0);
    tree.createPool("p1/nested", 1.0);

    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> elasticity(0.05, 1.0);
    const std::vector<std::string> poolPaths = {
        pool::kRootPath, "p0", "p1", "p1/nested"};
    std::vector<std::string> live;
    int nextId = 0;
    for (int op = 0; op < 300; ++op) {
        const std::uint32_t roll = rng() % 10;
        if (roll < 4 || live.empty()) {
            const std::string name =
                "agent" + std::to_string(nextId++);
            tree.admit(name, {elasticity(rng), elasticity(rng)},
                       poolPaths[rng() % poolPaths.size()]);
            live.push_back(name);
        } else if (roll < 6) {
            tree.update(live[rng() % live.size()],
                        {elasticity(rng), elasticity(rng)});
        } else if (roll < 8) {
            tree.assign(live[rng() % live.size()],
                        poolPaths[rng() % poolPaths.size()]);
        } else if (live.size() > 1) {
            const std::size_t victim = rng() % live.size();
            tree.depart(live[victim]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        }
        if (op % 37 == 0) {
            ASSERT_TRUE(tree.selfCheck()) << "op " << op;
        }
    }
    ASSERT_TRUE(tree.selfCheck());
    ASSERT_TRUE(tree.allUnitGains());

    // The pooled dense allocation equals the flat closed form over
    // the same agents, bit for bit.
    std::vector<std::string> names;
    const core::Allocation pooled = tree.allocateDense(&names);
    const core::Allocation flat =
        core::ProportionalElasticityMechanism().allocate(
            tree.agentList(), tree.capacity());
    expectBitwiseEqual(pooled, flat);

    // And every lazily computed per-agent share is the dense row.
    for (std::size_t i = 0; i < names.size(); ++i) {
        const linalg::Vector shares = tree.sharesOf(names[i]);
        for (std::size_t r = 0; r < shares.size(); ++r)
            EXPECT_EQ(shares[r], pooled.at(i, r)) << names[i];
    }
}

TEST(PoolTree, ChurnIsBitIdenticalToFlatSolve)
{
    churnAndVerify(/*shards=*/8, /*seed=*/11);
}

TEST(PoolTree, ShardCountNeverChangesTheAllocation)
{
    // The same churn stream through 1, 3 and 8 shards: ExactSum
    // shard-merge makes the shard layout unobservable.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                     std::size_t{8}})
        churnAndVerify(shards, /*seed=*/23);
}

TEST(PoolTree, DenseOrderIsAdmissionOrderAcrossReadmission)
{
    PoolTree tree(capacity(), 4);
    tree.admit("c", {0.5, 0.5});
    tree.admit("b", {0.6, 0.4});
    tree.admit("a", {0.7, 0.3});
    std::vector<std::string> names;
    tree.allocateDense(&names);
    EXPECT_EQ(names, (std::vector<std::string>{"c", "b", "a"}));

    tree.depart("b");
    tree.admit("b", {0.6, 0.4});
    tree.allocateDense(&names);
    EXPECT_EQ(names, (std::vector<std::string>{"c", "a", "b"}));
}

TEST(PoolTree, WeightedPoolsScaleSharesByGain)
{
    PoolTree tree(capacity());
    tree.createPool("hi", 2.0);
    tree.createPool("lo", 1.0);
    tree.admit("rich", {0.5, 0.5}, "hi");
    tree.admit("poor", {0.5, 0.5}, "lo");
    EXPECT_FALSE(tree.allUnitGains());
    ASSERT_TRUE(tree.selfCheck());

    const linalg::Vector rich = tree.sharesOf("rich");
    const linalg::Vector poor = tree.sharesOf("poor");
    for (std::size_t r = 0; r < rich.size(); ++r) {
        EXPECT_NEAR(rich[r] / poor[r], 2.0, 1e-12);
    }

    // Subtree fractions: hi gets 2/3 of each resource, lo 1/3, and
    // the root holds everything exactly.
    const linalg::Vector hi = tree.poolShareFractions("hi");
    const linalg::Vector lo = tree.poolShareFractions("lo");
    const linalg::Vector root =
        tree.poolShareFractions(pool::kRootPath);
    for (std::size_t r = 0; r < hi.size(); ++r) {
        EXPECT_NEAR(hi[r], 2.0 / 3.0, 1e-12);
        EXPECT_NEAR(lo[r], 1.0 / 3.0, 1e-12);
        EXPECT_EQ(root[r], 1.0);
    }
}

TEST(PoolTree, PoolViewsTrackSubtreeAndDirectCounts)
{
    PoolTree tree(capacity());
    tree.createPool("a", 1.0);
    tree.createPool("a/b", 1.0);
    tree.admit("x", {0.5, 0.5}, "a");
    tree.admit("y", {0.5, 0.5}, "a/b");
    tree.admit("z", {0.5, 0.5});

    const auto views = tree.pools();
    ASSERT_EQ(views.size(), 3u);
    EXPECT_EQ(views[0].agents, 3u);       // Root subtree: everyone.
    EXPECT_EQ(views[0].directAgents, 1u); // z only.
    EXPECT_EQ(views[1].agents, 2u);       // a's subtree: x and y.
    EXPECT_EQ(views[1].directAgents, 1u);
    EXPECT_EQ(views[2].agents, 1u);
    EXPECT_EQ(views[2].directAgents, 1u);

    tree.assign("y", pool::kRootPath);
    const auto moved = tree.pools();
    EXPECT_EQ(moved[1].agents, 1u);
    EXPECT_EQ(moved[2].agents, 0u);
    EXPECT_EQ(moved[0].directAgents, 2u);
    ASSERT_TRUE(tree.selfCheck());
}

} // namespace
