/**
 * @file
 * Pool-tree scale soak: the 100k-agent cousin of the million-agent
 * socket bench (scripts/bench_pool_scale.sh), small enough for
 * ctest. Two claims:
 *
 *  - the tree's three-way ExactSum self-check (incremental root vs
 *    shard merge vs scratch rebuild, plus the bitwise dense compare)
 *    holds at 100k agents across 64 pools, and
 *  - pooled TICK latency is bounded and sublinear in the population:
 *    a tick re-aggregates only changed root-to-leaf paths, so 100x
 *    the agents must cost well under 100x the tick time.
 */

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pool/pool_tree.hh"
#include "svc/allocation_service.hh"

namespace {

using namespace ref;

constexpr std::size_t kPools = 64;

std::string
poolName(std::size_t index)
{
    return "p" + std::to_string(index);
}

TEST(PoolScale, SelfCheckHoldsAtHundredThousandAgents)
{
    pool::PoolTree tree(
        core::SystemCapacity::fromCapacities({24.0, 12.0}),
        /*shards=*/16);
    for (std::size_t j = 0; j < kPools; ++j)
        tree.createPool(poolName(j), 1.0);

    std::mt19937 rng(1234);
    std::uniform_real_distribution<double> elasticity(0.05, 1.0);
    constexpr std::size_t kAgents = 100000;
    for (std::size_t i = 0; i < kAgents; ++i)
        tree.admit("a" + std::to_string(i),
                   {elasticity(rng), elasticity(rng)},
                   poolName(i % kPools));
    ASSERT_EQ(tree.size(), kAgents);

    // Shuffle a slice around so the incremental state reflects
    // updates and moves, not just a pristine admit sequence.
    for (std::size_t i = 0; i < 1000; ++i) {
        const std::string name = "a" + std::to_string(rng() % kAgents);
        if (i % 3 == 0)
            tree.assign(name, poolName(rng() % kPools));
        else
            tree.update(name, {elasticity(rng), elasticity(rng)});
    }
    EXPECT_TRUE(tree.selfCheck());
}

/** Median per-tick latency of a pooled service at @p population. */
std::uint64_t
medianTickNs(std::size_t population)
{
    svc::ServiceConfig config;
    config.pooled = true;
    config.buildEnforcement = false;
    // Measure the epoch itself, not the O(N) verification passes.
    config.epoch.checkProperties = false;
    config.epoch.verifyIncremental = false;
    svc::AllocationService service(config);

    for (std::size_t j = 0; j < kPools; ++j)
        service.createPool(poolName(j), 1.0);
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> elasticity(0.05, 1.0);
    std::vector<std::string> names;
    names.reserve(population);
    for (std::size_t i = 0; i < population; ++i) {
        names.push_back("a" + std::to_string(i));
        service.admit(names.back(),
                      {elasticity(rng), elasticity(rng)});
        service.assignPool(names.back(), poolName(i % kPools));
    }
    service.tick();  // Warm-up: fold the admit burst.

    std::vector<std::uint64_t> latencies;
    for (int t = 0; t < 30; ++t) {
        // A fixed-size churn window between ticks: the tick's work
        // is the changed paths, identical at every population.
        for (int u = 0; u < 32; ++u)
            service.update(names[rng() % names.size()],
                           {elasticity(rng), elasticity(rng)});
        const svc::EpochResult result = service.tick();
        EXPECT_TRUE(result.pooled);
        EXPECT_EQ(result.liveAgents, population);
        latencies.push_back(
            static_cast<std::uint64_t>(result.latency.count()));
    }
    std::sort(latencies.begin(), latencies.end());
    return latencies[latencies.size() / 2];
}

TEST(PoolScale, TickLatencyIsBoundedAndSublinearInPopulation)
{
    const std::uint64_t small = medianTickNs(1000);
    const std::uint64_t big = medianTickNs(100000);

    // 100x the agents: linear scaling would be ~100x the latency.
    // Demand well under that, with a floor so a fast machine's noisy
    // microsecond baseline cannot fail the run, and enough slack for
    // sanitizer builds (both sides slow down together, so the ratio
    // is what matters).
    const std::uint64_t baseline =
        std::max<std::uint64_t>(small, 50000);
    EXPECT_LE(big, 25 * baseline)
        << "tick p50 " << small << "ns at 1k agents vs " << big
        << "ns at 100k agents";
}

} // namespace
