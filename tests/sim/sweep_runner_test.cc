/**
 * @file
 * The parallel sweep engine's core guarantee: profiling with jobs=1
 * and jobs=N produces byte-identical profile tables and identical
 * fitted elasticities, and the cell cache dedupes without changing
 * results. The suite is named sweep_determinism so that
 * `ctest -R sweep_determinism` selects exactly these tests.
 */

#include "sim/sweep_runner.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/profile_io.hh"
#include "sim/profiler.hh"
#include "util/logging.hh"

namespace {

using namespace ref;
using namespace ref::sim;

constexpr std::size_t kOps = 20000;

/** Every field of every point must match exactly — no tolerance. */
void
expectIdenticalPoints(const std::vector<SweepPoint> &lhs,
                      const std::vector<SweepPoint> &rhs)
{
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        const SweepPoint &a = lhs[i];
        const SweepPoint &b = rhs[i];
        EXPECT_EQ(a.bandwidthGBps, b.bandwidthGBps);
        EXPECT_EQ(a.cacheMB, b.cacheMB);
        EXPECT_EQ(a.ipc, b.ipc);
        EXPECT_EQ(a.rngSeed, b.rngSeed);
        EXPECT_EQ(a.detail.instructions, b.detail.instructions);
        EXPECT_EQ(a.detail.cycles, b.detail.cycles);
        EXPECT_EQ(a.detail.ipc, b.detail.ipc);
        EXPECT_EQ(a.detail.l1.accesses, b.detail.l1.accesses);
        EXPECT_EQ(a.detail.l1.misses, b.detail.l1.misses);
        EXPECT_EQ(a.detail.l2.accesses, b.detail.l2.accesses);
        EXPECT_EQ(a.detail.l2.misses, b.detail.l2.misses);
        EXPECT_EQ(a.detail.dram.requests, b.detail.dram.requests);
        EXPECT_EQ(a.detail.dram.totalLatencyCycles,
                  b.detail.dram.totalLatencyCycles);
        EXPECT_EQ(a.detail.avgDramLatencyCycles,
                  b.detail.avgDramLatencyCycles);
        EXPECT_EQ(a.detail.deliveredBandwidthGBps,
                  b.detail.deliveredBandwidthGBps);
    }
}

/** The serialized profile table, byte for byte. */
std::string
profileTableBytes(const std::vector<SweepPoint> &points)
{
    std::ostringstream out;
    core::writeProfileCsv(out, toPerformanceProfile(points));
    return out.str();
}

TEST(sweep_determinism, ParallelSweepBitIdenticalToSerial)
{
    const auto &workload = workloadByName("dedup");
    SweepRunner serial(PlatformConfig::table1(), kOps, {.jobs = 1});
    SweepRunner parallel(PlatformConfig::table1(), kOps, {.jobs = 8});

    const auto serial_points = serial.sweep(workload);
    const auto parallel_points = parallel.sweep(workload);
    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_EQ(parallel.jobs(), 8u);
    expectIdenticalPoints(serial_points, parallel_points);
    EXPECT_EQ(profileTableBytes(serial_points),
              profileTableBytes(parallel_points));
}

TEST(sweep_determinism, FittedElasticitiesIdentical)
{
    const auto &workload = workloadByName("canneal");
    SweepRunner serial(PlatformConfig::table1(), kOps, {.jobs = 1});
    SweepRunner parallel(PlatformConfig::table1(), kOps, {.jobs = 8});

    const auto serial_fit = serial.profileAndFit(workload);
    const auto parallel_fit = parallel.profileAndFit(workload);
    ASSERT_EQ(serial_fit.utility.resources(),
              parallel_fit.utility.resources());
    EXPECT_EQ(serial_fit.utility.scale(),
              parallel_fit.utility.scale());
    for (std::size_t r = 0; r < serial_fit.utility.resources(); ++r) {
        EXPECT_EQ(serial_fit.utility.elasticity(r),
                  parallel_fit.utility.elasticity(r));
    }
    EXPECT_EQ(serial_fit.rSquaredLog, parallel_fit.rSquaredLog);
    EXPECT_EQ(serial_fit.rSquaredLinear,
              parallel_fit.rSquaredLinear);
}

TEST(sweep_determinism, SweepManyMatchesIndividualSerialSweeps)
{
    std::vector<WorkloadSpec> workloads = {
        workloadByName("dedup"), workloadByName("canneal"),
        workloadByName("histogram")};
    SweepRunner serial(PlatformConfig::table1(), kOps, {.jobs = 1});
    SweepRunner parallel(PlatformConfig::table1(), kOps, {.jobs = 8});

    const auto batched = parallel.sweepMany(workloads);
    ASSERT_EQ(batched.size(), workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w)
        expectIdenticalPoints(serial.sweep(workloads[w]), batched[w]);
}

TEST(sweep_determinism, CellSeedIsPureFunctionOfCell)
{
    const std::uint64_t seed = sweepCellSeed(1, 12.8, 1 << 20);
    EXPECT_EQ(seed, sweepCellSeed(1, 12.8, 1 << 20));
    EXPECT_NE(seed, sweepCellSeed(2, 12.8, 1 << 20));
    EXPECT_NE(seed, sweepCellSeed(1, 6.4, 1 << 20));
    EXPECT_NE(seed, sweepCellSeed(1, 12.8, 1 << 19));
}

TEST(sweep_determinism, CustomAxesMatchAcrossJobCounts)
{
    const auto &workload = workloadByName("streamcluster");
    const std::vector<double> bandwidths = {1.0, 3.0};
    const std::vector<std::size_t> caches = {256 * 1024,
                                             1024 * 1024};
    SweepRunner serial(PlatformConfig::table1(), kOps, {.jobs = 1});
    SweepRunner parallel(PlatformConfig::table1(), kOps, {.jobs = 4});
    expectIdenticalPoints(
        serial.sweep(workload, bandwidths, caches),
        parallel.sweep(workload, bandwidths, caches));
}

TEST(sweep_determinism, ProfileCacheDedupesRepeatedCells)
{
    const auto &workload = workloadByName("dedup");
    SweepRunner runner(PlatformConfig::table1(), kOps,
                       {.jobs = 4, .cacheCells = 1024});

    const auto first = runner.sweep(workload);
    auto stats = runner.cacheStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 25u);

    const auto second = runner.sweep(workload);
    stats = runner.cacheStats();
    EXPECT_EQ(stats.hits, 25u);
    EXPECT_EQ(stats.misses, 25u);
    expectIdenticalPoints(first, second);

    // Cache hits are bit-identical to an uncached run.
    SweepRunner uncached(PlatformConfig::table1(), kOps,
                         {.jobs = 1, .cacheCells = 0});
    expectIdenticalPoints(uncached.sweep(workload), second);
    EXPECT_EQ(uncached.cacheStats().hits, 0u);
    EXPECT_EQ(uncached.cacheStats().misses, 0u);
}

TEST(sweep_determinism, ProfileCacheEvictsLeastRecentlyUsed)
{
    ProfileCache cache(2);
    SweepPoint point;
    const SweepCellKey k1{1, 1};
    const SweepCellKey k2{2, 2};
    const SweepCellKey k3{3, 3};

    point.ipc = 1;
    cache.insert(k1, point);
    point.ipc = 2;
    cache.insert(k2, point);

    // Touch k1 so k2 is the LRU victim when k3 arrives.
    ASSERT_TRUE(cache.lookup(k1, point));
    EXPECT_EQ(point.ipc, 1.0);
    point.ipc = 3;
    cache.insert(k3, point);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.lookup(k1, point));
    EXPECT_FALSE(cache.lookup(k2, point));
    EXPECT_TRUE(cache.lookup(k3, point));
}

TEST(sweep_determinism, ZeroCapacityCacheIsDisabled)
{
    ProfileCache cache(0);
    SweepPoint point;
    cache.insert({1, 1}, point);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup({1, 1}, point));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(sweep_determinism, SweepEndLogsCacheEffectiveness)
{
    const auto &workload = workloadByName("dedup");
    SweepRunner runner(PlatformConfig::table1(), kOps, {.jobs = 1});
    runner.sweep(workload);  // Warm the cache silently (Warn level).

    ref::setLogLevel(ref::LogLevel::Inform);
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());
    runner.sweep(workload);
    std::cerr.rdbuf(old);
    ref::setLogLevel(ref::LogLevel::Warn);

    // The second sweep of the same grid is all hits, and the summary
    // line says so.
    EXPECT_NE(captured.str().find("sweep cache [dedup]: 25 cells, "
                                  "hits=25 misses=0 evictions=0"),
              std::string::npos)
        << captured.str();
}

/** A fresh, empty disk-cache directory under the test temp root. */
std::string
freshCacheDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        ("ref_sweep_disk_cache_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

std::vector<std::filesystem::path>
cellFiles(const std::string &dir)
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir))
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(sweep_determinism, DiskCacheSharesCellsAcrossRunners)
{
    const auto &workload = workloadByName("dedup");
    const std::string dir = freshCacheDir("share");

    // First runner simulates everything and persists each cell.
    SweepRunner writer(PlatformConfig::table1(), kOps,
                       {.jobs = 1, .cacheDir = dir});
    const auto first = writer.sweep(workload);
    auto stats = writer.cacheStats();
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.diskWrites, 25u);
    EXPECT_EQ(stats.diskBadEntries, 0u);
    EXPECT_EQ(cellFiles(dir).size(), 25u);

    // A brand-new runner (cold memory tier) reloads every cell from
    // disk, bit-identically, without simulating anything.
    SweepRunner reader(PlatformConfig::table1(), kOps,
                       {.jobs = 4, .cacheDir = dir});
    const auto second = reader.sweep(workload);
    stats = reader.cacheStats();
    EXPECT_EQ(stats.diskHits, 25u);
    EXPECT_EQ(stats.diskWrites, 0u);
    EXPECT_EQ(stats.diskBadEntries, 0u);
    expectIdenticalPoints(first, second);

    // And disk hits match a from-scratch run with no cache at all.
    SweepRunner uncached(PlatformConfig::table1(), kOps,
                         {.jobs = 1, .cacheCells = 0});
    expectIdenticalPoints(uncached.sweep(workload), second);
}

TEST(sweep_determinism, DiskCacheIgnoresCorruptEntries)
{
    const auto &workload = workloadByName("canneal");
    const std::string dir = freshCacheDir("corrupt");

    SweepRunner writer(PlatformConfig::table1(), kOps,
                       {.jobs = 1, .cacheDir = dir});
    const auto first = writer.sweep(workload);
    auto files = cellFiles(dir);
    ASSERT_EQ(files.size(), 25u);

    // Bit-rot one entry and tear another mid-frame.
    {
        std::fstream rot(files[3], std::ios::binary | std::ios::in |
                                       std::ios::out);
        rot.seekp(10);
        rot.put('\x5a');
    }
    const auto torn_size = std::filesystem::file_size(files[17]);
    std::filesystem::resize_file(files[17], torn_size / 2);

    // A fresh runner quietly recomputes exactly the two bad cells
    // (rewriting them) and still produces identical results.
    SweepRunner reader(PlatformConfig::table1(), kOps,
                       {.jobs = 1, .cacheDir = dir});
    const auto second = reader.sweep(workload);
    const auto stats = reader.cacheStats();
    EXPECT_EQ(stats.diskBadEntries, 2u);
    EXPECT_EQ(stats.diskHits, 23u);
    EXPECT_EQ(stats.diskWrites, 2u);
    expectIdenticalPoints(first, second);

    // The rewrites healed the directory for the next runner.
    SweepRunner healed(PlatformConfig::table1(), kOps,
                       {.jobs = 1, .cacheDir = dir});
    healed.sweep(workload);
    EXPECT_EQ(healed.cacheStats().diskHits, 25u);
    EXPECT_EQ(healed.cacheStats().diskBadEntries, 0u);
}

TEST(sweep_determinism, ProfilerFacadeSharesRunnerAcrossCopies)
{
    const Profiler profiler(PlatformConfig::table1(), kOps,
                            {.jobs = 2});
    const Profiler copy = profiler;
    copy.sweep(workloadByName("dedup"));
    // The copy's sweep warmed the original's cache too.
    EXPECT_EQ(profiler.runner().cacheStats().misses, 25u);
    profiler.sweep(workloadByName("dedup"));
    EXPECT_EQ(profiler.runner().cacheStats().hits, 25u);
}

} // namespace
