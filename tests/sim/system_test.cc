#include "sim/system.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::sim;

Trace
makeTrace(const TraceParams &params, std::size_t ops)
{
    return TraceGenerator(params).generate(ops);
}

TraceParams
cacheFriendly()
{
    TraceParams params;
    params.workingSetBytes = 512 * 1024;
    params.zipfExponent = 0.9;
    params.memIntensity = 0.15;
    params.seed = 3;
    return params;
}

TraceParams
streaming()
{
    TraceParams params;
    params.workingSetBytes = 64 * 1024;
    params.zipfExponent = 0.5;
    params.memIntensity = 0.2;
    params.streamFraction = 0.9;
    params.seed = 4;
    return params;
}

TEST(System, IpcBoundedByIssueWidth)
{
    const auto config = PlatformConfig::table1();
    CmpSystem system(config);
    const auto result =
        system.run(makeTrace(cacheFriendly(), 20000), TimingParams{});
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.ipc, config.core.issueWidth);
}

TEST(System, MoreCacheNeverHurtsCacheFriendlyWork)
{
    const Trace trace = makeTrace(cacheFriendly(), 60000);
    double previous = 0;
    for (std::size_t size : table1CacheSizes()) {
        PlatformConfig config = PlatformConfig::table1();
        config.l2.sizeBytes = size;
        CmpSystem system(config);
        const double ipc =
            system.run(trace, TimingParams{}, 0.3).ipc;
        EXPECT_GE(ipc, previous * 0.999) << "size " << size;
        previous = ipc;
    }
}

TEST(System, MoreBandwidthNeverHurtsStreamingWork)
{
    const Trace trace = makeTrace(streaming(), 60000);
    double previous = 0;
    for (double bandwidth : table1Bandwidths()) {
        PlatformConfig config = PlatformConfig::table1();
        config.dram.bandwidthGBps = bandwidth;
        CmpSystem system(config);
        const double ipc =
            system.run(trace, TimingParams{4.0, 0.0}, 0.3).ipc;
        EXPECT_GE(ipc, previous * 0.999) << "bandwidth " << bandwidth;
        previous = ipc;
    }
}

TEST(System, StreamingInsensitiveToCache)
{
    const Trace trace = makeTrace(streaming(), 60000);
    PlatformConfig small = PlatformConfig::table1();
    small.l2.sizeBytes = 128 * 1024;
    PlatformConfig large = PlatformConfig::table1();
    large.l2.sizeBytes = 2 * 1024 * 1024;
    const double ipc_small =
        CmpSystem(small).run(trace, TimingParams{4.0, 0.0}, 0.3).ipc;
    const double ipc_large =
        CmpSystem(large).run(trace, TimingParams{4.0, 0.0}, 0.3).ipc;
    EXPECT_NEAR(ipc_small, ipc_large, 0.15 * ipc_large);
}

TEST(System, HigherMlpHidesLatency)
{
    const Trace trace = makeTrace(streaming(), 40000);
    PlatformConfig config = PlatformConfig::table1();
    config.dram.bandwidthGBps = 12.8;
    const double low =
        CmpSystem(config).run(trace, TimingParams{1.0, 0.0}).ipc;
    const double high =
        CmpSystem(config).run(trace, TimingParams{6.0, 0.0}).ipc;
    EXPECT_GT(high, low);
}

TEST(System, NonMemCpiSlowsExecution)
{
    const Trace trace = makeTrace(cacheFriendly(), 30000);
    const auto config = PlatformConfig::table1();
    const double fast =
        CmpSystem(config).run(trace, TimingParams{2.0, 0.0}).ipc;
    const double slow =
        CmpSystem(config).run(trace, TimingParams{2.0, 0.5}).ipc;
    EXPECT_GT(fast, slow);
}

TEST(System, WarmupReducesReportedMisses)
{
    const Trace trace = makeTrace(cacheFriendly(), 60000);
    const auto config = PlatformConfig::table1();
    const auto cold = CmpSystem(config).run(trace, TimingParams{});
    const auto warm =
        CmpSystem(config).run(trace, TimingParams{}, 0.4);
    EXPECT_LT(warm.l2.missRate(), cold.l2.missRate());
    EXPECT_GT(warm.ipc, cold.ipc);
    EXPECT_LT(warm.instructions, cold.instructions);
}

TEST(System, StatsWiredThrough)
{
    const auto config = PlatformConfig::table1();
    CmpSystem system(config);
    const auto result =
        system.run(makeTrace(cacheFriendly(), 20000), TimingParams{});
    EXPECT_EQ(result.l1.accesses, 20000u);
    EXPECT_GT(result.l1.misses, 0u);
    EXPECT_GT(result.l2.accesses, 0u);
    EXPECT_GT(result.dram.requests, 0u);
    EXPECT_GT(result.avgDramLatencyCycles, 0.0);
    EXPECT_GT(result.deliveredBandwidthGBps, 0.0);
}

TEST(System, RejectsBadTimingParams)
{
    const auto config = PlatformConfig::table1();
    CmpSystem system(config);
    const Trace trace = makeTrace(cacheFriendly(), 100);
    EXPECT_THROW(system.run(trace, TimingParams{0.5, 0.0}),
                 ref::FatalError);
    EXPECT_THROW(system.run(trace, TimingParams{2.0, -0.1}),
                 ref::FatalError);
    EXPECT_THROW(system.run(trace, TimingParams{}, 1.0),
                 ref::FatalError);
}

TEST(System, NextLinePrefetcherHelpsStreaming)
{
    // A sequential stream is perfectly predicted by the next-line
    // prefetcher: demand accesses hit in L2 and IPC rises.
    const Trace trace = makeTrace(streaming(), 40000);
    PlatformConfig base = PlatformConfig::table1();
    base.dram.bandwidthGBps = 12.8;
    PlatformConfig with_prefetch = base;
    with_prefetch.core.nextLinePrefetch = true;

    const auto plain =
        CmpSystem(base).run(trace, TimingParams{2.0, 0.0}, 0.2);
    const auto prefetched = CmpSystem(with_prefetch)
                                .run(trace, TimingParams{2.0, 0.0},
                                     0.2);
    EXPECT_GT(prefetched.ipc, plain.ipc * 1.2);
    EXPECT_GT(prefetched.prefetchesIssued, 0u);
    EXPECT_EQ(plain.prefetchesIssued, 0u);
}

TEST(System, PrefetcherCostsBandwidthForRandomAccess)
{
    // Pure random re-use gains nothing from next-line prediction;
    // the wasted prefetch traffic loads the bus, so IPC must not
    // improve meaningfully (and the prefetcher must not crash).
    TraceParams params;
    params.workingSetBytes = 8 * 1024 * 1024;
    params.zipfExponent = 0.0;  // Uniform: no locality at all.
    params.memIntensity = 0.2;
    params.seed = 11;
    const Trace trace = TraceGenerator(params).generate(40000);

    PlatformConfig base = PlatformConfig::table1();
    base.dram.bandwidthGBps = 1.6;
    PlatformConfig with_prefetch = base;
    with_prefetch.core.nextLinePrefetch = true;

    const auto plain =
        CmpSystem(base).run(trace, TimingParams{2.0, 0.0}, 0.2);
    const auto prefetched = CmpSystem(with_prefetch)
                                .run(trace, TimingParams{2.0, 0.0},
                                     0.2);
    EXPECT_LT(prefetched.ipc, plain.ipc * 1.05);
}

TEST(System, EmptyTraceGivesZeroCycles)
{
    const auto config = PlatformConfig::table1();
    CmpSystem system(config);
    const auto result = system.run(Trace{}, TimingParams{});
    EXPECT_EQ(result.instructions, 0u);
    EXPECT_DOUBLE_EQ(result.cycles, 0.0);
    EXPECT_DOUBLE_EQ(result.ipc, 0.0);
}

} // namespace
