#include "sim/profiler.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::sim;

TEST(Profiler, SweepCoversFullTable1Grid)
{
    const Profiler profiler(PlatformConfig::table1(), 20000);
    const auto points = profiler.sweep(workloadByName("histogram"));
    EXPECT_EQ(points.size(), 25u);
    // All five bandwidths and cache sizes appear.
    double min_bw = 1e9, max_bw = 0, min_mb = 1e9, max_mb = 0;
    for (const auto &point : points) {
        min_bw = std::min(min_bw, point.bandwidthGBps);
        max_bw = std::max(max_bw, point.bandwidthGBps);
        min_mb = std::min(min_mb, point.cacheMB);
        max_mb = std::max(max_mb, point.cacheMB);
        EXPECT_GT(point.ipc, 0.0);
    }
    EXPECT_DOUBLE_EQ(min_bw, 0.8);
    EXPECT_DOUBLE_EQ(max_bw, 12.8);
    EXPECT_DOUBLE_EQ(min_mb, 0.125);
    EXPECT_DOUBLE_EQ(max_mb, 2.0);
}

TEST(Profiler, BestConfigurationHasBestIpc)
{
    const Profiler profiler(PlatformConfig::table1(), 20000);
    const auto points = profiler.sweep(workloadByName("histogram"));
    double best_corner = 0, worst_corner = 1e9;
    double best_overall = 0, worst_overall = 1e9;
    for (const auto &point : points) {
        best_overall = std::max(best_overall, point.ipc);
        worst_overall = std::min(worst_overall, point.ipc);
        if (point.bandwidthGBps == 12.8 && point.cacheMB == 2.0)
            best_corner = point.ipc;
        if (point.bandwidthGBps == 0.8 && point.cacheMB == 0.125)
            worst_corner = point.ipc;
    }
    EXPECT_NEAR(best_corner, best_overall, 1e-12);
    EXPECT_NEAR(worst_corner, worst_overall, 1e-12);
}

TEST(Profiler, CustomSweepAxes)
{
    const Profiler profiler(PlatformConfig::table1(), 10000);
    const auto points = profiler.sweep(
        workloadByName("dedup"), {1.6, 6.4},
        {256 * 1024, 1024 * 1024, 2 * 1024 * 1024});
    EXPECT_EQ(points.size(), 6u);
}

TEST(Profiler, ToPerformanceProfilePreservesOrder)
{
    const Profiler profiler(PlatformConfig::table1(), 10000);
    const auto points = profiler.sweep(
        workloadByName("dedup"), {1.6}, {256 * 1024});
    const auto profile = Profiler::toPerformanceProfile(points);
    ASSERT_EQ(profile.size(), 1u);
    EXPECT_DOUBLE_EQ(profile[0].allocation[0], 1.6);
    EXPECT_DOUBLE_EQ(profile[0].allocation[1], 0.25);
    EXPECT_DOUBLE_EQ(profile[0].performance, points[0].ipc);
}

TEST(Profiler, ProfileAndFitProducesUsableUtility)
{
    const Profiler profiler(PlatformConfig::table1(), 30000);
    const auto fit = profiler.profileAndFit(workloadByName("dedup"));
    EXPECT_GT(fit.rSquaredLog, 0.5);
    EXPECT_EQ(fit.utility.resources(), 2u);
    // dedup is class M: bandwidth elasticity dominates.
    EXPECT_GT(fit.utility.elasticity(0), fit.utility.elasticity(1));
}

TEST(Profiler, RejectsEmptySweep)
{
    const Profiler profiler(PlatformConfig::table1(), 10000);
    EXPECT_THROW(profiler.sweep(workloadByName("dedup"), {}, {}),
                 ref::FatalError);
    EXPECT_THROW(Profiler(PlatformConfig::table1(), 0),
                 ref::FatalError);
}

} // namespace
