#include "sim/workloads.hh"

#include <set>

#include <gtest/gtest.h>

#include "sim/profiler.hh"
#include "util/logging.hh"

namespace {

using namespace ref::sim;

TEST(Workloads, CatalogHasTwentyEightUniqueBenchmarks)
{
    const auto &catalog = allWorkloads();
    EXPECT_EQ(catalog.size(), 28u);
    std::set<std::string> names;
    for (const auto &workload : catalog)
        EXPECT_TRUE(names.insert(workload.name).second)
            << "duplicate " << workload.name;
}

TEST(Workloads, ClassSplitMatchesPaper)
{
    // 20 class-C and 8 class-M per the Table 2 arithmetic.
    int c = 0, m = 0;
    for (const auto &workload : allWorkloads()) {
        if (workload.expectedClass == 'C')
            ++c;
        else if (workload.expectedClass == 'M')
            ++m;
    }
    EXPECT_EQ(c, 20);
    EXPECT_EQ(m, 8);
}

TEST(Workloads, KeyExamplesClassifiedAsInPaper)
{
    EXPECT_EQ(workloadByName("histogram").expectedClass, 'C');
    EXPECT_EQ(workloadByName("dedup").expectedClass, 'M');
    EXPECT_EQ(workloadByName("barnes").expectedClass, 'C');
    EXPECT_EQ(workloadByName("canneal").expectedClass, 'M');
    EXPECT_EQ(workloadByName("freqmine").expectedClass, 'C');
    EXPECT_EQ(workloadByName("linear_regression").expectedClass, 'C');
    EXPECT_EQ(workloadByName("raytrace").expectedClass, 'C');
    EXPECT_EQ(workloadByName("facesim").expectedClass, 'M');
}

TEST(Workloads, LookupThrowsOnUnknownName)
{
    EXPECT_THROW(workloadByName("no-such-benchmark"),
                 ref::FatalError);
}

TEST(Workloads, SuitesAreRepresented)
{
    int parsec = 0, splash = 0, phoenix = 0;
    for (const auto &workload : allWorkloads()) {
        switch (workload.suite) {
          case Suite::Parsec:
            ++parsec;
            break;
          case Suite::Splash2x:
            ++splash;
            break;
          case Suite::Phoenix:
            ++phoenix;
            break;
        }
    }
    EXPECT_GT(parsec, 5);
    EXPECT_GT(splash, 5);
    EXPECT_EQ(phoenix, 4);  // histogram, linear_regression,
                            // string_match, word_count.
}

TEST(Workloads, Table2MixesMatchPaper)
{
    const auto &four = table2FourCoreMixes();
    ASSERT_EQ(four.size(), 5u);
    for (const auto &mix : four)
        EXPECT_EQ(mix.members.size(), 4u) << mix.name;

    const auto &eight = table2EightCoreMixes();
    ASSERT_EQ(eight.size(), 5u);
    for (const auto &mix : eight)
        EXPECT_EQ(mix.members.size(), 8u) << mix.name;

    EXPECT_EQ(table2AllMixes().size(), 10u);
}

TEST(Workloads, MixCompositionsMatchMemberClasses)
{
    for (const auto &mix : table2AllMixes()) {
        int c = 0, m = 0;
        for (const auto &member : mix.members) {
            const auto &workload = workloadByName(member);
            if (workload.expectedClass == 'C')
                ++c;
            else
                ++m;
        }
        std::string expected;
        if (m == 0) {
            expected = std::to_string(c) + "C";
        } else if (c == 0) {
            expected = std::to_string(m) + "M";
        } else {
            expected = std::to_string(c) + "C-" + std::to_string(m) +
                       "M";
        }
        EXPECT_EQ(mix.composition, expected) << mix.name;
    }
}

TEST(Workloads, Wd1MatchesPaperList)
{
    const auto &wd1 = table2FourCoreMixes()[0];
    EXPECT_EQ(wd1.name, "WD1");
    EXPECT_EQ(wd1.composition, "4C");
    const std::vector<std::string> expected{
        "histogram", "linear_regression", "water_nsquared",
        "bodytrack"};
    EXPECT_EQ(wd1.members, expected);
}

TEST(Workloads, FittedClassificationMatchesExpected)
{
    // The headline calibration property: the fitted elasticities of
    // the paired Figure 10-12 workloads land in the paper's classes.
    const Profiler profiler(PlatformConfig::table1(), 60000);
    for (const char *name :
         {"histogram", "dedup", "barnes", "canneal", "freqmine",
          "linear_regression"}) {
        const auto &workload = workloadByName(name);
        const auto fit = profiler.profileAndFit(workload);
        const double alpha_mem = fit.utility.elasticity(0);
        const double alpha_cache = fit.utility.elasticity(1);
        const char fitted_class =
            alpha_mem / (alpha_mem + alpha_cache) > 0.5 ? 'M' : 'C';
        EXPECT_EQ(fitted_class, workload.expectedClass) << name;
    }
}

} // namespace
