#include "sim/cache.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using ref::sim::Cache;
using ref::sim::CacheConfig;

CacheConfig
smallCache(std::size_t size = 1024, std::size_t assoc = 2,
           std::size_t block = 64)
{
    return CacheConfig{size, assoc, block, 1};
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, SameBlockDifferentOffsetHits)
{
    Cache cache(smallCache());
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.access(0x103F, false).hit);
    EXPECT_FALSE(cache.access(0x1040, false).hit);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way cache, one set exercised with three conflicting blocks.
    const CacheConfig config{2 * 64, 2, 64, 1};  // One set.
    Cache cache(config);
    cache.access(0x0000, false);   // A
    cache.access(0x1000, false);   // B
    cache.access(0x0000, false);   // Touch A: B becomes LRU.
    cache.access(0x2000, false);   // C evicts B.
    EXPECT_TRUE(cache.access(0x0000, false).hit);
    EXPECT_FALSE(cache.access(0x1000, false).hit);  // B gone.
}

TEST(Cache, DirtyEvictionReportsVictim)
{
    const CacheConfig config{2 * 64, 2, 64, 1};
    Cache cache(config);
    cache.access(0x0000, true);    // Dirty A.
    cache.access(0x1000, false);
    const auto result = cache.access(0x2000, false);  // Evicts A.
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(result.victimAddress, 0x0000u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    const CacheConfig config{2 * 64, 2, 64, 1};
    Cache cache(config);
    cache.access(0x0000, false);
    cache.access(0x1000, false);
    EXPECT_FALSE(cache.access(0x2000, false).evictedDirty);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteHitMarksLineDirty)
{
    const CacheConfig config{2 * 64, 2, 64, 1};
    Cache cache(config);
    cache.access(0x0000, false);   // Clean fill.
    cache.access(0x0000, true);    // Dirty it on a hit.
    cache.access(0x1000, false);
    const auto result = cache.access(0x2000, false);
    EXPECT_TRUE(result.evictedDirty);
}

TEST(Cache, FlushDropsContents)
{
    Cache cache(smallCache());
    cache.access(0x1000, true);
    cache.flush();
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    // Flushed dirty data is dropped, not written back.
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WayMaskRestrictsReplacement)
{
    // 4-way, one set; victim selection restricted to way 0 keeps
    // evicting the same slot while other ways persist.
    const CacheConfig config{4 * 64, 4, 64, 1};
    Cache cache(config);
    cache.access(0x0000, false, 0b1110);  // Fill somewhere in 1-3.
    cache.access(0x1000, false, 0b0001);  // Way 0.
    cache.access(0x2000, false, 0b0001);  // Evicts the way-0 block.
    EXPECT_FALSE(cache.access(0x1000, false, 0b0001).hit);
    EXPECT_TRUE(cache.access(0x0000, false, 0b1110).hit);
}

TEST(Cache, LookupHitsAcrossPartitions)
{
    // Way-partitioning restricts replacement, not lookup.
    const CacheConfig config{4 * 64, 4, 64, 1};
    Cache cache(config);
    cache.access(0x0000, false, 0b0011);
    EXPECT_TRUE(cache.access(0x0000, false, 0b1100).hit);
}

TEST(Cache, MaskSelectingNoWayIsRejected)
{
    const CacheConfig config{4 * 64, 4, 64, 1};
    Cache cache(config);
    EXPECT_THROW(cache.access(0x0000, false, 0b10000),
                 ref::FatalError);
}

TEST(Cache, CapacityScalingReducesMisses)
{
    // Zipf-reuse stream: a larger cache of equal associativity must
    // not miss more.
    ref::Rng rng(3);
    ref::ZipfDistribution zipf(4096, 0.8);
    std::vector<std::uint64_t> addresses;
    for (int i = 0; i < 50000; ++i)
        addresses.push_back(0x10000 + zipf(rng) * 64);

    std::uint64_t previous_misses = ~0ULL;
    for (std::size_t size : {16 * 1024, 64 * 1024, 256 * 1024}) {
        Cache cache(CacheConfig{size, 8, 64, 1});
        for (auto address : addresses)
            cache.access(address, false);
        EXPECT_LT(cache.stats().misses, previous_misses);
        previous_misses = cache.stats().misses;
    }
}

TEST(Cache, FullyAssociativeStackInclusion)
{
    // LRU stack property: every hit in a smaller fully associative
    // cache is also a hit in a larger one (same block size) on the
    // same reference stream.
    ref::Rng rng(9);
    ref::ZipfDistribution zipf(512, 0.7);
    std::vector<std::uint64_t> addresses;
    for (int i = 0; i < 20000; ++i)
        addresses.push_back(zipf(rng) * 64);

    Cache small(CacheConfig{16 * 64, 16, 64, 1});   // Fully assoc.
    Cache large(CacheConfig{64 * 64, 64, 64, 1});   // Fully assoc.
    for (auto address : addresses) {
        const bool small_hit = small.access(address, false).hit;
        const bool large_hit = large.access(address, false).hit;
        ASSERT_FALSE(small_hit && !large_hit)
            << "stack inclusion violated at " << address;
    }
}

TEST(Cache, StatsClearKeepsContents)
{
    Cache cache(smallCache());
    cache.access(0x1000, false);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
}

TEST(Cache, MissRateComputation)
{
    Cache cache(smallCache());
    cache.access(0x1000, false);
    cache.access(0x1000, false);
    cache.access(0x2000, false);
    cache.access(0x2000, false);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
    Cache untouched(smallCache());
    EXPECT_DOUBLE_EQ(untouched.stats().missRate(), 0.0);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheConfig{0, 2, 64, 1}), ref::FatalError);
    EXPECT_THROW(Cache(CacheConfig{1024, 0, 64, 1}), ref::FatalError);
    EXPECT_THROW(Cache(CacheConfig{1024, 2, 48, 1}), ref::FatalError);
    EXPECT_THROW(Cache(CacheConfig{1000, 2, 64, 1}), ref::FatalError);
}

TEST(Cache, NonPowerOfTwoSetCountWorks)
{
    // 24576 sets (12 MB / 8 ways / 64 B) is not a power of two; the
    // modulo indexing must still spread blocks.
    Cache cache(CacheConfig{12 * 1024 * 1024, 8, 64, 1});
    EXPECT_EQ(cache.sets(), 24576u);
    cache.access(0x0, false);
    EXPECT_TRUE(cache.access(0x0, false).hit);
}

} // namespace
