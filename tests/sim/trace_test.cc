#include "sim/trace.hh"

#include <set>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::sim;

TraceParams
baseParams()
{
    TraceParams params;
    params.workingSetBytes = 64 * 1024;
    params.zipfExponent = 0.8;
    params.memIntensity = 0.2;
    params.streamFraction = 0.0;
    params.writeFraction = 0.25;
    params.seed = 7;
    return params;
}

TEST(Trace, DeterministicForEqualSeeds)
{
    TraceGenerator a(baseParams());
    TraceGenerator b(baseParams());
    const Trace ta = a.generate(1000);
    const Trace tb = b.generate(1000);
    ASSERT_EQ(ta.ops.size(), tb.ops.size());
    for (std::size_t i = 0; i < ta.ops.size(); ++i) {
        EXPECT_EQ(ta.ops[i].address, tb.ops[i].address);
        EXPECT_EQ(ta.ops[i].isWrite, tb.ops[i].isWrite);
        EXPECT_EQ(ta.ops[i].gapInstructions, tb.ops[i].gapInstructions);
    }
}

TEST(Trace, InstructionCountConsistent)
{
    TraceGenerator generator(baseParams());
    const Trace trace = generator.generate(5000);
    std::uint64_t expected = 0;
    for (const auto &op : trace.ops)
        expected += 1 + op.gapInstructions;
    EXPECT_EQ(trace.instructions, expected);
}

TEST(Trace, MemIntensityControlsInstructionGaps)
{
    TraceParams params = baseParams();
    params.memIntensity = 0.1;
    const Trace trace = TraceGenerator(params).generate(50000);
    const double intensity =
        static_cast<double>(trace.ops.size()) /
        static_cast<double>(trace.instructions);
    EXPECT_NEAR(intensity, 0.1, 0.01);
}

TEST(Trace, BurstinessPreservesMeanIntensity)
{
    TraceParams params = baseParams();
    params.memIntensity = 0.1;
    params.burstiness = 0.4;
    const Trace trace = TraceGenerator(params).generate(50000);
    const double intensity =
        static_cast<double>(trace.ops.size()) /
        static_cast<double>(trace.instructions);
    EXPECT_NEAR(intensity, 0.1, 0.015);
    // And produces zero gaps.
    int zero_gaps = 0;
    for (const auto &op : trace.ops)
        zero_gaps += op.gapInstructions == 0;
    EXPECT_GT(zero_gaps, trace.ops.size() / 4);
}

TEST(Trace, ReuseAddressesStayInWorkingSet)
{
    TraceParams params = baseParams();
    const Trace trace = TraceGenerator(params).generate(20000);
    // Each seed owns a 4 GiB window starting at the reuse base.
    const std::uint64_t base =
        0x1000'0000ULL + params.seed * 0x1'0000'0000ULL;
    for (const auto &op : trace.ops) {
        EXPECT_GE(op.address, base);
        EXPECT_LT(op.address, base + params.workingSetBytes);
    }
}

TEST(Trace, DistinctSeedsUseDisjointAddressWindows)
{
    TraceParams a = baseParams();
    a.seed = 1;
    TraceParams b = baseParams();
    b.seed = 2;
    std::set<std::uint64_t> blocks_a;
    for (const auto &op : TraceGenerator(a).generate(5000).ops)
        blocks_a.insert(op.address / 64);
    for (const auto &op : TraceGenerator(b).generate(5000).ops)
        EXPECT_EQ(blocks_a.count(op.address / 64), 0u);
}

TEST(Trace, StreamingAddressesNeverRepeat)
{
    TraceParams params = baseParams();
    params.streamFraction = 1.0;
    const Trace trace = TraceGenerator(params).generate(20000);
    std::set<std::uint64_t> seen;
    for (const auto &op : trace.ops)
        EXPECT_TRUE(seen.insert(op.address).second);
}

TEST(Trace, ZipfSkewConcentratesReuse)
{
    // High skew touches far fewer distinct blocks than uniform.
    TraceParams skewed = baseParams();
    skewed.zipfExponent = 1.4;
    TraceParams uniform = baseParams();
    uniform.zipfExponent = 0.0;

    const auto distinct = [](const Trace &trace) {
        std::set<std::uint64_t> blocks;
        for (const auto &op : trace.ops)
            blocks.insert(op.address / 64);
        return blocks.size();
    };
    const auto skewed_trace = TraceGenerator(skewed).generate(20000);
    const auto uniform_trace = TraceGenerator(uniform).generate(20000);
    EXPECT_LT(distinct(skewed_trace),
              static_cast<std::size_t>(
                  0.85 * static_cast<double>(distinct(uniform_trace))));
}

TEST(Trace, WriteFractionApproximatelyHonored)
{
    TraceParams params = baseParams();
    params.writeFraction = 0.25;
    const Trace trace = TraceGenerator(params).generate(40000);
    int writes = 0;
    for (const auto &op : trace.ops)
        writes += op.isWrite;
    EXPECT_NEAR(static_cast<double>(writes) / trace.ops.size(), 0.25,
                0.02);
}

TEST(Trace, RejectsInvalidParameters)
{
    TraceParams params = baseParams();
    params.memIntensity = 0.0;
    EXPECT_THROW(TraceGenerator{params}, ref::FatalError);
    params = baseParams();
    params.memIntensity = 1.5;
    EXPECT_THROW(TraceGenerator{params}, ref::FatalError);
    params = baseParams();
    params.streamFraction = -0.1;
    EXPECT_THROW(TraceGenerator{params}, ref::FatalError);
    params = baseParams();
    params.burstiness = 1.0;
    EXPECT_THROW(TraceGenerator{params}, ref::FatalError);
    params = baseParams();
    params.writeFraction = 2.0;
    EXPECT_THROW(TraceGenerator{params}, ref::FatalError);
}

TEST(Trace, FullIntensityHasNoGaps)
{
    TraceParams params = baseParams();
    params.memIntensity = 1.0;
    params.burstiness = 0.0;
    const Trace trace = TraceGenerator(params).generate(1000);
    for (const auto &op : trace.ops)
        EXPECT_EQ(op.gapInstructions, 0u);
    EXPECT_EQ(trace.instructions, 1000u);
}

} // namespace
