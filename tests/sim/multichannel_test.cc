/**
 * @file
 * System-level tests of the extended substrate features: multiple
 * channels, open-page policy, and the prefetcher interacting with
 * the full cache hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/profiler.hh"
#include "sim/system.hh"
#include "util/logging.hh"

namespace {

using namespace ref::sim;

Trace
streamingTrace(std::size_t ops = 40000)
{
    TraceParams params;
    params.workingSetBytes = 64 * 1024;
    params.memIntensity = 0.25;
    params.streamFraction = 0.9;
    params.seed = 5;
    return TraceGenerator(params).generate(ops);
}

Trace
rowLocalTrace(std::size_t ops = 40000)
{
    // Low-skew reuse over a set slightly larger than L2: misses are
    // frequent and spatially clustered within rows.
    TraceParams params;
    params.workingSetBytes = 4 * 1024 * 1024;
    params.zipfExponent = 0.2;
    params.memIntensity = 0.25;
    params.seed = 6;
    return TraceGenerator(params).generate(ops);
}

TEST(SystemSubstrate, DualChannelHelpsBandwidthBoundWork)
{
    // Doubling the channels at double aggregate bandwidth must not
    // hurt; and at EQUAL aggregate bandwidth the dual-channel system
    // performs comparably (parallelism compensates the slower per-
    // channel bus).
    const Trace trace = streamingTrace();
    PlatformConfig one = PlatformConfig::table1();
    one.dram.bandwidthGBps = 3.2;
    PlatformConfig two = one;
    two.dram.channels = 2;

    const double ipc_one =
        CmpSystem(one).run(trace, TimingParams{6.0, 0.0}, 0.2).ipc;
    const double ipc_two =
        CmpSystem(two).run(trace, TimingParams{6.0, 0.0}, 0.2).ipc;
    EXPECT_GT(ipc_two, 0.7 * ipc_one);
    EXPECT_LT(ipc_two, 1.5 * ipc_one);
}

TEST(SystemSubstrate, OpenPageHelpsRowLocalMissStreams)
{
    // Sequential streams touch consecutive blocks of each row: the
    // open-page policy turns most accesses into row hits.
    const Trace trace = streamingTrace();
    PlatformConfig closed = PlatformConfig::table1();
    closed.dram.bandwidthGBps = 6.4;
    PlatformConfig open = closed;
    open.dram.pagePolicy = PagePolicy::Open;

    const auto closed_run =
        CmpSystem(closed).run(trace, TimingParams{4.0, 0.0}, 0.2);
    const auto open_run =
        CmpSystem(open).run(trace, TimingParams{4.0, 0.0}, 0.2);
    EXPECT_GT(open_run.dram.rowHitRate(), 0.5);
    EXPECT_EQ(closed_run.dram.rowHits, 0u);
    EXPECT_GE(open_run.ipc, closed_run.ipc * 0.95);
}

TEST(SystemSubstrate, OpenPageRowHitRateLowForScatteredMisses)
{
    const Trace trace = rowLocalTrace();
    PlatformConfig open = PlatformConfig::table1();
    open.dram.bandwidthGBps = 6.4;
    open.dram.pagePolicy = PagePolicy::Open;
    open.l2.sizeBytes = 128 * 1024;  // Force misses.
    const auto run =
        CmpSystem(open).run(trace, TimingParams{4.0, 0.0}, 0.2);
    // Zipf-scattered misses rarely hit an open row.
    EXPECT_LT(run.dram.rowHitRate(), 0.3);
}

TEST(SystemSubstrate, ProfilerWorksOnExtendedConfigs)
{
    // The profiler must run cleanly on every substrate variant: the
    // ablation benches depend on it.
    PlatformConfig config = PlatformConfig::table1();
    config.dram.channels = 2;
    config.dram.pagePolicy = PagePolicy::Open;
    config.core.nextLinePrefetch = true;
    const Profiler profiler(config, 10000);
    const auto fit =
        profiler.profileAndFit(workloadByName("dedup"));
    EXPECT_GT(fit.utility.elasticity(0), 0.0);
    EXPECT_GT(fit.rSquaredLog, 0.3);
}

} // namespace
