#include "sim/config.hh"

#include <gtest/gtest.h>

namespace {

using namespace ref::sim;

TEST(Config, Table1DefaultsMatchPaper)
{
    const auto config = PlatformConfig::table1();
    EXPECT_DOUBLE_EQ(config.core.clockGHz, 3.0);
    EXPECT_EQ(config.core.issueWidth, 4u);
    EXPECT_EQ(config.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(config.l1.associativity, 4u);
    EXPECT_EQ(config.l1.blockBytes, 64u);
    EXPECT_EQ(config.l1.latencyCycles, 2u);
    EXPECT_EQ(config.l2.associativity, 8u);
    EXPECT_EQ(config.l2.latencyCycles, 20u);
}

TEST(Config, SweepListsMatchTable1)
{
    const auto sizes = table1CacheSizes();
    ASSERT_EQ(sizes.size(), 5u);
    EXPECT_EQ(sizes.front(), 128u * 1024);
    EXPECT_EQ(sizes.back(), 2u * 1024 * 1024);

    const auto bandwidths = table1Bandwidths();
    ASSERT_EQ(bandwidths.size(), 5u);
    EXPECT_DOUBLE_EQ(bandwidths.front(), 0.8);
    EXPECT_DOUBLE_EQ(bandwidths.back(), 12.8);
    // Each step doubles.
    for (std::size_t i = 1; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(bandwidths[i], 2 * bandwidths[i - 1]);
        EXPECT_EQ(sizes[i], 2 * sizes[i - 1]);
    }
}

TEST(Config, CyclesPerNsFollowsClock)
{
    PlatformConfig config = PlatformConfig::table1();
    EXPECT_DOUBLE_EQ(config.cyclesPerNs(), 3.0);
    config.core.clockGHz = 2.0;
    EXPECT_DOUBLE_EQ(config.cyclesPerNs(), 2.0);
}

} // namespace
