#include "sim/dram.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref::sim;

DramModel
makeDram(double bandwidth_gbps, unsigned banks = 8)
{
    DramConfig dram;
    dram.bandwidthGBps = bandwidth_gbps;
    dram.banks = banks;
    CoreConfig core;
    return DramModel(dram, core);
}

TEST(Dram, TransferCyclesScaleInverselyWithBandwidth)
{
    // 64 B at 12.8 GB/s = 5 ns = 15 cycles at 3 GHz.
    EXPECT_EQ(makeDram(12.8).transferCycles(), 15u);
    // 64 B at 0.8 GB/s = 80 ns = 240 cycles.
    EXPECT_EQ(makeDram(0.8).transferCycles(), 240u);
}

TEST(Dram, UnloadedLatencyIsAccessPlusTransfer)
{
    DramModel dram = makeDram(12.8);
    const auto completion = dram.access(1000, 0x1000);
    // Controller (10) + access (26 ns * 3) + transfer (15).
    EXPECT_EQ(completion, 1000u + 10 + 78 + 15);
}

TEST(Dram, BusSerializesBackToBackRequests)
{
    DramModel dram = makeDram(0.8);
    // Two simultaneous requests to different banks share one bus.
    const auto first = dram.access(0, 0x0000);
    const auto second = dram.access(0, 0x0040);  // Next bank.
    EXPECT_EQ(second - first, dram.transferCycles());
}

TEST(Dram, BankConflictAddsRowCycleDelay)
{
    DramModel dram = makeDram(12.8, 8);
    const auto first = dram.access(0, 0x0000);
    // Same bank (stride = banks * block): must wait out tRC.
    const auto second = dram.access(0, 8 * 64);
    EXPECT_GT(second, first);
    // Row cycle is 45 ns = 135 cycles; the second access cannot
    // begin its CAS before the bank frees.
    EXPECT_GE(second, 135u);
}

TEST(Dram, QueueingLatencyGrowsUnderLoad)
{
    DramModel dram = makeDram(0.8);
    std::uint64_t last = 0;
    for (int i = 0; i < 64; ++i)
        last = dram.access(0, static_cast<std::uint64_t>(i) * 64);
    // 64 serialized transfers at 240 cycles each dominate.
    EXPECT_GE(last, 64u * 240u);
    EXPECT_GT(dram.stats().averageLatency(), 240.0);
}

TEST(Dram, LaterIssueTimesReduceQueueing)
{
    DramModel contended = makeDram(0.8);
    std::uint64_t contended_last = 0;
    for (int i = 0; i < 16; ++i)
        contended_last =
            contended.access(0, static_cast<std::uint64_t>(i) * 64);

    DramModel paced = makeDram(0.8);
    std::uint64_t paced_last = 0;
    for (int i = 0; i < 16; ++i) {
        paced_last = paced.access(
            static_cast<std::uint64_t>(i) * 1000,
            static_cast<std::uint64_t>(i) * 64);
    }
    EXPECT_LT(paced.stats().averageLatency(),
              contended.stats().averageLatency());
    EXPECT_LE(paced_last, contended_last + 16000);
}

TEST(Dram, DeliveredBandwidthApproachesPeakUnderSaturation)
{
    DramModel dram = makeDram(6.4);
    std::uint64_t last = 0;
    for (int i = 0; i < 2000; ++i)
        last = dram.access(0, static_cast<std::uint64_t>(i) * 64);
    const double delivered = dram.deliveredBandwidthGBps(last);
    EXPECT_GT(delivered, 0.9 * 6.4);
    EXPECT_LE(delivered, 6.4 * 1.01);
}

TEST(Dram, StatsAccumulateAndClear)
{
    DramModel dram = makeDram(12.8);
    dram.access(0, 0x0);
    dram.access(0, 0x40);
    EXPECT_EQ(dram.stats().requests, 2u);
    EXPECT_EQ(dram.stats().blocksTransferred, 2u);
    dram.clearStats();
    EXPECT_EQ(dram.stats().requests, 0u);
    EXPECT_DOUBLE_EQ(dram.deliveredBandwidthGBps(100), 0.0);
}

TEST(Dram, TwoChannelsDoubleSaturatedThroughput)
{
    // Same aggregate bandwidth, but independent buses let two
    // channels overlap bank time; under saturation both configs
    // approach the same aggregate bandwidth, while a single faster
    // channel and two half-rate channels must be within ~10%.
    DramConfig one = DramConfig{};
    one.bandwidthGBps = 6.4;
    one.channels = 1;
    DramConfig two = DramConfig{};
    two.bandwidthGBps = 6.4;
    two.channels = 2;
    DramModel single(one, CoreConfig{});
    DramModel dual(two, CoreConfig{});

    std::uint64_t single_last = 0, dual_last = 0;
    for (int i = 0; i < 4000; ++i) {
        const auto address = static_cast<std::uint64_t>(i) * 64;
        single_last = single.access(0, address);
        dual_last = dual.access(0, address);
    }
    const double single_bw =
        single.deliveredBandwidthGBps(single_last);
    const double dual_bw = dual.deliveredBandwidthGBps(dual_last);
    EXPECT_NEAR(dual_bw, single_bw, 0.12 * single_bw);
    EXPECT_GT(dual_bw, 0.85 * 6.4);
}

TEST(Dram, ChannelsInterleaveByBlock)
{
    // With two channels, consecutive blocks land on different
    // buses: two simultaneous requests overlap fully instead of
    // serializing.
    DramConfig config = DramConfig{};
    config.bandwidthGBps = 1.6;
    config.channels = 2;
    DramModel dram(config, CoreConfig{});
    const auto first = dram.access(0, 0 * 64);
    const auto second = dram.access(0, 1 * 64);
    EXPECT_EQ(first, second);  // Different channels, same timing.
}

TEST(Dram, OpenPageRowHitsAreFaster)
{
    DramConfig open = DramConfig{};
    open.bandwidthGBps = 12.8;
    open.pagePolicy = PagePolicy::Open;
    DramModel dram(open, CoreConfig{});
    const auto first = dram.access(0, 0x0000);
    // Same row (within rowBytes), same bank: row hit, CAS only.
    const auto second = dram.access(first, 0x0040);
    const auto first_latency = first;
    const auto second_latency = second - first;
    EXPECT_LT(second_latency, first_latency);
    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_GT(dram.stats().rowHitRate(), 0.4);
}

TEST(Dram, ClosedPageNeverRowHits)
{
    DramModel dram = makeDram(12.8);
    dram.access(0, 0x0000);
    dram.access(1000, 0x0040);
    EXPECT_EQ(dram.stats().rowHits, 0u);
}

TEST(Dram, OpenPageRowMissPaysFullAccess)
{
    DramConfig open = DramConfig{};
    open.bandwidthGBps = 12.8;
    open.pagePolicy = PagePolicy::Open;
    open.rowBytes = 2048;
    DramModel dram(open, CoreConfig{});
    dram.access(0, 0x0000);
    // Same bank (stride channels*banks*block = 512B... choose an
    // address in a different row mapping to the same bank: row size
    // 2048 covers blocks 0-31; block 32 maps to bank 0 again only if
    // 32 % 8 == 0 — it is, and 32*64 = 2048 starts a new row.
    dram.access(100000, 2048);
    EXPECT_EQ(dram.stats().rowHits, 0u);
}

TEST(Dram, RejectsBadConfig)
{
    DramConfig dram;
    dram.bandwidthGBps = 0.0;
    EXPECT_THROW(DramModel(dram, CoreConfig{}), ref::FatalError);
    dram = DramConfig{};
    dram.banks = 0;
    EXPECT_THROW(DramModel(dram, CoreConfig{}), ref::FatalError);
    dram = DramConfig{};
    dram.channels = 0;
    EXPECT_THROW(DramModel(dram, CoreConfig{}), ref::FatalError);
    dram = DramConfig{};
    dram.rowBytes = 32;  // Smaller than a block.
    EXPECT_THROW(DramModel(dram, CoreConfig{}), ref::FatalError);
}

} // namespace
