#include "linalg/decompose.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using ref::linalg::Cholesky;
using ref::linalg::HouseholderQr;
using ref::linalg::Matrix;
using ref::linalg::Vector;

Matrix
randomSpd(std::size_t n, ref::Rng &rng)
{
    // A^T A + n I is symmetric positive definite.
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
    Matrix spd = a.transposed() * a;
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Cholesky, FactorsKnownMatrix)
{
    const Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    const Cholesky chol(a);
    const Matrix &l = chol.lower();
    EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
    EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, SolveRecoversKnownSolution)
{
    const Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    const Vector x_true{1.0, -2.0};
    const Vector b = a * x_true;
    const Vector x = Cholesky(a).solve(b);
    EXPECT_NEAR(x[0], x_true[0], 1e-12);
    EXPECT_NEAR(x[1], x_true[1], 1e-12);
}

TEST(Cholesky, RejectsNonSquareAndIndefinite)
{
    EXPECT_THROW(Cholesky(Matrix(2, 3)), ref::FatalError);
    const Matrix indefinite = Matrix::fromRows({{1, 2}, {2, 1}});
    EXPECT_THROW(Cholesky{indefinite}, ref::FatalError);
}

TEST(Cholesky, RandomSpdRoundTrip)
{
    ref::Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + trial % 8;
        const Matrix a = randomSpd(n, rng);
        Vector x_true(n);
        for (auto &v : x_true)
            v = rng.uniform(-5.0, 5.0);
        const Vector x = Cholesky(a).solve(a * x_true);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

TEST(HouseholderQr, RFactorIsUpperTriangularAndReproducesNorms)
{
    const Matrix a =
        Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const HouseholderQr qr(a);
    const Matrix r = qr.r();
    EXPECT_DOUBLE_EQ(r(1, 0), 0.0);
    // |R(0,0)| equals the norm of A's first column.
    EXPECT_NEAR(std::abs(r(0, 0)), std::sqrt(1.0 + 9.0 + 25.0), 1e-12);
}

TEST(HouseholderQr, SolvesExactSquareSystem)
{
    const Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    const Vector x = HouseholderQr(a).solve({5, 10});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(HouseholderQr, LeastSquaresMatchesNormalEquations)
{
    // Overdetermined: y = 2x fit through three noisy points.
    const Matrix a = Matrix::fromRows({{1}, {2}, {3}});
    const Vector b{2.1, 3.9, 6.0};
    const Vector x = HouseholderQr(a).solve(b);
    // Normal equations: x = (a.b) / (a.a) = (2.1+7.8+18)/14.
    EXPECT_NEAR(x[0], (2.1 + 7.8 + 18.0) / 14.0, 1e-12);
}

TEST(HouseholderQr, DetectsRankDeficiency)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
    const HouseholderQr qr(a);
    EXPECT_FALSE(qr.fullRank(1e-9));
    EXPECT_THROW(qr.solve({1, 2, 3}), ref::FatalError);
}

TEST(HouseholderQr, RejectsWideMatrices)
{
    EXPECT_THROW(HouseholderQr(Matrix(2, 3)), ref::FatalError);
}

TEST(HouseholderQr, RandomRoundTrip)
{
    ref::Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 2 + trial % 6;
        const std::size_t m = n + trial % 4;
        Matrix a(m, n);
        for (std::size_t r = 0; r < m; ++r)
            for (std::size_t c = 0; c < n; ++c)
                a(r, c) = rng.uniform(-2.0, 2.0);
        Vector x_true(n);
        for (auto &v : x_true)
            v = rng.uniform(-3.0, 3.0);
        // Consistent system: exact recovery expected.
        const Vector x = HouseholderQr(a).solve(a * x_true);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
}

TEST(SolveLinearSystem, RequiresSquare)
{
    EXPECT_THROW(ref::linalg::solveLinearSystem(Matrix(3, 2), {1, 2, 3}),
                 ref::FatalError);
}

} // namespace
