#include "linalg/least_squares.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::linalg::leastSquares;
using ref::linalg::Matrix;
using ref::linalg::Vector;

TEST(LeastSquares, ExactSystemHasZeroResidual)
{
    const Matrix a = Matrix::fromRows({{1, 0}, {0, 1}, {1, 1}});
    const Vector x_true{2.0, -1.0};
    const auto fit = leastSquares(a, a * x_true);
    EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-12);
    EXPECT_NEAR(fit.coefficients[1], -1.0, 1e-12);
    EXPECT_NEAR(fit.residualNorm, 0.0, 1e-12);
}

TEST(LeastSquares, ResidualIsOrthogonalToColumnSpace)
{
    const Matrix a = Matrix::fromRows({{1, 1}, {1, 2}, {1, 3}, {1, 4}});
    const Vector b{1.0, 3.0, 2.0, 5.0};
    const auto fit = leastSquares(a, b);
    // A^T r == 0 characterizes the least-squares minimizer.
    const Vector atr = a.transposed() * fit.residuals;
    EXPECT_NEAR(atr[0], 0.0, 1e-10);
    EXPECT_NEAR(atr[1], 0.0, 1e-10);
}

TEST(LeastSquares, KnownRegressionLine)
{
    // y = 1 + 2 t at t = 1..4 with symmetric noise (+e, -e, -e, +e)
    // leaves the slope and intercept unchanged.
    const Matrix a = Matrix::fromRows({{1, 1}, {1, 2}, {1, 3}, {1, 4}});
    const Vector b{3.1, 4.9, 6.9, 9.1};
    const auto fit = leastSquares(a, b);
    EXPECT_NEAR(fit.coefficients[0], 1.0, 0.2);
    EXPECT_NEAR(fit.coefficients[1], 2.0, 0.1);
    EXPECT_GT(fit.residualNorm, 0.0);
}

TEST(LeastSquares, RejectsShapeMismatch)
{
    EXPECT_THROW(leastSquares(Matrix(3, 2), {1.0, 2.0}),
                 ref::FatalError);
}

} // namespace
