#include "linalg/matrix.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::linalg::Matrix;
using ref::linalg::Vector;

TEST(Matrix, ZeroInitialized)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(Matrix, FillConstructor)
{
    Matrix m(2, 2, 7.5);
    EXPECT_DOUBLE_EQ(m(1, 1), 7.5);
}

TEST(Matrix, FromRowsBuildsAndValidates)
{
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(m(0, 1), 2);
    EXPECT_DOUBLE_EQ(m(1, 0), 3);
    EXPECT_THROW(Matrix::fromRows({{1, 2}, {3}}), ref::FatalError);
    EXPECT_THROW(Matrix::fromRows({}), ref::FatalError);
}

TEST(Matrix, IdentityActsAsMultiplicativeUnit)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix i = Matrix::identity(2);
    const Matrix prod = a * i;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
}

TEST(Matrix, TransposeSwapsShape)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(Matrix, ProductMatchesHandComputation)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, ProductRejectsShapeMismatch)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_THROW(a * b, ref::FatalError);
}

TEST(Matrix, MatrixVectorProduct)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Vector v = a * Vector{1.0, 1.0};
    EXPECT_DOUBLE_EQ(v[0], 3);
    EXPECT_DOUBLE_EQ(v[1], 7);
}

TEST(Matrix, SumAndDifference)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{4, 3}, {2, 1}});
    const Matrix s = a + b;
    const Matrix d = a - b;
    EXPECT_DOUBLE_EQ(s(0, 0), 5);
    EXPECT_DOUBLE_EQ(s(1, 1), 5);
    EXPECT_DOUBLE_EQ(d(0, 0), -3);
    EXPECT_DOUBLE_EQ(d(1, 1), 3);
}

TEST(Matrix, ScaledMultipliesEveryElement)
{
    const Matrix a = Matrix::fromRows({{1, -2}});
    const Matrix s = a.scaled(-2.0);
    EXPECT_DOUBLE_EQ(s(0, 0), -2);
    EXPECT_DOUBLE_EQ(s(0, 1), 4);
}

TEST(Matrix, RowAndColumnExtraction)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(a.row(1), (Vector{4, 5, 6}));
    EXPECT_EQ(a.column(2), (Vector{3, 6}));
    EXPECT_THROW(a.row(2), ref::FatalError);
    EXPECT_THROW(a.column(3), ref::FatalError);
}

TEST(Matrix, MaxAbsFindsPeak)
{
    const Matrix a = Matrix::fromRows({{1, -9}, {3, 4}});
    EXPECT_DOUBLE_EQ(a.maxAbs(), 9);
    EXPECT_DOUBLE_EQ(Matrix().maxAbs(), 0);
}

TEST(VectorOps, DotNormAddSubtractScaleAxpy)
{
    const Vector a{3.0, 4.0};
    const Vector b{1.0, 2.0};
    EXPECT_DOUBLE_EQ(ref::linalg::dot(a, b), 11.0);
    EXPECT_DOUBLE_EQ(ref::linalg::norm2(a), 5.0);
    EXPECT_DOUBLE_EQ(ref::linalg::normInf(Vector{-7.0, 2.0}), 7.0);
    EXPECT_EQ(ref::linalg::add(a, b), (Vector{4.0, 6.0}));
    EXPECT_EQ(ref::linalg::subtract(a, b), (Vector{2.0, 2.0}));
    EXPECT_EQ(ref::linalg::scale(a, 2.0), (Vector{6.0, 8.0}));
    EXPECT_EQ(ref::linalg::axpy(a, 2.0, b), (Vector{5.0, 8.0}));
}

TEST(VectorOps, RejectSizeMismatch)
{
    const Vector a{1.0};
    const Vector b{1.0, 2.0};
    EXPECT_THROW(ref::linalg::dot(a, b), ref::FatalError);
    EXPECT_THROW(ref::linalg::add(a, b), ref::FatalError);
    EXPECT_THROW(ref::linalg::axpy(a, 1.0, b), ref::FatalError);
}

} // namespace
