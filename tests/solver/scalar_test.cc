#include "solver/scalar.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::solver::bisectRoot;
using ref::solver::brentMinimize;

TEST(Brent, FindsQuadraticMinimum)
{
    const auto result = brentMinimize(
        [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; }, 0.0, 10.0);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, 2.5, 1e-8);
    EXPECT_NEAR(result.value, 1.0, 1e-12);
}

TEST(Brent, FindsNonPolynomialMinimum)
{
    // x - log(x) has its minimum at x = 1.
    const auto result = brentMinimize(
        [](double x) { return x - std::log(x); }, 0.01, 10.0);
    EXPECT_NEAR(result.x, 1.0, 1e-7);
}

TEST(Brent, HandlesMinimumAtBracketEdge)
{
    const auto result =
        brentMinimize([](double x) { return x; }, 0.0, 1.0);
    EXPECT_NEAR(result.x, 0.0, 1e-6);
}

TEST(Brent, RejectsEmptyBracket)
{
    EXPECT_THROW(brentMinimize([](double x) { return x; }, 1.0, 1.0),
                 ref::FatalError);
}

TEST(Brent, AsymmetricValleyStillConverges)
{
    const auto result = brentMinimize(
        [](double x) { return std::exp(x) - 3 * x; }, -2.0, 4.0);
    EXPECT_NEAR(result.x, std::log(3.0), 1e-7);
}

TEST(Bisection, FindsSquareRoot)
{
    const auto result = bisectRoot(
        [](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, std::sqrt(2.0), 1e-9);
}

TEST(Bisection, HandlesRootAtEndpoint)
{
    const auto at_lo = bisectRoot(
        [](double x) { return x; }, 0.0, 1.0);
    EXPECT_TRUE(at_lo.converged);
    EXPECT_DOUBLE_EQ(at_lo.x, 0.0);
}

TEST(Bisection, DecreasingFunction)
{
    const auto result = bisectRoot(
        [](double x) { return 5.0 - x; }, 0.0, 10.0);
    EXPECT_NEAR(result.x, 5.0, 1e-9);
}

TEST(Bisection, RejectsNoSignChange)
{
    EXPECT_THROW(bisectRoot([](double x) { return x * x + 1.0; },
                            -1.0, 1.0),
                 ref::FatalError);
}

} // namespace
