#include "solver/descent.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::solver::gradientDescent;
using ref::solver::LambdaFunction;
using ref::solver::MinimizeOptions;
using ref::solver::newtonMinimize;
using ref::solver::Vector;

const LambdaFunction kSphere(
    [](const Vector &x) {
        double total = 0;
        for (double v : x)
            total += v * v;
        return total;
    },
    [](const Vector &x) {
        Vector grad(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            grad[i] = 2 * x[i];
        return grad;
    });

/** Rosenbrock: the classic hard valley, minimum at (1, 1). */
const LambdaFunction kRosenbrock(
    [](const Vector &x) {
        const double a = 1 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100 * b * b;
    },
    [](const Vector &x) {
        const double b = x[1] - x[0] * x[0];
        return Vector{-2 * (1 - x[0]) - 400 * x[0] * b, 200 * b};
    });

TEST(GradientDescent, SolvesSphere)
{
    const auto result = gradientDescent(kSphere, {3.0, -4.0, 5.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.value, 0.0, 1e-12);
    for (double v : result.point)
        EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(GradientDescent, HandlesIllConditionedQuadratic)
{
    const LambdaFunction fn(
        [](const Vector &x) {
            return x[0] * x[0] + 100 * x[1] * x[1];
        },
        [](const Vector &x) {
            return Vector{2 * x[0], 200 * x[1]};
        });
    MinimizeOptions options;
    options.maxIterations = 5000;
    const auto result = gradientDescent(fn, {1.0, 1.0}, options);
    EXPECT_NEAR(result.value, 0.0, 1e-10);
}

TEST(NewtonMinimize, SolvesSphereInFewIterations)
{
    const auto result = newtonMinimize(kSphere, {10.0, -20.0});
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.iterations, 5);
    EXPECT_NEAR(result.value, 0.0, 1e-12);
}

TEST(NewtonMinimize, SolvesRosenbrock)
{
    const auto result = newtonMinimize(kRosenbrock, {-1.2, 1.0});
    EXPECT_NEAR(result.point[0], 1.0, 1e-5);
    EXPECT_NEAR(result.point[1], 1.0, 1e-5);
}

TEST(NewtonMinimize, MinimizesLogBarrierStyleObjective)
{
    // -log(x) + x has its minimum at x = 1 and an implicit domain
    // boundary at 0, exercising the +inf handling.
    const LambdaFunction fn(
        [](const Vector &x) {
            if (x[0] <= 0)
                return std::numeric_limits<double>::infinity();
            return -std::log(x[0]) + x[0];
        },
        [](const Vector &x) { return Vector{-1.0 / x[0] + 1.0}; });
    const auto result = newtonMinimize(fn, {0.1});
    EXPECT_NEAR(result.point[0], 1.0, 1e-7);
}

TEST(NewtonMinimize, NonConvexStartFallsBackGracefully)
{
    // f(x) = x^4 - x^2 has a concave region around 0; Newton must
    // still find one of the +-1/sqrt(2) minima.
    const LambdaFunction fn(
        [](const Vector &x) {
            return std::pow(x[0], 4) - x[0] * x[0];
        },
        [](const Vector &x) {
            return Vector{4 * std::pow(x[0], 3) - 2 * x[0]};
        });
    const auto result = newtonMinimize(fn, {0.05});
    EXPECT_NEAR(std::abs(result.point[0]), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Minimizers, StartMustBeInsideDomain)
{
    const LambdaFunction fn(
        [](const Vector &x) {
            return x[0] > 0 ? x[0]
                            : std::numeric_limits<double>::infinity();
        },
        [](const Vector &) { return Vector{1.0}; });
    EXPECT_THROW(gradientDescent(fn, {-1.0}), ref::FatalError);
    EXPECT_THROW(newtonMinimize(fn, {-1.0}), ref::FatalError);
}

TEST(Minimizers, AlreadyOptimalStopsImmediately)
{
    const auto result = newtonMinimize(kSphere, {0.0, 0.0});
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0);
}

} // namespace
