/**
 * @file
 * Option-knob coverage for the solvers: tolerances, iteration caps,
 * and penalty weights behave as documented.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "solver/barrier.hh"
#include "solver/penalty.hh"
#include "util/logging.hh"

namespace {

using namespace ref::solver;

std::shared_ptr<const LambdaFunction>
fn(LambdaFunction::ValueFn value, LambdaFunction::GradientFn gradient)
{
    return std::make_shared<LambdaFunction>(std::move(value),
                                            std::move(gradient));
}

ConstrainedProgram
cappedLinear()
{
    // min -x s.t. x <= 3.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return -x[0]; },
        [](const Vector &) { return Vector{-1.0}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 3.0; },
        [](const Vector &) { return Vector{1.0}; }));
    return program;
}

TEST(SolverOptions, PenaltyWeightCapLimitsAccuracy)
{
    // With a tiny weight cap, the penalty solve stops early and
    // reports non-convergence with a residual violation.
    PenaltyOptions loose;
    loose.initialWeight = 1.0;
    loose.maxWeight = 1.0;
    loose.violationTolerance = 1e-12;
    const auto result = solvePenalty(cappedLinear(), {0.0}, loose);
    EXPECT_FALSE(result.converged);
    EXPECT_GT(result.maxViolation, 1e-12);
}

TEST(SolverOptions, TighterViolationToleranceImprovesFeasibility)
{
    PenaltyOptions strict;
    strict.violationTolerance = 1e-9;
    const auto result = solvePenalty(cappedLinear(), {0.0}, strict);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.maxViolation, 1e-9);
    EXPECT_NEAR(result.point[0], 3.0, 1e-4);
}

TEST(SolverOptions, BarrierGapToleranceControlsSuboptimality)
{
    // The duality gap bound m/t translates directly into objective
    // suboptimality for this linear program.
    BarrierOptions coarse;
    coarse.dualityGapTolerance = 1e-2;
    const auto rough = solveBarrier(cappedLinear(), {0.0}, coarse);
    BarrierOptions fine;
    fine.dualityGapTolerance = 1e-9;
    const auto sharp = solveBarrier(cappedLinear(), {0.0}, fine);
    EXPECT_LT(std::abs(sharp.point[0] - 3.0),
              std::abs(rough.point[0] - 3.0) + 1e-12);
    EXPECT_NEAR(sharp.point[0], 3.0, 1e-6);
}

TEST(SolverOptions, InnerIterationCapRespected)
{
    MinimizeOptions inner;
    inner.maxIterations = 1;
    PenaltyOptions options;
    options.inner = inner;
    options.maxWeight = 10.0;
    // One Newton step per subproblem and a capped weight: the solve
    // terminates quickly (bounded outer iterations) regardless of
    // convergence.
    const auto result = solvePenalty(cappedLinear(), {0.0}, options);
    EXPECT_LE(result.outerIterations, 2);
}

TEST(SolverOptions, GradientDescentToleranceStopsEarly)
{
    const LambdaFunction sphere(
        [](const Vector &x) { return x[0] * x[0]; },
        [](const Vector &x) { return Vector{2 * x[0]}; });
    MinimizeOptions loose;
    loose.gradientTolerance = 1e-1;
    const auto rough = gradientDescent(sphere, {4.0}, loose);
    MinimizeOptions tight;
    tight.gradientTolerance = 1e-12;
    const auto sharp = gradientDescent(sphere, {4.0}, tight);
    EXPECT_TRUE(rough.converged);
    EXPECT_LE(rough.iterations, sharp.iterations);
    EXPECT_LT(std::abs(sharp.point[0]), std::abs(rough.point[0]) + 1e-12);
}

TEST(SolverOptions, LineSearchBacktrackCapFails)
{
    // A pathological objective that rises along the descent
    // direction everywhere reachable: the search gives up cleanly.
    const LambdaFunction bumpy(
        [](const Vector &x) {
            return x[0] <= 0 ? -x[0] * 1e-9 : 1.0 + x[0];
        },
        [](const Vector &) { return Vector{-1e-9}; });
    LineSearchOptions options;
    options.maxBacktracks = 3;
    const auto result = backtrackingLineSearch(
        bumpy, {0.0}, {1.0}, 0.0, -1e-9, options);
    EXPECT_FALSE(result.accepted);
    EXPECT_DOUBLE_EQ(result.step, 0.0);
}

} // namespace
