#include "solver/barrier.hh"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "util/logging.hh"

#include "solver/penalty.hh"

namespace {

using ref::solver::ConstrainedProgram;
using ref::solver::LambdaFunction;
using ref::solver::solveBarrier;
using ref::solver::solvePenalty;
using ref::solver::Vector;

std::shared_ptr<const LambdaFunction>
fn(LambdaFunction::ValueFn value, LambdaFunction::GradientFn gradient)
{
    return std::make_shared<LambdaFunction>(std::move(value),
                                            std::move(gradient));
}

ConstrainedProgram
boxConstrainedQuadratic()
{
    // min (x-3)^2 s.t. x <= 1.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return (x[0] - 3) * (x[0] - 3); },
        [](const Vector &x) { return Vector{2 * (x[0] - 3)}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 1.0; },
        [](const Vector &) { return Vector{1.0}; }));
    return program;
}

TEST(Barrier, SolvesActiveConstraintProblem)
{
    const auto result = solveBarrier(boxConstrainedQuadratic(), {0.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.point[0], 1.0, 1e-5);
    // Interior-point iterates never violate constraints.
    EXPECT_LE(result.maxViolation, 0.0);
}

TEST(Barrier, RejectsInfeasibleStart)
{
    EXPECT_THROW(solveBarrier(boxConstrainedQuadratic(), {2.0}),
                 ref::FatalError);
}

TEST(Barrier, RejectsEqualityConstraints)
{
    ConstrainedProgram program = boxConstrainedQuadratic();
    program.equalities.push_back(fn(
        [](const Vector &x) { return x[0]; },
        [](const Vector &) { return Vector{1.0}; }));
    EXPECT_THROW(solveBarrier(program, {0.0}), ref::FatalError);
}

TEST(Barrier, AgreesWithPenaltyOnSharedProgram)
{
    // min -log(x) - log(y) s.t. x + y <= 4 (in exp space via
    // log-sum-exp): symmetric optimum.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return -(x[0] + x[1]); },
        [](const Vector &) { return Vector{-1.0, -1.0}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) {
            return std::log(std::exp(x[0]) + std::exp(x[1])) -
                   std::log(4.0);
        },
        [](const Vector &x) {
            const double total = std::exp(x[0]) + std::exp(x[1]);
            return Vector{std::exp(x[0]) / total,
                          std::exp(x[1]) / total};
        }));
    const Vector start{0.0, 0.0};  // e^0 + e^0 = 2 < 4: interior.
    const auto barrier = solveBarrier(program, start);
    const auto penalty = solvePenalty(program, start);
    EXPECT_NEAR(barrier.point[0], penalty.point[0], 1e-3);
    EXPECT_NEAR(barrier.point[1], penalty.point[1], 1e-3);
    EXPECT_NEAR(barrier.point[0], std::log(2.0), 1e-4);
}

TEST(Barrier, MultipleConstraintsPickBindingOne)
{
    // min -x s.t. x <= 2, x <= 5: the tighter bound binds.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return -x[0]; },
        [](const Vector &) { return Vector{-1.0}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 2.0; },
        [](const Vector &) { return Vector{1.0}; }));
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 5.0; },
        [](const Vector &) { return Vector{1.0}; }));
    const auto result = solveBarrier(program, {0.0});
    EXPECT_NEAR(result.point[0], 2.0, 1e-5);
}

} // namespace
