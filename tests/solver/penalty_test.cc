#include "solver/penalty.hh"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::solver::ConstrainedProgram;
using ref::solver::LambdaFunction;
using ref::solver::solvePenalty;
using ref::solver::Vector;

std::shared_ptr<const LambdaFunction>
fn(LambdaFunction::ValueFn value, LambdaFunction::GradientFn gradient)
{
    return std::make_shared<LambdaFunction>(std::move(value),
                                            std::move(gradient));
}

TEST(Penalty, UnconstrainedReducesToNewton)
{
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) {
            return (x[0] - 3) * (x[0] - 3) + x[1] * x[1];
        },
        [](const Vector &x) {
            return Vector{2 * (x[0] - 3), 2 * x[1]};
        });
    const auto result = solvePenalty(program, {0.0, 5.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.point[0], 3.0, 1e-6);
    EXPECT_NEAR(result.point[1], 0.0, 1e-6);
}

TEST(Penalty, ActiveInequalityConstraint)
{
    // min (x-3)^2 s.t. x <= 1  ->  x* = 1.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return (x[0] - 3) * (x[0] - 3); },
        [](const Vector &x) { return Vector{2 * (x[0] - 3)}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 1.0; },
        [](const Vector &) { return Vector{1.0}; }));
    const auto result = solvePenalty(program, {0.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.point[0], 1.0, 1e-4);
    EXPECT_LE(result.maxViolation, 1e-7);
}

TEST(Penalty, InactiveConstraintLeavesOptimumAlone)
{
    // min (x-3)^2 s.t. x <= 10: constraint slack at the optimum.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return (x[0] - 3) * (x[0] - 3); },
        [](const Vector &x) { return Vector{2 * (x[0] - 3)}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 10.0; },
        [](const Vector &) { return Vector{1.0}; }));
    const auto result = solvePenalty(program, {0.0});
    EXPECT_NEAR(result.point[0], 3.0, 1e-6);
}

TEST(Penalty, EqualityConstraint)
{
    // min x^2 + y^2 s.t. x + y = 2  ->  (1, 1).
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return x[0] * x[0] + x[1] * x[1]; },
        [](const Vector &x) { return Vector{2 * x[0], 2 * x[1]}; });
    program.equalities.push_back(fn(
        [](const Vector &x) { return x[0] + x[1] - 2.0; },
        [](const Vector &) { return Vector{1.0, 1.0}; }));
    const auto result = solvePenalty(program, {0.0, 0.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.point[0], 1.0, 1e-4);
    EXPECT_NEAR(result.point[1], 1.0, 1e-4);
}

TEST(Penalty, MixedConstraints)
{
    // min (x-2)^2 + (y-2)^2 s.t. x + y = 2, x <= 0.5
    // -> x = 0.5, y = 1.5.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) {
            return (x[0] - 2) * (x[0] - 2) + (x[1] - 2) * (x[1] - 2);
        },
        [](const Vector &x) {
            return Vector{2 * (x[0] - 2), 2 * (x[1] - 2)};
        });
    program.equalities.push_back(fn(
        [](const Vector &x) { return x[0] + x[1] - 2.0; },
        [](const Vector &) { return Vector{1.0, 1.0}; }));
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 0.5; },
        [](const Vector &) { return Vector{1.0, 0.0}; }));
    const auto result = solvePenalty(program, {0.0, 0.0});
    EXPECT_NEAR(result.point[0], 0.5, 1e-3);
    EXPECT_NEAR(result.point[1], 1.5, 1e-3);
}

TEST(Penalty, LogSumExpCapacityStyleProgram)
{
    // max x0 + x1 (log-utilities) s.t. log(e^x0 + e^x1) <= log(10):
    // symmetric optimum x0 = x1 = log(5).
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return -(x[0] + x[1]); },
        [](const Vector &) { return Vector{-1.0, -1.0}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) {
            return std::log(std::exp(x[0]) + std::exp(x[1])) -
                   std::log(10.0);
        },
        [](const Vector &x) {
            const double total = std::exp(x[0]) + std::exp(x[1]);
            return Vector{std::exp(x[0]) / total,
                          std::exp(x[1]) / total};
        }));
    const auto result = solvePenalty(program, {0.0, 0.0});
    EXPECT_NEAR(result.point[0], std::log(5.0), 1e-3);
    EXPECT_NEAR(result.point[1], std::log(5.0), 1e-3);
}

TEST(Penalty, EmptyInteriorFeasibleSetStillSolved)
{
    // x <= 1 and x >= 1 leave only the boundary point x = 1; barrier
    // methods cannot start here but the penalty method converges.
    ConstrainedProgram program;
    program.objective = fn(
        [](const Vector &x) { return x[0] * x[0]; },
        [](const Vector &x) { return Vector{2 * x[0]}; });
    program.inequalities.push_back(fn(
        [](const Vector &x) { return x[0] - 1.0; },
        [](const Vector &) { return Vector{1.0}; }));
    program.inequalities.push_back(fn(
        [](const Vector &x) { return 1.0 - x[0]; },
        [](const Vector &) { return Vector{-1.0}; }));
    const auto result = solvePenalty(program, {5.0});
    EXPECT_NEAR(result.point[0], 1.0, 1e-4);
}

TEST(Penalty, RequiresObjective)
{
    ConstrainedProgram program;
    EXPECT_THROW(solvePenalty(program, {0.0}), ref::FatalError);
}

} // namespace
