#include "solver/nelder_mead.hh"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::linalg::Vector;
using ref::solver::nelderMead;
using ref::solver::NelderMeadOptions;

TEST(NelderMead, SolvesSphere)
{
    const auto result = nelderMead(
        [](const Vector &x) {
            return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
        },
        {1.0, -2.0, 3.0});
    EXPECT_TRUE(result.converged);
    for (double v : result.point)
        EXPECT_NEAR(v, 0.0, 1e-4);
}

TEST(NelderMead, SolvesRosenbrock)
{
    NelderMeadOptions options;
    options.maxIterations = 10000;
    const auto result = nelderMead(
        [](const Vector &x) {
            const double a = 1 - x[0];
            const double b = x[1] - x[0] * x[0];
            return a * a + 100 * b * b;
        },
        {-1.2, 1.0}, options);
    EXPECT_NEAR(result.point[0], 1.0, 1e-3);
    EXPECT_NEAR(result.point[1], 1.0, 1e-3);
}

TEST(NelderMead, AvoidsInfiniteRegions)
{
    // Minimum of -log(x) + x at x = 1 with infinity left of zero.
    const auto result = nelderMead(
        [](const Vector &x) {
            if (x[0] <= 0)
                return std::numeric_limits<double>::infinity();
            return -std::log(x[0]) + x[0];
        },
        {0.5});
    EXPECT_NEAR(result.point[0], 1.0, 1e-4);
}

TEST(NelderMead, OneDimensionalQuadratic)
{
    const auto result = nelderMead(
        [](const Vector &x) { return (x[0] - 7) * (x[0] - 7); },
        {0.0});
    EXPECT_NEAR(result.point[0], 7.0, 1e-4);
}

TEST(NelderMead, RejectsEmptyStart)
{
    EXPECT_THROW(nelderMead([](const Vector &) { return 0.0; }, {}),
                 ref::FatalError);
}

} // namespace
