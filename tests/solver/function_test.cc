#include "solver/function.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "solver/line_search.hh"
#include "util/logging.hh"

namespace {

using ref::solver::LambdaFunction;
using ref::solver::Vector;

TEST(LambdaFunction, ForwardsValueAndGradient)
{
    const LambdaFunction fn(
        [](const Vector &x) { return x[0] * x[0] + 2 * x[1]; },
        [](const Vector &x) { return Vector{2 * x[0], 2.0}; });
    EXPECT_DOUBLE_EQ(fn.value({3.0, 1.0}), 11.0);
    const Vector grad = fn.gradient({3.0, 1.0});
    EXPECT_DOUBLE_EQ(grad[0], 6.0);
    EXPECT_DOUBLE_EQ(grad[1], 2.0);
}

TEST(LambdaFunction, NumericalGradientFallback)
{
    const LambdaFunction fn(
        [](const Vector &x) { return std::sin(x[0]) * x[1]; });
    const Vector grad = fn.gradient({0.7, 2.0});
    EXPECT_NEAR(grad[0], 2.0 * std::cos(0.7), 1e-6);
    EXPECT_NEAR(grad[1], std::sin(0.7), 1e-6);
}

TEST(NumericalGradient, ScalesStepWithMagnitude)
{
    const auto quadratic = [](const Vector &x) {
        return 0.5 * x[0] * x[0];
    };
    const Vector grad =
        ref::solver::numericalGradient(quadratic, {1e6});
    EXPECT_NEAR(grad[0], 1e6, 1.0);
}

TEST(LineSearch, AcceptsFullStepOnQuadratic)
{
    const LambdaFunction fn(
        [](const Vector &x) { return x[0] * x[0]; },
        [](const Vector &x) { return Vector{2 * x[0]}; });
    const Vector point{1.0};
    const Vector direction{-1.0};
    const auto result = ref::solver::backtrackingLineSearch(
        fn, point, direction, 1.0, -2.0);
    EXPECT_TRUE(result.accepted);
    EXPECT_GT(result.step, 0.0);
    EXPECT_LT(result.value, 1.0);
}

TEST(LineSearch, BacktracksThroughInfiniteRegion)
{
    // Objective is +inf for x >= 1 (a barrier); its minimum is at
    // 0.5 and the descent direction from 0 points straight at the
    // domain boundary, so the unit step must be backtracked.
    const LambdaFunction fn(
        [](const Vector &x) {
            if (x[0] >= 1)
                return std::numeric_limits<double>::infinity();
            return -std::log(1.0 - x[0]) - 2.0 * x[0];
        },
        [](const Vector &x) {
            return Vector{1.0 / (1.0 - x[0]) - 2.0};
        });
    const Vector point{0.0};
    const Vector direction{1.0};  // Leaves the domain at t = 1.
    const double value = fn.value(point);
    const double slope = ref::linalg::dot(fn.gradient(point), direction);
    ASSERT_LT(slope, 0.0);
    const auto result = ref::solver::backtrackingLineSearch(
        fn, point, direction, value, slope);
    EXPECT_TRUE(result.accepted);
    EXPECT_LT(result.step, 1.0);
    EXPECT_LT(result.value, value);
}

TEST(LineSearch, RejectsAscentDirection)
{
    const LambdaFunction fn(
        [](const Vector &x) { return x[0] * x[0]; },
        [](const Vector &x) { return Vector{2 * x[0]}; });
    EXPECT_THROW(ref::solver::backtrackingLineSearch(fn, {1.0}, {1.0},
                                                     1.0, 2.0),
                 ref::FatalError);
}

} // namespace
