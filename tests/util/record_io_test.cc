#include "util/record_io.hh"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref;

TEST(RecordIo, FieldsRoundTripBitIdentically)
{
    ByteWriter writer;
    writer.u8(0x7F);
    writer.u32(0xDEADBEEF);
    writer.u64(0x0123456789ABCDEFull);
    writer.f64(0.6 / 0.8 * 24.0);  // Not exactly 18.
    writer.f64(-0.0);
    writer.f64(std::numeric_limits<double>::quiet_NaN());
    writer.str("agent name");
    writer.doubles({0.1, 0.2, 0.7});

    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.u8(), 0x7F);
    EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(reader.f64(), 0.6 / 0.8 * 24.0);
    const double negZero = reader.f64();
    EXPECT_EQ(negZero, 0.0);
    EXPECT_TRUE(std::signbit(negZero));
    EXPECT_TRUE(std::isnan(reader.f64()));
    EXPECT_EQ(reader.str(), "agent name");
    EXPECT_EQ(reader.doubles(), (std::vector<double>{0.1, 0.2, 0.7}));
    EXPECT_TRUE(reader.atEnd());
}

TEST(RecordIo, ReaderThrowsOnUnderrun)
{
    ByteWriter writer;
    writer.u32(7);
    ByteReader reader(writer.bytes());
    EXPECT_THROW(reader.u64(), FatalError);

    // A str length that claims more bytes than exist.
    ByteWriter lying;
    lying.u32(1000);
    ByteReader bad(lying.bytes());
    EXPECT_THROW(bad.str(), FatalError);
}

TEST(RecordIo, FrameRoundTrip)
{
    const std::string framed = frameRecord("payload");
    std::size_t offset = 0;
    std::string_view payload;
    EXPECT_EQ(readFrame(framed, offset, payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "payload");
    EXPECT_EQ(offset, framed.size());
    EXPECT_EQ(readFrame(framed, offset, payload), FrameStatus::End);
}

TEST(RecordIo, StreamOfFramesScansInOrder)
{
    std::string stream = frameRecord("one");
    stream += frameRecord("two");
    stream += frameRecord("");
    std::size_t offset = 0;
    std::string_view payload;
    ASSERT_EQ(readFrame(stream, offset, payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "one");
    ASSERT_EQ(readFrame(stream, offset, payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "two");
    ASSERT_EQ(readFrame(stream, offset, payload), FrameStatus::Ok);
    EXPECT_EQ(payload, "");
    EXPECT_EQ(readFrame(stream, offset, payload), FrameStatus::End);
}

TEST(RecordIo, EveryTruncationOfAFrameIsTorn)
{
    const std::string framed = frameRecord("crash tail bytes");
    for (std::size_t keep = 1; keep < framed.size(); ++keep) {
        std::size_t offset = 0;
        std::string_view payload;
        EXPECT_EQ(readFrame(framed.substr(0, keep), offset, payload),
                  FrameStatus::Torn)
            << "kept " << keep << " of " << framed.size();
        EXPECT_EQ(offset, 0u);
    }
}

TEST(RecordIo, EveryBitFlipIsCorrupt)
{
    // Flip each bit of a whole frame in turn: the reader must never
    // hand back an Ok frame with wrong bytes. (A flip inside the
    // length field may also read as Torn when it claims more bytes
    // than the stream holds — equally safe.)
    const std::string good = frameRecord("checksummed payload");
    for (std::size_t byte = 0; byte < good.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = good;
            bad[byte] ^= static_cast<char>(1 << bit);
            std::size_t offset = 0;
            std::string_view payload;
            const FrameStatus status =
                readFrame(bad, offset, payload);
            if (status == FrameStatus::Ok) {
                EXPECT_EQ(payload, "checksummed payload")
                    << "byte " << byte << " bit " << bit;
                ADD_FAILURE() << "bit flip accepted as Ok";
            } else {
                EXPECT_TRUE(status == FrameStatus::Corrupt ||
                            status == FrameStatus::Torn)
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

TEST(RecordIo, AbsurdLengthIsCorruptNotAllocated)
{
    ByteWriter writer;
    writer.u32(kMaxFrameBytes + 1);  // Length field.
    writer.u32(0);                   // CRC field.
    writer.u32(0);                   // Some "payload" bytes.
    std::size_t offset = 0;
    std::string_view payload;
    EXPECT_EQ(readFrame(writer.bytes(), offset, payload),
              FrameStatus::Corrupt);
}

} // namespace
