#include "util/logging.hh"

#include <gtest/gtest.h>

namespace {

using ref::FatalError;
using ref::PanicError;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(REF_FATAL("bad input " << 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(REF_PANIC("impossible " << 1), PanicError);
}

TEST(Logging, FatalMessageCarriesFileAndText)
{
    try {
        REF_FATAL("user gave " << 3 << " arguments");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("user gave 3 arguments"), std::string::npos);
        EXPECT_NE(what.find("logging_test.cc"), std::string::npos);
        EXPECT_NE(what.find("fatal"), std::string::npos);
    }
}

TEST(Logging, RequirePassesOnTrueCondition)
{
    EXPECT_NO_THROW(REF_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Logging, RequireThrowsOnFalseCondition)
{
    EXPECT_THROW(REF_REQUIRE(false, "always"), FatalError);
}

TEST(Logging, AssertThrowsPanicOnFalseCondition)
{
    EXPECT_THROW(REF_ASSERT(false, "broken invariant"), PanicError);
}

TEST(Logging, PanicIsLogicErrorAndFatalIsRuntimeError)
{
    EXPECT_THROW(REF_PANIC("x"), std::logic_error);
    EXPECT_THROW(REF_FATAL("x"), std::runtime_error);
}

TEST(Logging, LogLevelRoundTrips)
{
    const auto saved = ref::logLevel();
    ref::setLogLevel(ref::LogLevel::Silent);
    EXPECT_EQ(ref::logLevel(), ref::LogLevel::Silent);
    ref::setLogLevel(ref::LogLevel::Inform);
    EXPECT_EQ(ref::logLevel(), ref::LogLevel::Inform);
    ref::setLogLevel(saved);
}

TEST(Logging, WarnDoesNotThrow)
{
    const auto saved = ref::logLevel();
    ref::setLogLevel(ref::LogLevel::Silent);
    EXPECT_NO_THROW(REF_WARN("suspicious but fine"));
    EXPECT_NO_THROW(REF_INFORM("status"));
    ref::setLogLevel(saved);
}

} // namespace
