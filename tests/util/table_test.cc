#include "util/table.hh"

#include <sstream>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::Table;

TEST(Table, RejectsEmptyHeaderAndMismatchedRows)
{
    EXPECT_THROW(Table({}), ref::FatalError);
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), ref::FatalError);
}

TEST(Table, CountsRowsAndColumns)
{
    Table table({"x", "y", "z"});
    EXPECT_EQ(table.columns(), 3u);
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1", "2", "3"});
    table.addRow({"4", "5", "6"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, PrintAlignsColumns)
{
    Table table({"name", "v"});
    table.addRow({"long-workload-name", "1"});
    table.addRow({"x", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("long-workload-name"), std::string::npos);
    // Header rule present.
    EXPECT_NE(text.find("----"), std::string::npos);
    // All rows share the position of the second column.
    std::istringstream lines(text);
    std::string header, rule, row1, row2;
    std::getline(lines, header);
    std::getline(lines, rule);
    std::getline(lines, row1);
    std::getline(lines, row2);
    EXPECT_EQ(row1.find('1'), row2.find("22"));
}

TEST(FormatFixed, RoundsToRequestedDecimals)
{
    EXPECT_EQ(ref::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(ref::formatFixed(2.0, 0), "2");
    EXPECT_EQ(ref::formatFixed(-1.005, 1), "-1.0");
}

TEST(FormatPercent, ConvertsFractions)
{
    EXPECT_EQ(ref::formatPercent(0.42), "42.0%");
    EXPECT_EQ(ref::formatPercent(1.0, 0), "100%");
}

} // namespace
