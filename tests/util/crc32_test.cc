#include "util/crc32.hh"

#include <string>

#include <gtest/gtest.h>

namespace {

using namespace ref;

TEST(Crc32, KnownVectors)
{
    // The standard CRC-32/ISO-HDLC check value.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
    EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
    EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data =
        "the journal frames every record with this checksum";
    const std::uint32_t oneShot = crc32(data);
    for (std::size_t split = 0; split <= data.size(); ++split) {
        const std::uint32_t first =
            crc32(data.data(), split);
        const std::uint32_t both =
            crc32(data.data() + split, data.size() - split, first);
        EXPECT_EQ(both, oneShot) << "split at " << split;
    }
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::string data = "sensitive payload bytes";
    const std::uint32_t good = crc32(data);
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            data[byte] ^= static_cast<char>(1 << bit);
            EXPECT_NE(crc32(data), good)
                << "missed flip at byte " << byte << " bit " << bit;
            data[byte] ^= static_cast<char>(1 << bit);
        }
    }
}

} // namespace
