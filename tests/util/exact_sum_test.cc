#include "util/exact_sum.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace {

using ref::ExactSum;

TEST(ExactSum, EmptySumIsZero)
{
    ExactSum sum;
    EXPECT_EQ(sum.round(), 0.0);
}

TEST(ExactSum, SingleValueRoundTrips)
{
    ExactSum sum;
    sum.add(0.1);
    EXPECT_EQ(sum.round(), 0.1);
}

TEST(ExactSum, ExactWhereNaiveSummationLosesBits)
{
    // 1 + 1e100 + 1 - 1e100 is 2 exactly; naive left-to-right
    // summation returns 0.
    ExactSum sum;
    sum.add(1.0);
    sum.add(1e100);
    sum.add(1.0);
    sum.add(-1e100);
    EXPECT_EQ(sum.round(), 2.0);
}

TEST(ExactSum, OrderIndependent)
{
    ref::Rng rng(0xE5EEDULL);
    std::vector<double> values;
    for (int i = 0; i < 200; ++i)
        values.push_back(rng.uniform(-1.0, 1.0) *
                         std::pow(10.0, rng.uniformInt(-12, 12)));

    ExactSum forward;
    for (double value : values)
        forward.add(value);

    std::vector<double> shuffled = values;
    for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1], shuffled[rng.uniformInt(i)]);
    ExactSum permuted;
    for (double value : shuffled)
        permuted.add(value);

    EXPECT_EQ(forward.round(), permuted.round());
}

TEST(ExactSum, SubtractIsExactInverseOfAdd)
{
    // Interleave adds and removals and compare against a sum built
    // from scratch over the surviving values — the registry's
    // admit/depart pattern.
    ref::Rng rng(0xDEADULL);
    std::vector<double> live;
    ExactSum incremental;
    for (int step = 0; step < 500; ++step) {
        if (!live.empty() && rng.bernoulli(0.4)) {
            const std::size_t victim = rng.uniformInt(live.size());
            incremental.subtract(live[victim]);
            live.erase(live.begin() + victim);
        } else {
            const double value = rng.uniform(1e-9, 1e9);
            incremental.add(value);
            live.push_back(value);
        }
        ExactSum scratch;
        for (double value : live)
            scratch.add(value);
        ASSERT_EQ(incremental.round(), scratch.round())
            << "diverged at step " << step;
    }
}

TEST(ExactSum, PartialsStayBoundedUnderChurn)
{
    ref::Rng rng(0xBEEFULL);
    ExactSum sum;
    for (int i = 0; i < 10000; ++i) {
        const double value = rng.uniform(1e-6, 1.0);
        sum.add(value);
        sum.subtract(value * 0.5);
    }
    // Non-overlapping partials of bounded-magnitude values cannot
    // exceed the exponent range over the mantissa width (~40).
    EXPECT_LE(sum.partials(), 64u);
}

TEST(ExactSum, ClearResets)
{
    ExactSum sum;
    sum.add(3.5);
    sum.clear();
    EXPECT_EQ(sum.round(), 0.0);
    sum.add(1.25);
    EXPECT_EQ(sum.round(), 1.25);
}

TEST(ExactSum, RejectsNonFiniteValues)
{
    ExactSum sum;
    EXPECT_THROW(sum.add(std::numeric_limits<double>::infinity()),
                 ref::FatalError);
    EXPECT_THROW(sum.add(std::numeric_limits<double>::quiet_NaN()),
                 ref::FatalError);
}

} // namespace
