#include "util/random.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::Rng;
using ref::ZipfDistribution;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double total = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 5.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformRejectsEmptyInterval)
{
    Rng rng(3);
    EXPECT_THROW(rng.uniform(2.0, 1.0), ref::FatalError);
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(5);
    std::vector<int> counts(10, 0);
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(std::uint64_t{10})];
    for (int bucket : counts)
        EXPECT_NEAR(bucket, draws / 10, draws / 10 * 0.1);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(std::int64_t{-3}, std::int64_t{3});
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsZeroRange)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(std::uint64_t{0}), ref::FatalError);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(13);
    double total = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.exponential(2.0);
    EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate)
{
    Rng rng(1);
    EXPECT_THROW(rng.exponential(0.0), ref::FatalError);
}

TEST(Rng, NormalMeanAndVariance)
{
    Rng rng(17);
    constexpr int n = 100000;
    double total = 0, total_sq = 0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        total += x;
        total_sq += x * x;
    }
    const double mean = total / n;
    const double var = total_sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliFrequencyMatchesProbability)
{
    Rng rng(19);
    constexpr int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsOutOfRangeProbability)
{
    Rng rng(1);
    EXPECT_THROW(rng.bernoulli(1.5), ref::FatalError);
    EXPECT_THROW(rng.bernoulli(-0.1), ref::FatalError);
}

TEST(Rng, ForkedStreamsAreDecorrelated)
{
    Rng parent(23);
    Rng child_a = parent.fork();
    Rng child_b = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += child_a() == child_b();
    EXPECT_LT(equal, 3);
}

TEST(Zipf, RejectsBadParameters)
{
    EXPECT_THROW(ZipfDistribution(0, 1.0), ref::FatalError);
    EXPECT_THROW(ZipfDistribution(10, -1.0), ref::FatalError);
}

TEST(Zipf, ZeroExponentIsUniform)
{
    ZipfDistribution zipf(8, 0.0);
    Rng rng(29);
    std::vector<int> counts(8, 0);
    constexpr int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[zipf(rng)];
    for (int bucket : counts)
        EXPECT_NEAR(bucket, draws / 8, draws / 8 * 0.1);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    ZipfDistribution zipf(1000, 1.0);
    Rng rng(31);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[9] * 5);
    EXPECT_GT(counts[0], counts[99] * 50);
}

TEST(Zipf, RanksStayInRange)
{
    ZipfDistribution zipf(17, 1.3);
    Rng rng(37);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf(rng), 17u);
}

TEST(Zipf, RatioMatchesPowerLaw)
{
    // P(0)/P(1) should be 2^s for Zipf with exponent s.
    ZipfDistribution zipf(100, 2.0);
    Rng rng(41);
    int rank0 = 0, rank1 = 0;
    for (int i = 0; i < 400000; ++i) {
        const auto rank = zipf(rng);
        rank0 += rank == 0;
        rank1 += rank == 1;
    }
    EXPECT_NEAR(static_cast<double>(rank0) / rank1, 4.0, 0.3);
}

} // namespace
