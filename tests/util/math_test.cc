#include "util/math.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

TEST(AlmostEqual, ExactValuesCompareEqual)
{
    EXPECT_TRUE(ref::almostEqual(1.0, 1.0));
    EXPECT_TRUE(ref::almostEqual(0.0, 0.0));
}

TEST(AlmostEqual, RelativeToleranceScalesWithMagnitude)
{
    EXPECT_TRUE(ref::almostEqual(1e12, 1e12 * (1 + 1e-10)));
    EXPECT_FALSE(ref::almostEqual(1e12, 1e12 * (1 + 1e-6)));
}

TEST(AlmostEqual, AbsoluteToleranceNearZero)
{
    EXPECT_TRUE(ref::almostEqual(1e-13, 0.0));
    EXPECT_FALSE(ref::almostEqual(1e-6, 0.0));
}

TEST(GeometricMean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(ref::geometricMean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(ref::geometricMean({8.0}), 8.0);
}

TEST(GeometricMean, RejectsBadInput)
{
    EXPECT_THROW(ref::geometricMean({}), ref::FatalError);
    EXPECT_THROW(ref::geometricMean({1.0, 0.0}), ref::FatalError);
    EXPECT_THROW(ref::geometricMean({-1.0}), ref::FatalError);
}

TEST(Sum, HandlesEmptyAndMixed)
{
    EXPECT_DOUBLE_EQ(ref::sum({}), 0.0);
    EXPECT_DOUBLE_EQ(ref::sum({1.5, -0.5, 2.0}), 3.0);
}

TEST(NormalizeToUnitSum, ProducesUnitSum)
{
    const auto normalized = ref::normalizeToUnitSum({2.0, 6.0});
    EXPECT_DOUBLE_EQ(normalized[0], 0.25);
    EXPECT_DOUBLE_EQ(normalized[1], 0.75);
}

TEST(NormalizeToUnitSum, PreservesRatios)
{
    const auto normalized = ref::normalizeToUnitSum({0.3, 0.6, 0.9});
    EXPECT_NEAR(normalized[1] / normalized[0], 2.0, 1e-12);
    EXPECT_NEAR(normalized[2] / normalized[0], 3.0, 1e-12);
}

TEST(NormalizeToUnitSum, RejectsBadInput)
{
    EXPECT_THROW(ref::normalizeToUnitSum({}), ref::FatalError);
    EXPECT_THROW(ref::normalizeToUnitSum({0.0, 0.0}), ref::FatalError);
    EXPECT_THROW(ref::normalizeToUnitSum({1.0, -1.0}), ref::FatalError);
}

TEST(PowerOfTwo, NextPowerOfTwoRoundsUp)
{
    EXPECT_EQ(ref::nextPowerOfTwo(0), 1u);
    EXPECT_EQ(ref::nextPowerOfTwo(1), 1u);
    EXPECT_EQ(ref::nextPowerOfTwo(3), 4u);
    EXPECT_EQ(ref::nextPowerOfTwo(64), 64u);
    EXPECT_EQ(ref::nextPowerOfTwo(65), 128u);
}

TEST(PowerOfTwo, IsPowerOfTwoDetects)
{
    EXPECT_FALSE(ref::isPowerOfTwo(0));
    EXPECT_TRUE(ref::isPowerOfTwo(1));
    EXPECT_TRUE(ref::isPowerOfTwo(4096));
    EXPECT_FALSE(ref::isPowerOfTwo(24576));
}

TEST(PowerOfTwo, Log2ExactMatches)
{
    EXPECT_EQ(ref::log2Exact(1), 0u);
    EXPECT_EQ(ref::log2Exact(64), 6u);
    EXPECT_EQ(ref::log2Exact(1u << 20), 20u);
}

TEST(PowerOfTwo, Log2ExactRejectsNonPowers)
{
    EXPECT_THROW(ref::log2Exact(12), ref::FatalError);
}

} // namespace
