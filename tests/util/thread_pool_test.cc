#include "util/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace {

using namespace ref;
using namespace std::chrono_literals;

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
        // Single worker, so the unguarded push_back cannot race.
        futures.push_back(
            pool.submit([&order, i] { order.push_back(i); }));
    }
    for (auto &future : futures)
        future.get();
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto failing = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(
        {
            try {
                failing.get();
            } catch (const std::runtime_error &error) {
                EXPECT_STREQ(error.what(), "boom");
                throw;
            }
        },
        std::runtime_error);
    // The worker that ran the throwing task keeps serving.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(100us);
                ran.fetch_add(1);
            });
        }
        // Destructor runs here with most tasks still queued.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, IdleWorkerStealsFromBlockedSiblingsQueues)
{
    ThreadPool pool(4);
    std::atomic<int> blockersRunning{0};
    std::atomic<bool> release{false};
    std::vector<std::future<void>> blockers;
    for (int i = 0; i < 3; ++i) {
        blockers.push_back(
            pool.submit([&blockersRunning, &release] {
                blockersRunning.fetch_add(1);
                while (!release.load())
                    std::this_thread::sleep_for(100us);
            }));
    }
    while (blockersRunning.load() < 3)
        std::this_thread::sleep_for(100us);

    // Round-robin submission spreads these across all four queues,
    // three of whose owners are blocked: the one free worker must
    // steal their share to finish.
    std::atomic<int> ran{0};
    std::vector<std::future<void>> tasks;
    for (int i = 0; i < 40; ++i)
        tasks.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    for (auto &task : tasks)
        task.get();
    EXPECT_EQ(ran.load(), 40);

    release.store(true);
    for (auto &blocker : blockers)
        blocker.get();
}

TEST(ThreadPool, SubmitFromWorkerThread)
{
    ThreadPool pool(2);
    auto outer = pool.submit(
        [&pool] { return pool.submit([] { return 21; }); });
    // The outer task only queues the inner one (it does not block on
    // it), so this cannot deadlock even on a one-worker pool.
    EXPECT_EQ(outer.get().get(), 21);
}

TEST(ThreadPool, DefaultJobsHonorsRefJobsEnvironment)
{
    ASSERT_EQ(setenv("REF_JOBS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);

    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Silent);
    ASSERT_EQ(setenv("REF_JOBS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    ASSERT_EQ(setenv("REF_JOBS", "-2", 1), 0);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    setLogLevel(saved);

    ASSERT_EQ(unsetenv("REF_JOBS"), 0);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, ZeroThreadsMeansDefaultJobs)
{
    ASSERT_EQ(setenv("REF_JOBS", "2", 1), 0);
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 2u);
    ASSERT_EQ(unsetenv("REF_JOBS"), 0);
}

} // namespace
