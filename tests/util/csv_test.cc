#include "util/csv.hh"

#include <sstream>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using ref::CsvWriter;

TEST(CsvEscape, PlainCellsPassThrough)
{
    EXPECT_EQ(ref::csvEscape("hello"), "hello");
    EXPECT_EQ(ref::csvEscape("12.5"), "12.5");
}

TEST(CsvEscape, QuotesCellsWithSpecials)
{
    EXPECT_EQ(ref::csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(ref::csvEscape("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(ref::csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, EmitsHeaderImmediately)
{
    std::ostringstream os;
    CsvWriter writer(os, {"x", "y"});
    EXPECT_EQ(os.str(), "x,y\n");
    EXPECT_EQ(writer.rowsWritten(), 0u);
}

TEST(CsvWriter, WritesStringAndNumericRows)
{
    std::ostringstream os;
    CsvWriter writer(os, {"name", "value"});
    writer.writeRow(std::vector<std::string>{"cache", "12"});
    writer.writeRow(std::vector<double>{1.5, 2.0});
    EXPECT_EQ(writer.rowsWritten(), 2u);
    EXPECT_EQ(os.str(), "name,value\ncache,12\n1.5,2\n");
}

TEST(CsvWriter, RejectsWrongWidthRows)
{
    std::ostringstream os;
    CsvWriter writer(os, {"a", "b"});
    EXPECT_THROW(writer.writeRow(std::vector<std::string>{"1"}),
                 ref::FatalError);
    EXPECT_THROW(writer.writeRow(std::vector<double>{1, 2, 3}),
                 ref::FatalError);
}

TEST(CsvWriter, RejectsEmptyHeader)
{
    std::ostringstream os;
    EXPECT_THROW(CsvWriter(os, {}), ref::FatalError);
}

} // namespace
