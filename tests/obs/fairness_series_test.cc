#include "obs/fairness_series.hh"

#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace ref;
using obs::FairnessSample;
using obs::FairnessSeries;

FairnessSample
sampleAt(std::uint64_t epoch)
{
    FairnessSample sample;
    sample.epoch = epoch;
    sample.agents = 2;
    sample.checked = true;
    sample.siMargin = 1.25;
    sample.efMargin = 1.5;
    sample.l1Drift = 0.125;
    sample.enforced = epoch == 1;
    sample.latencyNs = 1000 * epoch;
    return sample;
}

TEST(FairnessSeries, AppendsAndReadsBackInOrder)
{
    FairnessSeries series(8);
    for (std::uint64_t e = 1; e <= 3; ++e)
        series.append(sampleAt(e));

    EXPECT_EQ(series.size(), 3u);
    EXPECT_EQ(series.totalAppended(), 3u);
    const auto samples = series.samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].epoch, 1u);
    EXPECT_EQ(samples[2].epoch, 3u);
}

TEST(FairnessSeries, BoundedRingDropsOldestFirst)
{
    FairnessSeries series(4);
    for (std::uint64_t e = 1; e <= 10; ++e)
        series.append(sampleAt(e));

    EXPECT_EQ(series.size(), 4u);
    EXPECT_EQ(series.totalAppended(), 10u);
    const auto samples = series.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples.front().epoch, 7u);
    EXPECT_EQ(samples.back().epoch, 10u);
}

TEST(FairnessSeries, CsvRoundTripsValuesAndHeader)
{
    FairnessSeries series(8);
    series.append(sampleAt(1));

    std::ostringstream out;
    series.writeCsv(out);
    const std::string csv = out.str();
    EXPECT_EQ(csv.find("epoch,agents,checked,si_margin,ef_margin,"
                       "l1_drift,enforced,max_rel_change,"
                       "latency_ns\n"),
              0u);
    EXPECT_NE(csv.find("1,2,1,1.25,1.5,0.125,1,0,1000"),
              std::string::npos);
}

TEST(FairnessSeries, CsvSpellsOutInfiniteRelativeChange)
{
    // The epoch driver reports +inf for "agent set changed"; the CSV
    // must stay parseable rather than emitting an empty cell.
    FairnessSeries series(4);
    FairnessSample sample = sampleAt(1);
    sample.maxRelativeChange =
        std::numeric_limits<double>::infinity();
    series.append(sample);

    std::ostringstream csv;
    series.writeCsv(csv);
    EXPECT_NE(csv.str().find(",inf,"), std::string::npos);

    // JSON quotes non-finite numbers so the array stays valid JSON.
    std::ostringstream json;
    series.writeJson(json);
    EXPECT_NE(json.str().find("\"max_rel_change\":\"inf\""),
              std::string::npos);
}

TEST(FairnessSeries, JsonArrayShape)
{
    FairnessSeries series(8);
    series.append(sampleAt(1));
    series.append(sampleAt(2));

    std::ostringstream out;
    series.writeJson(out);
    const std::string json = out.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"epoch\":1"), std::string::npos);
    EXPECT_NE(json.find("\"epoch\":2"), std::string::npos);
    EXPECT_NE(json.find("\"checked\":true"), std::string::npos);
    EXPECT_NE(json.find("\"si_margin\":1.25"), std::string::npos);
}

TEST(FairnessSeries, LabelledRingsAreIndependentAndSorted)
{
    FairnessSeries series(4);
    series.appendLabelled("p1", sampleAt(1));
    series.appendLabelled("p0", sampleAt(1));
    series.appendLabelled("p0", sampleAt(2));
    series.appendLabelled("/", sampleAt(2));

    // Labelled appends never touch the main ring.
    EXPECT_EQ(series.size(), 0u);
    EXPECT_EQ(series.totalAppended(), 0u);
    EXPECT_EQ(series.totalLabelledAppended(), 4u);
    EXPECT_EQ(series.droppedLabelled(), 0u);

    EXPECT_EQ(series.labels(),
              (std::vector<std::string>{"/", "p0", "p1"}));
    const auto p0 = series.labelledSamples("p0");
    ASSERT_EQ(p0.size(), 2u);
    EXPECT_EQ(p0[0].epoch, 1u);
    EXPECT_EQ(p0[1].epoch, 2u);
    ASSERT_EQ(series.labelledSamples("p1").size(), 1u);
    EXPECT_TRUE(series.labelledSamples("ghost").empty());
}

TEST(FairnessSeries, LabelledRingsShareTheBoundedCapacity)
{
    FairnessSeries series(3);
    for (std::uint64_t e = 1; e <= 9; ++e)
        series.appendLabelled("p", sampleAt(e));
    const auto samples = series.labelledSamples("p");
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples.front().epoch, 7u);
    EXPECT_EQ(samples.back().epoch, 9u);
    EXPECT_EQ(series.totalLabelledAppended(), 9u);
}

TEST(FairnessSeries, LabelCapDropsNewLabelsButNotOldOnes)
{
    FairnessSeries series(2);
    for (std::size_t i = 0; i < FairnessSeries::kMaxLabels + 6; ++i)
        series.appendLabelled("p" + std::to_string(i), sampleAt(1));

    EXPECT_EQ(series.labels().size(), FairnessSeries::kMaxLabels);
    EXPECT_EQ(series.droppedLabelled(), 6u);
    // Labels admitted before the cap keep accepting appends...
    series.appendLabelled("p0", sampleAt(2));
    EXPECT_EQ(series.labelledSamples("p0").size(), 2u);
    // ...while appends past the cap stay dropped.
    const std::string over =
        "p" + std::to_string(FairnessSeries::kMaxLabels);
    series.appendLabelled(over, sampleAt(2));
    EXPECT_TRUE(series.labelledSamples(over).empty());
    EXPECT_EQ(series.droppedLabelled(), 7u);
}

TEST(FairnessSeries, LabelledCsvPutsTotalFirstThenSortedLabels)
{
    FairnessSeries series(4);
    series.append(sampleAt(1));
    series.appendLabelled("p0", sampleAt(2));
    series.appendLabelled("/", sampleAt(2));

    std::ostringstream out;
    series.writeLabelledCsv(out);
    const std::string csv = out.str();
    EXPECT_EQ(csv.find("label,epoch,agents,checked,si_margin,"
                       "ef_margin,l1_drift,enforced,max_rel_change,"
                       "latency_ns\n"),
              0u);
    const std::size_t total = csv.find("\n_total,1,");
    const std::size_t root = csv.find("\n/,2,");
    const std::size_t p0 = csv.find("\np0,2,");
    ASSERT_NE(total, std::string::npos) << csv;
    ASSERT_NE(root, std::string::npos) << csv;
    ASSERT_NE(p0, std::string::npos) << csv;
    EXPECT_LT(total, root);
    EXPECT_LT(root, p0);
}

} // namespace
