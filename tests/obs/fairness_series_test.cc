#include "obs/fairness_series.hh"

#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace ref;
using obs::FairnessSample;
using obs::FairnessSeries;

FairnessSample
sampleAt(std::uint64_t epoch)
{
    FairnessSample sample;
    sample.epoch = epoch;
    sample.agents = 2;
    sample.checked = true;
    sample.siMargin = 1.25;
    sample.efMargin = 1.5;
    sample.l1Drift = 0.125;
    sample.enforced = epoch == 1;
    sample.latencyNs = 1000 * epoch;
    return sample;
}

TEST(FairnessSeries, AppendsAndReadsBackInOrder)
{
    FairnessSeries series(8);
    for (std::uint64_t e = 1; e <= 3; ++e)
        series.append(sampleAt(e));

    EXPECT_EQ(series.size(), 3u);
    EXPECT_EQ(series.totalAppended(), 3u);
    const auto samples = series.samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].epoch, 1u);
    EXPECT_EQ(samples[2].epoch, 3u);
}

TEST(FairnessSeries, BoundedRingDropsOldestFirst)
{
    FairnessSeries series(4);
    for (std::uint64_t e = 1; e <= 10; ++e)
        series.append(sampleAt(e));

    EXPECT_EQ(series.size(), 4u);
    EXPECT_EQ(series.totalAppended(), 10u);
    const auto samples = series.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples.front().epoch, 7u);
    EXPECT_EQ(samples.back().epoch, 10u);
}

TEST(FairnessSeries, CsvRoundTripsValuesAndHeader)
{
    FairnessSeries series(8);
    series.append(sampleAt(1));

    std::ostringstream out;
    series.writeCsv(out);
    const std::string csv = out.str();
    EXPECT_EQ(csv.find("epoch,agents,checked,si_margin,ef_margin,"
                       "l1_drift,enforced,max_rel_change,"
                       "latency_ns\n"),
              0u);
    EXPECT_NE(csv.find("1,2,1,1.25,1.5,0.125,1,0,1000"),
              std::string::npos);
}

TEST(FairnessSeries, CsvSpellsOutInfiniteRelativeChange)
{
    // The epoch driver reports +inf for "agent set changed"; the CSV
    // must stay parseable rather than emitting an empty cell.
    FairnessSeries series(4);
    FairnessSample sample = sampleAt(1);
    sample.maxRelativeChange =
        std::numeric_limits<double>::infinity();
    series.append(sample);

    std::ostringstream csv;
    series.writeCsv(csv);
    EXPECT_NE(csv.str().find(",inf,"), std::string::npos);

    // JSON quotes non-finite numbers so the array stays valid JSON.
    std::ostringstream json;
    series.writeJson(json);
    EXPECT_NE(json.str().find("\"max_rel_change\":\"inf\""),
              std::string::npos);
}

TEST(FairnessSeries, JsonArrayShape)
{
    FairnessSeries series(8);
    series.append(sampleAt(1));
    series.append(sampleAt(2));

    std::ostringstream out;
    series.writeJson(out);
    const std::string json = out.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"epoch\":1"), std::string::npos);
    EXPECT_NE(json.find("\"epoch\":2"), std::string::npos);
    EXPECT_NE(json.find("\"checked\":true"), std::string::npos);
    EXPECT_NE(json.find("\"si_margin\":1.25"), std::string::npos);
}

} // namespace
