#include "obs/trace.hh"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace ref;
using obs::Span;
using obs::Tracer;

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer &tracer = Tracer::global();
    tracer.disable();
    tracer.clear();
    {
        Span span("test.disabled", "test");
    }
    EXPECT_FALSE(tracer.enabled());
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, RecordsSpansOldestFirst)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(16, 1);
    tracer.record("first", "test", 10, 5);
    tracer.record("second", "test", 20, 7);
    tracer.disable();

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].name, "first");
    EXPECT_EQ(events[0].startNs, 10u);
    EXPECT_EQ(events[0].durationNs, 5u);
    EXPECT_STREQ(events[1].name, "second");
    tracer.clear();
}

TEST(Tracer, RingOverwritesOldestWhenFull)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(4, 1);
    for (int i = 0; i < 10; ++i)
        tracer.record("ring", "test",
                      static_cast<std::uint64_t>(i), 1);
    tracer.disable();

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest first: the survivors are spans 6..9.
    EXPECT_EQ(events.front().startNs, 6u);
    EXPECT_EQ(events.back().startNs, 9u);
    EXPECT_EQ(tracer.stats().overwritten, 6u);
    tracer.clear();
}

TEST(Tracer, SamplingKeepsEveryNth)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(64, 3);
    for (int i = 0; i < 9; ++i)
        tracer.record("sampled", "test",
                      static_cast<std::uint64_t>(i), 1);
    tracer.disable();

    EXPECT_EQ(tracer.events().size(), 3u);
    EXPECT_EQ(tracer.stats().sampledOut, 6u);
    tracer.clear();
}

TEST(Tracer, SpanReportsWhenEnabled)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(16, 1);
    {
        Span span("test.span", "test");
    }
    tracer.disable();
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test.span");
    EXPECT_STREQ(events[0].category, "test");
    tracer.clear();
}

TEST(Tracer, ChromeTraceJsonShape)
{
    Tracer &tracer = Tracer::global();
    tracer.enable(16, 1);
    tracer.record("epoch.tick", "svc", 1500, 2500);
    tracer.disable();

    std::ostringstream out;
    tracer.writeChromeTrace(out);
    const std::string json = out.str();
    // Chrome trace-event format: complete events with microsecond
    // timestamps (1500ns -> 1.5us), loadable in Perfetto.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"epoch.tick\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"svc\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
    EXPECT_NE(json.find("\"otherData\""), std::string::npos);
    tracer.clear();
}

} // namespace
