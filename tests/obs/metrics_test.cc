#include "obs/metrics.hh"

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "util/thread_pool.hh"

namespace {

using namespace ref;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndExtremes)
{
    Gauge gauge;
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(3.5);
    EXPECT_EQ(gauge.value(), 3.5);
    gauge.set(-2.0);
    EXPECT_EQ(gauge.value(), -2.0);

    Gauge max;
    max.updateMax(1.0);
    max.updateMax(0.5);
    max.updateMax(2.0);
    EXPECT_EQ(max.value(), 2.0);
}

TEST(Histogram, BucketBoundariesAtExactPowersOfTwo)
{
    // Bucket 0 holds only 0; bucket b holds [2^(b-1), 2^b). An
    // exact power of two 2^k is the LOWER bound of bucket k+1.
    EXPECT_EQ(Histogram::bucketFor(0, 16), 0u);
    EXPECT_EQ(Histogram::bucketFor(1, 16), 1u);
    EXPECT_EQ(Histogram::bucketFor(2, 16), 2u);
    EXPECT_EQ(Histogram::bucketFor(3, 16), 2u);
    EXPECT_EQ(Histogram::bucketFor(4, 16), 3u);
    EXPECT_EQ(Histogram::bucketFor(7, 16), 3u);
    EXPECT_EQ(Histogram::bucketFor(8, 16), 4u);
    for (std::size_t k = 0; k + 2 < 16; ++k) {
        const std::uint64_t power = std::uint64_t{1} << k;
        EXPECT_EQ(Histogram::bucketFor(power, 16), k + 1)
            << "2^" << k << " must open bucket " << k + 1;
        EXPECT_EQ(Histogram::bucketFor(power - 1, 16),
                  k == 0 ? 0u : k)
            << "2^" << k << "-1 must close bucket " << k;
    }
}

TEST(Histogram, LastBucketIsUnboundedAbove)
{
    // 16 buckets cover [0, 2^15) exactly; everything at or above
    // 2^15 clamps into bucket 15, including UINT64_MAX.
    EXPECT_EQ(Histogram::bucketFor((1u << 15) - 1, 16), 15u);
    EXPECT_EQ(Histogram::bucketFor(1u << 15, 16), 15u);
    EXPECT_EQ(Histogram::bucketFor(1u << 20, 16), 15u);
    EXPECT_EQ(Histogram::bucketFor(
                  std::numeric_limits<std::uint64_t>::max(), 16),
              15u);
    EXPECT_EQ(Histogram::bucketUpperInclusive(15, 16),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(Histogram::bucketUpperInclusive(0, 16), 0u);
    EXPECT_EQ(Histogram::bucketUpperInclusive(3, 16), 7u);

    Histogram histogram(16);
    histogram.observe(std::numeric_limits<std::uint64_t>::max());
    const auto snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.counts[15], 1u);
    EXPECT_EQ(snapshot.count, 1u);
}

TEST(Histogram, SentinelMinNeverLeaks)
{
    Histogram histogram(16);
    EXPECT_EQ(histogram.snapshot().min, 0u)
        << "empty histogram exposes min 0, not the sentinel";
    histogram.observe(900);
    EXPECT_EQ(histogram.snapshot().min, 900u)
        << "the first sample must become the minimum";
    histogram.observe(30);
    EXPECT_EQ(histogram.snapshot().min, 30u);
    EXPECT_EQ(histogram.snapshot().max, 900u);
    EXPECT_EQ(histogram.snapshot().sum, 930u);
}

TEST(Histogram, QuantileEmptyAndSingleSample)
{
    Histogram histogram(16);
    EXPECT_EQ(Histogram::quantile(histogram.snapshot(), 0.5), 0u);

    histogram.observe(42);
    const auto snap = histogram.snapshot();
    // One sample: every quantile is that sample, clamped by the
    // observed extremes regardless of the bucket's span.
    EXPECT_EQ(Histogram::quantile(snap, 0.5), 42u);
    EXPECT_EQ(Histogram::quantile(snap, 0.99), 42u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket)
{
    Histogram histogram(16);
    // 100 samples spread across bucket 7 ([64, 128)): quantiles
    // must be monotone and stay inside the observed range.
    for (int i = 0; i < 100; ++i)
        histogram.observe(64 + static_cast<std::uint64_t>(i) % 64);
    const auto snap = histogram.snapshot();
    const std::uint64_t p50 = Histogram::quantile(snap, 0.50);
    const std::uint64_t p90 = Histogram::quantile(snap, 0.90);
    const std::uint64_t p99 = Histogram::quantile(snap, 0.99);
    EXPECT_GE(p50, snap.min);
    EXPECT_LE(p99, snap.max);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GT(p99, p50) << "interpolation must spread quantiles "
                           "inside one bucket";
}

TEST(Histogram, QuantileAcrossBuckets)
{
    Histogram histogram(16);
    // 90 small samples and 10 large ones: p50 stays small, p99
    // lands in the large cluster.
    for (int i = 0; i < 90; ++i)
        histogram.observe(3);
    for (int i = 0; i < 10; ++i)
        histogram.observe(1000);
    const auto snap = histogram.snapshot();
    EXPECT_EQ(Histogram::quantile(snap, 0.50), 3u);
    const std::uint64_t p99 = Histogram::quantile(snap, 0.99);
    EXPECT_GE(p99, 512u);
    EXPECT_LE(p99, 1000u);
}

TEST(Histogram, QuantileClampsUnboundedLastBucketToMax)
{
    Histogram histogram(4);  // Buckets: {0}, [1,2), [2,4), [4,inf).
    histogram.observe(5);
    histogram.observe(700);
    const auto snap = histogram.snapshot();
    EXPECT_LE(Histogram::quantile(snap, 0.99), 700u)
        << "the unbounded bucket must clamp to the observed max";
    EXPECT_GE(Histogram::quantile(snap, 0.01), 5u);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance)
{
    MetricsRegistry registry;
    Counter &first = registry.counter("ref_test_total", "help");
    Counter &second = registry.counter("ref_test_total", "other");
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, RejectsKindMismatchAndBadNames)
{
    MetricsRegistry registry;
    registry.counter("ref_test_total", "help");
    EXPECT_THROW(registry.gauge("ref_test_total", "help"),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter("0starts_with_digit", "help"),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter("has space", "help"),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter("", "help"),
                 std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusExpositionShape)
{
    MetricsRegistry registry;
    registry.counter("ref_b_total", "second").add(7);
    registry.gauge("ref_a_gauge", "first").set(1.5);
    Histogram &histogram =
        registry.histogram("ref_lat", "latency", 4);
    histogram.observe(0);
    histogram.observe(2);
    histogram.observe(100);

    std::ostringstream out;
    registry.writePrometheus(out);
    const std::string text = out.str();

    EXPECT_NE(text.find("# HELP ref_a_gauge first"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE ref_a_gauge gauge"),
              std::string::npos);
    EXPECT_NE(text.find("ref_a_gauge 1.5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ref_b_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("ref_b_total 7"), std::string::npos);
    // Histogram: cumulative buckets ending in +Inf, plus sum/count.
    EXPECT_NE(text.find("ref_lat_bucket{le=\"0\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("ref_lat_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("ref_lat_sum 102"), std::string::npos);
    EXPECT_NE(text.find("ref_lat_count 3"), std::string::npos);
    // Quantile companion series follow sum/count.
    EXPECT_NE(text.find("ref_lat_p50 "), std::string::npos);
    EXPECT_NE(text.find("ref_lat_p90 "), std::string::npos);
    EXPECT_NE(text.find("ref_lat_p99 "), std::string::npos);
    EXPECT_LT(text.find("ref_lat_count"), text.find("ref_lat_p50"));
    // Sorted by name: a before b before lat.
    EXPECT_LT(text.find("ref_a_gauge"), text.find("ref_b_total"));
    EXPECT_LT(text.find("ref_b_total"), text.find("ref_lat"));
}

TEST(MetricsRegistry, LabeledSeriesShareOneHeader)
{
    MetricsRegistry registry;
    registry.counter("ref_s_total", "sharded").add(1);
    registry.counter("ref_s_total{shard=\"0\"}", "sharded").add(2);
    registry.counter("ref_s_total{shard=\"1\"}", "sharded").add(3);

    std::ostringstream out;
    registry.writePrometheus(out);
    const std::string text = out.str();

    // All three series appear...
    EXPECT_NE(text.find("ref_s_total 1"), std::string::npos);
    EXPECT_NE(text.find("ref_s_total{shard=\"0\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("ref_s_total{shard=\"1\"} 3"),
              std::string::npos);
    // ...under exactly one HELP/TYPE header for the base name.
    const std::string help = "# HELP ref_s_total";
    const std::size_t first = text.find(help);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(help, first + 1), std::string::npos);
    const std::string type = "# TYPE ref_s_total";
    const std::size_t firstType = text.find(type);
    ASSERT_NE(firstType, std::string::npos);
    EXPECT_EQ(text.find(type, firstType + 1), std::string::npos);
}

TEST(MetricsRegistry, RejectsMalformedLabelBlocks)
{
    MetricsRegistry registry;
    // Unterminated block, empty block, bad label name, missing
    // quotes: all rejected up front rather than corrupting the
    // exposition.
    EXPECT_THROW(registry.counter("ref_x_total{shard=\"0\"", "h"),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter("ref_x_total{}", "h"),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter("ref_x_total{0bad=\"v\"}", "h"),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter("ref_x_total{shard=0}", "h"),
                 std::invalid_argument);
    // A kind mismatch across series of one base name is also a bug.
    registry.counter("ref_y_total{shard=\"0\"}", "h");
    EXPECT_THROW(registry.gauge("ref_y_total{shard=\"1\"}", "h"),
                 std::invalid_argument);
}

TEST(MetricsRegistry, JsonExpositionParsesStructurally)
{
    MetricsRegistry registry;
    registry.counter("ref_c_total", "c").add(3);
    registry.gauge("ref_g", "g").set(0.25);
    registry.histogram("ref_h", "h", 4).observe(5);

    std::ostringstream out;
    registry.writeJson(out);
    const std::string text = out.str();
    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text.back(), '}');
    EXPECT_NE(text.find("\"counters\""), std::string::npos);
    EXPECT_NE(text.find("\"ref_c_total\":3"), std::string::npos);
    EXPECT_NE(text.find("\"ref_g\":0.25"), std::string::npos);
    EXPECT_NE(text.find("\"histograms\""), std::string::npos);
    EXPECT_NE(text.find("\"count\":1"), std::string::npos);
    EXPECT_NE(text.find("\"p50\":5"), std::string::npos);
    EXPECT_NE(text.find("\"p99\":5"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentIncrementsUnderThreadPool)
{
    // The registry's hot path must be exact under contention: fan a
    // few thousand increments out over the work-stealing pool and
    // demand a perfect total.
    MetricsRegistry registry;
    Counter &counter =
        registry.counter("ref_concurrent_total", "contended");
    Histogram &histogram =
        registry.histogram("ref_concurrent_hist", "contended", 16);

    constexpr int kTasks = 64;
    constexpr int kPerTask = 500;
    {
        ThreadPool pool(4);
        std::vector<std::future<void>> futures;
        futures.reserve(kTasks);
        for (int t = 0; t < kTasks; ++t) {
            futures.push_back(pool.submit([&counter, &histogram] {
                for (int i = 0; i < kPerTask; ++i) {
                    counter.add();
                    histogram.observe(
                        static_cast<std::uint64_t>(i));
                }
            }));
        }
        for (auto &future : futures)
            future.get();
    }

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kTasks) * kPerTask);
    const auto snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count,
              static_cast<std::uint64_t>(kTasks) * kPerTask);
    EXPECT_EQ(snapshot.min, 0u);
    EXPECT_EQ(snapshot.max, kPerTask - 1u);
}

} // namespace
