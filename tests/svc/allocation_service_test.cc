#include "svc/allocation_service.hh"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref;
using svc::AllocationService;
using svc::ServiceConfig;

TEST(AllocationService, SnapshotBeforeFirstTickIsEmpty)
{
    AllocationService service;
    const auto snapshot = service.snapshot();
    EXPECT_EQ(snapshot->epoch, 0u);
    EXPECT_TRUE(snapshot->agents.empty());
}

TEST(AllocationService, TickPublishesAllocationAndEnforcement)
{
    AllocationService service;
    service.admit("user1", {0.6, 0.4});
    service.admit("user2", {0.2, 0.8});
    const auto result = service.tick();
    EXPECT_EQ(result.epoch, 1u);

    const auto snapshot = service.snapshot();
    EXPECT_EQ(snapshot->epoch, 1u);
    ASSERT_EQ(snapshot->agents.size(), 2u);
    EXPECT_NEAR(snapshot->allocation.at(0, 0), 18.0, 1e-12);
    ASSERT_TRUE(snapshot->enforcement.hasPartition);
    EXPECT_EQ(snapshot->enforcement.epoch, 1u);
}

TEST(AllocationService, SnapshotIsImmutableUnderLaterChurn)
{
    AllocationService service;
    service.admit("user1", {0.6, 0.4});
    service.tick();
    const auto before = service.snapshot();

    service.admit("user2", {0.2, 0.8});
    service.tick();

    // The old snapshot still describes epoch 1 (copy-on-write).
    EXPECT_EQ(before->epoch, 1u);
    EXPECT_EQ(before->agents.size(), 1u);
    EXPECT_EQ(service.snapshot()->agents.size(), 2u);
}

TEST(AllocationService, HysteresisCarriesEnforcementForward)
{
    ServiceConfig config;
    config.epoch.hysteresis = 0.10;
    AllocationService service(config);
    service.admit("user1", {0.6, 0.4});
    service.admit("user2", {0.2, 0.8});
    service.tick();
    const auto enforcedEpoch =
        service.snapshot()->enforcement.epoch;

    service.update("user1", {0.601, 0.399});  // Inside the band.
    service.tick();
    const auto snapshot = service.snapshot();
    EXPECT_EQ(snapshot->epoch, 2u);
    // Allocation is fresh but enforcement still names epoch 1.
    EXPECT_EQ(snapshot->enforcement.epoch, enforcedEpoch);
    EXPECT_EQ(service.metrics().hysteresisHolds, 1u);
}

TEST(AllocationService, MetricsCountChurnAndEpochs)
{
    AllocationService service;
    service.admit("a", {0.6, 0.4});
    service.admit("b", {0.2, 0.8});
    service.update("a", {0.5, 0.5});
    service.depart("b");
    service.tick();
    service.tick();

    const auto metrics = service.metrics();
    EXPECT_EQ(metrics.admits, 2u);
    EXPECT_EQ(metrics.updates, 1u);
    EXPECT_EQ(metrics.departs, 1u);
    EXPECT_EQ(metrics.epochs, 2u);
    EXPECT_EQ(metrics.siViolations, 0u);
    EXPECT_EQ(metrics.efViolations, 0u);
    EXPECT_GT(metrics.latencyMaxNs, 0u);
}

TEST(AllocationService, RejectsInvalidChurnWithoutCorruption)
{
    AllocationService service;
    service.admit("a", {0.6, 0.4});
    EXPECT_THROW(service.admit("a", {0.5, 0.5}), FatalError);
    EXPECT_THROW(service.admit("b", {0.5}), FatalError);
    service.tick();
    EXPECT_EQ(service.snapshot()->agents.size(), 1u);
}

TEST(AllocationService, ConcurrentQueriesDuringChurnAndTicks)
{
    ServiceConfig config;
    config.epoch.verifyIncremental = true;
    AllocationService service(config);
    service.admit("seed0", {0.6, 0.4});
    service.admit("seed1", {0.2, 0.8});
    service.tick();

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};

    // Readers hammer the snapshot while a writer churns and ticks;
    // every observed snapshot must be internally consistent.
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto snapshot = service.snapshot();
                ASSERT_EQ(snapshot->agents.size(),
                          snapshot->allocation.agents());
                double total = 0;
                for (std::size_t i = 0;
                     i < snapshot->allocation.agents(); ++i)
                    total += snapshot->allocation.at(i, 0);
                if (snapshot->allocation.agents() > 0) {
                    ASSERT_NEAR(total, 24.0, 1e-6);
                }
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    for (int round = 0; round < 50; ++round) {
        const std::string name = "churn" + std::to_string(round);
        service.admit(name, {0.3 + 0.01 * (round % 10), 0.5});
        service.tick();
        if (round % 3 == 0)
            service.depart(name);
        service.tick();
    }
    // On a loaded single-CPU host the readers may not have been
    // scheduled yet; yield until each has plausibly observed a
    // snapshot before asking them to stop.
    while (reads.load(std::memory_order_relaxed) < 3)
        std::this_thread::yield();
    stop.store(true);
    for (auto &reader : readers)
        reader.join();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(service.metrics().selfCheckFailures, 0u);
}

} // namespace
