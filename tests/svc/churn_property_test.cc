/**
 * Property test for the registry's incremental allocation: after ANY
 * sequence of admits, departs and updates, allocate() must be
 * byte-identical to the from-scratch ProportionalElasticityMechanism
 * recompute, and the allocation must satisfy the REF fairness
 * properties. Randomized but fully deterministic (fixed seeds).
 */

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fairness.hh"
#include "svc/agent_registry.hh"

namespace {

using namespace ref;
using svc::AgentRegistry;

class ChurnModel
{
  public:
    explicit ChurnModel(std::uint32_t seed)
        : registry_(core::SystemCapacity::cacheAndBandwidthExample()),
          rng_(seed)
    {
    }

    AgentRegistry &registry() { return registry_; }

    /** Apply one random admit/depart/update. */
    void step()
    {
        std::uniform_real_distribution<double> elasticity(0.05, 4.0);
        std::uniform_int_distribution<int> action(0, 9);
        const int roll = action(rng_);
        // Bias toward admission so the population grows, but keep
        // departures frequent enough to exercise the subtract path.
        if (live_.empty() || roll < 5) {
            const std::string name =
                "agent" + std::to_string(nextId_++);
            registry_.admit(name,
                            {elasticity(rng_), elasticity(rng_)});
            live_.push_back(name);
        } else if (roll < 8) {
            std::uniform_int_distribution<std::size_t> pick(
                0, live_.size() - 1);
            registry_.update(live_[pick(rng_)],
                             {elasticity(rng_), elasticity(rng_)});
        } else {
            std::uniform_int_distribution<std::size_t> pick(
                0, live_.size() - 1);
            const std::size_t victim = pick(rng_);
            registry_.depart(live_[victim]);
            live_.erase(live_.begin() +
                        static_cast<std::ptrdiff_t>(victim));
        }
    }

    bool empty() const { return live_.empty(); }

  private:
    AgentRegistry registry_;
    std::mt19937 rng_;
    std::vector<std::string> live_;
    std::uint64_t nextId_ = 0;
};

void
expectBitIdentical(const core::Allocation &incremental,
                   const core::Allocation &scratch)
{
    ASSERT_EQ(incremental.agents(), scratch.agents());
    ASSERT_EQ(incremental.resources(), scratch.resources());
    for (std::size_t i = 0; i < incremental.agents(); ++i)
        for (std::size_t r = 0; r < incremental.resources(); ++r)
            // Exact comparison on purpose — "close" is not enough.
            ASSERT_EQ(incremental.at(i, r), scratch.at(i, r))
                << "agent " << i << " resource " << r;
}

TEST(ChurnProperty, IncrementalMatchesScratchAfterAnyChurn)
{
    for (std::uint32_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
        ChurnModel model(seed);
        for (int step = 0; step < 400; ++step) {
            model.step();
            if (model.empty())
                continue;
            expectBitIdentical(model.registry().allocate(),
                               model.registry().allocateFromScratch());
        }
    }
}

TEST(ChurnProperty, AllocationsStayFairUnderChurn)
{
    const core::FairnessTolerance tolerance{1e-6, 1e-6, 1e-9};
    ChurnModel model(2026);
    for (int step = 0; step < 200; ++step) {
        model.step();
        if (model.empty())
            continue;
        const auto &registry = model.registry();
        const auto allocation = registry.allocate();
        const auto agents = registry.agentList();
        const auto si = core::checkSharingIncentives(
            agents, registry.capacity(), allocation, tolerance);
        EXPECT_TRUE(si.satisfied) << "step " << step << ": "
                                  << si.binding;
        const auto ef = core::checkEnvyFreeness(agents, allocation,
                                                tolerance);
        EXPECT_TRUE(ef.satisfied) << "step " << step << ": "
                                  << ef.binding;
    }
}

// The extreme case for an accumulator: agents whose elasticities span
// many orders of magnitude, interleaved with departures of the large
// contributors. A naive running sum loses the small agents' bits;
// the exact accumulator must not.
TEST(ChurnProperty, WideMagnitudeChurnStaysExact)
{
    AgentRegistry registry(
        core::SystemCapacity::cacheAndBandwidthExample());
    registry.admit("tiny0", {1e-9, 2e-9});
    registry.admit("huge0", {1e9, 3e9});
    registry.admit("tiny1", {3e-9, 1e-9});
    registry.admit("huge1", {2e9, 1e9});
    expectBitIdentical(registry.allocate(),
                       registry.allocateFromScratch());

    registry.depart("huge0");
    registry.depart("huge1");
    // Only the tiny agents remain; any absorbed bits would surface
    // here as a divergence from the scratch recompute.
    expectBitIdentical(registry.allocate(),
                       registry.allocateFromScratch());

    registry.admit("huge2", {5e8, 5e8});
    registry.update("tiny0", {2e-9, 4e-9});
    registry.depart("huge2");
    expectBitIdentical(registry.allocate(),
                       registry.allocateFromScratch());
}

} // namespace
