/**
 * @file
 * Durability of the pool tree: seeded crash-at-op recovery over POOL
 * mutations, journal format versioning (v1 replay, downgrade
 * refusal), pooled snapshot round-trips, and the pooled/flat mode
 * mismatch guard.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pool/pool_tree.hh"
#include "svc/failpoints.hh"
#include "svc/journal.hh"
#include "svc/protocol.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace {

using namespace ref;
using svc::AllocationService;
using svc::CrashInjected;
using svc::FailAction;
using svc::Failpoints;
using svc::FailpointSpec;
using svc::JournalRecord;
using svc::RecoveryOutcome;
using svc::ServiceConfig;

class PoolRecoveryTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "ref_pool_recovery_test_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        Failpoints::instance().clearAll();
    }

    void TearDown() override
    {
        Failpoints::instance().clearAll();
        std::filesystem::remove_all(dir_);
    }

    ServiceConfig pooled(bool journaled = true,
                         std::uint64_t snapshotEvery = 0) const
    {
        ServiceConfig config;
        config.pooled = true;
        config.buildEnforcement = false;
        config.epoch.verifyIncremental = true;
        if (journaled) {
            config.journal.directory = dir_;
            config.journal.snapshotEvery = snapshotEvery;
        }
        return config;
    }

    ServiceConfig flat(bool journaled = true) const
    {
        ServiceConfig config;
        config.epoch.verifyIncremental = true;
        if (journaled)
            config.journal.directory = dir_;
        return config;
    }

    std::string walPath() const { return dir_ + "/wal.ref"; }

    std::string readWal() const
    {
        std::ifstream file(walPath(), std::ios::binary);
        std::stringstream buffer;
        buffer << file.rdbuf();
        return buffer.str();
    }

    void writeWal(const std::string &bytes) const
    {
        std::ofstream file(walPath(),
                           std::ios::binary | std::ios::trunc);
        file << bytes;
    }

    /** Re-frame the wal with its Begin record transformed. */
    void rewriteBegin(
        const std::function<std::string(std::string_view)> &transform)
        const
    {
        const std::string whole = readWal();
        std::string rebuilt;
        std::size_t at = 0;
        bool first = true;
        for (;;) {
            std::string_view payload;
            if (readFrame(whole, at, payload) != FrameStatus::Ok)
                break;
            rebuilt += frameRecord(first ? transform(payload)
                                         : std::string(payload));
            first = false;
        }
        writeWal(rebuilt);
    }

    std::string dir_;
};

/**
 * Deterministic pooled op stream. Every op journals exactly one
 * record (pool creates never repeat a path), so crash-at-op k tears
 * the k-th wal append exactly as the flat property test does.
 */
struct PoolOp
{
    enum class Kind { Admit, Update, Depart, Assign, Create, Tick };
    Kind kind;
    std::string name;
    std::string pool;
    linalg::Vector elasticities;
    double weight = 1.0;
};

std::vector<PoolOp>
generateOps(std::uint32_t seed, std::size_t count)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> elasticity(0.05, 1.0);
    std::vector<std::string> live;
    std::vector<std::string> pools = {pool::kRootPath};
    std::vector<PoolOp> ops;
    int nextAgent = 0;
    int nextPool = 0;
    while (ops.size() < count) {
        const std::uint32_t roll = rng() % 12;
        PoolOp op;
        if (roll < 2 && nextPool < 6) {
            op.kind = PoolOp::Kind::Create;
            op.name = "q" + std::to_string(nextPool++);
            op.weight = 1.0;
            pools.push_back(op.name);
        } else if (roll < 5 || live.empty()) {
            op.kind = PoolOp::Kind::Admit;
            op.name = "agent" + std::to_string(nextAgent++);
            op.elasticities = {elasticity(rng), elasticity(rng)};
            live.push_back(op.name);
        } else if (roll < 7) {
            op.kind = PoolOp::Kind::Update;
            op.name = live[rng() % live.size()];
            op.elasticities = {elasticity(rng), elasticity(rng)};
        } else if (roll < 9) {
            op.kind = PoolOp::Kind::Assign;
            op.name = live[rng() % live.size()];
            op.pool = pools[rng() % pools.size()];
        } else if (roll < 10 && live.size() > 1) {
            const std::size_t victim = rng() % live.size();
            op.kind = PoolOp::Kind::Depart;
            op.name = live[victim];
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        } else {
            op.kind = PoolOp::Kind::Tick;
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

void
applyOp(AllocationService &service, const PoolOp &op)
{
    switch (op.kind) {
    case PoolOp::Kind::Admit:
        service.admit(op.name, op.elasticities);
        break;
    case PoolOp::Kind::Update:
        service.update(op.name, op.elasticities);
        break;
    case PoolOp::Kind::Depart:
        service.depart(op.name);
        break;
    case PoolOp::Kind::Assign:
        service.assignPool(op.name, op.pool);
        break;
    case PoolOp::Kind::Create:
        service.createPool(op.name, op.weight);
        break;
    case PoolOp::Kind::Tick:
        service.tick();
        break;
    }
}

/** Pooled observation transcript (no PLAN: enforcement is off). */
std::string
observe(AllocationService &service)
{
    std::istringstream in("TICK\nQUERY\nPOOL QUERY\n");
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.epochFailures, 0u);
    return out.str();
}

/** The recovered pooled service matches the reference everywhere it
 *  can be observed: population, tree shape, live shares bit for bit,
 *  and the full protocol transcript. */
void
expectBitIdentical(AllocationService &recovered,
                   AllocationService &reference)
{
    EXPECT_EQ(recovered.liveAgents(), reference.liveAgents());
    EXPECT_EQ(recovered.poolCount(), reference.poolCount());
    EXPECT_EQ(recovered.snapshot()->epoch,
              reference.snapshot()->epoch);
    const auto got = recovered.pools();
    const auto want = reference.pools();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].path, want[i].path);
        EXPECT_EQ(got[i].weight, want[i].weight) << want[i].path;
        EXPECT_EQ(got[i].agents, want[i].agents) << want[i].path;
        EXPECT_EQ(got[i].directAgents, want[i].directAgents)
            << want[i].path;
    }
    EXPECT_EQ(observe(recovered), observe(reference));
}

class PooledCrashRecoveryProperty
    : public PoolRecoveryTest,
      public testing::WithParamInterface<std::tuple<int, int>>
{};

TEST_P(PooledCrashRecoveryProperty, RecoversJournaledPrefixExactly)
{
    const auto [seed, crashAtOp] = GetParam();
    const auto ops = generateOps(static_cast<std::uint32_t>(seed),
                                 /*count=*/50);
    ASSERT_LT(static_cast<std::size_t>(crashAtOp), ops.size());

    AllocationService service(pooled());
    FailpointSpec crash;
    crash.action = FailAction::Crash;
    crash.skip = static_cast<std::uint64_t>(crashAtOp);
    Failpoints::instance().arm("journal.write", crash);

    std::size_t applied = 0;
    try {
        for (const auto &op : ops) {
            applyOp(service, op);
            ++applied;
        }
        FAIL() << "crash failpoint never fired";
    } catch (const CrashInjected &) {
        EXPECT_EQ(applied, static_cast<std::size_t>(crashAtOp));
    }
    Failpoints::instance().clearAll();

    AllocationService recovered(pooled());
    EXPECT_TRUE(recovered.recovery().outcome ==
                    RecoveryOutcome::TruncatedTail ||
                recovered.recovery().outcome ==
                    RecoveryOutcome::Clean)
        << svc::toString(recovered.recovery().outcome);
    EXPECT_EQ(recovered.recovery().replayedRecords,
              static_cast<std::uint64_t>(crashAtOp));

    AllocationService reference(pooled(/*journaled=*/false));
    std::vector<std::string> live;
    for (int i = 0; i < crashAtOp; ++i) {
        const PoolOp &op = ops[static_cast<std::size_t>(i)];
        applyOp(reference, op);
        if (op.kind == PoolOp::Kind::Admit)
            live.push_back(op.name);
        else if (op.kind == PoolOp::Kind::Depart)
            live.erase(std::find(live.begin(), live.end(), op.name));
    }
    expectBitIdentical(recovered, reference);
    // Live shares are the real payload: compare them bitwise.
    for (const std::string &name : live) {
        const linalg::Vector a = recovered.agentShares(name);
        const linalg::Vector b = reference.agentShares(name);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t r = 0; r < a.size(); ++r)
            EXPECT_EQ(a[r], b[r]) << name;
        EXPECT_EQ(recovered.agentPool(name),
                  reference.agentPool(name));
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeededCrashes, PooledCrashRecoveryProperty,
    testing::Combine(testing::Values(1, 2, 3),
                     testing::Values(0, 5, 21, 49)));

TEST_F(PoolRecoveryTest, PooledSnapshotRoundTripThroughCompaction)
{
    const auto ops = generateOps(9, 60);
    {
        AllocationService service(pooled(/*journaled=*/true,
                                         /*snapshotEvery=*/7));
        for (const auto &op : ops)
            applyOp(service, op);
        service.syncJournal();
    }
    AllocationService recovered(pooled(/*journaled=*/true,
                                       /*snapshotEvery=*/7));
    EXPECT_TRUE(recovered.recovery().snapshotLoaded);

    AllocationService reference(pooled(/*journaled=*/false));
    for (const auto &op : ops)
        applyOp(reference, op);
    expectBitIdentical(recovered, reference);
}

TEST_F(PoolRecoveryTest, LegacyV1WalReplaysUnchanged)
{
    {
        AllocationService service(flat());
        service.admit("a", {0.6, 0.4});
        service.admit("b", {0.2, 0.8});
        service.tick();
        service.syncJournal();
    }
    // Rewrite the Begin record as a v1 wal: the version field is the
    // trailing u32, and v1 Begins simply end after the capacity echo.
    rewriteBegin([](std::string_view payload) {
        return std::string(payload.substr(0, payload.size() - 4));
    });

    AllocationService recovered(flat());
    EXPECT_EQ(recovered.recovery().outcome, RecoveryOutcome::Clean);
    EXPECT_EQ(recovered.recovery().replayedRecords, 3u);

    AllocationService reference(flat(/*journaled=*/false));
    reference.admit("a", {0.6, 0.4});
    reference.admit("b", {0.2, 0.8});
    reference.tick();
    EXPECT_EQ(recovered.liveAgents(), reference.liveAgents());
    EXPECT_EQ(recovered.snapshot()->epoch,
              reference.snapshot()->epoch);
}

TEST_F(PoolRecoveryTest, NewerWalVersionIsRefused)
{
    {
        AllocationService service(flat());
        service.admit("a", {0.6, 0.4});
        service.syncJournal();
    }
    // A wal from a build two versions ahead: replay must refuse — it
    // could hold record types these semantics would misapply.
    rewriteBegin([](std::string_view payload) {
        JournalRecord begin = svc::decodeJournalRecord(payload);
        begin.version = svc::kJournalFormatVersion + 1;
        return svc::encodeJournalRecord(begin);
    });
    EXPECT_THROW(AllocationService service(flat()), FatalError);
}

TEST_F(PoolRecoveryTest, PooledWalIntoFlatServiceIsRefused)
{
    {
        AllocationService service(pooled());
        service.createPool("p", 1.0);
        service.admit("a", {0.6, 0.4});
        service.assignPool("a", "p");
        service.syncJournal();
    }
    EXPECT_THROW(AllocationService service(flat()), FatalError);
}

TEST_F(PoolRecoveryTest, FlatWalIntoPooledServiceIsRefused)
{
    {
        AllocationService service(flat());
        service.admit("a", {0.6, 0.4});
        service.syncJournal();
    }
    EXPECT_THROW(AllocationService service(pooled()), FatalError);
}

} // namespace
