#include "svc/epoch_driver.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace ref;
using svc::AgentRegistry;
using svc::EpochConfig;
using svc::EpochDriver;

AgentRegistry
exampleRegistry()
{
    return AgentRegistry(
        core::SystemCapacity::cacheAndBandwidthExample());
}

TEST(EpochDriver, EpochCounterIsMonotonic)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    EpochDriver driver(registry);
    EXPECT_EQ(driver.tick().epoch, 1u);
    EXPECT_EQ(driver.tick().epoch, 2u);
    EXPECT_EQ(driver.epoch(), 2u);
}

TEST(EpochDriver, ChecksPropertiesEachEpoch)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    registry.admit("b", {0.2, 0.8});
    EpochDriver driver(registry);
    const auto result = driver.tick();
    ASSERT_TRUE(result.propertiesChecked);
    EXPECT_TRUE(result.sharingIncentives.satisfied);
    EXPECT_TRUE(result.envyFreeness.satisfied);
    EXPECT_TRUE(result.incrementalMatchesScratch);
}

TEST(EpochDriver, SelfCheckPassesUnderChurn)
{
    auto registry = exampleRegistry();
    EpochConfig config;
    config.verifyIncremental = true;
    EpochDriver driver(registry, config);
    registry.admit("a", {0.6, 0.4});
    driver.tick();
    registry.admit("b", {0.2, 0.8});
    registry.update("a", {0.3, 0.7});
    const auto result = driver.tick();
    EXPECT_TRUE(result.incrementalMatchesScratch);
}

TEST(EpochDriver, HysteresisHoldsSmallChanges)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    registry.admit("b", {0.2, 0.8});
    EpochConfig config;
    config.hysteresis = 0.05;
    EpochDriver driver(registry, config);

    // First epoch always enforces.
    EXPECT_TRUE(driver.tick().enforcementChanged);

    // No churn: nothing moved, enforcement holds.
    auto result = driver.tick();
    EXPECT_FALSE(result.enforcementChanged);
    EXPECT_EQ(result.maxRelativeChange, 0.0);

    // A tiny preference nudge stays inside the 5% band.
    registry.update("a", {0.6005, 0.3995});
    result = driver.tick();
    EXPECT_FALSE(result.enforcementChanged);
    EXPECT_GT(result.maxRelativeChange, 0.0);
    EXPECT_LT(result.maxRelativeChange, 0.05);

    // A big swing crosses it.
    registry.update("a", {0.1, 0.9});
    result = driver.tick();
    EXPECT_TRUE(result.enforcementChanged);
}

TEST(EpochDriver, AgentChurnAlwaysReenforces)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    EpochConfig config;
    config.hysteresis = 0.5;  // Generous band...
    EpochDriver driver(registry, config);
    driver.tick();
    registry.admit("b", {0.6, 0.4});
    // ...but a new agent changes the allocation shape, so the old
    // enforcement cannot be kept regardless of the band.
    const auto result = driver.tick();
    EXPECT_TRUE(result.enforcementChanged);
}

TEST(EpochDriver, IdleSystemTicksCleanly)
{
    auto registry = exampleRegistry();
    EpochDriver driver(registry);
    const auto result = driver.tick();
    EXPECT_EQ(result.epoch, 1u);
    EXPECT_TRUE(result.agentNames.empty());
    EXPECT_EQ(result.allocation.agents(), 0u);
    EXPECT_FALSE(result.propertiesChecked);
    EXPECT_TRUE(result.incrementalMatchesScratch);
}

TEST(EpochDriver, DepartToEmptyDropsEnforcement)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    EpochDriver driver(registry);
    driver.tick();
    registry.depart("a");
    const auto result = driver.tick();
    EXPECT_TRUE(result.enforcementChanged);
    EXPECT_EQ(driver.enforced().agents(), 0u);
}

TEST(EpochDriver, RejectsNegativeHysteresis)
{
    auto registry = exampleRegistry();
    EpochConfig config;
    config.hysteresis = -0.1;
    EXPECT_THROW(EpochDriver(registry, config), FatalError);
}

} // namespace
