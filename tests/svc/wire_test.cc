/**
 * @file
 * Unit tests for the binary wire codec (svc/wire.hh): command and
 * reply payloads round-trip losslessly, every decode failure mode is
 * a loud FatalError (unknown opcode, truncation, trailing bytes),
 * and the hello magic has the properties the transport sniff relies
 * on (fixed size, leading NUL).
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "svc/wire.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::svc {
namespace {

Command
roundTrip(const Command &command)
{
    return wire::decodeCommand(wire::encodeCommand(command));
}

TEST(WireCodec, HelloMagicStartsWithNulAndIsEightBytes)
{
    const std::string_view magic = wire::helloMagic();
    EXPECT_EQ(magic.size(), 8u);
    // The leading NUL is the whole sniffing argument: no text
    // protocol line can begin with it.
    EXPECT_EQ(magic[0], '\0');
    EXPECT_EQ(magic.substr(1, 6), "REFBIN");
}

TEST(WireCodec, AdmitRoundTripsNameAndElasticities)
{
    Command admit;
    admit.op = Command::Op::Admit;
    admit.name = "tenant_a";
    admit.elasticities = {0.6, 0.4, 1e-9, 0.999999};
    const Command decoded = roundTrip(admit);
    EXPECT_EQ(decoded.op, Command::Op::Admit);
    EXPECT_EQ(decoded.name, "tenant_a");
    ASSERT_EQ(decoded.elasticities.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(decoded.elasticities[i], admit.elasticities[i]);
}

TEST(WireCodec, DoublesRoundTripBitExactly)
{
    Command update;
    update.op = Command::Op::Update;
    update.name = "x";
    // Bit-exactness matters: -0.0, subnormals, inf and NaN must
    // arrive exactly as sent so server-side validation sees what the
    // client sent, not a lossy decimal detour.
    update.elasticities = {-0.0, 5e-324,
                           std::numeric_limits<double>::infinity(),
                           std::nan("")};
    const Command decoded = roundTrip(update);
    ASSERT_EQ(decoded.elasticities.size(), 4u);
    EXPECT_TRUE(std::signbit(decoded.elasticities[0]));
    EXPECT_EQ(decoded.elasticities[1], 5e-324);
    EXPECT_TRUE(std::isinf(decoded.elasticities[2]));
    EXPECT_TRUE(std::isnan(decoded.elasticities[3]));
}

TEST(WireCodec, TickCarriesCount)
{
    Command tick;
    tick.op = Command::Op::Tick;
    tick.tickCount = 77;
    EXPECT_EQ(roundTrip(tick).tickCount, 77u);
}

TEST(WireCodec, QueryDistinguishesNamedFromFull)
{
    Command full;
    full.op = Command::Op::Query;
    full.hasName = false;
    EXPECT_FALSE(roundTrip(full).hasName);

    Command named;
    named.op = Command::Op::Query;
    named.hasName = true;
    named.name = "agent7";
    const Command decoded = roundTrip(named);
    EXPECT_TRUE(decoded.hasName);
    EXPECT_EQ(decoded.name, "agent7");
}

TEST(WireCodec, MetricsCarriesFormat)
{
    Command metrics;
    metrics.op = Command::Op::Metrics;
    metrics.metricsFormat = "fairness";
    EXPECT_EQ(roundTrip(metrics).metricsFormat, "fairness");
}

TEST(WireCodec, BareOpsRoundTrip)
{
    for (const Command::Op op :
         {Command::Op::Plan, Command::Op::Stats,
          Command::Op::Shutdown}) {
        Command command;
        command.op = op;
        EXPECT_EQ(roundTrip(command).op, op);
    }
}

TEST(WireCodec, UnknownOpcodeThrows)
{
    ByteWriter writer;
    writer.u8(0);  // No opcode 0.
    EXPECT_THROW(wire::decodeCommand(writer.bytes()), FatalError);
    ByteWriter writer2;
    writer2.u8(200);
    EXPECT_THROW(wire::decodeCommand(writer2.bytes()), FatalError);
}

TEST(WireCodec, TruncatedPayloadThrows)
{
    Command admit;
    admit.op = Command::Op::Admit;
    admit.name = "abc";
    admit.elasticities = {0.5, 0.5};
    const std::string whole = wire::encodeCommand(admit);
    for (std::size_t cut = 0; cut < whole.size(); ++cut)
        EXPECT_THROW(wire::decodeCommand(
                         std::string_view(whole).substr(0, cut)),
                     FatalError)
            << "prefix of " << cut << " bytes decoded";
}

TEST(WireCodec, TrailingBytesThrow)
{
    Command tick;
    tick.op = Command::Op::Tick;
    const std::string extra = wire::encodeCommand(tick) + "x";
    EXPECT_THROW(wire::decodeCommand(extra), FatalError);
}

TEST(WireCodec, EmptyPayloadThrows)
{
    EXPECT_THROW(wire::decodeCommand(std::string_view()),
                 FatalError);
}

TEST(WireCodec, ReplyRoundTrips)
{
    const std::string text = "OK admitted a agents=1\n";
    const wire::Reply reply = wire::decodeReply(
        wire::encodeReply(wire::ReplyStatus::Ok, text));
    EXPECT_EQ(reply.status, wire::ReplyStatus::Ok);
    EXPECT_EQ(reply.text, text);
}

TEST(WireCodec, ReplyStatusesRoundTrip)
{
    for (const wire::ReplyStatus status :
         {wire::ReplyStatus::Ok, wire::ReplyStatus::Err,
          wire::ReplyStatus::Shutdown, wire::ReplyStatus::Hello})
        EXPECT_EQ(wire::decodeReply(wire::encodeReply(status, ""))
                      .status,
                  status);
}

TEST(WireCodec, BadReplyStatusThrows)
{
    ByteWriter writer;
    writer.u8(99);
    writer.str("text");
    EXPECT_THROW(wire::decodeReply(writer.bytes()), FatalError);
}

TEST(WireCodec, HelloAckIsAHelloReply)
{
    const wire::Reply ack = wire::decodeReply(wire::encodeHelloAck());
    EXPECT_EQ(ack.status, wire::ReplyStatus::Hello);
    EXPECT_FALSE(ack.text.empty());
}

TEST(WireCodec, FramedCommandSurvivesRecordIo)
{
    // The wire contract: frames are util/record_io frames, so the
    // journal's reader walks wire bytes unchanged.
    Command depart;
    depart.op = Command::Op::Depart;
    depart.name = "gone";
    const std::string framed =
        frameRecord(wire::encodeCommand(depart));
    std::size_t offset = 0;
    std::string_view payload;
    ASSERT_EQ(readFrame(framed, offset, payload), FrameStatus::Ok);
    EXPECT_EQ(offset, framed.size());
    EXPECT_EQ(wire::decodeCommand(payload).name, "gone");
}

} // namespace
} // namespace ref::svc
