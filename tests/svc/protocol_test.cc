#include "svc/protocol.hh"

#include <sstream>

#include <gtest/gtest.h>

namespace {

using namespace ref;
using svc::AllocationService;
using svc::SessionOptions;
using svc::SessionResult;

SessionResult
run(AllocationService &service, const std::string &script,
    std::string &output, SessionOptions options = {})
{
    std::istringstream in(script);
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out, options);
    output = out.str();
    return result;
}

TEST(Protocol, PaperExampleTranscript)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT user1 0.6 0.4\n"
                            "ADMIT user2 0.2 0.8\n"
                            "TICK\n"
                            "QUERY\n",
                            output);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.commands, 4u);
    EXPECT_NE(output.find("OK admitted user1 agents=1"),
              std::string::npos);
    EXPECT_NE(output.find("EPOCH 1 agents=2 enforce=update si=ok "
                          "ef=ok selfcheck=ok"),
              std::string::npos);
    EXPECT_NE(output.find("SNAPSHOT epoch=1 agents=2"),
              std::string::npos);
    // Shortest round-trip formatting: exact whole shares print bare,
    // and the one share that is not exactly 18 in IEEE arithmetic
    // (0.6/0.8*24) prints its true value rather than a rounded lie.
    EXPECT_NE(output.find("SHARE user1 17.999999999999996 4"),
              std::string::npos);
    EXPECT_NE(output.find("SHARE user2 6 8"), std::string::npos);
}

TEST(Protocol, CommentsBlanksAndCrLfAreTolerated)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "# a comment\r\n"
                            "\n"
                            "   \n"
                            "ADMIT solo 0.5 0.5\r\n"
                            "TICK\r\n",
                            output);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.commands, 2u);
}

TEST(Protocol, ErrRepliesKeepSessionAlive)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT user1 0.6 0.4\n"
                            "ADMIT user1 0.5 0.5\n"  // duplicate
                            "ADMIT cheat inf 0.4\n"  // invalid value
                            "ADMIT bad 0.5 oops\n"   // not a number
                            "FROB\n"                 // unknown verb
                            "TICK 0\n"               // bad count
                            "TICK 2.5\n"             // non-integer
                            "DEPART ghost\n"
                            "TICK\n"
                            "QUERY user1\n",
                            output);
    EXPECT_EQ(result.errors, 7u);
    EXPECT_EQ(result.epochFailures, 0u);
    // The honest agent still gets everything after the rejections.
    EXPECT_NE(output.find("SHARE user1 24 12"), std::string::npos);
    EXPECT_EQ(service.metrics().rejected, 7u);
}

TEST(Protocol, QueryBeforeFirstTickSeesEmptySnapshot)
{
    AllocationService service;
    std::string output;
    run(service, "ADMIT user1 0.6 0.4\nQUERY\n", output);
    EXPECT_NE(output.find("SNAPSHOT epoch=0 agents=0"),
              std::string::npos);
    // ...and querying the not-yet-published agent is an error.
    const auto result = run(service, "QUERY user1\n", output);
    EXPECT_EQ(result.errors, 1u);
}

TEST(Protocol, TickCountBatchesEpochs)
{
    AllocationService service;
    std::string output;
    const auto result =
        run(service, "ADMIT a 0.5 0.5\nTICK 5\n", output);
    EXPECT_TRUE(result.clean());
    EXPECT_NE(output.find("EPOCH 5 "), std::string::npos);
    EXPECT_EQ(service.metrics().epochs, 5u);
}

TEST(Protocol, PlanShowsEnforcementArtifacts)
{
    AllocationService service;
    std::string output;
    run(service,
        "ADMIT user1 0.6 0.4\nADMIT user2 0.2 0.8\nTICK\nPLAN\n",
        output);
    EXPECT_NE(output.find("PLAN epoch=1 agents=2 cache=way-partition"),
              std::string::npos);
    EXPECT_NE(output.find("ENFORCE user1 wfq_weight=0.7499999999999999"
                          " ways=5"),
              std::string::npos);
}

TEST(Protocol, StatsPrintsMetrics)
{
    AllocationService service;
    std::string output;
    run(service, "ADMIT a 0.5 0.5\nTICK\nSTATS\n", output);
    EXPECT_NE(output.find("admits=1"), std::string::npos);
    EXPECT_NE(output.find("epochs=1"), std::string::npos);
}

TEST(Protocol, EchoProducesTranscript)
{
    AllocationService service;
    std::string output;
    SessionOptions options;
    options.echo = true;
    run(service, "ADMIT a 0.5 0.5\n", output, options);
    EXPECT_NE(output.find("> ADMIT a 0.5 0.5"), std::string::npos);
}

} // namespace
