#include "svc/protocol.hh"

#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace ref;
using svc::AllocationService;
using svc::SessionOptions;
using svc::SessionResult;

SessionResult
run(AllocationService &service, const std::string &script,
    std::string &output, SessionOptions options = {})
{
    std::istringstream in(script);
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out, options);
    output = out.str();
    return result;
}

TEST(Protocol, PaperExampleTranscript)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT user1 0.6 0.4\n"
                            "ADMIT user2 0.2 0.8\n"
                            "TICK\n"
                            "QUERY\n",
                            output);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.commands, 4u);
    EXPECT_NE(output.find("OK admitted user1 agents=1"),
              std::string::npos);
    EXPECT_NE(output.find("EPOCH 1 agents=2 enforce=update si=ok "
                          "ef=ok selfcheck=ok"),
              std::string::npos);
    EXPECT_NE(output.find("SNAPSHOT epoch=1 agents=2"),
              std::string::npos);
    // Shortest round-trip formatting: exact whole shares print bare,
    // and the one share that is not exactly 18 in IEEE arithmetic
    // (0.6/0.8*24) prints its true value rather than a rounded lie.
    EXPECT_NE(output.find("SHARE user1 17.999999999999996 4"),
              std::string::npos);
    EXPECT_NE(output.find("SHARE user2 6 8"), std::string::npos);
}

TEST(Protocol, CommentsBlanksAndCrLfAreTolerated)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "# a comment\r\n"
                            "\n"
                            "   \n"
                            "ADMIT solo 0.5 0.5\r\n"
                            "TICK\r\n",
                            output);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.commands, 2u);
}

TEST(Protocol, ErrRepliesKeepSessionAlive)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT user1 0.6 0.4\n"
                            "ADMIT user1 0.5 0.5\n"  // duplicate
                            "ADMIT cheat inf 0.4\n"  // invalid value
                            "ADMIT bad 0.5 oops\n"   // not a number
                            "FROB\n"                 // unknown verb
                            "TICK 0\n"               // bad count
                            "TICK 2.5\n"             // non-integer
                            "DEPART ghost\n"
                            "TICK\n"
                            "QUERY user1\n",
                            output);
    EXPECT_EQ(result.errors, 7u);
    EXPECT_EQ(result.epochFailures, 0u);
    // The honest agent still gets everything after the rejections.
    EXPECT_NE(output.find("SHARE user1 24 12"), std::string::npos);
    EXPECT_EQ(service.metrics().rejected, 7u);
}

TEST(Protocol, QueryBeforeFirstTickSeesEmptySnapshot)
{
    AllocationService service;
    std::string output;
    run(service, "ADMIT user1 0.6 0.4\nQUERY\n", output);
    EXPECT_NE(output.find("SNAPSHOT epoch=0 agents=0"),
              std::string::npos);
    // ...and querying the not-yet-published agent is an error.
    const auto result = run(service, "QUERY user1\n", output);
    EXPECT_EQ(result.errors, 1u);
}

TEST(Protocol, TickCountBatchesEpochs)
{
    AllocationService service;
    std::string output;
    const auto result =
        run(service, "ADMIT a 0.5 0.5\nTICK 5\n", output);
    EXPECT_TRUE(result.clean());
    EXPECT_NE(output.find("EPOCH 5 "), std::string::npos);
    EXPECT_EQ(service.metrics().epochs, 5u);
}

TEST(Protocol, PlanShowsEnforcementArtifacts)
{
    AllocationService service;
    std::string output;
    run(service,
        "ADMIT user1 0.6 0.4\nADMIT user2 0.2 0.8\nTICK\nPLAN\n",
        output);
    EXPECT_NE(output.find("PLAN epoch=1 agents=2 cache=way-partition"),
              std::string::npos);
    EXPECT_NE(output.find("ENFORCE user1 wfq_weight=0.7499999999999999"
                          " ways=5"),
              std::string::npos);
}

TEST(Protocol, StatsPrintsMetrics)
{
    AllocationService service;
    std::string output;
    run(service, "ADMIT a 0.5 0.5\nTICK\nSTATS\n", output);
    EXPECT_NE(output.find("admits=1"), std::string::npos);
    EXPECT_NE(output.find("epochs=1"), std::string::npos);
}

TEST(Protocol, EchoProducesTranscript)
{
    AllocationService service;
    std::string output;
    SessionOptions options;
    options.echo = true;
    run(service, "ADMIT a 0.5 0.5\n", output, options);
    EXPECT_NE(output.find("> ADMIT a 0.5 0.5"), std::string::npos);
}

TEST(Protocol, ShutdownRepliesOkAndEndsSession)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.5 0.5\n"
                            "SHUTDOWN\n"
                            "TICK\n",  // Never reached.
                            output);
    EXPECT_TRUE(result.shutdown);
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.commands, 2u);
    EXPECT_NE(output.find("OK shutdown"), std::string::npos);
    EXPECT_EQ(output.find("EPOCH"), std::string::npos);
    EXPECT_EQ(service.metrics().epochs, 0u);

    // With arguments it is rejected and the session continues.
    const auto bad = run(service, "SHUTDOWN now\nTICK\n", output);
    EXPECT_FALSE(bad.shutdown);
    EXPECT_EQ(bad.errors, 1u);
    EXPECT_EQ(service.metrics().epochs, 1u);
}

TEST(Protocol, StopFlagEndsSessionBetweenCommands)
{
    AllocationService service;
    volatile std::sig_atomic_t stop = 0;
    SessionOptions options;
    options.stopFlag = &stop;
    std::string output;
    auto result =
        run(service, "ADMIT a 0.5 0.5\nTICK\n", output, options);
    EXPECT_FALSE(result.shutdown);  // Flag never raised.

    stop = 1;
    result = run(service, "TICK\nTICK\n", output, options);
    EXPECT_TRUE(result.shutdown);
    EXPECT_EQ(result.commands, 0u);  // Stopped before any command.
    EXPECT_EQ(service.metrics().epochs, 1u);
}

TEST(Protocol, TickCountIsCapped)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.5 0.5\n"
                            "TICK 100001\n"
                            "TICK 1000000000\n",
                            output);
    EXPECT_EQ(result.errors, 2u);
    EXPECT_EQ(service.metrics().epochs, 0u);

    // The cap itself is accepted territory: a count of 2 works and
    // the boundary value parses as valid (not exercised in full).
    const auto ok = run(service, "TICK 2\n", output);
    EXPECT_TRUE(ok.clean());
    EXPECT_EQ(service.metrics().epochs, 2u);
}

TEST(Protocol, NonFiniteNumbersAreRejectedEverywhere)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 1e999 0.4\n"   // stod overflow
                            "ADMIT b inf 0.4\n"     // literal inf
                            "ADMIT c 0.5 nan\n"     // literal nan
                            "ADMIT d -inf 0.4\n"
                            "TICK inf\n"
                            "TICK 1e999\n"
                            "ADMIT ok 0.5 0.5\n"
                            "TICK\n",
                            output);
    EXPECT_EQ(result.errors, 6u);
    EXPECT_EQ(result.epochFailures, 0u);
    EXPECT_EQ(service.liveAgents(), 1u);
    EXPECT_NE(output.find("EPOCH 1 agents=1"), std::string::npos);
    // Overflowing decimals and inf report the finite-number error.
    EXPECT_NE(output.find("'1e999' is not a finite number"),
              std::string::npos);
    EXPECT_NE(output.find("'inf' is not a finite number"),
              std::string::npos);
}

TEST(Protocol, DuplicateAdmitAndUnknownNamesAreErrors)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.5 0.5\n"
                            "ADMIT a 0.6 0.4\n"   // duplicate
                            "UPDATE ghost 0.5 0.5\n"
                            "DEPART phantom\n"
                            "TICK\n"
                            "QUERY a\n",
                            output);
    EXPECT_EQ(result.errors, 3u);
    // The duplicate ADMIT did not clobber a's elasticities.
    EXPECT_NE(output.find("SHARE a 24 12"), std::string::npos);
    EXPECT_EQ(service.metrics().rejected, 3u);
}

/** Pull "name value" from a Prometheus exposition; "" when absent. */
std::string
promValue(const std::string &text, const std::string &name)
{
    const std::string needle = "\n" + name + " ";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t start = at + needle.size();
    return text.substr(start, text.find('\n', start) - start);
}

TEST(Protocol, MetricsCommandServesRegistryExpositions)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.5 0.5\n"
                            "TICK 3\n"
                            "METRICS\n"
                            "METRICS json\n"
                            "METRICS fairness\n"
                            "METRICS yaml\n",
                            output);
    EXPECT_EQ(result.errors, 1u);  // yaml is not a format.
    EXPECT_NE(output.find("# TYPE ref_epochs_total counter"),
              std::string::npos);
    EXPECT_EQ(promValue(output, "ref_epochs_total"), "3");
    EXPECT_EQ(promValue(output, "ref_admits_total"), "1");
    EXPECT_NE(output.find("\"counters\""), std::string::npos);
    // One fairness CSV row per epoch, margins computed.
    EXPECT_NE(output.find(obs::FairnessSeries::csvHeader()),
              std::string::npos);
    EXPECT_EQ(service.fairnessSeries().size(), 3u);
    EXPECT_NE(output.find("ERR"), std::string::npos);
}

TEST(Protocol, MetricsAgreesWithStatsAfterRecovery)
{
    // recovery_* must be one source of truth: STATS (legacy
    // key=value) and METRICS (registry exposition) read the same
    // numbers on a service that just recovered a journal.
    const std::string dir = testing::TempDir() +
                            "ref_protocol_metrics_recovery";
    std::filesystem::remove_all(dir);
    svc::ServiceConfig config;
    config.journal.directory = dir;

    {
        AllocationService service(config);
        std::string output;
        run(service,
            "ADMIT a 0.5 0.5\nADMIT b 0.7 0.3\nTICK 2\nSHUTDOWN\n",
            output);
    }

    AllocationService recovered(config);
    std::string output;
    const auto result =
        run(recovered, "STATS\nMETRICS\n", output);
    EXPECT_TRUE(result.clean());

    const auto metrics = recovered.metrics();
    EXPECT_EQ(metrics.recovery.outcome,
              svc::RecoveryOutcome::Clean);
    // STATS line and registry gauge must agree exactly.
    EXPECT_NE(output.find("recovery_outcome=clean"),
              std::string::npos);
    EXPECT_EQ(promValue(output, "ref_recovery_outcome_code"), "2");
    EXPECT_NE(output.find("recovery_snapshot_loaded=1"),
              std::string::npos);
    EXPECT_EQ(promValue(output, "ref_recovery_snapshot_loaded"),
              "1");
    EXPECT_EQ(promValue(output, "ref_recovery_generation"),
              std::to_string(metrics.recovery.generation));
    EXPECT_EQ(promValue(output, "ref_recovery_replayed_records"),
              std::to_string(metrics.recovery.replayedRecords));
    EXPECT_EQ(promValue(output, "ref_journal_enabled"), "1");
    EXPECT_EQ(promValue(output, "ref_journal_records"),
              std::to_string(metrics.journal.records));
    std::filesystem::remove_all(dir);
}

TEST(Protocol, CohortLabelsProduceLabelledFairnessRows)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.6 0.4\n"
                            "ADMIT b 0.2 0.8\n"
                            "ADMIT c 0.5 0.5\n"
                            "COHORT a gold\n"
                            "COHORT b gold\n"
                            "COHORT c silver\n"
                            "TICK\n"
                            "METRICS fairness\n",
                            output);
    EXPECT_TRUE(result.clean());
    EXPECT_NE(output.find("OK cohort a label=gold"),
              std::string::npos);
    // Labelled CSV: the global series rides as "_total", each cohort
    // gets its own per-epoch row, and margins respect the mechanism's
    // guarantees (>= 1, checked by value below via the fleet tests).
    EXPECT_NE(output.find("label,epoch,agents,checked"),
              std::string::npos);
    EXPECT_NE(output.find("_total,1,3,"), std::string::npos);
    EXPECT_NE(output.find("gold,1,2,"), std::string::npos);
    EXPECT_NE(output.find("silver,1,1,"), std::string::npos);
}

TEST(Protocol, CohortRejectsBadInput)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.6 0.4\n"
                            "COHORT ghost gold\n"    // unregistered
                            "COHORT a _total\n"      // reserved
                            "COHORT a\n"             // wrong arity
                            "COHORT a one two\n"     // wrong arity
                            "COHORT a gold\n"        // valid
                            "TICK\n",
                            output);
    EXPECT_EQ(result.errors, 4u);
    EXPECT_EQ(result.epochFailures, 0u);
    EXPECT_NE(output.find("OK cohort a label=gold"),
              std::string::npos);
}

TEST(Protocol, DepartDropsCohortMembership)
{
    AllocationService service;
    std::string output;
    const auto result = run(service,
                            "ADMIT a 0.6 0.4\n"
                            "ADMIT b 0.2 0.8\n"
                            "COHORT a gold\n"
                            "TICK\n"
                            "DEPART a\n"
                            "TICK\n"
                            "METRICS fairness\n",
                            output);
    EXPECT_TRUE(result.clean());
    // Epoch 1 had the labelled member; epoch 2 must not — departure
    // removes the membership along with the agent.
    EXPECT_NE(output.find("gold,1,1,"), std::string::npos);
    EXPECT_EQ(output.find("gold,2,"), std::string::npos);
}

} // namespace
