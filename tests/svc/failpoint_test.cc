#include "svc/failpoints.hh"

#include <cerrno>
#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "svc/protocol.hh"
#include "util/logging.hh"

namespace {

using namespace ref;
using svc::AllocationService;
using svc::FailAction;
using svc::Failpoints;
using svc::FailpointSpec;
using svc::ServiceConfig;

class FailpointTest : public testing::Test
{
  protected:
    void SetUp() override { Failpoints::instance().clearAll(); }
    void TearDown() override { Failpoints::instance().clearAll(); }
};

TEST_F(FailpointTest, UnarmedSiteProceeds)
{
    EXPECT_FALSE(Failpoints::instance().check("journal.write"));
}

TEST_F(FailpointTest, SkipAndCountSemantics)
{
    FailpointSpec spec;
    spec.action = FailAction::Error;
    spec.errnoValue = ENOSPC;
    spec.skip = 2;
    spec.count = 2;
    Failpoints::instance().arm("journal.write", spec);

    auto &fp = Failpoints::instance();
    EXPECT_FALSE(fp.check("journal.write"));  // pass 1 (skipped)
    EXPECT_FALSE(fp.check("journal.write"));  // pass 2 (skipped)
    const auto hit = fp.check("journal.write");
    ASSERT_TRUE(hit);                         // fires
    EXPECT_EQ(hit->errnoValue, ENOSPC);
    EXPECT_TRUE(fp.check("journal.write"));   // fires again
    EXPECT_FALSE(fp.check("journal.write"));  // count exhausted
    EXPECT_EQ(fp.firedCount(), 2u);
}

TEST_F(FailpointTest, ClearDisarms)
{
    FailpointSpec spec;
    spec.count = 0;  // forever
    Failpoints::instance().arm("journal.fsync", spec);
    EXPECT_TRUE(Failpoints::instance().check("journal.fsync"));
    Failpoints::instance().clear("journal.fsync");
    EXPECT_FALSE(Failpoints::instance().check("journal.fsync"));
}

TEST_F(FailpointTest, SpecStringParsing)
{
    Failpoints::instance().armFromSpec(
        "journal.write=enospc@3x2,snapshot.fsync=eio");
    auto &fp = Failpoints::instance();
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(fp.check("journal.write"));
    const auto hit = fp.check("journal.write");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->errnoValue, ENOSPC);
    EXPECT_EQ(hit->action, FailAction::Error);

    const auto eio = fp.check("snapshot.fsync");
    ASSERT_TRUE(eio);
    EXPECT_EQ(eio->errnoValue, EIO);

    Failpoints::instance().armFromSpec("journal.open=short");
    const auto shortHit = fp.check("journal.open");
    ASSERT_TRUE(shortHit);
    EXPECT_EQ(shortHit->action, FailAction::ShortWrite);

    Failpoints::instance().armFromSpec("journal.fsync=crash");
    const auto crash = fp.check("journal.fsync");
    ASSERT_TRUE(crash);
    EXPECT_EQ(crash->action, FailAction::Crash);
    EXPECT_FALSE(crash->exitProcess);

    Failpoints::instance().armFromSpec("journal.write=exit");
    const auto exitHit = fp.check("journal.write");
    ASSERT_TRUE(exitHit);
    EXPECT_EQ(exitHit->action, FailAction::Crash);
    EXPECT_TRUE(exitHit->exitProcess);
}

TEST_F(FailpointTest, MalformedSpecThrows)
{
    EXPECT_THROW(Failpoints::instance().armFromSpec("nonsense"),
                 FatalError);
    EXPECT_THROW(Failpoints::instance().armFromSpec("a=frobnicate"),
                 FatalError);
    EXPECT_THROW(Failpoints::instance().armFromSpec("a=eio@x"),
                 FatalError);
}

/** End-to-end: IO faults degrade the service, never kill it. */
class DegradedServiceTest : public FailpointTest
{
  protected:
    void SetUp() override
    {
        FailpointTest::SetUp();
        dir_ = testing::TempDir() + "ref_degraded_test_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override
    {
        std::filesystem::remove_all(dir_);
        FailpointTest::TearDown();
    }

    ServiceConfig journaledConfig()
    {
        ServiceConfig config;
        config.epoch.verifyIncremental = true;
        config.journal.directory = dir_;
        config.journal.retryBackoffStart = 2;
        config.journal.retryBackoffMax = 4;
        return config;
    }

    std::string dir_;
};

TEST_F(DegradedServiceTest, WriteErrorsDegradeGracefullyAndRecover)
{
    AllocationService service(journaledConfig());
    service.admit("a", {0.6, 0.4});
    service.tick();

    // Disk starts failing every write, indefinitely.
    FailpointSpec spec;
    spec.action = FailAction::Error;
    spec.errnoValue = EIO;
    spec.count = 0;
    Failpoints::instance().arm("journal.write", spec);
    // Resync snapshots fail too (same disk).
    Failpoints::instance().arm("snapshot.write", spec);

    // The service keeps accepting work — no throw, no ERR storm.
    service.admit("b", {0.2, 0.8});
    for (int i = 0; i < 10; ++i)
        EXPECT_NO_THROW(service.tick());

    auto metrics = service.metrics();
    EXPECT_TRUE(metrics.journal.degraded);
    EXPECT_GE(metrics.journal.appendErrors, 1u);
    EXPECT_GT(metrics.journal.degradedSkipped, 0u);
    EXPECT_EQ(metrics.journal.reopens, 0u);
    EXPECT_EQ(metrics.epochs, 11u);  // Every tick still ran.

    // Disk heals: the next backoff-elapsed append resyncs via a
    // fresh snapshot and journaling resumes.
    Failpoints::instance().clearAll();
    for (int i = 0; i < 10; ++i)
        service.tick();

    metrics = service.metrics();
    EXPECT_FALSE(metrics.journal.degraded);
    EXPECT_EQ(metrics.journal.reopens, 1u);
    EXPECT_GT(metrics.journal.snapshots, 0u);

    // And the journaled state is recoverable: a restart sees both
    // agents and the exact epoch.
    const std::uint64_t epochBefore = service.snapshot()->epoch;
    service.syncJournal();
    AllocationService recovered(journaledConfig());
    EXPECT_EQ(recovered.liveAgents(), 2u);
    EXPECT_EQ(recovered.snapshot()->epoch, epochBefore);
}

TEST_F(DegradedServiceTest, FsyncErrorDegradesAndStatsExposeIt)
{
    AllocationService service(journaledConfig());
    service.admit("a", {0.5, 0.5});

    FailpointSpec spec;
    spec.action = FailAction::Error;
    spec.count = 1;
    Failpoints::instance().arm("journal.fsync", spec);
    service.tick();  // Append's fsync fails: degraded.

    std::istringstream in("STATS\n");
    std::ostringstream out;
    svc::runSession(service, in, out);
    EXPECT_NE(out.str().find("journal_degraded=1"),
              std::string::npos);
    EXPECT_NE(out.str().find("journal_append_errors=1"),
              std::string::npos);
}

TEST_F(DegradedServiceTest, SnapshotFailureKeepsWalGrowing)
{
    ServiceConfig config = journaledConfig();
    config.journal.snapshotEvery = 4;
    AllocationService service(config);
    service.admit("a", {0.5, 0.5});

    // Snapshots fail but the wal is healthy: compaction is skipped,
    // journaling continues on the old generation.
    FailpointSpec spec;
    spec.action = FailAction::Error;
    spec.errnoValue = ENOSPC;
    spec.count = 0;
    Failpoints::instance().arm("snapshot.write", spec);
    for (int i = 0; i < 10; ++i)
        service.tick();

    const auto metrics = service.metrics();
    EXPECT_FALSE(metrics.journal.degraded);
    EXPECT_GE(metrics.journal.snapshotFailures, 2u);
    EXPECT_EQ(metrics.epochs, 10u);

    // Still recoverable from the wal alone.
    Failpoints::instance().clearAll();
    service.syncJournal();
    AllocationService recovered(config);
    EXPECT_EQ(recovered.snapshot()->epoch,
              service.snapshot()->epoch);
}

} // namespace
