#include "svc/agent_registry.hh"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/proportional_elasticity.hh"
#include "util/logging.hh"

namespace {

using namespace ref;
using svc::AgentRegistry;

AgentRegistry
exampleRegistry()
{
    return AgentRegistry(
        core::SystemCapacity::cacheAndBandwidthExample());
}

TEST(AgentRegistry, AdmitAllocateMatchesPaperExample)
{
    auto registry = exampleRegistry();
    registry.admit("user1", {0.6, 0.4});
    registry.admit("user2", {0.2, 0.8});
    const auto allocation = registry.allocate();
    EXPECT_NEAR(allocation.at(0, 0), 18.0, 1e-12);
    EXPECT_NEAR(allocation.at(0, 1), 4.0, 1e-12);
    EXPECT_NEAR(allocation.at(1, 0), 6.0, 1e-12);
    EXPECT_NEAR(allocation.at(1, 1), 8.0, 1e-12);
}

TEST(AgentRegistry, IncrementalIsBitIdenticalToScratch)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.61, 0.39});
    registry.admit("b", {0.17, 0.83});
    registry.admit("c", {0.5, 0.5});
    registry.depart("b");
    registry.admit("d", {0.9, 0.1});
    registry.update("c", {0.33, 0.67});

    const auto incremental = registry.allocate();
    const auto scratch = registry.allocateFromScratch();
    ASSERT_EQ(incremental.agents(), scratch.agents());
    for (std::size_t i = 0; i < incremental.agents(); ++i) {
        for (std::size_t r = 0; r < incremental.resources(); ++r) {
            // Exact double equality on purpose: the incremental
            // path must not drift from the from-scratch mechanism.
            EXPECT_EQ(incremental.at(i, r), scratch.at(i, r));
        }
    }
}

TEST(AgentRegistry, DepartPreservesAdmissionOrder)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    registry.admit("b", {0.2, 0.8});
    registry.admit("c", {0.5, 0.5});
    registry.depart("b");
    ASSERT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.agents()[0].name, "a");
    EXPECT_EQ(registry.agents()[1].name, "c");
    EXPECT_EQ(registry.indexOf("c"), 1u);
    EXPECT_FALSE(registry.contains("b"));
}

TEST(AgentRegistry, RejectsDuplicateAndUnknownNames)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    EXPECT_THROW(registry.admit("a", {0.5, 0.5}), FatalError);
    EXPECT_THROW(registry.depart("ghost"), FatalError);
    EXPECT_THROW(registry.update("ghost", {0.5, 0.5}), FatalError);
    EXPECT_THROW(registry.admit("", {0.5, 0.5}), FatalError);
    EXPECT_THROW(registry.admit("two words", {0.5, 0.5}), FatalError);
}

TEST(AgentRegistry, RejectsWrongResourceCount)
{
    auto registry = exampleRegistry();
    EXPECT_THROW(registry.admit("a", {0.6}), FatalError);
    EXPECT_THROW(registry.admit("a", {0.6, 0.3, 0.1}), FatalError);
}

// Regression: non-positive or non-finite elasticities used to be able
// to reach the allocator (inf passed the positivity check) and poison
// every agent's share with NaN. They must be rejected with a clear
// error at admission instead.
TEST(AgentRegistry, RejectsNonPositiveAndNonFiniteElasticities)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    auto registry = exampleRegistry();
    registry.admit("honest", {0.6, 0.4});

    EXPECT_THROW(registry.admit("zero", {0.0, 0.4}), FatalError);
    EXPECT_THROW(registry.admit("negative", {-0.6, 0.4}), FatalError);
    EXPECT_THROW(registry.admit("inf", {inf, 0.4}), FatalError);
    EXPECT_THROW(registry.admit("nan", {nan, 0.4}), FatalError);
    EXPECT_THROW(registry.update("honest", {0.6, inf}), FatalError);

    // The failed admissions must not have corrupted the denominators.
    ASSERT_EQ(registry.size(), 1u);
    const auto allocation = registry.allocate();
    for (std::size_t r = 0; r < allocation.resources(); ++r) {
        EXPECT_TRUE(std::isfinite(allocation.at(0, r)));
        EXPECT_NEAR(allocation.at(0, r),
                    registry.capacity().capacity(r), 1e-12);
    }
}

TEST(AgentRegistry, UpdateChangesSharesIncrementally)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    registry.admit("b", {0.2, 0.8});
    registry.update("a", {0.2, 0.8});
    const auto allocation = registry.allocate();
    // Identical agents split equally.
    EXPECT_NEAR(allocation.at(0, 0), 12.0, 1e-12);
    EXPECT_NEAR(allocation.at(1, 0), 12.0, 1e-12);
    EXPECT_NEAR(allocation.at(0, 1), 6.0, 1e-12);
    EXPECT_NEAR(allocation.at(1, 1), 6.0, 1e-12);
}

TEST(AgentRegistry, CountsChurnEvents)
{
    auto registry = exampleRegistry();
    registry.admit("a", {0.6, 0.4});
    registry.admit("b", {0.2, 0.8});
    registry.update("a", {0.5, 0.5});
    registry.depart("b");
    EXPECT_EQ(registry.churnEvents(), 4u);
}

TEST(AgentRegistry, AllocateRequiresAgents)
{
    auto registry = exampleRegistry();
    EXPECT_THROW(registry.allocate(), FatalError);
    EXPECT_THROW(registry.allocateFromScratch(), FatalError);
}

} // namespace
