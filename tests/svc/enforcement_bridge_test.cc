#include "svc/enforcement_bridge.hh"

#include <gtest/gtest.h>

#include "sched/wfq.hh"
#include "svc/agent_registry.hh"
#include "util/logging.hh"

namespace {

using namespace ref;

core::SystemCapacity
exampleCapacity()
{
    return core::SystemCapacity::cacheAndBandwidthExample();
}

TEST(EnforcementBridge, TranslatesSharesIntoWaysAndWeights)
{
    svc::AgentRegistry registry(exampleCapacity());
    registry.admit("user1", {0.6, 0.4});
    registry.admit("user2", {0.2, 0.8});
    const auto allocation = registry.allocate();

    const auto plan = svc::buildEnforcementPlan(
        {"user1", "user2"}, allocation, exampleCapacity(), 16);

    ASSERT_EQ(plan.agents.size(), 2u);
    ASSERT_TRUE(plan.hasPartition);
    // user1: 18/24 GB/s and 4/12 MB; user2 the complement.
    EXPECT_NEAR(plan.wfqWeights[0], 0.75, 1e-12);
    EXPECT_NEAR(plan.wfqWeights[1], 0.25, 1e-12);
    EXPECT_EQ(plan.partition.ways[0] + plan.partition.ways[1], 16u);
    // 1/3 of 16 ways rounds to 5, 2/3 to 11.
    EXPECT_EQ(plan.partition.ways[0], 5u);
    EXPECT_EQ(plan.partition.ways[1], 11u);

    // The weights are directly consumable by the WFQ arbiter.
    sched::WfqScheduler arbiter(plan.wfqWeights);
    EXPECT_EQ(arbiter.flows(), 2u);
}

TEST(EnforcementBridge, EmptyAllocationYieldsEmptyPlan)
{
    const auto plan = svc::buildEnforcementPlan(
        {}, core::Allocation(), exampleCapacity(), 16);
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.hasPartition);
}

TEST(EnforcementBridge, MoreAgentsThanWaysFallsBackToSharedCache)
{
    svc::AgentRegistry registry(exampleCapacity());
    std::vector<std::string> names;
    for (int i = 0; i < 6; ++i) {
        names.push_back("agent" + std::to_string(i));
        registry.admit(names.back(), {0.5, 0.5});
    }
    const auto plan = svc::buildEnforcementPlan(
        names, registry.allocate(), exampleCapacity(), 4);
    EXPECT_FALSE(plan.hasPartition);
    EXPECT_FALSE(plan.partitionNote.empty());
    // Bandwidth is still shaped.
    ASSERT_EQ(plan.wfqWeights.size(), 6u);
    for (double weight : plan.wfqWeights)
        EXPECT_NEAR(weight, 1.0 / 6.0, 1e-12);
}

TEST(EnforcementBridge, RejectsNonPairCapacity)
{
    const auto capacity =
        core::SystemCapacity::fromCapacities({1.0, 2.0, 3.0});
    EXPECT_THROW(svc::buildEnforcementPlan({}, core::Allocation(),
                                           capacity, 16),
                 FatalError);
}

TEST(EnforcementBridge, RejectsShapeMismatch)
{
    svc::AgentRegistry registry(exampleCapacity());
    registry.admit("a", {0.6, 0.4});
    EXPECT_THROW(svc::buildEnforcementPlan({"a", "phantom"},
                                           registry.allocate(),
                                           exampleCapacity(), 16),
                 FatalError);
}

} // namespace
