#include "svc/service_metrics.hh"

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "svc/epoch_driver.hh"

namespace {

using namespace ref;
using svc::EpochResult;
using svc::MetricsSnapshot;
using svc::ServiceMetrics;

EpochResult
cleanEpoch(std::uint64_t epoch, std::chrono::nanoseconds latency)
{
    EpochResult result;
    result.epoch = epoch;
    result.enforcementChanged = true;
    result.propertiesChecked = true;
    result.sharingIncentives.satisfied = true;
    result.envyFreeness.satisfied = true;
    result.latency = latency;
    return result;
}

TEST(ServiceMetrics, CountsChurnQueriesAndRejections)
{
    ServiceMetrics metrics;
    metrics.recordAdmit();
    metrics.recordAdmit();
    metrics.recordDepart();
    metrics.recordUpdate();
    metrics.recordQuery();
    metrics.recordRejected();

    const auto snapshot = metrics.snapshot();
    EXPECT_EQ(snapshot.admits, 2u);
    EXPECT_EQ(snapshot.departs, 1u);
    EXPECT_EQ(snapshot.updates, 1u);
    EXPECT_EQ(snapshot.queries, 1u);
    EXPECT_EQ(snapshot.rejected, 1u);
    EXPECT_EQ(snapshot.epochs, 0u);
    EXPECT_EQ(snapshot.meanLatencyNs(), 0.0);
}

TEST(ServiceMetrics, TracksLatencyHistogramAndExtremes)
{
    ServiceMetrics metrics;
    using namespace std::chrono;
    // 500ns -> <1us bucket 0; 3us -> bucket 2; 1ms = 1000us -> bucket 10.
    metrics.recordEpoch(cleanEpoch(1, nanoseconds(500)));
    metrics.recordEpoch(cleanEpoch(2, microseconds(3)));
    metrics.recordEpoch(cleanEpoch(3, milliseconds(1)));

    const auto snapshot = metrics.snapshot();
    EXPECT_EQ(snapshot.epochs, 3u);
    EXPECT_EQ(snapshot.latencyBuckets[0], 1u);
    EXPECT_EQ(snapshot.latencyBuckets[2], 1u);
    EXPECT_EQ(snapshot.latencyBuckets[10], 1u);
    EXPECT_EQ(snapshot.latencyMinNs, 500u);
    EXPECT_EQ(snapshot.latencyMaxNs, 1000000u);
    EXPECT_NEAR(snapshot.meanLatencyNs(), (500 + 3000 + 1000000) / 3.0,
                1e-9);
}

TEST(ServiceMetrics, FirstEpochSetsMinMaxAndTotalExactly)
{
    // Regression: the minimum must start from a sentinel, not 0 —
    // otherwise the first epoch's latency can never raise it and
    // min stays 0 forever.
    ServiceMetrics metrics;
    EXPECT_EQ(metrics.snapshot().latencyMinNs, 0u)
        << "no epochs yet: exposed min is 0";

    metrics.recordEpoch(
        cleanEpoch(1, std::chrono::nanoseconds(7321)));
    const auto snapshot = metrics.snapshot();
    EXPECT_EQ(snapshot.latencyMinNs, 7321u);
    EXPECT_EQ(snapshot.latencyMaxNs, 7321u);
    EXPECT_EQ(snapshot.latencyTotalNs, 7321u);

    // A faster second epoch must lower the min.
    metrics.recordEpoch(
        cleanEpoch(2, std::chrono::nanoseconds(41)));
    const auto after = metrics.snapshot();
    EXPECT_EQ(after.latencyMinNs, 41u);
    EXPECT_EQ(after.latencyMaxNs, 7321u);
    EXPECT_EQ(after.latencyTotalNs, 7321u + 41u);
}

TEST(ServiceMetrics, HugeLatencyLandsInLastBucket)
{
    ServiceMetrics metrics;
    metrics.recordEpoch(cleanEpoch(1, std::chrono::seconds(10)));
    const auto snapshot = metrics.snapshot();
    EXPECT_EQ(
        snapshot.latencyBuckets[MetricsSnapshot::kLatencyBuckets - 1],
        1u);
}

TEST(ServiceMetrics, CountsPropertyAndSelfCheckFailures)
{
    ServiceMetrics metrics;
    auto bad = cleanEpoch(1, std::chrono::microseconds(1));
    bad.sharingIncentives.satisfied = false;
    bad.envyFreeness.satisfied = false;
    bad.incrementalMatchesScratch = false;
    bad.enforcementChanged = false;
    metrics.recordEpoch(bad);
    metrics.recordEpoch(cleanEpoch(2, std::chrono::microseconds(1)));

    const auto snapshot = metrics.snapshot();
    EXPECT_EQ(snapshot.siViolations, 1u);
    EXPECT_EQ(snapshot.efViolations, 1u);
    EXPECT_EQ(snapshot.selfCheckFailures, 1u);
    EXPECT_EQ(snapshot.hysteresisHolds, 1u);
    EXPECT_EQ(snapshot.enforcementUpdates, 1u);
}

TEST(ServiceMetrics, PrintsDeterministicKeyValueLines)
{
    ServiceMetrics metrics;
    metrics.recordAdmit();
    metrics.recordEpoch(cleanEpoch(1, std::chrono::microseconds(7)));

    std::ostringstream out;
    svc::printMetrics(out, metrics.snapshot());
    const std::string text = out.str();
    EXPECT_NE(text.find("admits=1"), std::string::npos);
    EXPECT_NE(text.find("epochs=1"), std::string::npos);
    EXPECT_NE(text.find("si_violations=0"), std::string::npos);
    EXPECT_NE(text.find("ef_violations=0"), std::string::npos);
    EXPECT_NE(text.find("selfcheck_failures=0"), std::string::npos);
    EXPECT_NE(text.find("epoch_latency_us_histogram="),
              std::string::npos);
    // admits must come before departs: the order is fixed.
    EXPECT_LT(text.find("admits="), text.find("departs="));
}

TEST(ServiceMetrics, ConcurrentRecordingDoesNotDropCounts)
{
    ServiceMetrics metrics;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                metrics.recordQuery();
                metrics.recordEpoch(
                    cleanEpoch(1, std::chrono::microseconds(1)));
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    const auto snapshot = metrics.snapshot();
    EXPECT_EQ(snapshot.queries,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(snapshot.epochs,
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

} // namespace
