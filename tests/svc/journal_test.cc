#include "svc/journal.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "svc/failpoints.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace {

using namespace ref;
using svc::Journal;
using svc::JournalConfig;
using svc::JournalRecord;

/** Fresh per-test journal directory under the gtest temp root. */
class JournalTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "ref_journal_test_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        svc::Failpoints::instance().clearAll();
    }

    void TearDown() override
    {
        svc::Failpoints::instance().clearAll();
        std::filesystem::remove_all(dir_);
    }

    JournalConfig config(std::uint64_t fsyncEvery = 1) const
    {
        JournalConfig config;
        config.directory = dir_;
        config.fsyncEvery = fsyncEvery;
        return config;
    }

    std::string readWal() const
    {
        std::ifstream file(dir_ + "/wal.ref", std::ios::binary);
        std::stringstream buffer;
        buffer << file.rdbuf();
        return buffer.str();
    }

    void writeWal(const std::string &bytes) const
    {
        std::ofstream file(dir_ + "/wal.ref",
                           std::ios::binary | std::ios::trunc);
        file << bytes;
    }

    std::string dir_;
};

JournalRecord
admitRecord(const std::string &name, std::uint64_t epoch)
{
    JournalRecord record;
    record.type = JournalRecord::Type::Admit;
    record.name = name;
    record.elasticities = {0.6, 0.4};
    record.epoch = epoch;
    return record;
}

JournalRecord
tickRecord(std::uint64_t epoch)
{
    JournalRecord record;
    record.type = JournalRecord::Type::Tick;
    record.epoch = epoch;
    return record;
}

TEST(JournalRecordCodec, AllTypesRoundTrip)
{
    for (const auto type : {JournalRecord::Type::Begin,
                            JournalRecord::Type::Admit,
                            JournalRecord::Type::Update,
                            JournalRecord::Type::Depart,
                            JournalRecord::Type::Tick}) {
        JournalRecord record;
        record.type = type;
        record.epoch = 42;
        if (type == JournalRecord::Type::Admit ||
            type == JournalRecord::Type::Update ||
            type == JournalRecord::Type::Depart)
            record.name = "agent-7";
        if (type == JournalRecord::Type::Begin ||
            type == JournalRecord::Type::Admit ||
            type == JournalRecord::Type::Update)
            record.elasticities = {0.6 / 0.8 * 24.0, 0.4};

        const JournalRecord decoded = svc::decodeJournalRecord(
            svc::encodeJournalRecord(record));
        EXPECT_EQ(decoded.type, record.type);
        EXPECT_EQ(decoded.name, record.name);
        EXPECT_EQ(decoded.elasticities, record.elasticities);
        EXPECT_EQ(decoded.epoch, record.epoch);
    }
}

TEST(JournalRecordCodec, RejectsUnknownTypeAndTrailingBytes)
{
    ByteWriter unknown;
    unknown.u8(9);
    unknown.u64(1);
    EXPECT_THROW(svc::decodeJournalRecord(unknown.bytes()),
                 FatalError);

    std::string trailing =
        svc::encodeJournalRecord(tickRecord(1));
    trailing += "x";
    EXPECT_THROW(svc::decodeJournalRecord(trailing), FatalError);
}

TEST_F(JournalTest, BeginAppendReplayRoundTrip)
{
    Journal journal(config());
    ASSERT_TRUE(journal.begin(3, {24.0, 12.0}));
    ASSERT_TRUE(journal.append(admitRecord("a", 0)));
    ASSERT_TRUE(journal.append(tickRecord(1)));

    const auto replay = journal.replay(3);
    EXPECT_TRUE(replay.hadWal);
    EXPECT_FALSE(replay.discardedStale);
    EXPECT_FALSE(replay.truncatedTail);
    ASSERT_EQ(replay.records.size(), 2u);
    EXPECT_EQ(replay.records[0].type, JournalRecord::Type::Admit);
    EXPECT_EQ(replay.records[0].name, "a");
    EXPECT_EQ(replay.records[1].type, JournalRecord::Type::Tick);
    EXPECT_EQ(replay.records[1].epoch, 1u);

    EXPECT_EQ(journal.stats().records, 2u);
    EXPECT_GT(journal.stats().bytes, 0u);
    EXPECT_EQ(journal.stats().fsyncs, 3u);  // begin + 2 appends
}

TEST_F(JournalTest, MissingWalIsNotAnError)
{
    Journal journal(config());
    const auto replay = journal.replay(0);
    EXPECT_FALSE(replay.hadWal);
    EXPECT_TRUE(replay.records.empty());
}

TEST_F(JournalTest, StaleGenerationWalIsDiscarded)
{
    {
        Journal journal(config());
        ASSERT_TRUE(journal.begin(3, {24.0, 12.0}));
        ASSERT_TRUE(journal.append(admitRecord("a", 0)));
    }
    // A later snapshot advanced to generation 4 but the process died
    // before restarting the wal: its records are already in the
    // snapshot and must not be applied again.
    Journal journal(config());
    const auto replay = journal.replay(4);
    EXPECT_TRUE(replay.hadWal);
    EXPECT_TRUE(replay.discardedStale);
    EXPECT_TRUE(replay.records.empty());
    EXPECT_EQ(replay.generation, 3u);
}

TEST_F(JournalTest, TornTailIsTruncatedPrefixSurvives)
{
    {
        Journal journal(config());
        ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
        ASSERT_TRUE(journal.append(admitRecord("a", 0)));
        ASSERT_TRUE(journal.append(tickRecord(1)));
    }
    const std::string whole = readWal();
    // Chop the final record mid-frame, as a crash mid-write would.
    writeWal(whole.substr(0, whole.size() - 3));

    Journal journal(config());
    const auto replay = journal.replay(1);
    EXPECT_TRUE(replay.truncatedTail);
    EXPECT_GT(replay.truncatedBytes, 0u);
    ASSERT_EQ(replay.records.size(), 1u);
    EXPECT_EQ(replay.records[0].name, "a");
}

TEST_F(JournalTest, BitFlippedRecordTruncatesFromThere)
{
    {
        Journal journal(config());
        ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
        ASSERT_TRUE(journal.append(admitRecord("a", 0)));
        ASSERT_TRUE(journal.append(admitRecord("b", 0)));
        ASSERT_TRUE(journal.append(tickRecord(1)));
    }
    std::string bytes = readWal();
    // Flip one bit two records from the end: record "b"'s payload.
    const auto replayAll = Journal(config()).replay(1);
    ASSERT_EQ(replayAll.records.size(), 3u);
    bytes[bytes.size() / 2] ^= 0x10;
    writeWal(bytes);

    Journal journal(config());
    const auto replay = journal.replay(1);
    EXPECT_TRUE(replay.truncatedTail);
    EXPECT_LT(replay.records.size(), 3u);
    // Whatever survives is a strict prefix of the original history.
    for (std::size_t i = 0; i < replay.records.size(); ++i)
        EXPECT_EQ(replay.records[i].name, replayAll.records[i].name);
}

TEST_F(JournalTest, FsyncPolicyBatchesSyncs)
{
    Journal journal(config(/*fsyncEvery=*/3));
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
    const std::uint64_t afterBegin = journal.stats().fsyncs;
    ASSERT_TRUE(journal.append(tickRecord(1)));
    ASSERT_TRUE(journal.append(tickRecord(2)));
    EXPECT_EQ(journal.stats().fsyncs, afterBegin);
    ASSERT_TRUE(journal.append(tickRecord(3)));
    EXPECT_EQ(journal.stats().fsyncs, afterBegin + 1);

    // An explicit sync() flushes a pending partial batch once.
    ASSERT_TRUE(journal.append(tickRecord(4)));
    journal.sync();
    EXPECT_EQ(journal.stats().fsyncs, afterBegin + 2);
    journal.sync();  // Nothing pending: no extra fsync.
    EXPECT_EQ(journal.stats().fsyncs, afterBegin + 2);
}

TEST_F(JournalTest, WriteErrorEntersDegradedModeAndBackoffWidens)
{
    JournalConfig cfg = config();
    cfg.retryBackoffStart = 2;
    cfg.retryBackoffMax = 8;
    Journal journal(cfg);
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));

    svc::FailpointSpec spec;
    spec.action = svc::FailAction::Error;
    spec.errnoValue = EIO;
    svc::Failpoints::instance().arm("journal.write", spec);

    EXPECT_FALSE(journal.append(tickRecord(1)));
    EXPECT_TRUE(journal.degraded());
    EXPECT_EQ(journal.stats().appendErrors, 1u);

    // Backoff doubles: 2 skips to the first retry, then 4, then 8
    // capped. Widths of 4+ are jittered up to a quarter early, so
    // assert windows, not exact positions.
    int retries = 0;
    std::vector<int> gaps;
    int gap = 0;
    for (int i = 0; i < 60 && retries < 4; ++i) {
        ++gap;
        if (journal.noteSkippedAndMaybeRetry()) {
            gaps.push_back(gap);
            gap = 0;
            ++retries;
        }
    }
    ASSERT_EQ(gaps.size(), 4u);
    EXPECT_EQ(gaps[0], 2);
    EXPECT_EQ(gaps[1], 4);  // Width 4: jitter range collapses to 0.
    EXPECT_GE(gaps[2], 6);  // Width 8, up to a quarter early.
    EXPECT_LE(gaps[2], 8);
    EXPECT_GE(gaps[3], 6);  // Capped at retryBackoffMax.
    EXPECT_LE(gaps[3], 8);
}

TEST_F(JournalTest, DegradedBackoffIsCappedAndJitterBounded)
{
    // S1 regression: under a persistent eio failpoint the re-probe
    // cadence must stay inside one bounded window forever — the cap
    // keeps a recovered disk from waiting unboundedly, the jitter
    // keeps a fleet of degraded journals from probing in lockstep.
    JournalConfig cfg = config();
    cfg.retryBackoffStart = 4;
    cfg.retryBackoffMax = 64;
    Journal journal(cfg);
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));

    svc::FailpointSpec spec;
    spec.action = svc::FailAction::Error;
    spec.errnoValue = EIO;
    svc::Failpoints::instance().arm("journal.write", spec);
    EXPECT_FALSE(journal.append(tickRecord(1)));
    ASSERT_TRUE(journal.degraded());

    std::vector<int> gaps;
    int gap = 0;
    // 4 doubling rounds (4->8->16->32->64), then 20 capped rounds.
    const int wantRetries = 24;
    for (int i = 0; i < 64 * (wantRetries + 2) &&
                    static_cast<int>(gaps.size()) < wantRetries;
         ++i) {
        ++gap;
        if (journal.noteSkippedAndMaybeRetry()) {
            gaps.push_back(gap);
            gap = 0;
        }
    }
    ASSERT_EQ(static_cast<int>(gaps.size()), wantRetries);
    for (std::size_t i = 0; i < gaps.size(); ++i) {
        // Never slower than the cap, never more than a quarter
        // early relative to the cap once widened past the start.
        EXPECT_LE(gaps[i], 64) << "retry " << i;
        EXPECT_GE(gaps[i], 1) << "retry " << i;
    }
    // Once capped, every window sits in [3/4 * max, max].
    bool sawJitter = false;
    for (std::size_t i = 5; i < gaps.size(); ++i) {
        EXPECT_GE(gaps[i], 48) << "capped retry " << i;
        EXPECT_LE(gaps[i], 64) << "capped retry " << i;
        if (gaps[i] != 64)
            sawJitter = true;
    }
    // 19 draws from a 16-wide window: all landing on the rightmost
    // point means the jitter is dead (probability ~1e-23).
    EXPECT_TRUE(sawJitter);
}

TEST_F(JournalTest, GroupCommitBatchesUntilBarrier)
{
    JournalConfig cfg = config();
    cfg.groupBytes = 1 << 20;  // Unreachable: barrier-driven only.
    Journal journal(cfg);
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
    const std::uint64_t afterBegin = journal.stats().fsyncs;

    for (std::uint64_t epoch = 1; epoch <= 5; ++epoch)
        ASSERT_TRUE(journal.append(tickRecord(epoch)));
    // Nothing synced yet: the batch is pending, not committed.
    EXPECT_EQ(journal.stats().fsyncs, afterBegin);
    EXPECT_EQ(journal.stats().pending, 5u);
    EXPECT_EQ(journal.pendingRecords(), 5u);
    EXPECT_LT(journal.commitIndex(), journal.stats().records);

    // One barrier makes the whole batch durable at one fsync.
    ASSERT_TRUE(journal.barrier());
    EXPECT_EQ(journal.stats().fsyncs, afterBegin + 1);
    EXPECT_EQ(journal.stats().pending, 0u);
    EXPECT_EQ(journal.commitIndex(), journal.stats().records);

    // An idle barrier is free.
    ASSERT_TRUE(journal.barrier());
    EXPECT_EQ(journal.stats().fsyncs, afterBegin + 1);
}

TEST_F(JournalTest, GroupCommitFlushesOnByteThreshold)
{
    JournalConfig cfg = config();
    cfg.groupBytes = 1;  // Every append crosses the threshold.
    Journal journal(cfg);
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
    const std::uint64_t afterBegin = journal.stats().fsyncs;
    ASSERT_TRUE(journal.append(tickRecord(1)));
    EXPECT_EQ(journal.stats().fsyncs, afterBegin + 1);
    EXPECT_EQ(journal.stats().pending, 0u);
}

TEST_F(JournalTest, GroupCommitFlushesOnAge)
{
    JournalConfig cfg = config();
    cfg.groupUsec = 1;  // Any measurable age forces the flush.
    Journal journal(cfg);
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
    ASSERT_TRUE(journal.append(tickRecord(1)));
    // The first append starts the age clock; by the second append
    // the oldest pending record is past 1 µs and must flush.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t before = journal.stats().fsyncs;
    ASSERT_TRUE(journal.append(tickRecord(2)));
    EXPECT_GT(journal.stats().fsyncs, before);
    EXPECT_EQ(journal.stats().pending, 0u);
}

TEST_F(JournalTest, GroupCommitBarrierFailureDegradesNotAcks)
{
    // Ack-after-durable: when the barrier's fsync dies, barrier()
    // must report failure (the owner withholds/decorates acks) and
    // the journal must enter degraded mode — never pretend the
    // batch committed.
    JournalConfig cfg = config();
    cfg.groupBytes = 1 << 20;
    Journal journal(cfg);
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
    ASSERT_TRUE(journal.append(tickRecord(1)));
    ASSERT_TRUE(journal.append(tickRecord(2)));
    const std::uint64_t committedBefore = journal.commitIndex();

    svc::FailpointSpec spec;
    spec.action = svc::FailAction::Error;
    spec.errnoValue = EIO;
    spec.count = 1;
    svc::Failpoints::instance().arm("journal.fsync", spec);

    EXPECT_FALSE(journal.barrier());
    EXPECT_TRUE(journal.degraded());
    // The watermark never advanced past what an fsync covered.
    EXPECT_EQ(journal.commitIndex(), committedBefore);
    EXPECT_EQ(journal.stats().pending, 0u);  // Batch died unacked.
}

TEST_F(JournalTest, GroupCommitCrashNeverLosesBarrieredRecords)
{
    // The durability-ack contract under a crash: everything a
    // successful barrier() covered must replay; only the tail the
    // caller never got an ack for is at the crash's mercy.
    JournalConfig cfg = config();
    cfg.groupBytes = 1 << 20;
    {
        Journal journal(cfg);
        ASSERT_TRUE(journal.begin(7, {24.0, 12.0}));
        for (std::uint64_t epoch = 1; epoch <= 3; ++epoch)
            ASSERT_TRUE(journal.append(tickRecord(epoch)));
        ASSERT_TRUE(journal.barrier());  // Acked through epoch 3.
        ASSERT_TRUE(journal.append(tickRecord(4)));  // Never acked.
        svc::Failpoints::instance().armFromSpec(
            "journal.fsync=crash");
        EXPECT_THROW(journal.barrier(), svc::CrashInjected);
    }
    svc::Failpoints::instance().clearAll();

    Journal reopened(config());
    const auto replay = reopened.replay(7);
    ASSERT_TRUE(replay.hadWal);
    ASSERT_GE(replay.records.size(), 3u);
    for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
        EXPECT_EQ(replay.records[epoch - 1].type,
                  JournalRecord::Type::Tick);
        EXPECT_EQ(replay.records[epoch - 1].epoch, epoch);
    }
}

TEST_F(JournalTest, ReopenAfterDegradedResumesJournaling)
{
    Journal journal(config());
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));

    svc::FailpointSpec spec;
    spec.action = svc::FailAction::Error;
    spec.count = 1;  // Only the next IO call fails.
    svc::Failpoints::instance().arm("journal.fsync", spec);
    EXPECT_FALSE(journal.append(tickRecord(1)));
    EXPECT_TRUE(journal.degraded());

    // The failpoint has cleared; the owner resyncs with begin() on
    // the next generation and marks the journal reopened.
    ASSERT_TRUE(journal.begin(2, {24.0, 12.0}));
    journal.noteReopened();
    EXPECT_FALSE(journal.degraded());
    EXPECT_EQ(journal.stats().reopens, 1u);
    EXPECT_TRUE(journal.append(tickRecord(2)));

    const auto replay = journal.replay(2);
    ASSERT_EQ(replay.records.size(), 1u);
    EXPECT_EQ(replay.records[0].epoch, 2u);
}

TEST_F(JournalTest, ShortWriteLeavesTornFrameNotGarbage)
{
    Journal journal(config());
    ASSERT_TRUE(journal.begin(1, {24.0, 12.0}));
    ASSERT_TRUE(journal.append(admitRecord("a", 0)));

    svc::FailpointSpec spec;
    spec.action = svc::FailAction::ShortWrite;
    svc::Failpoints::instance().arm("journal.write", spec);
    EXPECT_FALSE(journal.append(admitRecord("b", 0)));
    EXPECT_TRUE(journal.degraded());

    // Replay sees the half-written frame as a torn tail and keeps
    // the good prefix.
    const auto replay = journal.replay(1);
    EXPECT_TRUE(replay.truncatedTail);
    ASSERT_EQ(replay.records.size(), 1u);
    EXPECT_EQ(replay.records[0].name, "a");
}

} // namespace
