/**
 * Soak test for the online allocation service (acceptance criterion
 * of the svc subsystem): a scripted session with over 1,000 churn
 * events across over 100 epochs must run clean — no rejected
 * commands, every epoch's incremental allocation byte-identical to
 * the from-scratch recompute, and every epoch passing the SI and EF
 * property checks. The script is generated with a fixed seed and
 * driven through runSession(), i.e. the exact code path ref_serve
 * executes, so the sanitizer CI job covers the full service stack.
 */

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/protocol.hh"

namespace {

using namespace ref;

/** Deterministically generate a churn-heavy protocol script. */
std::string
generateScript(std::uint32_t seed, std::uint64_t targetChurn,
               std::uint64_t targetEpochs, std::uint64_t *churnOut)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> elasticity(0.05, 4.0);
    std::uniform_int_distribution<int> action(0, 9);

    std::ostringstream script;
    script << "# generated soak session, seed " << seed << "\n";
    std::vector<std::string> live;
    std::uint64_t nextId = 0;
    std::uint64_t churn = 0;
    std::uint64_t epochs = 0;

    while (churn < targetChurn || epochs < targetEpochs) {
        // A burst of churn, then an epoch tick over the new state.
        const std::uint64_t burst =
            1 + (churn < targetChurn ? rng() % 12 : 0);
        for (std::uint64_t b = 0; b < burst; ++b) {
            const int roll = action(rng);
            if (live.empty() || live.size() < 3 || roll < 4) {
                const std::string name =
                    "w" + std::to_string(nextId++);
                script << "ADMIT " << name << " "
                       << elasticity(rng) << " " << elasticity(rng)
                       << "\n";
                live.push_back(name);
            } else if (roll < 7) {
                script << "UPDATE " << live[rng() % live.size()]
                       << " " << elasticity(rng) << " "
                       << elasticity(rng) << "\n";
            } else {
                const std::size_t victim = rng() % live.size();
                script << "DEPART " << live[victim] << "\n";
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(victim));
            }
            ++churn;
        }
        script << "TICK\n";
        ++epochs;
        if (epochs % 25 == 0)
            script << "QUERY\nPLAN\n";
    }
    script << "STATS\n";
    *churnOut = churn;
    return script.str();
}

TEST(ServeSoak, ThousandChurnEventsOverHundredEpochsRunClean)
{
    std::uint64_t scripted = 0;
    const std::string script =
        generateScript(/*seed=*/20140301, /*targetChurn=*/1100,
                       /*targetEpochs=*/110, &scripted);
    ASSERT_GE(scripted, 1000u);

    svc::ServiceConfig config;
    config.epoch.verifyIncremental = true;  // Bit-identity each epoch.
    config.epoch.hysteresis = 0.02;         // Exercise hold + update.
    svc::AllocationService service(config);

    std::istringstream in(script);
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out);

    EXPECT_EQ(result.errors, 0u) << out.str().substr(0, 2000);
    EXPECT_EQ(result.epochFailures, 0u);
    EXPECT_TRUE(result.clean());

    const auto metrics = service.metrics();
    EXPECT_GE(metrics.epochs, 100u);
    EXPECT_GE(metrics.admits + metrics.departs + metrics.updates,
              1000u);
    EXPECT_EQ(metrics.rejected, 0u);
    EXPECT_EQ(metrics.siViolations, 0u);
    EXPECT_EQ(metrics.efViolations, 0u);
    EXPECT_EQ(metrics.selfCheckFailures, 0u);
    // Every epoch either re-enforced or was held by hysteresis.
    EXPECT_GT(metrics.enforcementUpdates, 0u);
    EXPECT_EQ(metrics.enforcementUpdates + metrics.hysteresisHolds,
              metrics.epochs);

    // The final transcript ends with the metrics block.
    EXPECT_NE(out.str().find("selfcheck_failures=0"),
              std::string::npos);
}

// Same soak at a different seed with zero hysteresis: every epoch
// re-enforces, covering the enforcement-bridge path continuously.
TEST(ServeSoak, ZeroHysteresisSoakReenforcesEveryEpoch)
{
    std::uint64_t scripted = 0;
    const std::string script = generateScript(
        /*seed=*/424242, /*targetChurn=*/300, /*targetEpochs=*/60,
        &scripted);

    svc::ServiceConfig config;
    config.epoch.verifyIncremental = true;
    svc::AllocationService service(config);

    std::istringstream in(script);
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out);
    EXPECT_TRUE(result.clean());

    const auto metrics = service.metrics();
    EXPECT_EQ(metrics.hysteresisHolds, 0u);
    EXPECT_EQ(metrics.enforcementUpdates, metrics.epochs);
    EXPECT_EQ(metrics.selfCheckFailures, 0u);
}

} // namespace
