/**
 * @file
 * Recovery edge cases and the crash-recovery property test.
 *
 * The central claim under test: a service recovered from its journal
 * directory is BIT-IDENTICAL to a never-crashed service that applied
 * the same prefix of operations. "Bit-identical" is checked through
 * the protocol layer — share and weight values print via shortest
 * round-trip formatting, so string-equal transcripts mean equal
 * doubles — and through the epoch driver's incremental-vs-scratch
 * self-check, which is enabled for every service in this file.
 */

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/failpoints.hh"
#include "svc/journal.hh"
#include "svc/protocol.hh"
#include "util/logging.hh"

namespace {

using namespace ref;
using svc::AllocationService;
using svc::CrashInjected;
using svc::FailAction;
using svc::Failpoints;
using svc::FailpointSpec;
using svc::RecoveryOutcome;
using svc::ServiceConfig;

class RecoveryTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "ref_recovery_test_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        Failpoints::instance().clearAll();
    }

    void TearDown() override
    {
        Failpoints::instance().clearAll();
        std::filesystem::remove_all(dir_);
    }

    ServiceConfig journaled(std::uint64_t snapshotEvery = 0) const
    {
        ServiceConfig config;
        config.epoch.verifyIncremental = true;
        config.journal.directory = dir_;
        config.journal.snapshotEvery = snapshotEvery;
        return config;
    }

    static ServiceConfig memoryOnly()
    {
        ServiceConfig config;
        config.epoch.verifyIncremental = true;
        return config;
    }

    std::string walPath() const { return dir_ + "/wal.ref"; }

    std::string readWal() const
    {
        std::ifstream file(walPath(), std::ios::binary);
        std::stringstream buffer;
        buffer << file.rdbuf();
        return buffer.str();
    }

    void writeWal(const std::string &bytes) const
    {
        std::ofstream file(walPath(),
                           std::ios::binary | std::ios::trunc);
        file << bytes;
    }

    std::string dir_;
};

/** Protocol transcript of one observation script. */
std::string
observe(AllocationService &service)
{
    std::istringstream in("TICK\nQUERY\nPLAN\n");
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.epochFailures, 0u);
    return out.str();
}

/** Both services answer every observation identically. */
void
expectBitIdentical(AllocationService &recovered,
                   AllocationService &reference)
{
    EXPECT_EQ(recovered.liveAgents(), reference.liveAgents());
    EXPECT_EQ(recovered.snapshot()->epoch,
              reference.snapshot()->epoch);
    EXPECT_EQ(observe(recovered), observe(reference));
}

TEST_F(RecoveryTest, MemoryOnlyServiceReportsDisabled)
{
    AllocationService service(memoryOnly());
    EXPECT_EQ(service.recovery().outcome,
              RecoveryOutcome::Disabled);
    EXPECT_EQ(service.metrics().journal.enabled, false);
}

TEST_F(RecoveryTest, EmptyDirectoryIsAFreshStart)
{
    AllocationService service(journaled());
    EXPECT_EQ(service.recovery().outcome, RecoveryOutcome::Fresh);
    EXPECT_FALSE(service.recovery().snapshotLoaded);
    EXPECT_EQ(service.recovery().replayedRecords, 0u);
    EXPECT_EQ(service.liveAgents(), 0u);
}

TEST_F(RecoveryTest, CleanRestartReplaysEverything)
{
    {
        AllocationService service(journaled());
        service.admit("user1", {0.6, 0.4});
        service.admit("user2", {0.2, 0.8});
        service.tick();
        service.tick();
        service.syncJournal();
    }
    AllocationService recovered(journaled());
    EXPECT_EQ(recovered.recovery().outcome, RecoveryOutcome::Clean);
    EXPECT_EQ(recovered.recovery().replayedRecords, 4u);

    AllocationService reference(memoryOnly());
    reference.admit("user1", {0.6, 0.4});
    reference.admit("user2", {0.2, 0.8});
    reference.tick();
    reference.tick();
    expectBitIdentical(recovered, reference);
}

TEST_F(RecoveryTest, TruncatedFinalFrameLosesOnlyTheLastRecord)
{
    {
        AllocationService service(journaled());
        service.admit("a", {0.6, 0.4});
        service.admit("b", {0.2, 0.8});
        for (int i = 0; i < 5; ++i)
            service.tick();
        service.syncJournal();
    }
    const std::string whole = readWal();
    writeWal(whole.substr(0, whole.size() - 3));

    AllocationService recovered(journaled());
    EXPECT_EQ(recovered.recovery().outcome,
              RecoveryOutcome::TruncatedTail);
    EXPECT_GT(recovered.recovery().truncatedBytes, 0u);
    EXPECT_EQ(recovered.recovery().replayedRecords, 6u);

    AllocationService reference(memoryOnly());
    reference.admit("a", {0.6, 0.4});
    reference.admit("b", {0.2, 0.8});
    for (int i = 0; i < 4; ++i)  // The 5th tick was torn away.
        reference.tick();
    expectBitIdentical(recovered, reference);
}

TEST_F(RecoveryTest, BitFlippedCrcMidLogTruncatesFromThere)
{
    {
        AllocationService service(journaled());
        service.admit("a", {0.6, 0.4});
        service.admit("b", {0.2, 0.8});
        for (int i = 0; i < 5; ++i)
            service.tick();
        service.syncJournal();
    }
    // A tick record's frame is 17 bytes (8 header + 9 payload);
    // flipping a bit 5 bytes from the end corrupts the final tick's
    // CRC-protected payload.
    std::string bytes = readWal();
    bytes[bytes.size() - 5] ^= 0x04;
    writeWal(bytes);

    AllocationService recovered(journaled());
    EXPECT_EQ(recovered.recovery().outcome,
              RecoveryOutcome::TruncatedTail);
    EXPECT_EQ(recovered.recovery().replayedRecords, 6u);

    AllocationService reference(memoryOnly());
    reference.admit("a", {0.6, 0.4});
    reference.admit("b", {0.2, 0.8});
    for (int i = 0; i < 4; ++i)
        reference.tick();
    expectBitIdentical(recovered, reference);
}

TEST_F(RecoveryTest, SnapshotPlusWalTailReplay)
{
    {
        // snapshotEvery=3: the third record triggers a compaction,
        // later records land in the new wal tail.
        AllocationService service(journaled(/*snapshotEvery=*/3));
        service.admit("a", {0.6, 0.4});
        service.admit("b", {0.2, 0.8});
        service.tick();   // Record 3: compacts after this.
        service.update("a", {0.5, 0.5});
        service.tick();
        service.syncJournal();
    }
    AllocationService recovered(journaled(/*snapshotEvery=*/3));
    EXPECT_EQ(recovered.recovery().outcome, RecoveryOutcome::Clean);
    EXPECT_TRUE(recovered.recovery().snapshotLoaded);
    EXPECT_EQ(recovered.recovery().replayedRecords, 2u);

    AllocationService reference(memoryOnly());
    reference.admit("a", {0.6, 0.4});
    reference.admit("b", {0.2, 0.8});
    reference.tick();
    reference.update("a", {0.5, 0.5});
    reference.tick();
    expectBitIdentical(recovered, reference);
}

TEST_F(RecoveryTest, CorruptSnapshotIsALoudError)
{
    {
        AllocationService service(journaled(/*snapshotEvery=*/2));
        service.admit("a", {0.6, 0.4});
        service.tick();  // Record 2: compacts.
        service.syncJournal();
    }
    // The snapshot is only ever replaced atomically, so corruption
    // here is real bit rot — refusing to guess beats silently
    // dropping state.
    std::fstream file(dir_ + "/snapshot.ref",
                      std::ios::binary | std::ios::in |
                          std::ios::out);
    file.seekp(20);
    file.put('\x7F');
    file.close();
    EXPECT_THROW(AllocationService service(journaled()), FatalError);
}

TEST_F(RecoveryTest, CapacityMismatchIsRefused)
{
    {
        AllocationService service(journaled());
        service.admit("a", {0.6, 0.4});
        service.syncJournal();
    }
    ServiceConfig other = journaled();
    other.capacity =
        core::SystemCapacity::fromCapacities({48.0, 24.0});
    EXPECT_THROW(AllocationService service(other), FatalError);
}

TEST_F(RecoveryTest, MidCompactionCrashDiscardsStaleWal)
{
    AllocationService service(journaled(/*snapshotEvery=*/2));
    // Crash inside the begin() that follows the next snapshot: the
    // new-generation snapshot is already renamed in, the wal still
    // carries the old generation.
    FailpointSpec crash;
    crash.action = FailAction::Crash;
    Failpoints::instance().arm("journal.open", crash);

    service.admit("a", {0.6, 0.4});
    EXPECT_THROW(service.admit("b", {0.2, 0.8}), CrashInjected);
    Failpoints::instance().clearAll();

    AllocationService recovered(journaled(/*snapshotEvery=*/2));
    EXPECT_EQ(recovered.recovery().outcome,
              RecoveryOutcome::DiscardedWal);
    // No record applied twice: a double-applied ADMIT would have
    // thrown a duplicate-name FatalError during recovery.
    EXPECT_EQ(recovered.liveAgents(), 2u);

    AllocationService reference(memoryOnly());
    reference.admit("a", {0.6, 0.4});
    reference.admit("b", {0.2, 0.8});
    expectBitIdentical(recovered, reference);
}

/**
 * Deterministic churn op stream for the property test. Regenerating
 * with the same seed replays the identical sequence, so the
 * reference service can re-apply any prefix.
 */
struct ChurnOp
{
    enum class Kind { Admit, Update, Depart, Tick };
    Kind kind;
    std::string name;
    linalg::Vector elasticities;
};

std::vector<ChurnOp>
generateOps(std::uint32_t seed, std::size_t count)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> elasticity(0.05, 1.0);
    std::vector<std::string> live;
    std::vector<ChurnOp> ops;
    int nextId = 0;
    while (ops.size() < count) {
        const std::uint32_t roll = rng() % 10;
        if (roll < 3 || live.empty()) {
            ChurnOp op;
            op.kind = ChurnOp::Kind::Admit;
            op.name = "agent" + std::to_string(nextId++);
            op.elasticities = {elasticity(rng), elasticity(rng)};
            live.push_back(op.name);
            ops.push_back(std::move(op));
        } else if (roll < 5) {
            ChurnOp op;
            op.kind = ChurnOp::Kind::Update;
            op.name = live[rng() % live.size()];
            op.elasticities = {elasticity(rng), elasticity(rng)};
            ops.push_back(std::move(op));
        } else if (roll < 6 && live.size() > 1) {
            const std::size_t victim = rng() % live.size();
            ChurnOp op;
            op.kind = ChurnOp::Kind::Depart;
            op.name = live[victim];
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
            ops.push_back(std::move(op));
        } else {
            ops.push_back(ChurnOp{ChurnOp::Kind::Tick, "", {}});
        }
    }
    return ops;
}

void
applyOp(AllocationService &service, const ChurnOp &op)
{
    switch (op.kind) {
    case ChurnOp::Kind::Admit:
        service.admit(op.name, op.elasticities);
        break;
    case ChurnOp::Kind::Update:
        service.update(op.name, op.elasticities);
        break;
    case ChurnOp::Kind::Depart:
        service.depart(op.name);
        break;
    case ChurnOp::Kind::Tick:
        service.tick();
        break;
    }
}

/**
 * Kill the service at the k-th wal append mid-write, recover, and
 * compare bit-for-bit against an uninterrupted reference run of the
 * journaled prefix.
 */
class CrashRecoveryProperty
    : public RecoveryTest,
      public testing::WithParamInterface<std::tuple<int, int>>
{};

TEST_P(CrashRecoveryProperty, RecoversJournaledPrefixExactly)
{
    const auto [seed, crashAtOp] = GetParam();
    const auto ops = generateOps(static_cast<std::uint32_t>(seed),
                                 /*count=*/40);
    ASSERT_LT(static_cast<std::size_t>(crashAtOp), ops.size());

    // With snapshotEvery=0 every journal.write after construction
    // (whose Begin frame predates arming) is one op's append, so
    // skip=crashAtOp crashes mid-append of ops[crashAtOp]: its torn
    // frame lands on disk, every earlier record is durable.
    AllocationService service(journaled(/*snapshotEvery=*/0));
    FailpointSpec crash;
    crash.action = FailAction::Crash;
    crash.skip = static_cast<std::uint64_t>(crashAtOp);
    Failpoints::instance().arm("journal.write", crash);

    std::size_t applied = 0;
    try {
        for (const auto &op : ops) {
            applyOp(service, op);
            ++applied;
        }
        FAIL() << "crash failpoint never fired";
    } catch (const CrashInjected &) {
        EXPECT_EQ(applied, static_cast<std::size_t>(crashAtOp));
    }
    Failpoints::instance().clearAll();
    // The crashed service object is abandoned, exactly like a dead
    // process; the bytes on disk are all that carries over.

    AllocationService recovered(journaled(/*snapshotEvery=*/0));
    EXPECT_TRUE(recovered.recovery().outcome ==
                    RecoveryOutcome::TruncatedTail ||
                recovered.recovery().outcome ==
                    RecoveryOutcome::Clean)
        << svc::toString(recovered.recovery().outcome);
    EXPECT_EQ(recovered.recovery().replayedRecords,
              static_cast<std::uint64_t>(crashAtOp));

    AllocationService reference(memoryOnly());
    for (int i = 0; i < crashAtOp; ++i)
        applyOp(reference, ops[static_cast<std::size_t>(i)]);
    expectBitIdentical(recovered, reference);
}

INSTANTIATE_TEST_SUITE_P(
    SeededCrashes, CrashRecoveryProperty,
    testing::Combine(testing::Values(1, 2, 3),
                     testing::Values(0, 3, 17, 39)));

/**
 * Same property through the snapshot path: crash AFTER several
 * compactions, so recovery restores a snapshot (re-admission through
 * the order-independent ExactSum) and replays a wal tail on top.
 */
TEST_F(RecoveryTest, CrashAfterCompactionsRecoversThroughSnapshot)
{
    const auto ops = generateOps(7, 60);

    // The failpoint is armed after construction (whose Begin frame
    // is therefore not counted); from there the journal.write
    // sequence repeats [5 appends, Begin], so pass p is a Begin iff
    // p == 0 (mod 6). skip=69 fires on pass 70 — an append — with
    // 11 Begins among passes 1..69, i.e. mid-append of ops[58]; the
    // last compaction (pass 66) snapshotted ops[0..54], leaving
    // ops[55..57] in the wal tail.
    AllocationService service(journaled(/*snapshotEvery=*/5));
    std::size_t applied = 0;
    try {
        FailpointSpec crash;
        crash.action = FailAction::Crash;
        crash.skip = 69;
        Failpoints::instance().arm("journal.write", crash);
        for (const auto &op : ops) {
            applyOp(service, op);
            ++applied;
        }
        FAIL() << "crash failpoint never fired";
    } catch (const CrashInjected &) {
    }
    Failpoints::instance().clearAll();
    ASSERT_EQ(applied, 58u);
    ASSERT_GT(service.metrics().journal.snapshots, 1u);

    AllocationService recovered(journaled(/*snapshotEvery=*/5));
    EXPECT_TRUE(recovered.recovery().snapshotLoaded);
    EXPECT_EQ(recovered.recovery().replayedRecords, 3u);

    AllocationService reference(memoryOnly());
    for (std::size_t i = 0; i < applied; ++i)
        applyOp(reference, ops[i]);
    expectBitIdentical(recovered, reference);
}

} // namespace
