/**
 * @file
 * POOL command surface: text grammar, execution semantics against a
 * pooled service, rejection on flat services, the pooled METRICS
 * fairness export, and the binary wire round-trip of every pool
 * sub-op.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "svc/allocation_service.hh"
#include "svc/protocol.hh"
#include "svc/wire.hh"
#include "util/logging.hh"

namespace {

using namespace ref;
using svc::AllocationService;
using svc::Command;
using svc::ServiceConfig;

ServiceConfig
pooledConfig()
{
    ServiceConfig config;
    config.pooled = true;
    config.buildEnforcement = false;
    return config;
}

/** Run one script; the transcript, with error accounting checked. */
std::string
run(AllocationService &service, const std::string &script,
    std::uint64_t expectErrors = 0)
{
    std::istringstream in(script);
    std::ostringstream out;
    const auto result = svc::runSession(service, in, out);
    EXPECT_EQ(result.errors, expectErrors) << out.str();
    return out.str();
}

TEST(PoolProtocol, PooledSessionEndToEnd)
{
    AllocationService service(pooledConfig());
    const std::string transcript = run(service,
                                       "POOL CREATE teams\n"
                                       "POOL CREATE teams/red 1\n"
                                       "ADMIT a 0.6 0.4\n"
                                       "POOL ASSIGN a teams/red\n"
                                       "ADMIT b 0.5 0.5\n"
                                       "TICK\n"
                                       "QUERY a\n"
                                       "POOL QUERY teams\n"
                                       "POOL QUERY\n"
                                       "QUERY\n");
    EXPECT_NE(transcript.find("OK pool teams weight=1 pools=2"),
              std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("OK assigned a pool=teams/red"),
              std::string::npos);
    // Pooled epochs report population and pool count, never a dense
    // agent enumeration.
    EXPECT_NE(transcript.find("EPOCH 1 agents=2 pools=3"),
              std::string::npos)
        << transcript;
    // QUERY <name> answers live from the tree.
    EXPECT_NE(transcript.find("SHARE a "), std::string::npos);
    EXPECT_NE(transcript.find("POOL teams weight=1 agents=1"),
              std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("POOLS count=3 agents=2"),
              std::string::npos);
    // The pooled bare QUERY lists pools instead of per-agent rows.
    EXPECT_NE(transcript.find("SNAPSHOT epoch=1 agents=2 pools=3"),
              std::string::npos)
        << transcript;
}

TEST(PoolProtocol, LiveQueryNeedsNoTick)
{
    AllocationService service(pooledConfig());
    const std::string transcript = run(service,
                                       "ADMIT solo 0.7 0.3\n"
                                       "QUERY solo\n");
    // The whole capacity, before any epoch ever ran.
    EXPECT_NE(transcript.find("SHARE solo 24 12"), std::string::npos)
        << transcript;
}

TEST(PoolProtocol, ErrorPathsReadAsUsageOrSemantics)
{
    AllocationService service(pooledConfig());
    const std::string transcript =
        run(service,
            "POOL\n"
            "POOL CREATE\n"
            "POOL FROB x\n"
            "POOL CREATE p\n"
            "POOL CREATE p 2\n"
            "POOL ASSIGN ghost p\n"
            "POOL QUERY ghost\n"
            "POOL CREATE bad,name\n",
            /*expectErrors=*/7);
    EXPECT_NE(transcript.find("usage: POOL CREATE|ASSIGN|QUERY"),
              std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("unknown POOL subcommand 'FROB'"),
              std::string::npos);
    EXPECT_NE(transcript.find("already exists with weight 1"),
              std::string::npos);
    EXPECT_NE(transcript.find("pool 'ghost' does not exist"),
              std::string::npos);
    EXPECT_NE(transcript.find("reserved for exports"),
              std::string::npos)
        << transcript;
}

TEST(PoolProtocol, FlatServiceRejectsPoolCommands)
{
    AllocationService service;  // Default: flat.
    const std::string transcript = run(service,
                                       "POOL CREATE p\n"
                                       "POOL QUERY\n",
                                       /*expectErrors=*/2);
    EXPECT_NE(transcript.find("--pooled"), std::string::npos)
        << transcript;
}

TEST(PoolProtocol, PooledMetricsFairnessIsLabelled)
{
    AllocationService service(pooledConfig());
    const std::string transcript = run(service,
                                       "POOL CREATE p0\n"
                                       "ADMIT a 0.6 0.4\n"
                                       "POOL ASSIGN a p0\n"
                                       "TICK\n"
                                       "TICK\n"
                                       "METRICS fairness\n");
    // Labelled CSV: a leading pool column, the global series under
    // "_total", and one sub-series per pool (root included).
    EXPECT_NE(transcript.find("label,epoch,agents,checked"),
              std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("_total,1,"), std::string::npos)
        << transcript;
    EXPECT_NE(transcript.find("/,2,"), std::string::npos);
    EXPECT_NE(transcript.find("p0,2,"), std::string::npos);
}

TEST(PoolProtocol, WireRoundTripsEveryPoolSubOp)
{
    Command create;
    create.op = Command::Op::Pool;
    create.poolOp = Command::PoolOp::Create;
    create.poolPath = "teams/blue";
    create.poolWeight = 2.5;

    Command assign;
    assign.op = Command::Op::Pool;
    assign.poolOp = Command::PoolOp::Assign;
    assign.name = "agent7";
    assign.poolPath = "teams/blue";

    Command queryAll;
    queryAll.op = Command::Op::Pool;
    queryAll.poolOp = Command::PoolOp::Query;

    Command queryOne = queryAll;
    queryOne.poolPath = "teams";

    for (const Command &command :
         {create, assign, queryAll, queryOne}) {
        const Command decoded =
            svc::wire::decodeCommand(svc::wire::encodeCommand(command));
        EXPECT_EQ(decoded.op, Command::Op::Pool);
        EXPECT_EQ(decoded.poolOp, command.poolOp);
        EXPECT_EQ(decoded.poolPath, command.poolPath);
        EXPECT_EQ(decoded.name, command.name);
        EXPECT_EQ(decoded.poolWeight, command.poolWeight);
    }

    // A truncated pool frame is rejected, not misread.
    const std::string bytes = svc::wire::encodeCommand(create);
    EXPECT_THROW(
        svc::wire::decodeCommand(
            std::string_view(bytes).substr(0, bytes.size() - 2)),
        FatalError);
}

} // namespace
