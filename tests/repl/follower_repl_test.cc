/**
 * @file
 * End-to-end warm-standby tests: a real SocketServer primary with a
 * ReplicationHub, a real FollowerClient applying the shipped WAL
 * into a second AllocationService, all in one process on loopback.
 *
 * The invariant under test is the paper's bit-identity property:
 * because REF allocation is order-independent and exact, a follower
 * that replays the primary's WAL must reach the same state hash —
 * so these tests assert hash equality, not "roughly similar state".
 */

#include <chrono>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "../net/net_test_util.hh"
#include "repl/follower.hh"
#include "repl/replication_hub.hh"
#include "svc/allocation_service.hh"

namespace ref::repl {
namespace {

using test::ServerHarness;
using test::TestClient;

/** Poll @p predicate until true or the deadline; true on success. */
bool
waitFor(const std::function<bool()> &predicate, int timeoutMs = 5000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

/** Primary harness with its hub wired into both layers. */
struct Primary
{
    explicit Primary(std::size_t ringCapacity = 8192)
        : hub(ringCapacity)
    {
        net::ServerOptions options;
        options.replicationHub = &hub;
        options.heartbeatIntervalMs = 50;
        harness =
            std::make_unique<ServerHarness>(svc::ServiceConfig{},
                                            options);
        harness->service().setReplicationSink(&hub);
    }

    ~Primary()
    {
        if (harness)
            harness->service().setReplicationSink(nullptr);
    }

    std::string address() const
    {
        return "127.0.0.1:" + std::to_string(harness->port());
    }

    ReplicationHub hub;
    std::unique_ptr<ServerHarness> harness;
};

/** Drive the primary over the text protocol like any client. */
void
runCommands(std::uint16_t port,
            const std::vector<std::string> &commands)
{
    TestClient client(port);
    for (const auto &command : commands) {
        client.sendAll(command + "\n");
        // TICK <n> answers one EPOCH line per epoch; everything
        // else used here answers a single OK line.
        std::size_t lines = 1;
        if (command.rfind("TICK ", 0) == 0)
            lines = std::stoul(command.substr(5));
        const std::string reply = client.readLines(lines);
        ASSERT_FALSE(reply.empty()) << "no reply to " << command;
        EXPECT_TRUE(reply.rfind("OK", 0) == 0 ||
                    reply.rfind("EPOCH", 0) == 0)
            << command << " -> " << reply;
    }
}

TEST(FollowerRepl, SyncAppliesAndMatchesPrimaryHash)
{
    Primary primary;
    svc::AllocationService standby;
    FollowerClient::Options options;
    options.address = primary.address();
    FollowerClient follower(standby, options);
    follower.start();

    runCommands(primary.harness->port(),
                {"ADMIT web 1.0 0.4", "ADMIT batch 0.2 0.7",
                 "TICK 3"});

    // 3 admits/ticks pipeline through the hub; the last shipped
    // record is the third TICK.
    ASSERT_TRUE(waitFor([&] {
        return follower.stats().lastAppliedSeq >=
               primary.hub.headSeq();
    })) << "follower lagged: applied "
        << follower.stats().lastAppliedSeq << " of "
        << primary.hub.headSeq();

    EXPECT_EQ(standby.stateHash(),
              primary.harness->service().stateHash());
    EXPECT_TRUE(follower.following());
    EXPECT_EQ(follower.stats().divergences, 0u);

    follower.stop();
}

TEST(FollowerRepl, LateJoinerBehindEvictedRingLoadsSnapshot)
{
    // Ring of 2: by the time the follower connects with cursor 0,
    // the tail has been evicted and the primary must answer the
    // SYNC with a full snapshot instead of records.
    Primary primary(2);
    runCommands(primary.harness->port(),
                {"ADMIT a 1 1", "ADMIT b 2 1", "ADMIT c 3 1",
                 "TICK 2"});

    svc::AllocationService standby;
    FollowerClient::Options options;
    options.address = primary.address();
    FollowerClient follower(standby, options);
    follower.start();

    ASSERT_TRUE(waitFor([&] {
        return follower.stats().lastAppliedSeq >=
               primary.hub.headSeq();
    }));
    EXPECT_GE(follower.stats().snapshotsLoaded, 1u);
    EXPECT_EQ(standby.stateHash(),
              primary.harness->service().stateHash());

    // The stream stays live after the snapshot: new primary records
    // keep flowing to the same session.
    runCommands(primary.harness->port(), {"TICK 1"});
    ASSERT_TRUE(waitFor([&] {
        return follower.stats().lastAppliedSeq >=
               primary.hub.headSeq();
    }));
    EXPECT_EQ(standby.stateHash(),
              primary.harness->service().stateHash());

    follower.stop();
}

TEST(FollowerRepl, DivergenceIsDetectedAndHealedBySnapshotResync)
{
    Primary primary;
    svc::AllocationService standby;
    FollowerClient::Options options;
    options.address = primary.address();
    FollowerClient follower(standby, options);
    follower.start();

    runCommands(primary.harness->port(),
                {"ADMIT web 1.0 0.4", "TICK 1"});
    ASSERT_TRUE(waitFor([&] {
        return follower.stats().lastAppliedSeq >=
               primary.hub.headSeq();
    }));

    // Corrupt the standby out-of-band: an agent the primary never
    // shipped. The next shipped TICK's state hash cannot match, so
    // the follower must flag a divergence and resync — never drift.
    standby.admit("phantom", {0.5, 0.5});
    runCommands(primary.harness->port(), {"TICK 1"});

    ASSERT_TRUE(waitFor([&] {
        return follower.stats().divergences >= 1;
    })) << "divergence went undetected";
    ASSERT_TRUE(waitFor([&] {
        return follower.stats().lastAppliedSeq >=
                   primary.hub.headSeq() &&
               standby.stateHash() ==
                   primary.harness->service().stateHash();
    })) << "resync did not converge";
    EXPECT_GE(follower.stats().snapshotsLoaded, 1u);

    follower.stop();
}

TEST(FollowerRepl, PromoteStopsFollowingAndOpensWrites)
{
    Primary primary;
    svc::AllocationService standby;
    FollowerClient::Options options;
    options.address = primary.address();
    FollowerClient follower(standby, options);
    follower.start();

    runCommands(primary.harness->port(),
                {"ADMIT web 1.0 0.4", "TICK 1"});
    ASSERT_TRUE(waitFor([&] {
        return follower.stats().lastAppliedSeq >=
               primary.hub.headSeq();
    }));

    std::string message;
    EXPECT_TRUE(follower.promote(message));
    EXPECT_NE(message.find("serving"), std::string::npos)
        << message;
    EXPECT_FALSE(follower.following());

    // Second promote is a no-op refusal, not a crash.
    std::string again;
    EXPECT_FALSE(follower.promote(again));

    // The promoted standby accepts mutations on its own timeline
    // while retaining the replicated history (snapshots publish on
    // ticks, so tick once to see the admit).
    standby.admit("newcomer", {1.0, 1.0});
    standby.tick();
    EXPECT_EQ(standby.snapshot()->agents.size(), 2u);

    // Records shipped after the flip must not land: the primary
    // ticks, the promoted standby's epoch stays its own.
    const auto epochBefore = standby.snapshot()->epoch;
    runCommands(primary.harness->port(), {"TICK 5"});
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(standby.snapshot()->epoch, epochBefore);

    follower.stop();
}

TEST(FollowerRepl, AutoPromoteFiresOnPrimarySilence)
{
    svc::AllocationService standby;
    FollowerClient::Options options;
    options.promoteTimeoutMs = 300;
    options.reconnectDelayMs = 20;

    {
        Primary primary;
        options.address = primary.address();
        runCommands(primary.harness->port(),
                    {"ADMIT web 1.0 0.4", "TICK 1"});

        FollowerClient follower(standby, options);
        follower.start();
        ASSERT_TRUE(waitFor([&] {
            return follower.stats().lastAppliedSeq >=
                   primary.hub.headSeq();
        }));

        // Primary dies (harness teardown closes the listener and
        // every connection); the follower must flip on its own.
        primary.harness->stop();
        ASSERT_TRUE(waitFor(
            [&] { return !follower.following(); }, 5000))
            << "auto-promote never fired";
        EXPECT_EQ(standby.snapshot()->agents.size(), 1u);
        follower.stop();
    }
}

TEST(FollowerRepl, FollowerChainsAsSecondHopReplica)
{
    // primary -> middle (follower that also runs a hub and server)
    // -> leaf. Chaining works because applyShipped re-journals and
    // re-ships through the middle service's own sink.
    Primary primary;

    ReplicationHub middleHub;
    net::ServerOptions middleOptions;
    middleOptions.replicationHub = &middleHub;
    middleOptions.heartbeatIntervalMs = 50;
    ServerHarness middle(svc::ServiceConfig{}, middleOptions);
    middle.service().setReplicationSink(&middleHub);

    FollowerClient::Options middleFollowOptions;
    middleFollowOptions.address = primary.address();
    FollowerClient middleFollower(middle.service(),
                                  middleFollowOptions);
    middleFollower.start();

    svc::AllocationService leaf;
    FollowerClient::Options leafOptions;
    leafOptions.address =
        "127.0.0.1:" + std::to_string(middle.port());
    FollowerClient leafFollower(leaf, leafOptions);
    leafFollower.start();

    runCommands(primary.harness->port(),
                {"ADMIT web 1.0 0.4", "ADMIT batch 0.2 0.7",
                 "TICK 4"});

    ASSERT_TRUE(waitFor([&] {
        return middleFollower.stats().lastAppliedSeq >=
                   primary.hub.headSeq() &&
               leafFollower.stats().lastAppliedSeq >=
                   middleHub.headSeq() &&
               middleHub.headSeq() > 0;
    })) << "chain stalled: primary head "
        << primary.hub.headSeq() << ", middle applied "
        << middleFollower.stats().lastAppliedSeq
        << ", leaf applied "
        << leafFollower.stats().lastAppliedSeq;

    const auto primaryHash = primary.harness->service().stateHash();
    EXPECT_EQ(middle.service().stateHash(), primaryHash);
    EXPECT_EQ(leaf.stateHash(), primaryHash);

    leafFollower.stop();
    middleFollower.stop();
    middle.service().setReplicationSink(nullptr);
}

} // namespace
} // namespace ref::repl
