/**
 * @file
 * Hub semantics: sequence assignment, ring eviction forcing the
 * snapshot-resync answer, cursor edge cases, and wake callbacks.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "repl/replication_hub.hh"

namespace ref::repl {
namespace {

void
push(ReplicationHub &hub, const std::string &payload,
     bool isTick = false, std::uint32_t hash = 0)
{
    hub.onRecord(payload, isTick, 0, hash);
}

TEST(ReplicationHub, AssignsMonotoneSequences)
{
    ReplicationHub hub(16);
    EXPECT_EQ(hub.headSeq(), 0u);
    push(hub, "a");
    push(hub, "b");
    push(hub, "c");
    EXPECT_EQ(hub.headSeq(), 3u);

    std::vector<ReplicationHub::Entry> entries;
    ASSERT_TRUE(hub.fetchAfter(0, 100, entries));
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].seq, 1u);
    EXPECT_EQ(entries[0].payload, "a");
    EXPECT_EQ(entries[2].seq, 3u);
    EXPECT_EQ(entries[2].payload, "c");
}

TEST(ReplicationHub, StreamIdIsNeverZero)
{
    ReplicationHub hub(4);
    EXPECT_NE(hub.streamId(), 0u);
}

TEST(ReplicationHub, CursorAtHeadReturnsNoEntries)
{
    ReplicationHub hub(4);
    push(hub, "a");
    std::vector<ReplicationHub::Entry> entries;
    EXPECT_TRUE(hub.fetchAfter(1, 100, entries));
    EXPECT_TRUE(entries.empty());
}

TEST(ReplicationHub, FutureCursorIsRejected)
{
    // A cursor beyond the head belongs to a different stream (a
    // follower of a previous primary incarnation): resync.
    ReplicationHub hub(4);
    push(hub, "a");
    std::vector<ReplicationHub::Entry> entries;
    EXPECT_FALSE(hub.fetchAfter(9, 100, entries));
}

TEST(ReplicationHub, EvictionForcesResync)
{
    ReplicationHub hub(3);
    for (int i = 0; i < 10; ++i)
        push(hub, std::string(1, static_cast<char>('a' + i)));
    // Ring holds seqs 8..10; cursor 7 (wants seq 8) still works,
    // cursor 6 (wants seq 7, evicted) must force a snapshot.
    std::vector<ReplicationHub::Entry> entries;
    EXPECT_TRUE(hub.fetchAfter(7, 100, entries));
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries.front().seq, 8u);
    EXPECT_EQ(entries.back().seq, 10u);

    entries.clear();
    EXPECT_FALSE(hub.fetchAfter(6, 100, entries));
    EXPECT_FALSE(hub.fetchAfter(0, 100, entries));
}

TEST(ReplicationHub, FetchHonoursBatchBound)
{
    ReplicationHub hub(16);
    for (int i = 0; i < 8; ++i)
        push(hub, "r");
    std::vector<ReplicationHub::Entry> entries;
    ASSERT_TRUE(hub.fetchAfter(0, 3, entries));
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries.back().seq, 3u);
    // The next fetch resumes where the bound stopped.
    std::vector<ReplicationHub::Entry> more;
    ASSERT_TRUE(hub.fetchAfter(entries.back().seq, 100, more));
    ASSERT_EQ(more.size(), 5u);
    EXPECT_EQ(more.front().seq, 4u);
}

TEST(ReplicationHub, TickMetadataRidesAlong)
{
    ReplicationHub hub(8);
    push(hub, "plain");
    push(hub, "tick", true, 0xabcdu);
    std::vector<ReplicationHub::Entry> entries;
    ASSERT_TRUE(hub.fetchAfter(0, 100, entries));
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_FALSE(entries[0].isTick);
    EXPECT_EQ(entries[0].stateHash, 0u);
    EXPECT_TRUE(entries[1].isTick);
    EXPECT_EQ(entries[1].stateHash, 0xabcdu);
    EXPECT_GT(entries[1].shipTimestampNs, 0u);
}

TEST(ReplicationHub, WakeCallbackFiresPerRecord)
{
    ReplicationHub hub(8);
    int wakes = 0;
    hub.addWakeCallback([&wakes] { ++wakes; });
    push(hub, "a");
    push(hub, "b");
    EXPECT_EQ(wakes, 2);
}

} // namespace
} // namespace ref::repl
