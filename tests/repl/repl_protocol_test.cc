/**
 * @file
 * Replication frame codec: round-trips, kind-range discrimination
 * against command/reply payloads, and malformed-byte rejection.
 */

#include <gtest/gtest.h>

#include <string>

#include "repl/repl_protocol.hh"
#include "svc/wire.hh"
#include "util/logging.hh"

namespace ref::repl {
namespace {

TEST(ReplProtocol, SnapshotRoundTrip)
{
    ReplMessage message;
    message.kind = MessageKind::Snapshot;
    message.streamId = 0xfeedfacecafebeefULL;
    message.seq = 42;
    message.payload = std::string("state\0bytes", 11);

    const ReplMessage decoded =
        decodeReplMessage(encodeReplMessage(message));
    EXPECT_EQ(decoded.kind, MessageKind::Snapshot);
    EXPECT_EQ(decoded.streamId, message.streamId);
    EXPECT_EQ(decoded.seq, 42u);
    EXPECT_EQ(decoded.payload, message.payload);
}

TEST(ReplProtocol, RecordRoundTrip)
{
    ReplMessage message;
    message.kind = MessageKind::Record;
    message.seq = 7;
    message.timestampNs = 123456789;
    message.stateHash = 0xdeadbeef;
    message.payload = "journal-record-bytes";

    const ReplMessage decoded =
        decodeReplMessage(encodeReplMessage(message));
    EXPECT_EQ(decoded.kind, MessageKind::Record);
    EXPECT_EQ(decoded.seq, 7u);
    EXPECT_EQ(decoded.timestampNs, 123456789u);
    EXPECT_EQ(decoded.stateHash, 0xdeadbeefu);
    EXPECT_EQ(decoded.payload, "journal-record-bytes");
}

TEST(ReplProtocol, HeartbeatAndAckRoundTrip)
{
    for (const MessageKind kind :
         {MessageKind::Heartbeat, MessageKind::Ack}) {
        ReplMessage message;
        message.kind = kind;
        message.seq = 99;
        message.timestampNs = 5000;
        const ReplMessage decoded =
            decodeReplMessage(encodeReplMessage(message));
        EXPECT_EQ(decoded.kind, kind);
        EXPECT_EQ(decoded.seq, 99u);
        EXPECT_EQ(decoded.timestampNs, 5000u);
        EXPECT_TRUE(decoded.payload.empty());
    }
}

TEST(ReplProtocol, KindRangeIsDisjointFromCommandsAndReplies)
{
    // Replication kinds occupy 0x40..0x43; command payloads start
    // with an opcode (1..12) and replies with a status (0..3). A
    // misrouted payload must never sniff as a replication frame.
    svc::Command command;
    command.op = svc::Command::Op::Sync;
    EXPECT_FALSE(isReplMessage(svc::wire::encodeCommand(command)));
    EXPECT_FALSE(isReplMessage(
        svc::wire::encodeReply(svc::wire::ReplyStatus::Ok, "OK\n")));

    ReplMessage heartbeat;
    heartbeat.kind = MessageKind::Heartbeat;
    EXPECT_TRUE(isReplMessage(encodeReplMessage(heartbeat)));
    EXPECT_FALSE(isReplMessage(""));
    EXPECT_FALSE(isReplMessage("\x44"));
}

TEST(ReplProtocol, RejectsUnknownKind)
{
    EXPECT_THROW(decodeReplMessage("\x39"), FatalError);
    EXPECT_THROW(decodeReplMessage("\x7f"), FatalError);
}

TEST(ReplProtocol, RejectsTruncatedAndTrailingBytes)
{
    ReplMessage message;
    message.kind = MessageKind::Record;
    message.seq = 1;
    message.payload = "x";
    const std::string encoded = encodeReplMessage(message);

    EXPECT_THROW(
        decodeReplMessage(std::string_view(encoded).substr(
            0, encoded.size() - 1)),
        FatalError);
    EXPECT_THROW(decodeReplMessage(encoded + "!"), FatalError);
}

/** Every truncation point of every kind must throw, never crash or
 *  silently succeed — the torn-frame contract of the channel. */
TEST(ReplProtocol, EveryTruncationThrows)
{
    ReplMessage snapshot;
    snapshot.kind = MessageKind::Snapshot;
    snapshot.streamId = 1;
    snapshot.seq = 2;
    snapshot.payload = "payload";
    ReplMessage record;
    record.kind = MessageKind::Record;
    record.seq = 3;
    record.timestampNs = 4;
    record.stateHash = 5;
    record.payload = "r";
    ReplMessage ack;
    ack.kind = MessageKind::Ack;
    ack.seq = 6;
    ack.timestampNs = 7;

    for (const ReplMessage &message : {snapshot, record, ack}) {
        const std::string encoded = encodeReplMessage(message);
        for (std::size_t cut = 1; cut < encoded.size(); ++cut)
            EXPECT_THROW(
                decodeReplMessage(
                    std::string_view(encoded).substr(0, cut)),
                FatalError)
                << "kind " << static_cast<int>(message.kind)
                << " cut at " << cut;
    }
}

} // namespace
} // namespace ref::repl
