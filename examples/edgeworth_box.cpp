/**
 * @file
 * Emit the curves of the paper's Figures 1-7 as CSV on stdout:
 * contract curve, envy-free boundaries, sharing-incentive
 * boundaries, indifference curves, and the fair segment endpoints.
 * Pipe into a plotting tool to regenerate the figures graphically.
 */

#include <iostream>

#include "core/edgeworth.hh"
#include "util/csv.hh"

int
main()
{
    using namespace ref;

    const core::EdgeworthBox box(
        core::Agent("user1", core::CobbDouglasUtility({0.6, 0.4})),
        core::Agent("user2", core::CobbDouglasUtility({0.2, 0.8})),
        core::SystemCapacity::cacheAndBandwidthExample());

    CsvWriter csv(std::cout,
                  {"series", "x1_bandwidth_gbps", "y1_cache_mb"});

    const int samples = 200;
    const double step = box.width() / (samples + 1);

    // Figure 5: the contract curve.
    for (int i = 1; i <= samples; ++i) {
        const double x1 = i * step;
        csv.writeRow({"contract_curve", std::to_string(x1),
                      std::to_string(box.contractCurve(x1))});
    }

    // Figure 2: envy-free boundaries for both users.
    for (int user = 1; user <= 2; ++user) {
        const std::string name =
            "envy_boundary_user" + std::to_string(user);
        for (int i = 1; i <= samples; ++i) {
            const double x1 = i * step;
            const auto boundary = box.envyBoundary(user, x1);
            if (boundary) {
                csv.writeRow({name, std::to_string(x1),
                              std::to_string(*boundary)});
            }
        }
    }

    // Figure 7: sharing-incentive boundaries.
    for (int user = 1; user <= 2; ++user) {
        const std::string name =
            "si_boundary_user" + std::to_string(user);
        for (int i = 1; i <= samples; ++i) {
            const double x1 = i * step;
            const auto boundary =
                box.sharingIncentiveBoundary(user, x1);
            if (boundary) {
                csv.writeRow({name, std::to_string(x1),
                              std::to_string(*boundary)});
            }
        }
    }

    // Figure 3: three indifference curves for user 1.
    const std::vector<core::Vector> anchors{
        {4.0, 2.0}, {8.0, 4.0}, {14.0, 7.0}};
    for (std::size_t curve = 0; curve < anchors.size(); ++curve) {
        const std::string name =
            "indifference_I" + std::to_string(curve + 1);
        for (int i = 1; i <= samples; ++i) {
            const double x = i * step;
            const double y =
                box.indifferenceCurve(1, anchors[curve], x);
            if (y <= box.height()) {
                csv.writeRow(
                    {name, std::to_string(x), std::to_string(y)});
            }
        }
    }

    // Figures 6 and 7: fair segment endpoints on the contract curve.
    for (bool with_si : {false, true}) {
        const auto segment = box.fairSegment(with_si);
        const std::string name =
            with_si ? "fair_segment_with_si" : "fair_segment";
        for (double x1 : {segment.x1Low, segment.x1High}) {
            csv.writeRow({name, std::to_string(x1),
                          std::to_string(box.contractCurve(x1))});
        }
    }

    // Figure 1's worked point.
    csv.writeRow({"example_point", "6", "8"});
    return 0;
}
