/**
 * @file
 * Strategy-proofness audit (paper Section 4.3).
 *
 * A strategic tenant tries to game the proportional elasticity
 * mechanism by mis-reporting its elasticities. We search for its
 * best response at increasing system sizes and report the achievable
 * gain: profitable in tiny systems, vanishing once tens of agents
 * share the hardware (strategy-proofness in the large).
 */

#include <iostream>

#include "core/strategic.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ref;

    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    Rng rng(2026);

    // The strategic tenant's true preferences.
    const core::CobbDouglasUtility truth({0.7, 0.3});

    Table table({"co-tenants", "best report (mem, cache)",
                 "gain from lying", "verdict"});
    for (std::size_t others : {1, 3, 7, 15, 31, 63, 127}) {
        core::AgentList agents;
        agents.emplace_back("strategist", truth);
        for (std::size_t i = 0; i < others; ++i) {
            agents.emplace_back(
                "tenant-" + std::to_string(i),
                core::CobbDouglasUtility(
                    {rng.uniform(0.05, 1.0), rng.uniform(0.05, 1.0)}));
        }

        const core::StrategicAnalysis analysis(agents, capacity);
        const auto best = analysis.bestResponse(0);
        const double gain_percent = (best.gainRatio - 1.0) * 100.0;
        table.addRow(
            {std::to_string(others),
             "(" + formatFixed(best.report[0], 3) + ", " +
                 formatFixed(best.report[1], 3) + ")",
             formatFixed(gain_percent, 3) + "%",
             gain_percent > 1.0
                 ? "lying pays"
                 : (gain_percent > 0.05 ? "marginal" : "truthful")});
    }
    table.print(std::cout);

    std::cout << "\ntrue elasticities: (0.7, 0.3). With tens of "
                 "co-tenants the optimal report collapses onto the "
                 "truth: the mechanism is strategy-proof in the "
                 "large.\n";
    return 0;
}
