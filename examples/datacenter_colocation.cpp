/**
 * @file
 * Datacenter co-location scenario (the paper's motivating setting).
 *
 * Four tenant workloads are to be consolidated onto one socket.
 * The operator:
 *  1. profiles each tenant offline over the Table 1 cache/bandwidth
 *     sweep (cycle-approximate simulation stands in for the
 *     co-location profiling of Mars et al. that the paper cites);
 *  2. fits Cobb-Douglas utilities by log-linear regression;
 *  3. allocates shares with REF and with equal slowdown, comparing
 *     fairness and throughput;
 *  4. enforces the REF shares with way partitioning + weighted fair
 *     queuing and reports allocated vs delivered service.
 */

#include <iostream>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "core/welfare_mechanisms.hh"
#include "sched/enforce.hh"
#include "sim/profiler.hh"
#include "util/table.hh"

int
main()
{
    using namespace ref;

    const std::vector<std::string> tenants{
        "histogram", "freqmine", "canneal", "dedup"};
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();

    // --- 1 & 2: profile and fit -----------------------------------
    std::cout << "profiling " << tenants.size()
              << " tenants over the 5x5 Table 1 sweep...\n\n";
    const sim::Profiler profiler(sim::PlatformConfig::table1(), 80000);
    core::AgentList agents;
    Table fits({"tenant", "alpha_mem", "alpha_cache", "R^2",
                "class"});
    for (const auto &name : tenants) {
        const auto &workload = sim::workloadByName(name);
        const auto fit = profiler.profileAndFit(workload);
        const auto rescaled = fit.utility.rescaled();
        fits.addRow({name, formatFixed(rescaled.elasticity(0), 3),
                     formatFixed(rescaled.elasticity(1), 3),
                     formatFixed(fit.rSquaredLog, 2),
                     rescaled.elasticity(0) > 0.5 ? "M" : "C"});
        agents.emplace_back(name, fit.utility);
    }
    fits.print(std::cout);

    // --- 3: allocate and compare ----------------------------------
    const core::ProportionalElasticityMechanism ref_mechanism;
    const auto equal_slowdown = core::makeEqualSlowdown();

    for (const core::AllocationMechanism *mechanism :
         {static_cast<const core::AllocationMechanism *>(
              &ref_mechanism),
          static_cast<const core::AllocationMechanism *>(
              &equal_slowdown)}) {
        const auto allocation =
            mechanism->allocate(agents, capacity);
        std::cout << "\n--- " << mechanism->name() << " ---\n";
        Table table({"tenant", "bandwidth (GB/s)", "cache (MB)",
                     "U_i"});
        for (std::size_t i = 0; i < agents.size(); ++i) {
            table.addRow(
                {agents[i].name(),
                 formatFixed(allocation.at(i, 0), 2),
                 formatFixed(allocation.at(i, 1), 2),
                 formatFixed(core::weightedUtility(
                                 agents[i],
                                 allocation.agentShare(i), capacity),
                             4)});
        }
        table.print(std::cout);
        const auto report =
            core::checkFairness(agents, capacity, allocation,
                                {1e-4, 1e-2, 1e-6});
        std::cout << "SI " << (report.sharingIncentives.satisfied
                                   ? "ok" : "VIOLATED")
                  << " | EF " << (report.envyFreeness.satisfied
                                      ? "ok" : "VIOLATED")
                  << " | PE " << (report.paretoEfficiency.satisfied
                                      ? "ok" : "violated")
                  << " | throughput "
                  << formatFixed(core::weightedSystemThroughput(
                                     agents, allocation, capacity),
                                 3)
                  << "\n";
    }

    // --- 4: enforce the REF shares --------------------------------
    const auto allocation = ref_mechanism.allocate(agents, capacity);
    std::vector<double> cache_fractions, bandwidth_fractions;
    for (std::size_t i = 0; i < agents.size(); ++i) {
        const auto fractions = allocation.fractions(i, capacity);
        bandwidth_fractions.push_back(fractions[0]);
        cache_fractions.push_back(fractions[1]);
    }

    sim::PlatformConfig platform = sim::PlatformConfig::table1();
    platform.dram.bandwidthGBps = 6.4;
    sched::EnforcedCmpSystem system(platform, cache_fractions,
                                    bandwidth_fractions);
    std::vector<sim::Trace> traces;
    std::vector<sim::TimingParams> timings;
    for (const auto &name : tenants) {
        const auto &workload = sim::workloadByName(name);
        traces.push_back(
            sim::TraceGenerator(workload.trace).generate(30000));
        timings.push_back(workload.timing);
    }
    const auto results = system.run(traces, timings);

    std::cout << "\n--- enforcement: way partitioning + WFQ ---\n";
    Table enforced({"tenant", "cache ways", "allocated bw",
                    "measured bw (contended)", "IPC"});
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        enforced.addRow(
            {tenants[i],
             std::to_string(system.partition().ways[i]),
             formatPercent(bandwidth_fractions[i], 1),
             formatPercent(results[i].bandwidthShare, 1),
             formatFixed(results[i].ipc, 3)});
    }
    enforced.print(std::cout);
    return 0;
}
