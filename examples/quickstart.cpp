/**
 * @file
 * Quickstart: the paper's running example end to end.
 *
 * Two users share a quad-core-class system with 24 GB/s of memory
 * bandwidth and 12 MB of last-level cache. User 1 is bursty with
 * little re-use (prefers bandwidth); user 2 re-uses its data
 * (prefers cache). We build their Cobb-Douglas utilities, run the
 * proportional elasticity mechanism, and verify the game-theoretic
 * properties.
 */

#include <iostream>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "util/table.hh"

int
main()
{
    using namespace ref;

    // 1. Describe the shared hardware (paper Section 3).
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    std::cout << "system: " << capacity.capacity(0) << " "
              << capacity.resource(0).unit << " bandwidth, "
              << capacity.capacity(1) << " "
              << capacity.resource(1).unit << " cache\n\n";

    // 2. Each user reports a Cobb-Douglas utility u = x^ax * y^ay.
    //    In production these come from profiling + fitting (see the
    //    datacenter_colocation example); here they are the paper's
    //    worked values.
    core::AgentList agents;
    agents.emplace_back("user1", core::CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", core::CobbDouglasUtility({0.2, 0.8}));

    // 3. Allocate with the closed-form REF mechanism (Eq. 13).
    const core::ProportionalElasticityMechanism mechanism;
    const auto allocation = mechanism.allocate(agents, capacity);

    Table table({"agent", "bandwidth (GB/s)", "cache (MB)",
                 "weighted utility U_i"});
    for (std::size_t i = 0; i < agents.size(); ++i) {
        table.addRow(
            {agents[i].name(), formatFixed(allocation.at(i, 0), 2),
             formatFixed(allocation.at(i, 1), 2),
             formatFixed(core::weightedUtility(
                             agents[i], allocation.agentShare(i),
                             capacity),
                         4)});
    }
    table.print(std::cout);

    // 4. Verify the guarantees the mechanism provides.
    const auto report =
        core::checkFairness(agents, capacity, allocation);
    std::cout << "\nsharing incentives: "
              << (report.sharingIncentives.satisfied ? "yes" : "NO")
              << "\nenvy-freeness:      "
              << (report.envyFreeness.satisfied ? "yes" : "NO")
              << "\nPareto efficiency:  "
              << (report.paretoEfficiency.satisfied ? "yes" : "NO")
              << "\ncapacity respected: "
              << (report.capacity.satisfied ? "yes" : "NO") << "\n";

    std::cout << "\nweighted system throughput: "
              << formatFixed(core::weightedSystemThroughput(
                                 agents, allocation, capacity),
                             4)
              << "\n";
    return report.allHold() ? 0 : 1;
}
