/**
 * @file
 * On-line profiling (paper Section 4.4).
 *
 * A naive user joins the system with no prior knowledge and reports
 * u = x^0.5 y^0.5. Each epoch the system allocates for the reported
 * utilities, the user observes its performance at the allocation it
 * actually received (plus the configurations it has seen before),
 * re-fits its Cobb-Douglas utility, and reports the update. The
 * report converges to the offline fit.
 */

#include <iostream>

#include "core/fitting.hh"
#include "core/proportional_elasticity.hh"
#include "sim/profiler.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ref;

/** Measure IPC at one (bandwidth, cache) allocation. */
double
measureIpc(const sim::WorkloadSpec &workload, double bandwidth_gbps,
           double cache_mb)
{
    sim::PlatformConfig config = sim::PlatformConfig::table1();
    config.dram.bandwidthGBps = bandwidth_gbps;
    // Quantize to a valid cache geometry (way granularity).
    const auto block = config.l2.blockBytes;
    const auto assoc = config.l2.associativity;
    const std::size_t bytes =
        static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
    const std::size_t line = block * assoc;
    config.l2.sizeBytes = std::max(line, bytes / line * line);

    sim::TraceGenerator generator(workload.trace, block);
    const auto trace = generator.generate(60000);
    sim::CmpSystem system(config);
    return system.run(trace, workload.timing, 0.35).ipc;
}

} // namespace

int
main()
{
    const auto &workload = sim::workloadByName("dedup");
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();

    // The offline "ground truth" fit over the full sweep.
    const sim::Profiler profiler(sim::PlatformConfig::table1(), 60000);
    const auto offline =
        profiler.profileAndFit(workload).utility.rescaled();

    // A competitor with known demands shares the system.
    core::AgentList agents;
    agents.emplace_back("naive-dedup",
                        core::CobbDouglasUtility({0.5, 0.5}));
    agents.emplace_back("competitor",
                        core::CobbDouglasUtility({0.45, 0.55}));
    const core::ProportionalElasticityMechanism mechanism;

    std::cout << "offline fit for dedup: alpha_mem = "
              << formatFixed(offline.elasticity(0), 3)
              << ", alpha_cache = "
              << formatFixed(offline.elasticity(1), 3) << "\n\n";

    core::PerformanceProfile observed;
    // Seed observations from onboarding probes; deliberately include
    // a bandwidth-starved point so the fit can see the steep region.
    for (const auto &probe :
         {core::Vector{3.0, 9.0}, core::Vector{16.0, 1.5},
          core::Vector{8.0, 4.0}}) {
        observed.push_back(core::ProfilePoint{
            probe, measureIpc(workload, probe[0], probe[1])});
    }

    // Exploration: a live system never parks on one configuration —
    // phases, co-runner churn, and deliberate sampling move the
    // effective allocation around inside the granted share.
    ref::Rng explore(7);

    Table table({"epoch", "reported alpha_mem", "reported alpha_cache",
                 "allocation (GB/s, MB)", "gap to offline"});
    for (int epoch = 1; epoch <= 8; ++epoch) {
        const auto allocation = mechanism.allocate(agents, capacity);
        const core::Vector mine = allocation.agentShare(0);

        // Observe performance at an explored sub-allocation of the
        // granted share; re-fit.
        const core::Vector sampled{
            mine[0] * explore.uniform(0.35, 1.0),
            mine[1] * explore.uniform(0.35, 1.0)};
        observed.push_back(core::ProfilePoint{
            sampled, measureIpc(workload, sampled[0], sampled[1])});
        const auto fit = core::fitCobbDouglas(observed);
        const auto reported = fit.utility.rescaled();
        agents[0].setUtility(reported);

        const double gap = std::abs(reported.elasticity(0) -
                                    offline.elasticity(0));
        table.addRow({std::to_string(epoch),
                      formatFixed(reported.elasticity(0), 3),
                      formatFixed(reported.elasticity(1), 3),
                      "(" + formatFixed(mine[0], 1) + ", " +
                          formatFixed(mine[1], 2) + ")",
                      formatFixed(gap, 3)});
    }
    table.print(std::cout);

    const double final_gap =
        std::abs(agents[0].utility().elasticity(0) -
                 offline.elasticity(0));
    std::cout << "\nfinal gap to the offline elasticity: "
              << formatFixed(final_gap, 3)
              << (final_gap < 0.1 ? "  (converged)" : "") << "\n";
    return final_gap < 0.2 ? 0 : 1;
}
