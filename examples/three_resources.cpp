/**
 * @file
 * The paper's future-work extension: "the mechanism can support
 * additional resources, such as the number of processor cores."
 *
 * Nothing in REF is specific to two resources: this example
 * allocates processor cores, last-level cache, and memory bandwidth
 * among four tenants with heterogeneous parallelism (Amdahl-style
 * core elasticity), and verifies SI/EF/PE still hold. It also shows
 * the strategic picture is unchanged: with many tenants, the
 * three-dimensional best response collapses onto the truth.
 */

#include <iostream>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/strategic.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ref;

    // 64 hardware threads, 24 GB/s, 12 MB — the four-socket server
    // of the paper's Section 4.3 sizing discussion.
    const core::SystemCapacity capacity({
        {"cores", "threads", 64.0},
        {"memory-bandwidth", "GB/s", 24.0},
        {"cache-size", "MB", 12.0},
    });

    // Elasticities: a scale-out analytics job (loves cores), a
    // streaming ETL job (bandwidth), an in-memory KV store (cache),
    // and a balanced web tier. Core elasticity encodes Amdahl-style
    // diminishing returns from parallelism.
    core::AgentList agents;
    agents.emplace_back(
        "analytics", core::CobbDouglasUtility({0.70, 0.20, 0.10}));
    agents.emplace_back(
        "etl-stream", core::CobbDouglasUtility({0.25, 0.65, 0.10}));
    agents.emplace_back(
        "kv-store", core::CobbDouglasUtility({0.15, 0.15, 0.70}));
    agents.emplace_back(
        "web-tier", core::CobbDouglasUtility({0.34, 0.33, 0.33}));

    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);

    Table table({"tenant", "cores", "bandwidth (GB/s)",
                 "cache (MB)"});
    for (std::size_t i = 0; i < agents.size(); ++i) {
        table.addRow({agents[i].name(),
                      formatFixed(allocation.at(i, 0), 1),
                      formatFixed(allocation.at(i, 1), 2),
                      formatFixed(allocation.at(i, 2), 2)});
    }
    table.print(std::cout);

    const auto report =
        core::checkFairness(agents, capacity, allocation);
    std::cout << "\nSI: "
              << (report.sharingIncentives.satisfied ? "yes" : "NO")
              << "  EF: "
              << (report.envyFreeness.satisfied ? "yes" : "NO")
              << "  PE: "
              << (report.paretoEfficiency.satisfied ? "yes" : "NO")
              << "\n\n";

    // Strategy-proofness in the large holds in three dimensions too.
    Rng rng(4);
    core::AgentList crowd = agents;
    for (int i = 0; i < 60; ++i) {
        crowd.emplace_back("tenant-" + std::to_string(i),
                           core::CobbDouglasUtility(
                               {rng.uniform(0.05, 1.0),
                                rng.uniform(0.05, 1.0),
                                rng.uniform(0.05, 1.0)}));
    }
    const core::StrategicAnalysis analysis(crowd, capacity);
    const auto best = analysis.bestResponse(0);
    std::cout << "strategic audit with " << crowd.size()
              << " tenants: best-response gain = "
              << formatFixed((best.gainRatio - 1.0) * 100.0, 4)
              << "%, report deviation = "
              << formatFixed(best.reportDeviation, 4) << "\n";

    return report.allHold() && best.gainRatio < 1.01 ? 0 : 1;
}
