#include "agent_registry.hh"

#include <cctype>
#include <cmath>

#include "core/proportional_elasticity.hh"
#include "util/logging.hh"
#include "util/math.hh"

namespace ref::svc {

AgentRegistry::AgentRegistry(core::SystemCapacity capacity)
    : capacity_(std::move(capacity)), denominators_(capacity_.count())
{}

void
AgentRegistry::validate(const std::string &name,
                        const linalg::Vector &elasticities) const
{
    REF_REQUIRE(!name.empty(), "agent name must not be empty");
    for (char c : name) {
        REF_REQUIRE(!std::isspace(static_cast<unsigned char>(c)),
                    "agent name '" << name
                        << "' must not contain whitespace");
    }
    REF_REQUIRE(elasticities.size() == capacity_.count(),
                "agent '" << name << "' reports "
                    << elasticities.size()
                    << " elasticities, system has "
                    << capacity_.count() << " resources");
    for (std::size_t r = 0; r < elasticities.size(); ++r) {
        REF_REQUIRE(std::isfinite(elasticities[r]) &&
                        elasticities[r] > 0,
                    "agent '" << name << "' reports elasticity "
                        << elasticities[r] << " for resource " << r
                        << "; elasticities must be positive and "
                           "finite");
    }
}

void
AgentRegistry::admit(const std::string &name,
                     const linalg::Vector &elasticities,
                     std::uint64_t epoch)
{
    validate(name, elasticities);
    REF_REQUIRE(!contains(name),
                "agent '" << name << "' is already registered");

    RegisteredAgent agent;
    agent.name = name;
    agent.elasticities = elasticities;
    agent.rescaled = normalizeToUnitSum(elasticities);
    agent.admittedEpoch = epoch;
    for (std::size_t r = 0; r < capacity_.count(); ++r)
        denominators_[r].add(agent.rescaled[r]);

    index_.emplace(name, agents_.size());
    agents_.push_back(std::move(agent));
    ++churnEvents_;
}

void
AgentRegistry::depart(const std::string &name)
{
    const std::size_t position = indexOf(name);
    const RegisteredAgent &agent = agents_[position];
    for (std::size_t r = 0; r < capacity_.count(); ++r)
        denominators_[r].subtract(agent.rescaled[r]);

    agents_.erase(agents_.begin() + position);
    index_.erase(name);
    for (auto &entry : index_) {
        if (entry.second > position)
            --entry.second;
    }
    ++churnEvents_;
}

void
AgentRegistry::update(const std::string &name,
                      const linalg::Vector &elasticities)
{
    validate(name, elasticities);
    RegisteredAgent &agent = agents_[indexOf(name)];
    const linalg::Vector rescaled = normalizeToUnitSum(elasticities);
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        denominators_[r].subtract(agent.rescaled[r]);
        denominators_[r].add(rescaled[r]);
    }
    agent.elasticities = elasticities;
    agent.rescaled = rescaled;
    ++churnEvents_;
}

bool
AgentRegistry::contains(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

std::size_t
AgentRegistry::indexOf(const std::string &name) const
{
    const auto found = index_.find(name);
    REF_REQUIRE(found != index_.end(),
                "agent '" << name << "' is not registered");
    return found->second;
}

core::AgentList
AgentRegistry::agentList() const
{
    core::AgentList list;
    list.reserve(agents_.size());
    for (const auto &agent : agents_) {
        list.emplace_back(agent.name,
                          core::CobbDouglasUtility(agent.elasticities));
    }
    return list;
}

core::Allocation
AgentRegistry::allocate() const
{
    REF_REQUIRE(!empty(), "no agents to allocate to");
    core::Allocation allocation(agents_.size(), capacity_.count());
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        const double denominator = denominators_[r].round();
        REF_ASSERT(denominator > 0,
                   "re-scaled elasticities sum to zero for resource "
                       << r);
        // Same expression as the from-scratch mechanism, applied to
        // the same doubles: the exact denominators make the two
        // paths bit-identical.
        for (std::size_t i = 0; i < agents_.size(); ++i) {
            allocation.at(i, r) = agents_[i].rescaled[r] /
                                  denominator * capacity_.capacity(r);
        }
    }
    return allocation;
}

core::Allocation
AgentRegistry::allocateFromScratch() const
{
    REF_REQUIRE(!empty(), "no agents to allocate to");
    return core::ProportionalElasticityMechanism().allocate(
        agentList(), capacity_);
}

} // namespace ref::svc
