/**
 * @file
 * Operational metrics for the online allocation service.
 *
 * Counts churn (admits/departs/updates), queries and epochs, tracks
 * an epoch-latency histogram (power-of-two microsecond buckets), and
 * aggregates the per-epoch SI/EF property-check and incremental
 * self-check outcomes so a long-running service surfaces fairness
 * regressions as metrics rather than silent drift.
 */

#ifndef REF_SVC_SERVICE_METRICS_HH
#define REF_SVC_SERVICE_METRICS_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>

#include "svc/journal.hh"

namespace ref::svc {

struct EpochResult;

/** Immutable copy of the metrics at one instant. */
struct MetricsSnapshot
{
    std::uint64_t admits = 0;
    std::uint64_t departs = 0;
    std::uint64_t updates = 0;
    std::uint64_t queries = 0;
    std::uint64_t rejected = 0;  //!< Commands that threw FatalError.
    std::uint64_t epochs = 0;
    std::uint64_t enforcementUpdates = 0;  //!< Epochs that re-enforced.
    std::uint64_t hysteresisHolds = 0;     //!< Epochs held by hysteresis.
    std::uint64_t siViolations = 0;
    std::uint64_t efViolations = 0;
    std::uint64_t selfCheckFailures = 0;

    /**
     * Epoch latency histogram: bucket b counts epochs that took
     * < 2^b microseconds (the last bucket is unbounded).
     */
    static constexpr std::size_t kLatencyBuckets = 16;
    std::array<std::uint64_t, kLatencyBuckets> latencyBuckets{};
    std::uint64_t latencyMinNs = 0;
    std::uint64_t latencyMaxNs = 0;
    std::uint64_t latencyTotalNs = 0;

    /** Durability counters (all zero for a memory-only service). */
    JournalStats journal;
    /** How construction-time recovery went. */
    RecoveryInfo recovery;

    /** Mean epoch latency in nanoseconds; 0 before the first epoch. */
    double meanLatencyNs() const
    {
        return epochs == 0
                   ? 0.0
                   : static_cast<double>(latencyTotalNs) /
                         static_cast<double>(epochs);
    }
};

/**
 * Render the snapshot as deterministic-order "key=value" lines
 * (latency values are inherently run-dependent; everything else is
 * reproducible for a scripted session).
 */
void printMetrics(std::ostream &os, const MetricsSnapshot &snapshot);

/** Thread-safe metrics sink. */
class ServiceMetrics
{
  public:
    void recordAdmit();
    void recordDepart();
    void recordUpdate();
    void recordQuery();
    void recordRejected();
    void recordEpoch(const EpochResult &result);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    MetricsSnapshot data_;
};

} // namespace ref::svc

#endif // REF_SVC_SERVICE_METRICS_HH
