/**
 * @file
 * Operational metrics for the online allocation service.
 *
 * Counts churn (admits/departs/updates), queries and epochs, tracks
 * an epoch-latency histogram (power-of-two microsecond buckets), and
 * aggregates the per-epoch SI/EF property-check and incremental
 * self-check outcomes so a long-running service surfaces fairness
 * regressions as metrics rather than silent drift.
 *
 * Every value lives in an obs::MetricsRegistry owned by this object:
 * the legacy STATS key=value dump (printMetrics), the Prometheus and
 * JSON METRICS expositions, and MetricsSnapshot all read the same
 * registry, so they can never disagree. Journal and recovery
 * counters are mirrored into the registry (setJournal/setRecovery)
 * before any read, keeping one source of truth.
 */

#ifndef REF_SVC_SERVICE_METRICS_HH
#define REF_SVC_SERVICE_METRICS_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/metrics.hh"
#include "pool/pool_tree.hh"
#include "svc/journal.hh"

namespace ref::svc {

struct EpochResult;

/** Immutable copy of the metrics at one instant. */
struct MetricsSnapshot
{
    std::uint64_t admits = 0;
    std::uint64_t departs = 0;
    std::uint64_t updates = 0;
    std::uint64_t queries = 0;
    std::uint64_t rejected = 0;  //!< Commands that threw FatalError.
    std::uint64_t epochs = 0;
    std::uint64_t enforcementUpdates = 0;  //!< Epochs that re-enforced.
    std::uint64_t hysteresisHolds = 0;     //!< Epochs held by hysteresis.
    std::uint64_t siViolations = 0;
    std::uint64_t efViolations = 0;
    std::uint64_t selfCheckFailures = 0;
    std::uint64_t poolCreates = 0;  //!< POOL CREATEs accepted.
    std::uint64_t poolAssigns = 0;  //!< POOL ASSIGNs accepted.
    std::uint64_t pools = 0;        //!< Live pools (root included).

    /**
     * Epoch latency histogram: bucket b counts epochs that took
     * < 2^b microseconds (the last bucket is unbounded).
     */
    static constexpr std::size_t kLatencyBuckets = 16;
    std::array<std::uint64_t, kLatencyBuckets> latencyBuckets{};
    /** 0 until the first epoch (the registry histogram keeps a
     *  sentinel internally so the true first minimum is recorded). */
    std::uint64_t latencyMinNs = 0;
    std::uint64_t latencyMaxNs = 0;
    std::uint64_t latencyTotalNs = 0;

    /** Durability counters (all zero for a memory-only service). */
    JournalStats journal;
    /** How construction-time recovery went. */
    RecoveryInfo recovery;

    /** Mean epoch latency in nanoseconds; 0 before the first epoch. */
    double meanLatencyNs() const
    {
        return epochs == 0
                   ? 0.0
                   : static_cast<double>(latencyTotalNs) /
                         static_cast<double>(epochs);
    }
};

/**
 * Render the snapshot as deterministic-order "key=value" lines
 * (latency values are inherently run-dependent; everything else is
 * reproducible for a scripted session).
 */
void printMetrics(std::ostream &os, const MetricsSnapshot &snapshot);

/** Thread-safe metrics sink backed by an obs::MetricsRegistry. */
class ServiceMetrics
{
  public:
    ServiceMetrics();

    void recordAdmit() { admits_.add(); }
    void recordDepart() { departs_.add(); }
    void recordUpdate() { updates_.add(); }
    void recordQuery() { queries_.add(); }
    void recordRejected() { rejected_.add(); }
    void recordPoolCreate() { poolCreates_.add(); }
    void recordPoolAssign() { poolAssigns_.add(); }
    void recordEpoch(const EpochResult &result);

    /** Labelled series beyond this many pools are not exported
     *  (counts and the first pools still are). */
    static constexpr std::size_t kMaxPoolGauges = 256;

    /**
     * Publish per-pool gauges: ref_pool_agents/ref_pool_weight
     * labelled {pool="<path>"} and ref_pool_share additionally
     * labelled by resource. @p fractions parallels @p views (pool
     * creation order). Pool paths need no label-escaping: the tree
     * rejects '"', '\', '{', '}' and '=' at validation.
     */
    void setPoolGauges(const std::vector<pool::PoolView> &views,
                       const std::vector<linalg::Vector> &fractions);

    /** Mirror the journal's counters into the registry (gauges,
     *  absolute values) so expositions include durability state. */
    void setJournal(const JournalStats &stats);

    /** Mirror recovery info into the registry. */
    void setRecovery(const RecoveryInfo &info);

    /** Current fairness margins/drift as scrapeable gauges. */
    void setFairnessGauges(double si_margin, double ef_margin,
                           double l1_drift);

    MetricsSnapshot snapshot() const;

    /** The backing registry, for the METRICS expositions. */
    const obs::MetricsRegistry &registry() const { return registry_; }

  private:
    obs::MetricsRegistry registry_;

    obs::Counter &admits_;
    obs::Counter &departs_;
    obs::Counter &updates_;
    obs::Counter &queries_;
    obs::Counter &rejected_;
    obs::Counter &epochs_;
    obs::Counter &enforcementUpdates_;
    obs::Counter &hysteresisHolds_;
    obs::Counter &siViolations_;
    obs::Counter &efViolations_;
    obs::Counter &selfCheckFailures_;
    obs::Counter &poolCreates_;
    obs::Counter &poolAssigns_;
    obs::Gauge &pools_;
    obs::Histogram &latencyUs_;  //!< Legacy 16-bucket STATS shape.
    obs::Histogram &latencyNs_;  //!< ns min/max/sum source of truth.

    obs::Gauge &journalEnabled_;
    obs::Gauge &journalRecords_;
    obs::Gauge &journalBytes_;
    obs::Gauge &journalFsyncs_;
    obs::Gauge &journalAppendErrors_;
    obs::Gauge &journalDegraded_;
    obs::Gauge &journalDegradedSkipped_;
    obs::Gauge &journalReopens_;
    obs::Gauge &journalSnapshots_;
    obs::Gauge &journalSnapshotFailures_;
    obs::Gauge &journalCommitted_;
    obs::Gauge &journalPending_;

    obs::Gauge &recoveryOutcome_;
    obs::Gauge &recoverySnapshotLoaded_;
    obs::Gauge &recoveryGeneration_;
    obs::Gauge &recoveryReplayedRecords_;
    obs::Gauge &recoveryTruncatedBytes_;

    obs::Gauge &fairnessSiMargin_;
    obs::Gauge &fairnessEfMargin_;
    obs::Gauge &fairnessL1Drift_;
};

} // namespace ref::svc

#endif // REF_SVC_SERVICE_METRICS_HH
