/**
 * @file
 * Failpoint registry for fault-injection testing.
 *
 * Durable-IO call sites in the journal/snapshot layer (see the site
 * names in svc/journal.cc) consult this registry before touching the
 * OS, so tests can inject short writes, ENOSPC/EIO on write or
 * fsync, and crash-at-point — deterministically, without root, and
 * without a real failing disk. Production builds keep the registry
 * compiled in but empty: an unarmed lookup is one mutex-guarded map
 * probe on a cold path (file IO), which is noise next to the write
 * itself.
 *
 * Crash semantics come in two flavours:
 *  - throwing (default): the shim writes a partial frame, then
 *    throws CrashInjected. In-process tests catch it, abandon the
 *    service object, and recover from the directory exactly as a
 *    restarted process would — the on-disk bytes are identical to a
 *    real mid-write death.
 *  - process exit: the shim writes the partial frame, then calls
 *    _Exit(kCrashExitCode). CLI-level tests (REF_FAILPOINTS=...)
 *    use this to kill a real ref_serve.
 */

#ifndef REF_SVC_FAILPOINTS_HH
#define REF_SVC_FAILPOINTS_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace ref::svc {

/** Thrown by a Crash-armed failpoint in throwing mode. */
class CrashInjected : public std::runtime_error
{
  public:
    explicit CrashInjected(const std::string &site)
        : std::runtime_error("crash injected at failpoint '" + site +
                             "'"),
          site_(site)
    {}

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** Exit status a process-exit crash failpoint dies with. */
inline constexpr int kCrashExitCode = 137;

/** What an armed failpoint does when it fires. */
enum class FailAction {
    Error,       //!< The IO call fails with spec.errnoValue.
    ShortWrite,  //!< Half the bytes land, then errnoValue failure.
    Crash,       //!< Half the bytes land, then crash (see above).
};

/** One armed failpoint. */
struct FailpointSpec
{
    FailAction action = FailAction::Error;
    /** errno reported for Error/ShortWrite (EIO, ENOSPC, ...). */
    int errnoValue = 5;  // EIO
    /** Successful passes before the first firing (0 = fire now). */
    std::uint64_t skip = 0;
    /** Firings before auto-disarm; 0 = fire forever. */
    std::uint64_t count = 1;
    /** Crash flavour: exit the process instead of throwing. */
    bool exitProcess = false;
};

/** What the shim should do for the current IO call. */
struct FailpointHit
{
    FailAction action;
    int errnoValue;
    bool exitProcess;
};

/**
 * Process-global registry of armed failpoints, keyed by site name.
 * Thread-safe; tests arm/clear around the code under test.
 */
class Failpoints
{
  public:
    static Failpoints &instance();

    void arm(const std::string &site, FailpointSpec spec);
    void clear(const std::string &site);
    void clearAll();

    /**
     * Called by the IO shim at @p site: counts the pass and returns
     * the action to inject, or nullopt to proceed normally.
     */
    std::optional<FailpointHit> check(const std::string &site);

    /** Lifetime count of injected faults (all sites). */
    std::uint64_t firedCount() const;

    /**
     * Arm failpoints from a spec string (the REF_FAILPOINTS
     * environment variable):
     *
     *   site=action[@skip][xCount][,site=action...]
     *
     * with action one of eio | enospc | short | crash | exit
     * (exit = Crash with exitProcess). "@skip" passes that many
     * calls first; "xCount" fires that many times (x0 = forever).
     * E.g. "journal.write=exit@7" kills the process on the 8th
     * journal write. Throws FatalError on a malformed spec.
     */
    void armFromSpec(const std::string &spec);

  private:
    struct Armed
    {
        FailpointSpec spec;
        std::uint64_t passes = 0;  //!< Calls seen so far.
        std::uint64_t fired = 0;   //!< Faults injected so far.
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Armed> sites_;
    std::uint64_t fired_ = 0;
};

} // namespace ref::svc

#endif // REF_SVC_FAILPOINTS_HH
