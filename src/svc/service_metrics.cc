#include "service_metrics.hh"

#include <algorithm>
#include <ostream>

#include "svc/epoch_driver.hh"

namespace ref::svc {

ServiceMetrics::ServiceMetrics()
    : admits_(registry_.counter("ref_admits_total",
                                "Agents admitted")),
      departs_(registry_.counter("ref_departs_total",
                                 "Agents departed")),
      updates_(registry_.counter("ref_updates_total",
                                 "Elasticity updates applied")),
      queries_(registry_.counter("ref_queries_total",
                                 "Snapshot queries served")),
      rejected_(registry_.counter(
          "ref_rejected_total",
          "Commands rejected at the protocol layer")),
      epochs_(registry_.counter("ref_epochs_total",
                                "Epoch ticks completed")),
      enforcementUpdates_(registry_.counter(
          "ref_enforcement_updates_total",
          "Epochs that re-programmed enforcement")),
      hysteresisHolds_(registry_.counter(
          "ref_hysteresis_holds_total",
          "Epochs held on the previous enforcement by hysteresis")),
      siViolations_(registry_.counter(
          "ref_si_violations_total",
          "Epochs whose sharing-incentives check failed")),
      efViolations_(registry_.counter(
          "ref_ef_violations_total",
          "Epochs whose envy-freeness check failed")),
      selfCheckFailures_(registry_.counter(
          "ref_selfcheck_failures_total",
          "Epochs whose incremental allocation diverged from the "
          "from-scratch recompute")),
      poolCreates_(registry_.counter("ref_pool_creates_total",
                                     "Pools created")),
      poolAssigns_(registry_.counter(
          "ref_pool_assigns_total",
          "Agent-to-pool assignments applied")),
      pools_(registry_.gauge("ref_pools",
                             "Live pools, the root included")),
      latencyUs_(registry_.histogram(
          "ref_epoch_latency_us",
          "Epoch compute latency in microseconds (log-2 buckets)",
          MetricsSnapshot::kLatencyBuckets)),
      latencyNs_(registry_.histogram(
          "ref_epoch_latency_ns",
          "Epoch compute latency in nanoseconds (log-2 buckets)",
          48)),
      journalEnabled_(registry_.gauge(
          "ref_journal_enabled", "1 when a write-ahead log is on")),
      journalRecords_(registry_.gauge(
          "ref_journal_records",
          "Records committed to the write-ahead log")),
      journalBytes_(registry_.gauge(
          "ref_journal_bytes", "Framed bytes written to the wal")),
      journalFsyncs_(registry_.gauge("ref_journal_fsyncs",
                                     "fsync calls on the wal")),
      journalAppendErrors_(registry_.gauge(
          "ref_journal_append_errors",
          "IO failures on wal append or fsync")),
      journalDegraded_(registry_.gauge(
          "ref_journal_degraded",
          "1 while the journal is degraded (IO errors)")),
      journalDegradedSkipped_(registry_.gauge(
          "ref_journal_degraded_skipped",
          "Accepted records skipped while degraded")),
      journalReopens_(registry_.gauge(
          "ref_journal_reopens",
          "Successful degraded-mode recoveries")),
      journalSnapshots_(registry_.gauge(
          "ref_journal_snapshots", "Snapshot compactions completed")),
      journalSnapshotFailures_(registry_.gauge(
          "ref_journal_snapshot_failures",
          "Snapshot compactions that failed")),
      journalCommitted_(registry_.gauge(
          "ref_journal_committed",
          "Records known durable (group-commit watermark)")),
      journalPending_(registry_.gauge(
          "ref_journal_pending",
          "Appended records awaiting their group-commit fsync")),
      recoveryOutcome_(registry_.gauge(
          "ref_recovery_outcome_code",
          "Recovery outcome: 0 disabled, 1 fresh, 2 clean, "
          "3 truncated tail, 4 discarded wal")),
      recoverySnapshotLoaded_(registry_.gauge(
          "ref_recovery_snapshot_loaded",
          "1 when recovery loaded a snapshot file")),
      recoveryGeneration_(registry_.gauge(
          "ref_recovery_generation",
          "Journal generation active after recovery")),
      recoveryReplayedRecords_(registry_.gauge(
          "ref_recovery_replayed_records",
          "Wal records replayed during recovery")),
      recoveryTruncatedBytes_(registry_.gauge(
          "ref_recovery_truncated_bytes",
          "Torn/corrupt wal tail bytes discarded during recovery")),
      fairnessSiMargin_(registry_.gauge(
          "ref_fairness_si_margin",
          "Last epoch's min over agents of u_i(REF)/u_i(equal "
          "split); >= 1 means sharing incentives hold")),
      fairnessEfMargin_(registry_.gauge(
          "ref_fairness_ef_margin",
          "Last epoch's min over agent pairs of u_i(x_i)/u_i(x_j); "
          ">= 1 means the allocation is envy-free")),
      fairnessL1Drift_(registry_.gauge(
          "ref_fairness_l1_drift",
          "L1 distance between the last two epochs' allocations"))
{
    fairnessSiMargin_.set(1.0);
    fairnessEfMargin_.set(1.0);
}

void
ServiceMetrics::recordEpoch(const EpochResult &result)
{
    const auto nanoseconds = static_cast<std::uint64_t>(
        std::max<std::chrono::nanoseconds::rep>(
            result.latency.count(), 0));

    epochs_.add();
    if (result.enforcementChanged)
        enforcementUpdates_.add();
    else
        hysteresisHolds_.add();
    if (result.propertiesChecked) {
        if (!result.sharingIncentives.satisfied)
            siViolations_.add();
        if (!result.envyFreeness.satisfied)
            efViolations_.add();
    }
    if (!result.incrementalMatchesScratch)
        selfCheckFailures_.add();

    latencyUs_.observe(nanoseconds / 1000);
    latencyNs_.observe(nanoseconds);
}

void
ServiceMetrics::setPoolGauges(
    const std::vector<pool::PoolView> &views,
    const std::vector<linalg::Vector> &fractions)
{
    pools_.set(static_cast<double>(views.size()));
    const std::size_t limit =
        std::min(views.size(), kMaxPoolGauges);
    for (std::size_t i = 0; i < limit; ++i) {
        const pool::PoolView &view = views[i];
        const std::string label = "{pool=\"" + view.path + "\"}";
        registry_
            .gauge("ref_pool_agents" + label,
                   "Live agents in the pool's subtree")
            .set(static_cast<double>(view.agents));
        registry_
            .gauge("ref_pool_weight" + label,
                   "The pool's configured weight")
            .set(view.weight);
        if (i >= fractions.size())
            continue;
        for (std::size_t r = 0; r < fractions[i].size(); ++r) {
            registry_
                .gauge("ref_pool_share{pool=\"" + view.path +
                           "\",resource=\"r" + std::to_string(r) +
                           "\"}",
                       "Capacity fraction held by the pool's "
                       "subtree")
                .set(fractions[i][r]);
        }
    }
}

void
ServiceMetrics::setJournal(const JournalStats &stats)
{
    journalEnabled_.set(stats.enabled ? 1 : 0);
    journalRecords_.set(static_cast<double>(stats.records));
    journalBytes_.set(static_cast<double>(stats.bytes));
    journalFsyncs_.set(static_cast<double>(stats.fsyncs));
    journalAppendErrors_.set(
        static_cast<double>(stats.appendErrors));
    journalDegraded_.set(stats.degraded ? 1 : 0);
    journalDegradedSkipped_.set(
        static_cast<double>(stats.degradedSkipped));
    journalReopens_.set(static_cast<double>(stats.reopens));
    journalSnapshots_.set(static_cast<double>(stats.snapshots));
    journalSnapshotFailures_.set(
        static_cast<double>(stats.snapshotFailures));
    journalCommitted_.set(static_cast<double>(stats.committed));
    journalPending_.set(static_cast<double>(stats.pending));
}

void
ServiceMetrics::setRecovery(const RecoveryInfo &info)
{
    recoveryOutcome_.set(static_cast<double>(info.outcome));
    recoverySnapshotLoaded_.set(info.snapshotLoaded ? 1 : 0);
    recoveryGeneration_.set(static_cast<double>(info.generation));
    recoveryReplayedRecords_.set(
        static_cast<double>(info.replayedRecords));
    recoveryTruncatedBytes_.set(
        static_cast<double>(info.truncatedBytes));
}

void
ServiceMetrics::setFairnessGauges(double si_margin, double ef_margin,
                                  double l1_drift)
{
    fairnessSiMargin_.set(si_margin);
    fairnessEfMargin_.set(ef_margin);
    fairnessL1Drift_.set(l1_drift);
}

MetricsSnapshot
ServiceMetrics::snapshot() const
{
    MetricsSnapshot data;
    data.admits = admits_.value();
    data.departs = departs_.value();
    data.updates = updates_.value();
    data.queries = queries_.value();
    data.rejected = rejected_.value();
    data.epochs = epochs_.value();
    data.enforcementUpdates = enforcementUpdates_.value();
    data.hysteresisHolds = hysteresisHolds_.value();
    data.siViolations = siViolations_.value();
    data.efViolations = efViolations_.value();
    data.selfCheckFailures = selfCheckFailures_.value();
    data.poolCreates = poolCreates_.value();
    data.poolAssigns = poolAssigns_.value();
    data.pools = static_cast<std::uint64_t>(pools_.value());

    const obs::Histogram::Snapshot us = latencyUs_.snapshot();
    for (std::size_t b = 0;
         b < MetricsSnapshot::kLatencyBuckets && b < us.counts.size();
         ++b)
        data.latencyBuckets[b] = us.counts[b];
    const obs::Histogram::Snapshot ns = latencyNs_.snapshot();
    data.latencyMinNs = ns.min;
    data.latencyMaxNs = ns.max;
    data.latencyTotalNs = ns.sum;

    JournalStats &j = data.journal;
    j.enabled = journalEnabled_.value() != 0;
    j.records = static_cast<std::uint64_t>(journalRecords_.value());
    j.bytes = static_cast<std::uint64_t>(journalBytes_.value());
    j.fsyncs = static_cast<std::uint64_t>(journalFsyncs_.value());
    j.appendErrors =
        static_cast<std::uint64_t>(journalAppendErrors_.value());
    j.degraded = journalDegraded_.value() != 0;
    j.degradedSkipped =
        static_cast<std::uint64_t>(journalDegradedSkipped_.value());
    j.reopens = static_cast<std::uint64_t>(journalReopens_.value());
    j.snapshots =
        static_cast<std::uint64_t>(journalSnapshots_.value());
    j.snapshotFailures = static_cast<std::uint64_t>(
        journalSnapshotFailures_.value());
    j.committed =
        static_cast<std::uint64_t>(journalCommitted_.value());
    j.pending = static_cast<std::uint64_t>(journalPending_.value());

    RecoveryInfo &r = data.recovery;
    r.outcome = static_cast<RecoveryOutcome>(
        static_cast<int>(recoveryOutcome_.value()));
    r.snapshotLoaded = recoverySnapshotLoaded_.value() != 0;
    r.generation =
        static_cast<std::uint64_t>(recoveryGeneration_.value());
    r.replayedRecords = static_cast<std::uint64_t>(
        recoveryReplayedRecords_.value());
    r.truncatedBytes = static_cast<std::uint64_t>(
        recoveryTruncatedBytes_.value());
    return data;
}

void
printMetrics(std::ostream &os, const MetricsSnapshot &snapshot)
{
    os << "admits=" << snapshot.admits << "\n"
       << "departs=" << snapshot.departs << "\n"
       << "updates=" << snapshot.updates << "\n"
       << "queries=" << snapshot.queries << "\n"
       << "rejected=" << snapshot.rejected << "\n"
       << "epochs=" << snapshot.epochs << "\n"
       << "enforcement_updates=" << snapshot.enforcementUpdates
       << "\n"
       << "hysteresis_holds=" << snapshot.hysteresisHolds << "\n"
       << "si_violations=" << snapshot.siViolations << "\n"
       << "ef_violations=" << snapshot.efViolations << "\n"
       << "selfcheck_failures=" << snapshot.selfCheckFailures << "\n"
       << "pool_creates=" << snapshot.poolCreates << "\n"
       << "pool_assigns=" << snapshot.poolAssigns << "\n"
       << "pools=" << snapshot.pools << "\n";
    os << "epoch_latency_us_histogram=";
    for (std::size_t b = 0; b < MetricsSnapshot::kLatencyBuckets;
         ++b) {
        if (b > 0)
            os << ",";
        os << snapshot.latencyBuckets[b];
    }
    os << "\n"
       << "epoch_latency_ns_min=" << snapshot.latencyMinNs << "\n"
       << "epoch_latency_ns_max=" << snapshot.latencyMaxNs << "\n"
       << "epoch_latency_ns_mean="
       << static_cast<std::uint64_t>(snapshot.meanLatencyNs()) << "\n";
    const JournalStats &j = snapshot.journal;
    os << "journal_enabled=" << (j.enabled ? 1 : 0) << "\n"
       << "journal_records=" << j.records << "\n"
       << "journal_bytes=" << j.bytes << "\n"
       << "journal_fsyncs=" << j.fsyncs << "\n"
       << "journal_append_errors=" << j.appendErrors << "\n"
       << "journal_degraded=" << (j.degraded ? 1 : 0) << "\n"
       << "journal_degraded_skipped=" << j.degradedSkipped << "\n"
       << "journal_reopens=" << j.reopens << "\n"
       << "journal_snapshots=" << j.snapshots << "\n"
       << "journal_snapshot_failures=" << j.snapshotFailures << "\n"
       << "journal_committed=" << j.committed << "\n"
       << "journal_pending=" << j.pending << "\n";
    const RecoveryInfo &r = snapshot.recovery;
    os << "recovery_outcome=" << toString(r.outcome) << "\n"
       << "recovery_snapshot_loaded=" << (r.snapshotLoaded ? 1 : 0)
       << "\n"
       << "recovery_generation=" << r.generation << "\n"
       << "recovery_replayed_records=" << r.replayedRecords << "\n"
       << "recovery_truncated_bytes=" << r.truncatedBytes << "\n";
}

} // namespace ref::svc
