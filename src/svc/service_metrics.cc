#include "service_metrics.hh"

#include <algorithm>
#include <ostream>

#include "svc/epoch_driver.hh"

namespace ref::svc {

void
ServiceMetrics::recordAdmit()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++data_.admits;
}

void
ServiceMetrics::recordDepart()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++data_.departs;
}

void
ServiceMetrics::recordUpdate()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++data_.updates;
}

void
ServiceMetrics::recordQuery()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++data_.queries;
}

void
ServiceMetrics::recordRejected()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++data_.rejected;
}

void
ServiceMetrics::recordEpoch(const EpochResult &result)
{
    const auto nanoseconds = static_cast<std::uint64_t>(
        std::max<std::chrono::nanoseconds::rep>(
            result.latency.count(), 0));

    std::lock_guard<std::mutex> lock(mutex_);
    ++data_.epochs;
    if (result.enforcementChanged)
        ++data_.enforcementUpdates;
    else
        ++data_.hysteresisHolds;
    if (result.propertiesChecked) {
        if (!result.sharingIncentives.satisfied)
            ++data_.siViolations;
        if (!result.envyFreeness.satisfied)
            ++data_.efViolations;
    }
    if (!result.incrementalMatchesScratch)
        ++data_.selfCheckFailures;

    const std::uint64_t microseconds = nanoseconds / 1000;
    std::size_t bucket = 0;
    while (bucket + 1 < MetricsSnapshot::kLatencyBuckets &&
           microseconds >= (std::uint64_t{1} << bucket))
        ++bucket;
    ++data_.latencyBuckets[bucket];
    data_.latencyTotalNs += nanoseconds;
    data_.latencyMaxNs = std::max(data_.latencyMaxNs, nanoseconds);
    data_.latencyMinNs = data_.epochs == 1
                             ? nanoseconds
                             : std::min(data_.latencyMinNs,
                                        nanoseconds);
}

MetricsSnapshot
ServiceMetrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return data_;
}

void
printMetrics(std::ostream &os, const MetricsSnapshot &snapshot)
{
    os << "admits=" << snapshot.admits << "\n"
       << "departs=" << snapshot.departs << "\n"
       << "updates=" << snapshot.updates << "\n"
       << "queries=" << snapshot.queries << "\n"
       << "rejected=" << snapshot.rejected << "\n"
       << "epochs=" << snapshot.epochs << "\n"
       << "enforcement_updates=" << snapshot.enforcementUpdates
       << "\n"
       << "hysteresis_holds=" << snapshot.hysteresisHolds << "\n"
       << "si_violations=" << snapshot.siViolations << "\n"
       << "ef_violations=" << snapshot.efViolations << "\n"
       << "selfcheck_failures=" << snapshot.selfCheckFailures << "\n";
    os << "epoch_latency_us_histogram=";
    for (std::size_t b = 0; b < MetricsSnapshot::kLatencyBuckets;
         ++b) {
        if (b > 0)
            os << ",";
        os << snapshot.latencyBuckets[b];
    }
    os << "\n"
       << "epoch_latency_ns_min=" << snapshot.latencyMinNs << "\n"
       << "epoch_latency_ns_max=" << snapshot.latencyMaxNs << "\n"
       << "epoch_latency_ns_mean="
       << static_cast<std::uint64_t>(snapshot.meanLatencyNs()) << "\n";
    const JournalStats &j = snapshot.journal;
    os << "journal_enabled=" << (j.enabled ? 1 : 0) << "\n"
       << "journal_records=" << j.records << "\n"
       << "journal_bytes=" << j.bytes << "\n"
       << "journal_fsyncs=" << j.fsyncs << "\n"
       << "journal_append_errors=" << j.appendErrors << "\n"
       << "journal_degraded=" << (j.degraded ? 1 : 0) << "\n"
       << "journal_degraded_skipped=" << j.degradedSkipped << "\n"
       << "journal_reopens=" << j.reopens << "\n"
       << "journal_snapshots=" << j.snapshots << "\n"
       << "journal_snapshot_failures=" << j.snapshotFailures << "\n";
    const RecoveryInfo &r = snapshot.recovery;
    os << "recovery_outcome=" << toString(r.outcome) << "\n"
       << "recovery_snapshot_loaded=" << (r.snapshotLoaded ? 1 : 0)
       << "\n"
       << "recovery_generation=" << r.generation << "\n"
       << "recovery_replayed_records=" << r.replayedRecords << "\n"
       << "recovery_truncated_bytes=" << r.truncatedBytes << "\n";
}

} // namespace ref::svc
