#include "failpoints.hh"

#include <cctype>
#include <cerrno>
#include <sstream>

#include "util/logging.hh"

namespace ref::svc {

Failpoints &
Failpoints::instance()
{
    static Failpoints registry;
    return registry;
}

void
Failpoints::arm(const std::string &site, FailpointSpec spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_[site] = Armed{spec, 0, 0};
}

void
Failpoints::clear(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_.erase(site);
}

void
Failpoints::clearAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    sites_.clear();
}

std::uint64_t
Failpoints::firedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fired_;
}

std::optional<FailpointHit>
Failpoints::check(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = sites_.find(site);
    if (found == sites_.end())
        return std::nullopt;
    Armed &armed = found->second;
    if (armed.passes < armed.spec.skip) {
        ++armed.passes;
        return std::nullopt;
    }
    ++armed.passes;
    ++armed.fired;
    ++fired_;
    const FailpointHit hit{armed.spec.action, armed.spec.errnoValue,
                           armed.spec.exitProcess};
    if (armed.spec.count != 0 && armed.fired >= armed.spec.count)
        sites_.erase(found);
    return hit;
}

void
Failpoints::armFromSpec(const std::string &spec)
{
    std::stringstream entries(spec);
    std::string entry;
    while (std::getline(entries, entry, ',')) {
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        REF_REQUIRE(eq != std::string::npos && eq > 0,
                    "failpoint entry '" << entry
                        << "' is not site=action");
        const std::string site = entry.substr(0, eq);
        const std::string rest = entry.substr(eq + 1);

        // The action name is the leading run of letters ("exit"
        // contains an 'x', so modifiers are parsed positionally
        // after it, never searched for).
        std::size_t cursor = 0;
        while (cursor < rest.size() &&
               std::isalpha(
                   static_cast<unsigned char>(rest[cursor])))
            ++cursor;
        const std::string action = rest.substr(0, cursor);

        FailpointSpec armed;
        const auto parseDigits = [&](std::uint64_t &into) {
            const std::size_t start = cursor;
            while (cursor < rest.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(rest[cursor])))
                ++cursor;
            REF_REQUIRE(cursor > start,
                        "failpoint entry '"
                            << entry << "' has a modifier with no "
                            << "digits");
            into = std::stoull(rest.substr(start, cursor - start));
        };
        while (cursor < rest.size()) {
            if (rest[cursor] == '@') {
                ++cursor;
                parseDigits(armed.skip);
            } else if (rest[cursor] == 'x') {
                ++cursor;
                parseDigits(armed.count);
            } else {
                REF_FATAL("failpoint entry '"
                          << entry << "' has unexpected text '"
                          << rest.substr(cursor) << "'");
            }
        }

        if (action == "eio") {
            armed.action = FailAction::Error;
            armed.errnoValue = EIO;
        } else if (action == "enospc") {
            armed.action = FailAction::Error;
            armed.errnoValue = ENOSPC;
        } else if (action == "short") {
            armed.action = FailAction::ShortWrite;
            armed.errnoValue = ENOSPC;
        } else if (action == "crash") {
            armed.action = FailAction::Crash;
        } else if (action == "exit") {
            armed.action = FailAction::Crash;
            armed.exitProcess = true;
        } else {
            REF_FATAL("failpoint entry '"
                      << entry << "' has unknown action '" << action
                      << "' (want eio|enospc|short|crash|exit)");
        }
        arm(site, armed);
    }
}

} // namespace ref::svc
