#include "enforcement_bridge.hh"

#include "util/logging.hh"

namespace ref::svc {

EnforcementPlan
buildEnforcementPlan(const std::vector<std::string> &agents,
                     const core::Allocation &allocation,
                     const core::SystemCapacity &capacity,
                     unsigned associativity)
{
    REF_REQUIRE(capacity.count() == 2,
                "enforcement covers the bandwidth+cache pair; got "
                    << capacity.count() << " resources");
    REF_REQUIRE(associativity >= 1 && associativity <= 64,
                "associativity " << associativity
                    << " outside the 1..64 mask width");

    EnforcementPlan plan;
    if (agents.empty())
        return plan;

    REF_REQUIRE(allocation.agents() == agents.size() &&
                    allocation.resources() == capacity.count(),
                "allocation is " << allocation.agents() << "x"
                    << allocation.resources() << ", expected "
                    << agents.size() << "x" << capacity.count());

    plan.agents = agents;
    plan.wfqWeights.reserve(agents.size());
    std::vector<double> cacheFractions;
    cacheFractions.reserve(agents.size());
    for (std::size_t i = 0; i < agents.size(); ++i) {
        plan.wfqWeights.push_back(
            allocation.at(i, kBandwidthResource) /
            capacity.capacity(kBandwidthResource));
        cacheFractions.push_back(
            allocation.at(i, kCacheResource) /
            capacity.capacity(kCacheResource));
    }

    if (agents.size() <= associativity) {
        plan.partition =
            sched::partitionWays(cacheFractions, associativity);
        plan.hasPartition = true;
    } else {
        // More co-runners than ways: way partitioning cannot give
        // everyone a way, so enforcement must fall back to shared
        // LRU for the cache while WFQ still shapes bandwidth.
        plan.partitionNote =
            std::to_string(agents.size()) + " agents exceed " +
            std::to_string(associativity) +
            " ways; cache left unpartitioned";
    }
    return plan;
}

} // namespace ref::svc
