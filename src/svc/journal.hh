/**
 * @file
 * Write-ahead journal for the online allocation service.
 *
 * Every accepted mutation (ADMIT/UPDATE/DEPART) and every epoch tick
 * is appended to a CRC32-framed log (util/record_io.hh) in the
 * journal directory, so a restarted service replays to bit-identical
 * registry and epoch state. Layout:
 *
 *   <dir>/snapshot.ref   full service state at a record boundary
 *   <dir>/wal.ref        records accepted since that snapshot
 *
 * Both carry a generation number: compaction writes snapshot
 * generation g+1 (tmp + fsync + rename + directory fsync), then
 * truncates the wal and stamps it g+1 via a Begin record. A crash
 * between the two leaves a wal whose generation trails the
 * snapshot's; recovery discards it — its records are already in the
 * snapshot — so no record is ever applied twice.
 *
 * Runtime IO errors (EIO/ENOSPC on write or fsync, injectable via
 * svc/failpoints.hh) never take the service down: the journal enters
 * a degraded mode — appends are skipped and counted — and retries
 * re-opening with exponential backoff (capped at retryBackoffMax and
 * jittered, so a recovered disk is re-probed within one bounded
 * window and a fleet of degraded journals does not probe in
 * lockstep). Because skipped records are lost, re-opening goes
 * through a fresh snapshot (compaction), which re-captures the full
 * state before journaling resumes.
 */

#ifndef REF_SVC_JOURNAL_HH
#define REF_SVC_JOURNAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ref::svc {

/** Durability knobs. */
struct JournalConfig
{
    /** Journal directory; empty disables journaling entirely. */
    std::string directory;
    /**
     * fsync the wal after every Nth appended record; 1 makes every
     * record durable before the reply, 0 never syncs (the OS decides;
     * crash loses the page-cache tail but never corrupts — recovery
     * truncates at the first torn frame).
     */
    std::uint64_t fsyncEvery = 1;
    /** Records between snapshot compactions; 0 compacts only at
     *  open/resync. */
    std::uint64_t snapshotEvery = 1024;
    /** Skipped records before the first degraded-mode reopen try. */
    std::uint64_t retryBackoffStart = 4;
    /** Backoff doubles per failed reopen up to this cap. */
    std::uint64_t retryBackoffMax = 512;
    /**
     * Group commit: appended bytes that force an fsync. Non-zero
     * (either group knob) switches the journal into group-commit
     * mode — append() never syncs inline on fsyncEvery; instead the
     * batch is flushed when it reaches @ref groupBytes, when the
     * oldest pending record reaches @ref groupUsec of age, or when
     * the owner calls barrier() before acknowledging clients.
     */
    std::uint64_t groupBytes = 0;
    /** Group commit: max age (µs) of an unsynced record. */
    std::uint64_t groupUsec = 0;

    bool enabled() const { return !directory.empty(); }
    bool groupCommit() const
    {
        return groupBytes > 0 || groupUsec > 0;
    }
};

/** Journal-side counters surfaced through ServiceMetrics/STATS. */
struct JournalStats
{
    bool enabled = false;
    std::uint64_t records = 0;  //!< Records committed to the wal.
    std::uint64_t bytes = 0;    //!< Framed bytes written.
    std::uint64_t fsyncs = 0;
    std::uint64_t appendErrors = 0;  //!< IO failures on append/sync.
    bool degraded = false;
    /** Accepted records skipped while degraded (lost to the log;
     *  re-captured by the resync snapshot on reopen). */
    std::uint64_t degradedSkipped = 0;
    std::uint64_t reopens = 0;    //!< Successful degraded recoveries.
    std::uint64_t snapshots = 0;  //!< Compactions completed.
    std::uint64_t snapshotFailures = 0;
    /**
     * Commit-index watermark: records known durable (covered by an
     * fsync). `records - committed` is the in-flight group-commit
     * batch; barrier() drives it to zero before any client ack.
     */
    std::uint64_t committed = 0;
    std::uint64_t pending = 0;  //!< records - committed, for STATS.
};

/** How the last recovery ended. */
enum class RecoveryOutcome {
    Disabled,       //!< Journaling off.
    Fresh,          //!< No prior state in the directory.
    Clean,          //!< Snapshot/wal replayed end to end.
    TruncatedTail,  //!< Torn/corrupt tail truncated, prefix replayed.
    DiscardedWal,   //!< Stale-generation wal ignored (mid-compaction
                    //!< crash); snapshot alone carried the state.
};

const char *toString(RecoveryOutcome outcome);

/** Summary of one recovery, surfaced through metrics and stderr. */
struct RecoveryInfo
{
    RecoveryOutcome outcome = RecoveryOutcome::Disabled;
    bool snapshotLoaded = false;
    std::uint64_t generation = 0;       //!< Generation now active.
    std::uint64_t replayedRecords = 0;  //!< Wal records applied.
    std::uint64_t truncatedBytes = 0;   //!< Tail bytes discarded.
};

/**
 * Version stamped into every Begin record this build writes.
 * History:
 *   1  ADMIT/UPDATE/DEPART/TICK records (implicit: v1 Begin records
 *      carry no version field; decode infers 1 from the payload
 *      ending right after the capacity echo).
 *   2  adds the POOL CREATE / POOL ASSIGN record types and the
 *      explicit version field.
 * Old wals (v1) replay unchanged; replay refuses a wal whose Begin
 * names a version newer than this constant, because the wal may hold
 * record types these semantics would silently misapply.
 */
inline constexpr std::uint32_t kJournalFormatVersion = 2;

/** One journal record. */
struct JournalRecord
{
    enum class Type : std::uint8_t {
        Begin = 0,   //!< Wal header: generation + capacity echo.
        Admit = 1,
        Update = 2,
        Depart = 3,
        Tick = 4,
        PoolCreate = 5,  //!< v2: POOL CREATE path/weight.
        PoolAssign = 6,  //!< v2: POOL ASSIGN agent/path.
    };

    Type type = Type::Tick;
    std::string name;                   //!< Admit/Update/Depart
                                        //!< agent; PoolCreate path;
                                        //!< PoolAssign agent.
    std::vector<double> elasticities;   //!< Admit/Update; Begin:
                                        //!< capacity echo.
    /** Admit: admission epoch. Tick: epoch number after the tick
     *  (replay cross-check). Begin: generation. PoolCreate: epoch
     *  the pool was created at. */
    std::uint64_t epoch = 0;
    /** PoolAssign: destination pool path. */
    std::string pool;
    /** PoolCreate: the pool's weight. */
    double weight = 1.0;
    /** Begin only: the wal's format version (see
     *  kJournalFormatVersion); decode infers 1 for legacy wals. */
    std::uint32_t version = kJournalFormatVersion;
};

/** Serialize a record to a frame payload. */
std::string encodeJournalRecord(const JournalRecord &record);

/** Parse a frame payload; throws FatalError on malformed bytes. */
JournalRecord decodeJournalRecord(std::string_view payload);

/**
 * Failpoint-aware POSIX file shim used by the journal, snapshots and
 * the profile disk cache. Every call consults Failpoints at its
 * @p site first; each returns 0 on success or an errno.
 */
namespace io {

int openAppend(const std::string &path, int &fd, const char *site);
int openTrunc(const std::string &path, int &fd, const char *site);
int writeAll(int fd, std::string_view bytes, const char *site);
int syncFd(int fd, const char *site);
void closeFd(int &fd);
int renameFile(const std::string &from, const std::string &to,
               const char *site);
int syncDir(const std::string &directory, const char *site);
/** Slurp a whole file; false when it does not exist/readable. */
bool readFile(const std::string &path, std::string &out);

} // namespace io

/** Append-side journal state machine (see file comment). */
class Journal
{
  public:
    explicit Journal(JournalConfig config);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** What replaying the wal on disk yielded. */
    struct WalReplay
    {
        std::vector<JournalRecord> records;  //!< Post-Begin records.
        bool hadWal = false;            //!< A wal file existed.
        bool discardedStale = false;    //!< Generation trailed.
        bool truncatedTail = false;     //!< Torn/corrupt tail cut.
        std::uint64_t truncatedBytes = 0;
        std::uint64_t generation = 0;   //!< Wal's own generation.
        /** Format version from the Begin record (1 for legacy). */
        std::uint32_t formatVersion = 0;
    };

    /**
     * Read the wal and return the records that survive framing and
     * the generation check. Pure read — call before begin(). Throws
     * FatalError when the wal's Begin record names a format version
     * newer than kJournalFormatVersion: a downgrade must refuse
     * rather than misread record types it does not know.
     */
    WalReplay replay(std::uint64_t expectedGeneration) const;

    /**
     * Truncate the wal and stamp it with @p generation (Begin
     * record carrying @p capacities, fsynced). False on IO error,
     * in which case the journal is degraded.
     */
    bool begin(std::uint64_t generation,
               const std::vector<double> &capacities);

    /**
     * Append one record. True when handed to the OS (and fsynced
     * per policy); false when skipped because the journal is (or
     * just became) degraded.
     */
    bool append(const JournalRecord &record);

    /** Flush: fsync the wal now (shutdown/signal path). */
    void sync();

    /**
     * Group-commit ack barrier: make every appended record durable
     * before replies leave the process. True when nothing was
     * pending or the fsync succeeded; false when the flush failed
     * (the journal is now degraded and the batch is lost).
     */
    bool barrier();

    /** Records appended but not yet covered by an fsync. */
    std::uint64_t pendingRecords() const { return sinceFsync_; }

    /** Commit-index watermark: records known durable. */
    std::uint64_t commitIndex() const { return stats_.committed; }

    bool degraded() const { return degraded_; }

    /**
     * Degraded-mode bookkeeping for one accepted-but-unjournaled
     * record; true when backoff has elapsed and the owner should
     * attempt a resync (fresh snapshot + begin()).
     */
    bool noteSkippedAndMaybeRetry();

    /** Mark a successful resync: clears degraded state. */
    void noteReopened();

    /** Compaction accounting (owner writes the snapshot). */
    void noteSnapshot(bool success);

    std::uint64_t recordsSinceBegin() const
    {
        return recordsSinceBegin_;
    }

    const JournalStats &stats() const { return stats_; }
    const JournalConfig &config() const { return config_; }

    std::string walPath() const;
    std::string snapshotPath() const;
    std::string snapshotTmpPath() const;

  private:
    void enterDegraded(const char *site, int errnoValue);
    bool syncNow(const char *reason);
    void noteCommitted();

    JournalConfig config_;
    int fd_ = -1;
    JournalStats stats_;
    bool degraded_ = false;
    std::uint64_t recordsSinceBegin_ = 0;
    std::uint64_t sinceFsync_ = 0;
    std::uint64_t retryIn_ = 0;       //!< Skips until next reopen try.
    std::uint64_t retryBackoff_ = 0;  //!< Current backoff width.
    std::uint64_t pendingBytes_ = 0;  //!< Unsynced group-batch bytes.
    /** steady_clock ns when the oldest pending record landed. */
    std::uint64_t oldestPendingNs_ = 0;
    std::uint64_t jitterState_;       //!< xorshift64 for S1 jitter.
};

} // namespace ref::svc

#endif // REF_SVC_JOURNAL_HH
