#include "journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>

#include "obs/trace.hh"
#include "svc/failpoints.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::svc {

const char *
toString(RecoveryOutcome outcome)
{
    switch (outcome) {
    case RecoveryOutcome::Disabled: return "disabled";
    case RecoveryOutcome::Fresh: return "fresh";
    case RecoveryOutcome::Clean: return "clean";
    case RecoveryOutcome::TruncatedTail: return "truncated-tail";
    case RecoveryOutcome::DiscardedWal: return "discarded-wal";
    }
    return "unknown";
}

namespace io {
namespace {

/**
 * Consult the failpoint registry for a write-shaped call. Returns
 * the number of bytes to actually hand to the OS before failing, or
 * nullopt to proceed normally. Crash actions do not return.
 */
std::optional<std::pair<std::size_t, int>>
injectWrite(int fd, std::string_view bytes, const char *site)
{
    const auto hit = Failpoints::instance().check(site);
    if (!hit)
        return std::nullopt;
    switch (hit->action) {
    case FailAction::Error:
        return std::make_pair(std::size_t{0}, hit->errnoValue);
    case FailAction::ShortWrite:
        return std::make_pair(bytes.size() / 2, hit->errnoValue);
    case FailAction::Crash: {
        // Land a torn prefix first, exactly like a process dying
        // mid-write, then stop the world.
        const std::string_view torn = bytes.substr(0, bytes.size() / 2);
        if (fd >= 0 && !torn.empty()) {
            const ssize_t written [[maybe_unused]] =
                ::write(fd, torn.data(), torn.size());
        }
        if (hit->exitProcess)
            std::_Exit(kCrashExitCode);
        throw CrashInjected(site);
    }
    }
    return std::nullopt;
}

/** Non-write failpoint sites (open/fsync/rename): error or crash. */
int
injectPlain(const char *site)
{
    const auto hit = Failpoints::instance().check(site);
    if (!hit)
        return 0;
    if (hit->action == FailAction::Crash) {
        if (hit->exitProcess)
            std::_Exit(kCrashExitCode);
        throw CrashInjected(site);
    }
    return hit->errnoValue;
}

int
openWith(const std::string &path, int flags, int &fd,
         const char *site)
{
    if (const int injected = injectPlain(site))
        return injected;
    fd = ::open(path.c_str(), flags, 0644);
    return fd < 0 ? errno : 0;
}

} // namespace

int
openAppend(const std::string &path, int &fd, const char *site)
{
    return openWith(path, O_CREAT | O_WRONLY | O_APPEND, fd, site);
}

int
openTrunc(const std::string &path, int &fd, const char *site)
{
    return openWith(path, O_CREAT | O_WRONLY | O_TRUNC, fd, site);
}

int
writeAll(int fd, std::string_view bytes, const char *site)
{
    std::size_t limit = bytes.size();
    int pendingErrno = 0;
    if (const auto injected = injectWrite(fd, bytes, site)) {
        limit = injected->first;
        pendingErrno = injected->second;
    }
    std::size_t done = 0;
    while (done < limit) {
        const ssize_t written =
            ::write(fd, bytes.data() + done, limit - done);
        if (written < 0) {
            if (errno == EINTR)
                continue;
            return errno;
        }
        done += static_cast<std::size_t>(written);
    }
    return pendingErrno;
}

int
syncFd(int fd, const char *site)
{
    if (const int injected = injectPlain(site))
        return injected;
    return ::fsync(fd) < 0 ? errno : 0;
}

void
closeFd(int &fd)
{
    if (fd >= 0)
        ::close(fd);
    fd = -1;
}

int
renameFile(const std::string &from, const std::string &to,
           const char *site)
{
    if (const int injected = injectPlain(site))
        return injected;
    return ::rename(from.c_str(), to.c_str()) < 0 ? errno : 0;
}

int
syncDir(const std::string &directory, const char *site)
{
    if (const int injected = injectPlain(site))
        return injected;
    const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return errno;
    const int result = ::fsync(fd) < 0 ? errno : 0;
    ::close(fd);
    return result;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    out.clear();
    char buffer[1 << 16];
    std::size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        out.append(buffer, got);
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    return ok;
}

} // namespace io

std::string
encodeJournalRecord(const JournalRecord &record)
{
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(record.type));
    writer.u64(record.epoch);
    switch (record.type) {
    case JournalRecord::Type::Begin:
        writer.doubles(record.elasticities);
        // The version rides after the capacity echo so v1 readers
        // (which required the payload to end there) see it as
        // trailing bytes rather than silently misparsing.
        writer.u32(record.version);
        break;
    case JournalRecord::Type::Admit:
    case JournalRecord::Type::Update:
        writer.str(record.name);
        writer.doubles(record.elasticities);
        break;
    case JournalRecord::Type::Depart:
        writer.str(record.name);
        break;
    case JournalRecord::Type::Tick:
        break;
    case JournalRecord::Type::PoolCreate:
        writer.str(record.name);
        writer.f64(record.weight);
        break;
    case JournalRecord::Type::PoolAssign:
        writer.str(record.name);
        writer.str(record.pool);
        break;
    }
    return writer.take();
}

JournalRecord
decodeJournalRecord(std::string_view payload)
{
    ByteReader reader(payload);
    JournalRecord record;
    const std::uint8_t type = reader.u8();
    REF_REQUIRE(type <=
                    static_cast<std::uint8_t>(
                        JournalRecord::Type::PoolAssign),
                "journal record has unknown type " << int(type));
    record.type = static_cast<JournalRecord::Type>(type);
    record.epoch = reader.u64();
    switch (record.type) {
    case JournalRecord::Type::Begin:
        record.elasticities = reader.doubles();
        // Legacy (v1) Begin records end right after the capacity
        // echo; the explicit version field arrived in v2.
        record.version = reader.atEnd() ? 1 : reader.u32();
        break;
    case JournalRecord::Type::Admit:
    case JournalRecord::Type::Update:
        record.name = reader.str();
        record.elasticities = reader.doubles();
        break;
    case JournalRecord::Type::Depart:
        record.name = reader.str();
        break;
    case JournalRecord::Type::Tick:
        break;
    case JournalRecord::Type::PoolCreate:
        record.name = reader.str();
        record.weight = reader.f64();
        break;
    case JournalRecord::Type::PoolAssign:
        record.name = reader.str();
        record.pool = reader.str();
        break;
    }
    REF_REQUIRE(reader.atEnd(),
                "journal record has " << reader.remaining()
                                      << " trailing bytes");
    return record;
}

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Journal::Journal(JournalConfig config) : config_(std::move(config))
{
    stats_.enabled = config_.enabled();
    retryBackoff_ = std::max<std::uint64_t>(
        1, config_.retryBackoffStart);
    // Seed the re-probe jitter from the wall clock so two degraded
    // journals on one box do not hammer a recovering disk in
    // lockstep; determinism of the journal *content* is unaffected
    // (jitter only shifts when a reopen is attempted).
    jitterState_ = steadyNowNs() | 1;
    if (config_.enabled()) {
        // Best-effort: a directory that still cannot be opened just
        // degrades the journal on first use, it never stops the
        // service.
        std::error_code ignored;
        std::filesystem::create_directories(config_.directory,
                                            ignored);
    }
}

Journal::~Journal()
{
    io::closeFd(fd_);
}

std::string
Journal::walPath() const
{
    return config_.directory + "/wal.ref";
}

std::string
Journal::snapshotPath() const
{
    return config_.directory + "/snapshot.ref";
}

std::string
Journal::snapshotTmpPath() const
{
    return config_.directory + "/snapshot.tmp";
}

Journal::WalReplay
Journal::replay(std::uint64_t expectedGeneration) const
{
    WalReplay result;
    std::string bytes;
    if (!io::readFile(walPath(), bytes))
        return result;
    result.hadWal = true;

    std::size_t offset = 0;
    std::string_view payload;

    // Frame 0 must be the Begin header naming the generation this
    // wal extends. Anything else means the wal died mid-begin; its
    // whole content is pre-compaction residue.
    const FrameStatus headerStatus =
        readFrame(bytes, offset, payload);
    if (headerStatus != FrameStatus::Ok) {
        result.truncatedTail = headerStatus != FrameStatus::End;
        result.truncatedBytes = bytes.size();
        return result;
    }
    JournalRecord header;
    try {
        header = decodeJournalRecord(payload);
    } catch (const FatalError &) {
        result.truncatedTail = true;
        result.truncatedBytes = bytes.size();
        return result;
    }
    if (header.type != JournalRecord::Type::Begin ||
        header.epoch != expectedGeneration) {
        result.discardedStale = true;
        result.generation = header.epoch;
        result.truncatedBytes = bytes.size();
        return result;
    }
    // Downgrade refusal: a newer writer may have appended record
    // types these semantics would misapply (or skip as "corrupt
    // tail", silently losing accepted mutations). Refuse loudly.
    REF_REQUIRE(header.version <= kJournalFormatVersion,
                "wal '" << walPath() << "' has format version "
                        << header.version
                        << ", newer than the supported version "
                        << kJournalFormatVersion
                        << "; refusing to replay with older "
                           "semantics");
    result.generation = header.epoch;
    result.formatVersion = header.version;

    while (true) {
        const FrameStatus status = readFrame(bytes, offset, payload);
        if (status == FrameStatus::End)
            break;
        if (status != FrameStatus::Ok) {
            // Torn or corrupt tail: truncate here, keep the prefix.
            result.truncatedTail = true;
            result.truncatedBytes = bytes.size() - offset;
            break;
        }
        try {
            result.records.push_back(decodeJournalRecord(payload));
        } catch (const FatalError &) {
            // CRC-valid but unparseable: treat like a corrupt tail.
            result.truncatedTail = true;
            result.truncatedBytes = bytes.size() - offset;
            break;
        }
    }
    return result;
}

bool
Journal::begin(std::uint64_t generation,
               const std::vector<double> &capacities)
{
    if (!config_.enabled())
        return false;
    io::closeFd(fd_);
    if (const int err =
            io::openTrunc(walPath(), fd_, "journal.open")) {
        enterDegraded("journal.open", err);
        return false;
    }

    JournalRecord header;
    header.type = JournalRecord::Type::Begin;
    header.epoch = generation;
    header.elasticities = capacities;
    const std::string frame =
        frameRecord(encodeJournalRecord(header));
    if (const int err =
            io::writeAll(fd_, frame, "journal.write")) {
        enterDegraded("journal.write", err);
        return false;
    }
    if (const int err = io::syncFd(fd_, "journal.fsync")) {
        enterDegraded("journal.fsync", err);
        return false;
    }
    stats_.bytes += frame.size();
    ++stats_.fsyncs;
    recordsSinceBegin_ = 0;
    sinceFsync_ = 0;
    pendingBytes_ = 0;
    noteCommitted();
    return true;
}

bool
Journal::syncNow(const char *reason [[maybe_unused]])
{
    obs::Span span("journal.fsync", "journal");
    if (const int err = io::syncFd(fd_, "journal.fsync")) {
        enterDegraded("journal.fsync", err);
        return false;
    }
    ++stats_.fsyncs;
    sinceFsync_ = 0;
    pendingBytes_ = 0;
    noteCommitted();
    return true;
}

void
Journal::noteCommitted()
{
    // Commit watermark: everything appended so far is now durable.
    stats_.committed = stats_.records;
    stats_.pending = 0;
}

bool
Journal::append(const JournalRecord &record)
{
    if (!config_.enabled() || degraded_ || fd_ < 0)
        return false;
    obs::Span span("journal.append", "journal");
    const std::string frame =
        frameRecord(encodeJournalRecord(record));
    if (const int err =
            io::writeAll(fd_, frame, "journal.write")) {
        enterDegraded("journal.write", err);
        return false;
    }
    stats_.bytes += frame.size();
    ++stats_.records;
    ++recordsSinceBegin_;
    if (sinceFsync_ == 0)
        oldestPendingNs_ = steadyNowNs();
    ++sinceFsync_;
    stats_.pending = sinceFsync_;
    if (config_.groupCommit()) {
        // Group commit: batch until a size or age threshold, or
        // until the owner's barrier() — whichever comes first.
        pendingBytes_ += frame.size();
        const bool full = config_.groupBytes != 0 &&
                          pendingBytes_ >= config_.groupBytes;
        const bool old =
            config_.groupUsec != 0 &&
            steadyNowNs() - oldestPendingNs_ >=
                config_.groupUsec * 1000;
        if ((full || old) && !syncNow("group"))
            return false;
        return true;
    }
    if (config_.fsyncEvery != 0 &&
        sinceFsync_ >= config_.fsyncEvery &&
        !syncNow("every"))
        return false;
    return true;
}

void
Journal::sync()
{
    if (!config_.enabled() || degraded_ || fd_ < 0 ||
        sinceFsync_ == 0)
        return;
    syncNow("sync");
}

bool
Journal::barrier()
{
    if (!config_.enabled() || degraded_ || fd_ < 0)
        return !config_.enabled();
    if (sinceFsync_ == 0)
        return true;
    return syncNow("barrier");
}

void
Journal::enterDegraded(const char *site, int errnoValue)
{
    ++stats_.appendErrors;
    io::closeFd(fd_);
    // Any in-flight group-commit batch died with the fd; it was
    // never acked (barrier() had not succeeded), so dropping the
    // watermark bookkeeping is honest, not lossy.
    sinceFsync_ = 0;
    pendingBytes_ = 0;
    stats_.pending = 0;
    if (!degraded_) {
        // First failure: start the backoff clock from scratch.
        // Failed reopens keep the widened backoff set by
        // noteSkippedAndMaybeRetry instead.
        degraded_ = true;
        stats_.degraded = true;
        retryBackoff_ = std::max<std::uint64_t>(
            1, config_.retryBackoffStart);
    }
    retryIn_ = retryBackoff_;
    REF_WARN("journal degraded at "
             << site << ": " << std::strerror(errnoValue)
             << "; service continues without durability, reopen in "
             << retryIn_ << " records");
}

bool
Journal::noteSkippedAndMaybeRetry()
{
    ++stats_.degradedSkipped;
    if (retryIn_ > 1) {
        --retryIn_;
        return false;
    }
    // Time to try again; widen the backoff first so a failing disk
    // is probed geometrically less often (a failed reopen keeps the
    // widened value — enterDegraded only resets it on the first
    // failure of a healthy journal). The width is capped at
    // retryBackoffMax, so a recovered disk is always re-probed
    // within one bounded window, and jittered (up to a quarter
    // early) so co-located degraded journals spread their probes.
    const std::uint64_t next =
        std::min(retryBackoff_ * 2,
                 std::max<std::uint64_t>(1,
                                         config_.retryBackoffMax));
    retryBackoff_ = next;
    jitterState_ ^= jitterState_ << 13;
    jitterState_ ^= jitterState_ >> 7;
    jitterState_ ^= jitterState_ << 17;
    const std::uint64_t jitter =
        next >= 4 ? jitterState_ % (next / 4) : 0;
    retryIn_ = std::max<std::uint64_t>(1, next - jitter);
    return true;
}

void
Journal::noteReopened()
{
    degraded_ = false;
    stats_.degraded = false;
    ++stats_.reopens;
    retryBackoff_ = std::max<std::uint64_t>(
        1, config_.retryBackoffStart);
    retryIn_ = retryBackoff_;
}

void
Journal::noteSnapshot(bool success)
{
    if (success)
        ++stats_.snapshots;
    else
        ++stats_.snapshotFailures;
}

} // namespace ref::svc
