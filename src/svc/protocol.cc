#include "protocol.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ref::svc {
namespace {

/** Shortest decimal that round-trips the exact double. */
std::string
formatShare(double value)
{
    char buffer[32];
    const auto [end, ec] = std::to_chars(
        buffer, buffer + sizeof(buffer), value);
    REF_ASSERT(ec == std::errc(), "to_chars failed");
    return std::string(buffer, end);
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token)
        tokens.push_back(token);
    return tokens;
}

/**
 * Parse one numeric token. Unparseable text (including trailing
 * junk) and values that are not finite doubles — literal "inf"/"nan"
 * as well as decimals like 1e999 that overflow std::stod — are
 * protocol errors; finite VALUES are still validated by the registry
 * so that zero/negative produce the registry's uniform diagnostics.
 */
double
parseNumber(const std::string &token)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(token, &consumed);
        REF_REQUIRE(consumed == token.size(),
                    "'" << token << "' is not a number");
        REF_REQUIRE(std::isfinite(value),
                    "'" << token << "' is not a finite number");
        return value;
    } catch (const std::out_of_range &) {
        // The token is numeric but overflows a double (e.g. 1e999):
        // same rejection as a parsed-to-inf value.
        REF_FATAL("'" << token << "' is not a finite number");
    } catch (const std::logic_error &) {
        REF_FATAL("'" << token << "' is not a number");
    }
}

linalg::Vector
parseElasticities(const std::vector<std::string> &tokens,
                  std::size_t first)
{
    linalg::Vector elasticities;
    for (std::size_t i = first; i < tokens.size(); ++i)
        elasticities.push_back(parseNumber(tokens[i]));
    return elasticities;
}

void
printEpoch(std::ostream &out, const EpochResult &result)
{
    out << "EPOCH " << result.epoch
        << " agents=" << result.liveAgents;
    if (result.pooled)
        out << " pools=" << result.pools;
    out << " enforce=" << (result.enforcementChanged ? "update"
                                                     : "hold");
    if (result.propertiesChecked) {
        out << " si=" << (result.sharingIncentives.satisfied
                              ? "ok" : "VIOLATED")
            << " ef=" << (result.envyFreeness.satisfied ? "ok"
                                                        : "VIOLATED");
    }
    out << " selfcheck="
        << (result.incrementalMatchesScratch ? "ok" : "FAIL") << "\n";
}

void
printShares(std::ostream &out, const ServiceSnapshot &snapshot,
            std::size_t row)
{
    out << "SHARE " << snapshot.agents[row];
    for (std::size_t r = 0; r < snapshot.allocation.resources(); ++r)
        out << " " << formatShare(snapshot.allocation.at(row, r));
    out << "\n";
}

void
printPool(std::ostream &out, AllocationService &service,
          const pool::PoolView &view)
{
    const linalg::Vector fractions =
        service.poolShareFractions(view.path);
    out << "POOL " << view.path
        << " weight=" << formatShare(view.weight)
        << " agents=" << view.agents;
    out << " share=";
    for (std::size_t r = 0; r < fractions.size(); ++r) {
        if (r > 0)
            out << ",";
        out << formatShare(fractions[r]);
    }
    out << "\n";
}

void
printPlan(std::ostream &out, const EnforcementPlan &plan)
{
    if (plan.empty()) {
        out << "PLAN epoch=" << plan.epoch << " empty\n";
        return;
    }
    out << "PLAN epoch=" << plan.epoch
        << " agents=" << plan.agents.size() << " cache="
        << (plan.hasPartition ? "way-partition" : "shared-lru")
        << "\n";
    for (std::size_t i = 0; i < plan.agents.size(); ++i) {
        out << "ENFORCE " << plan.agents[i]
            << " wfq_weight=" << formatShare(plan.wfqWeights[i]);
        if (plan.hasPartition) {
            out << " ways=" << plan.partition.ways[i]
                << " realized="
                << formatShare(plan.partition.realizedFractions[i]);
        }
        out << "\n";
    }
    if (!plan.hasPartition && !plan.partitionNote.empty())
        out << "NOTE " << plan.partitionNote << "\n";
}

/** Static-lifetime span name for one command (Span keeps the
 *  pointer, so these must be literals). */
const char *
commandSpanName(Command::Op op)
{
    switch (op) {
    case Command::Op::Admit:
        return "cmd.admit";
    case Command::Op::Update:
        return "cmd.update";
    case Command::Op::Depart:
        return "cmd.depart";
    case Command::Op::Tick:
        return "cmd.tick";
    case Command::Op::Query:
        return "cmd.query";
    case Command::Op::Plan:
        return "cmd.plan";
    case Command::Op::Stats:
        return "cmd.stats";
    case Command::Op::Metrics:
        return "cmd.metrics";
    case Command::Op::Shutdown:
        return "cmd.shutdown";
    case Command::Op::Pool:
        return "cmd.pool";
    case Command::Op::Sync:
        return "cmd.sync";
    case Command::Op::Promote:
        return "cmd.promote";
    case Command::Op::Cohort:
        return "cmd.cohort";
    }
    return "cmd.other";
}

/** Commands a read-only warm-standby follower must refuse. */
bool
isMutating(const Command &command)
{
    switch (command.op) {
    case Command::Op::Admit:
    case Command::Op::Update:
    case Command::Op::Depart:
    case Command::Op::Tick:
        return true;
    case Command::Op::Pool:
        return command.poolOp != Command::PoolOp::Query;
    default:
        return false;
    }
}

/**
 * Tokens -> Command. Throws FatalError with the text protocol's
 * exact diagnostics on arity or numeric-parse errors; semantic
 * validation (registry rules, TICK range, METRICS format) happens in
 * executeCommand so text and binary transports reject identically.
 */
Command
parseCommand(const std::vector<std::string> &tokens)
{
    Command parsed;
    const std::string &command = tokens.front();
    if (command == "ADMIT") {
        REF_REQUIRE(tokens.size() >= 3,
                    "usage: ADMIT <name> <e0> <e1> ...");
        parsed.op = Command::Op::Admit;
        parsed.name = tokens[1];
        parsed.elasticities = parseElasticities(tokens, 2);
    } else if (command == "UPDATE") {
        REF_REQUIRE(tokens.size() >= 3,
                    "usage: UPDATE <name> <e0> <e1> ...");
        parsed.op = Command::Op::Update;
        parsed.name = tokens[1];
        parsed.elasticities = parseElasticities(tokens, 2);
    } else if (command == "DEPART") {
        REF_REQUIRE(tokens.size() == 2, "usage: DEPART <name>");
        parsed.op = Command::Op::Depart;
        parsed.name = tokens[1];
    } else if (command == "TICK") {
        REF_REQUIRE(tokens.size() <= 2, "usage: TICK [count]");
        parsed.op = Command::Op::Tick;
        if (tokens.size() == 2) {
            // Only representability is checked here; the [1, max]
            // range guard lives in executeCommand so text and binary
            // clients draw byte-identical diagnostics from one site.
            const double count = parseNumber(tokens[1]);
            REF_REQUIRE(
                count >= 0 &&
                    count < 18446744073709551616.0 &&  // 2^64
                    count == static_cast<std::uint64_t>(count),
                "TICK count must be an integer in [1, "
                    << kMaxTickCount << "], got '" << tokens[1]
                    << "'");
            parsed.tickCount = static_cast<std::uint64_t>(count);
        }
    } else if (command == "QUERY") {
        REF_REQUIRE(tokens.size() <= 2, "usage: QUERY [name]");
        parsed.op = Command::Op::Query;
        if (tokens.size() == 2) {
            parsed.hasName = true;
            parsed.name = tokens[1];
        }
    } else if (command == "PLAN") {
        REF_REQUIRE(tokens.size() == 1, "usage: PLAN");
        parsed.op = Command::Op::Plan;
    } else if (command == "STATS") {
        REF_REQUIRE(tokens.size() == 1, "usage: STATS");
        parsed.op = Command::Op::Stats;
    } else if (command == "METRICS") {
        REF_REQUIRE(tokens.size() <= 2,
                    "usage: METRICS [prom|json|fairness]");
        parsed.op = Command::Op::Metrics;
        if (tokens.size() == 2)
            parsed.metricsFormat = tokens[1];
    } else if (command == "POOL") {
        REF_REQUIRE(tokens.size() >= 2,
                    "usage: POOL CREATE|ASSIGN|QUERY ...");
        parsed.op = Command::Op::Pool;
        const std::string &sub = tokens[1];
        if (sub == "CREATE") {
            REF_REQUIRE(tokens.size() == 3 || tokens.size() == 4,
                        "usage: POOL CREATE <path> [weight]");
            parsed.poolOp = Command::PoolOp::Create;
            parsed.poolPath = tokens[2];
            if (tokens.size() == 4)
                parsed.poolWeight = parseNumber(tokens[3]);
        } else if (sub == "ASSIGN") {
            REF_REQUIRE(tokens.size() == 4,
                        "usage: POOL ASSIGN <name> <path>");
            parsed.poolOp = Command::PoolOp::Assign;
            parsed.name = tokens[2];
            parsed.poolPath = tokens[3];
        } else if (sub == "QUERY") {
            REF_REQUIRE(tokens.size() <= 3,
                        "usage: POOL QUERY [path]");
            parsed.poolOp = Command::PoolOp::Query;
            if (tokens.size() == 3)
                parsed.poolPath = tokens[2];
        } else {
            REF_FATAL("unknown POOL subcommand '"
                      << sub
                      << "' (expected CREATE, ASSIGN, or QUERY)");
        }
    } else if (command == "SYNC") {
        REF_REQUIRE(tokens.size() == 3,
                    "usage: SYNC <streamId> <seq>");
        parsed.op = Command::Op::Sync;
        const double stream = parseNumber(tokens[1]);
        const double seq = parseNumber(tokens[2]);
        REF_REQUIRE(stream >= 0 && seq >= 0 &&
                        stream ==
                            static_cast<std::uint64_t>(stream) &&
                        seq == static_cast<std::uint64_t>(seq),
                    "SYNC arguments must be non-negative integers");
        parsed.syncStreamId = static_cast<std::uint64_t>(stream);
        parsed.syncSeq = static_cast<std::uint64_t>(seq);
    } else if (command == "COHORT") {
        REF_REQUIRE(tokens.size() == 3,
                    "usage: COHORT <name> <label>");
        parsed.op = Command::Op::Cohort;
        parsed.name = tokens[1];
        parsed.cohortLabel = tokens[2];
    } else if (command == "PROMOTE") {
        REF_REQUIRE(tokens.size() == 1, "usage: PROMOTE");
        parsed.op = Command::Op::Promote;
    } else if (command == "SHUTDOWN") {
        REF_REQUIRE(tokens.size() == 1, "usage: SHUTDOWN");
        parsed.op = Command::Op::Shutdown;
    } else {
        REF_FATAL("unknown command '" << command << "'");
    }
    return parsed;
}

} // namespace

CommandSession::CommandSession(AllocationService &service,
                               const SessionOptions &options)
    : service_(service), options_(options)
{}

CommandSession::~CommandSession()
{
    finish();
}

/**
 * Rewrite the metrics exposition file and append any fairness rows
 * produced since the last flush. Output files are observability
 * side-channels: IO failures are ignored (the session's protocol
 * stream is the product, the files are best-effort exports).
 */
void
CommandSession::flushObservability()
{
    FlushState &fairness = fairness_;
    if (!options_.metricsOutPath.empty()) {
        std::ofstream file(options_.metricsOutPath,
                           std::ios::trunc);
        if (file)
            service_.writeMetrics(file, MetricsFormat::Prometheus);
    }
    if (options_.fairnessOutPath.empty())
        return;
    const obs::FairnessSeries &series = service_.fairnessSeries();
    // Labelled mode sticks once any labelled history exists, so a
    // departed cohort's rows survive in later flushes.
    if (service_.pooled() || service_.hasCohorts() ||
        !series.labels().empty()) {
        // Labelled rows interleave per-label series, so the export
        // is a full rewrite per flush rather than an append.
        const std::uint64_t total =
            series.totalAppended() + series.totalLabelledAppended();
        if (fairness_.headerWritten &&
            total == fairness_.rowsFlushed)
            return;
        std::ofstream file(options_.fairnessOutPath,
                           std::ios::trunc);
        if (!file)
            return;
        series.writeLabelledCsv(file);
        fairness_.headerWritten = true;
        fairness_.rowsFlushed = total;
        return;
    }
    const std::uint64_t total = series.totalAppended();
    if (fairness.headerWritten && total == fairness.rowsFlushed)
        return;
    std::ofstream file(options_.fairnessOutPath,
                       fairness.headerWritten ? std::ios::app
                                              : std::ios::trunc);
    if (!file)
        return;
    if (!fairness.headerWritten) {
        file << obs::FairnessSeries::csvHeader() << "\n";
        fairness.headerWritten = true;
    }
    const auto samples = series.samples();
    // The ring holds the lifetime range [total - size, total); rows
    // before rowsFlushed are already on disk.
    const std::uint64_t first = total - samples.size();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (first + i < fairness.rowsFlushed)
            continue;
        obs::FairnessSeries::writeCsvRow(file, samples[i]);
        file << "\n";
    }
    fairness.rowsFlushed = total;
}

void
CommandSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushObservability();
}

CommandSession::LineStatus
CommandSession::executeLine(const std::string &rawLine,
                            std::ostream &out)
{
    std::string line = rawLine;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens.front().front() == '#')
        return LineStatus::Idle;
    if (options_.echo)
        out << "> " << line << "\n";

    Command command;
    try {
        command = parseCommand(tokens);
    } catch (const FatalError &error) {
        ++result_.commands;
        service_.noteRejected();
        ++result_.errors;
        out << "ERR " << error.what() << "\n";
        return LineStatus::Rejected;
    }
    return executeCommand(command, out);
}

CommandSession::LineStatus
CommandSession::executeCommand(const Command &command,
                               std::ostream &out)
{
    AllocationService &service = service_;
    SessionResult &result = result_;
    ++result.commands;

    obs::Span span(commandSpanName(command.op), "proto");
    try {
        // A warm-standby follower is read-only: its state is the
        // primary's WAL, so a local mutation would fork history and
        // fail the next divergence check. Queries stay open.
        REF_REQUIRE(!(options_.follower &&
                      options_.follower->following() &&
                      isMutating(command)),
                    "read-only follower (PROMOTE to serve)");
        switch (command.op) {
        case Command::Op::Admit:
            service.admit(command.name, command.elasticities);
            out << "OK admitted " << command.name << " agents="
                << service.liveAgents() << "\n";
            break;
        case Command::Op::Update:
            service.update(command.name, command.elasticities);
            out << "OK updated " << command.name << "\n";
            break;
        case Command::Op::Depart:
            service.depart(command.name);
            out << "OK departed " << command.name << " agents="
                << service.liveAgents() << "\n";
            break;
        case Command::Op::Tick: {
            // The one range guard for both framings: text parsing
            // only checks representability, so out-of-range counts
            // from either transport produce this exact diagnostic.
            REF_REQUIRE(command.tickCount >= 1 &&
                            command.tickCount <= kMaxTickCount,
                        "TICK count must be an integer in [1, "
                            << kMaxTickCount << "], got '"
                            << command.tickCount << "'");
            for (std::uint64_t i = 0; i < command.tickCount; ++i) {
                const EpochResult epoch = service.tick();
                if (!epoch.incrementalMatchesScratch ||
                    (epoch.propertiesChecked &&
                     (!epoch.sharingIncentives.satisfied ||
                      !epoch.envyFreeness.satisfied)))
                    ++result.epochFailures;
                printEpoch(out, epoch);
            }
            flushObservability();
            break;
        }
        case Command::Op::Query: {
            service.noteQuery();
            if (service.pooled()) {
                // Live-tree answers (see the grammar note): pooled
                // ticks never build a dense allocation to publish.
                if (command.hasName) {
                    const linalg::Vector shares =
                        service.agentShares(command.name);
                    out << "SHARE " << command.name;
                    for (std::size_t r = 0; r < shares.size(); ++r)
                        out << " " << formatShare(shares[r]);
                    out << "\n";
                } else {
                    const auto views = service.pools();
                    out << "SNAPSHOT epoch="
                        << service.snapshot()->epoch
                        << " agents=" << service.liveAgents()
                        << " pools=" << views.size() << "\n";
                    for (const pool::PoolView &view : views)
                        printPool(out, service, view);
                }
                break;
            }
            const auto snapshot = service.snapshot();
            if (command.hasName) {
                const std::size_t row =
                    snapshot->indexOf(command.name);
                REF_REQUIRE(row < snapshot->agents.size(),
                            "agent '" << command.name
                                << "' is not in the epoch "
                                << snapshot->epoch
                                << " snapshot");
                printShares(out, *snapshot, row);
            } else {
                out << "SNAPSHOT epoch=" << snapshot->epoch
                    << " agents=" << snapshot->agents.size()
                    << "\n";
                for (std::size_t i = 0;
                     i < snapshot->agents.size(); ++i)
                    printShares(out, *snapshot, i);
            }
            break;
        }
        case Command::Op::Plan:
            service.noteQuery();
            printPlan(out, service.snapshot()->enforcement);
            break;
        case Command::Op::Stats:
            printMetrics(out, service.metrics());
            // Generation-independent CRC32 of the full service
            // state: the fingerprint the replication divergence
            // check compares, exposed so an operator (or the
            // failover soak) can assert two servers are bit-equal
            // without dumping either one.
            out << "state_hash=" << service.stateHash() << "\n";
            break;
        case Command::Op::Metrics: {
            const std::string &format = command.metricsFormat;
            if (format == "prom") {
                service.writeMetrics(out,
                                     MetricsFormat::Prometheus);
                if (options_.includeGlobalMetrics)
                    obs::MetricsRegistry::global()
                        .writePrometheus(out);
            }
            else if (format == "json") {
                // writeJson ends at the closing brace; the line
                // protocol needs every reply newline-terminated.
                service.writeMetrics(out, MetricsFormat::Json);
                out << "\n";
            }
            else if (format == "fairness") {
                if (service.pooled() || service.hasCohorts() ||
                    !service.fairnessSeries().labels().empty())
                    service.fairnessSeries().writeLabelledCsv(out);
                else
                    service.fairnessSeries().writeCsv(out);
            }
            else
                REF_FATAL("unknown METRICS format '"
                          << format
                          << "' (expected prom, json, or "
                             "fairness)");
            break;
        }
        case Command::Op::Shutdown:
            service.syncJournal();
            out << "OK shutdown\n";
            result.shutdown = true;
            return LineStatus::Shutdown;
        case Command::Op::Sync:
            // The WAL stream is CRC32 frames; only the binary
            // transport can carry it. The socket front-end
            // intercepts Sync on binary connections before this
            // point, so reaching here means a text/stdio client.
            REF_FATAL("SYNC requires the binary protocol "
                      "(negotiate with the REFBIN hello)");
        case Command::Op::Promote: {
            REF_REQUIRE(options_.follower != nullptr,
                        "not a follower (started without --follow)");
            std::string message;
            REF_REQUIRE(options_.follower->promote(message),
                        "promotion failed: " << message);
            out << "OK promoted " << message << "\n";
            break;
        }
        case Command::Op::Cohort:
            service.setCohort(command.name, command.cohortLabel);
            out << "OK cohort " << command.name
                << " label=" << command.cohortLabel << "\n";
            break;
        case Command::Op::Pool:
            switch (command.poolOp) {
            case Command::PoolOp::Create:
                service.createPool(command.poolPath,
                                   command.poolWeight);
                out << "OK pool " << command.poolPath
                    << " weight=" << formatShare(command.poolWeight)
                    << " pools=" << service.poolCount() << "\n";
                break;
            case Command::PoolOp::Assign:
                service.assignPool(command.name, command.poolPath);
                out << "OK assigned " << command.name
                    << " pool=" << command.poolPath << "\n";
                break;
            case Command::PoolOp::Query: {
                service.noteQuery();
                const auto views = service.pools();
                if (!command.poolPath.empty()) {
                    const pool::PoolView *match = nullptr;
                    for (const pool::PoolView &view : views)
                        if (view.path == command.poolPath)
                            match = &view;
                    REF_REQUIRE(match != nullptr,
                                "pool '" << command.poolPath
                                         << "' does not exist");
                    printPool(out, service, *match);
                    break;
                }
                out << "POOLS count=" << views.size()
                    << " agents=" << service.liveAgents() << "\n";
                for (const pool::PoolView &view : views)
                    printPool(out, service, view);
                break;
            }
            }
            break;
        }
    } catch (const FatalError &error) {
        service.noteRejected();
        ++result.errors;
        out << "ERR " << error.what() << "\n";
        return LineStatus::Rejected;
    }
    return LineStatus::Executed;
}

SessionResult
runSession(AllocationService &service, std::istream &in,
           std::ostream &out, const SessionOptions &options)
{
    CommandSession session(service, options);
    std::string line;
    while (std::getline(in, line)) {
        if (options.stopFlag && *options.stopFlag != 0) {
            session.result().shutdown = true;
            break;
        }
        if (session.executeLine(line, out) ==
            CommandSession::LineStatus::Shutdown)
            break;
    }
    session.finish();
    return session.result();
}

} // namespace ref::svc
