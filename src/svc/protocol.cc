#include "protocol.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ref::svc {
namespace {

/** Shortest decimal that round-trips the exact double. */
std::string
formatShare(double value)
{
    char buffer[32];
    const auto [end, ec] = std::to_chars(
        buffer, buffer + sizeof(buffer), value);
    REF_ASSERT(ec == std::errc(), "to_chars failed");
    return std::string(buffer, end);
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token)
        tokens.push_back(token);
    return tokens;
}

/**
 * Parse one numeric token. Unparseable text (including trailing
 * junk) and values that are not finite doubles — literal "inf"/"nan"
 * as well as decimals like 1e999 that overflow std::stod — are
 * protocol errors; finite VALUES are still validated by the registry
 * so that zero/negative produce the registry's uniform diagnostics.
 */
double
parseNumber(const std::string &token)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(token, &consumed);
        REF_REQUIRE(consumed == token.size(),
                    "'" << token << "' is not a number");
        REF_REQUIRE(std::isfinite(value),
                    "'" << token << "' is not a finite number");
        return value;
    } catch (const std::out_of_range &) {
        // The token is numeric but overflows a double (e.g. 1e999):
        // same rejection as a parsed-to-inf value.
        REF_FATAL("'" << token << "' is not a finite number");
    } catch (const std::logic_error &) {
        REF_FATAL("'" << token << "' is not a number");
    }
}

linalg::Vector
parseElasticities(const std::vector<std::string> &tokens,
                  std::size_t first)
{
    linalg::Vector elasticities;
    for (std::size_t i = first; i < tokens.size(); ++i)
        elasticities.push_back(parseNumber(tokens[i]));
    return elasticities;
}

void
printEpoch(std::ostream &out, const EpochResult &result)
{
    out << "EPOCH " << result.epoch
        << " agents=" << result.agentNames.size()
        << " enforce=" << (result.enforcementChanged ? "update"
                                                     : "hold");
    if (result.propertiesChecked) {
        out << " si=" << (result.sharingIncentives.satisfied
                              ? "ok" : "VIOLATED")
            << " ef=" << (result.envyFreeness.satisfied ? "ok"
                                                        : "VIOLATED");
    }
    out << " selfcheck="
        << (result.incrementalMatchesScratch ? "ok" : "FAIL") << "\n";
}

void
printShares(std::ostream &out, const ServiceSnapshot &snapshot,
            std::size_t row)
{
    out << "SHARE " << snapshot.agents[row];
    for (std::size_t r = 0; r < snapshot.allocation.resources(); ++r)
        out << " " << formatShare(snapshot.allocation.at(row, r));
    out << "\n";
}

void
printPlan(std::ostream &out, const EnforcementPlan &plan)
{
    if (plan.empty()) {
        out << "PLAN epoch=" << plan.epoch << " empty\n";
        return;
    }
    out << "PLAN epoch=" << plan.epoch
        << " agents=" << plan.agents.size() << " cache="
        << (plan.hasPartition ? "way-partition" : "shared-lru")
        << "\n";
    for (std::size_t i = 0; i < plan.agents.size(); ++i) {
        out << "ENFORCE " << plan.agents[i]
            << " wfq_weight=" << formatShare(plan.wfqWeights[i]);
        if (plan.hasPartition) {
            out << " ways=" << plan.partition.ways[i]
                << " realized="
                << formatShare(plan.partition.realizedFractions[i]);
        }
        out << "\n";
    }
    if (!plan.hasPartition && !plan.partitionNote.empty())
        out << "NOTE " << plan.partitionNote << "\n";
}

/** Static-lifetime span name for one command (Span keeps the
 *  pointer, so these must be literals). */
const char *
commandSpanName(const std::string &command)
{
    if (command == "ADMIT")
        return "cmd.admit";
    if (command == "UPDATE")
        return "cmd.update";
    if (command == "DEPART")
        return "cmd.depart";
    if (command == "TICK")
        return "cmd.tick";
    if (command == "QUERY")
        return "cmd.query";
    if (command == "PLAN")
        return "cmd.plan";
    if (command == "STATS")
        return "cmd.stats";
    if (command == "METRICS")
        return "cmd.metrics";
    if (command == "SHUTDOWN")
        return "cmd.shutdown";
    return "cmd.other";
}

} // namespace

CommandSession::CommandSession(AllocationService &service,
                               const SessionOptions &options)
    : service_(service), options_(options)
{}

CommandSession::~CommandSession()
{
    finish();
}

/**
 * Rewrite the metrics exposition file and append any fairness rows
 * produced since the last flush. Output files are observability
 * side-channels: IO failures are ignored (the session's protocol
 * stream is the product, the files are best-effort exports).
 */
void
CommandSession::flushObservability()
{
    FlushState &fairness = fairness_;
    if (!options_.metricsOutPath.empty()) {
        std::ofstream file(options_.metricsOutPath,
                           std::ios::trunc);
        if (file)
            service_.writeMetrics(file, MetricsFormat::Prometheus);
    }
    if (options_.fairnessOutPath.empty())
        return;
    const obs::FairnessSeries &series = service_.fairnessSeries();
    const std::uint64_t total = series.totalAppended();
    if (fairness.headerWritten && total == fairness.rowsFlushed)
        return;
    std::ofstream file(options_.fairnessOutPath,
                       fairness.headerWritten ? std::ios::app
                                              : std::ios::trunc);
    if (!file)
        return;
    if (!fairness.headerWritten) {
        file << obs::FairnessSeries::csvHeader() << "\n";
        fairness.headerWritten = true;
    }
    const auto samples = series.samples();
    // The ring holds the lifetime range [total - size, total); rows
    // before rowsFlushed are already on disk.
    const std::uint64_t first = total - samples.size();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (first + i < fairness.rowsFlushed)
            continue;
        obs::FairnessSeries::writeCsvRow(file, samples[i]);
        file << "\n";
    }
    fairness.rowsFlushed = total;
}

void
CommandSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushObservability();
}

CommandSession::LineStatus
CommandSession::executeLine(const std::string &rawLine,
                            std::ostream &out)
{
    AllocationService &service = service_;
    SessionResult &result = result_;
    std::string line = rawLine;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    const auto tokens = tokenize(line);
    if (tokens.empty() || tokens.front().front() == '#')
        return LineStatus::Idle;
    if (options_.echo)
        out << "> " << line << "\n";
    ++result.commands;

    const std::string &command = tokens.front();
    obs::Span span(commandSpanName(command), "proto");
    try {
        if (command == "ADMIT") {
            REF_REQUIRE(tokens.size() >= 3,
                        "usage: ADMIT <name> <e0> <e1> ...");
            service.admit(tokens[1],
                          parseElasticities(tokens, 2));
            out << "OK admitted " << tokens[1] << " agents="
                << service.liveAgents() << "\n";
        } else if (command == "UPDATE") {
            REF_REQUIRE(tokens.size() >= 3,
                        "usage: UPDATE <name> <e0> <e1> ...");
            service.update(tokens[1],
                           parseElasticities(tokens, 2));
            out << "OK updated " << tokens[1] << "\n";
        } else if (command == "DEPART") {
            REF_REQUIRE(tokens.size() == 2,
                        "usage: DEPART <name>");
            service.depart(tokens[1]);
            out << "OK departed " << tokens[1] << " agents="
                << service.liveAgents() << "\n";
        } else if (command == "TICK") {
            REF_REQUIRE(tokens.size() <= 2,
                        "usage: TICK [count]");
            std::uint64_t count = 1;
            if (tokens.size() == 2) {
                const double parsed = parseNumber(tokens[1]);
                REF_REQUIRE(
                    parsed >= 1 && parsed <= kMaxTickCount &&
                        parsed ==
                            static_cast<std::uint64_t>(parsed),
                    "TICK count must be an integer in [1, "
                        << kMaxTickCount << "], got '"
                        << tokens[1] << "'");
                count = static_cast<std::uint64_t>(parsed);
            }
            for (std::uint64_t i = 0; i < count; ++i) {
                const EpochResult epoch = service.tick();
                if (!epoch.incrementalMatchesScratch ||
                    (epoch.propertiesChecked &&
                     (!epoch.sharingIncentives.satisfied ||
                      !epoch.envyFreeness.satisfied)))
                    ++result.epochFailures;
                printEpoch(out, epoch);
            }
            flushObservability();
        } else if (command == "QUERY") {
            REF_REQUIRE(tokens.size() <= 2,
                        "usage: QUERY [name]");
            service.noteQuery();
            const auto snapshot = service.snapshot();
            if (tokens.size() == 2) {
                const std::size_t row =
                    snapshot->indexOf(tokens[1]);
                REF_REQUIRE(row < snapshot->agents.size(),
                            "agent '" << tokens[1]
                                << "' is not in the epoch "
                                << snapshot->epoch
                                << " snapshot");
                printShares(out, *snapshot, row);
            } else {
                out << "SNAPSHOT epoch=" << snapshot->epoch
                    << " agents=" << snapshot->agents.size()
                    << "\n";
                for (std::size_t i = 0;
                     i < snapshot->agents.size(); ++i)
                    printShares(out, *snapshot, i);
            }
        } else if (command == "PLAN") {
            REF_REQUIRE(tokens.size() == 1, "usage: PLAN");
            service.noteQuery();
            printPlan(out, service.snapshot()->enforcement);
        } else if (command == "STATS") {
            REF_REQUIRE(tokens.size() == 1, "usage: STATS");
            printMetrics(out, service.metrics());
        } else if (command == "METRICS") {
            REF_REQUIRE(
                tokens.size() <= 2,
                "usage: METRICS [prom|json|fairness]");
            const std::string format =
                tokens.size() == 2 ? tokens[1]
                                   : std::string("prom");
            if (format == "prom") {
                service.writeMetrics(out,
                                     MetricsFormat::Prometheus);
                if (options_.includeGlobalMetrics)
                    obs::MetricsRegistry::global()
                        .writePrometheus(out);
            }
            else if (format == "json") {
                // writeJson ends at the closing brace; the line
                // protocol needs every reply newline-terminated.
                service.writeMetrics(out, MetricsFormat::Json);
                out << "\n";
            }
            else if (format == "fairness")
                service.fairnessSeries().writeCsv(out);
            else
                REF_FATAL("unknown METRICS format '"
                          << format
                          << "' (expected prom, json, or "
                             "fairness)");
        } else if (command == "SHUTDOWN") {
            REF_REQUIRE(tokens.size() == 1, "usage: SHUTDOWN");
            service.syncJournal();
            out << "OK shutdown\n";
            result.shutdown = true;
            return LineStatus::Shutdown;
        } else {
            REF_FATAL("unknown command '" << command << "'");
        }
    } catch (const FatalError &error) {
        service.noteRejected();
        ++result.errors;
        out << "ERR " << error.what() << "\n";
        return LineStatus::Rejected;
    }
    return LineStatus::Executed;
}

SessionResult
runSession(AllocationService &service, std::istream &in,
           std::ostream &out, const SessionOptions &options)
{
    CommandSession session(service, options);
    std::string line;
    while (std::getline(in, line)) {
        if (options.stopFlag && *options.stopFlag != 0) {
            session.result().shutdown = true;
            break;
        }
        if (session.executeLine(line, out) ==
            CommandSession::LineStatus::Shutdown)
            break;
    }
    session.finish();
    return session.result();
}

} // namespace ref::svc
