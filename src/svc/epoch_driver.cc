#include "epoch_driver.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ref::svc {
namespace {

/** True when both allocations hold exactly the same doubles. */
bool
bitIdentical(const core::Allocation &a, const core::Allocation &b)
{
    if (a.agents() != b.agents() || a.resources() != b.resources())
        return false;
    for (std::size_t i = 0; i < a.agents(); ++i)
        for (std::size_t r = 0; r < a.resources(); ++r)
            if (a.at(i, r) != b.at(i, r))
                return false;
    return true;
}

/**
 * Largest relative per-share movement between two allocations over
 * the same agent set; +inf when the shapes differ.
 */
double
maxRelativeChange(const core::Allocation &current,
                  const core::Allocation &enforced)
{
    if (current.agents() != enforced.agents() ||
        current.resources() != enforced.resources())
        return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    for (std::size_t i = 0; i < current.agents(); ++i) {
        for (std::size_t r = 0; r < current.resources(); ++r) {
            const double before = enforced.at(i, r);
            const double after = current.at(i, r);
            const double scale = std::max(std::abs(before),
                                          std::abs(after));
            if (scale == 0.0)
                continue;
            worst = std::max(worst, std::abs(after - before) / scale);
        }
    }
    return worst;
}

} // namespace

EpochDriver::EpochDriver(AgentRegistry &registry, EpochConfig config)
    : registry_(&registry), config_(config)
{
    REF_REQUIRE(config_.hysteresis >= 0 &&
                    std::isfinite(config_.hysteresis),
                "hysteresis must be a finite non-negative fraction, "
                "got " << config_.hysteresis);
}

EpochDriver::EpochDriver(pool::PoolTree &tree, EpochConfig config)
    : tree_(&tree), config_(config)
{
    REF_REQUIRE(config_.hysteresis >= 0 &&
                    std::isfinite(config_.hysteresis),
                "hysteresis must be a finite non-negative fraction, "
                "got " << config_.hysteresis);
}

EpochResult
EpochDriver::pooledTick()
{
    const auto start = std::chrono::steady_clock::now();

    EpochResult result;
    result.epoch = ++epoch_;
    result.pooled = true;
    result.liveAgents = tree_->size();
    result.pools = tree_->poolCount();

    if (config_.verifyIncremental)
        result.incrementalMatchesScratch = tree_->selfCheck();

    // Property checks need the dense allocation and (for EF) an
    // O(N^2) pairwise sweep, so they only run while the population is
    // small and the tree is unweighted — exactly the regime where the
    // flat-REF SI/EF guarantees are the ones being promised.
    if (config_.checkProperties && !tree_->empty() &&
        tree_->size() <= kPooledPropertyCheckCap &&
        tree_->allUnitGains()) {
        const core::Allocation allocation = tree_->allocateDense();
        const core::AgentList agents = tree_->agentList();
        result.sharingIncentives = core::checkSharingIncentives(
            agents, tree_->capacity(), allocation, config_.tolerance);
        result.envyFreeness = core::checkEnvyFreeness(
            agents, allocation, config_.tolerance);
        result.propertiesChecked = true;
    }

    // No dense allocation, no enforcement plan: pooled epochs always
    // "hold" and enforcement stays at pool granularity (out of scope
    // for the dense bridge).
    result.latency = std::chrono::steady_clock::now() - start;
    return result;
}

EpochResult
EpochDriver::tick()
{
    if (tree_ != nullptr)
        return pooledTick();
    const auto start = std::chrono::steady_clock::now();

    EpochResult result;
    result.epoch = ++epoch_;
    result.agentNames.reserve(registry_->size());
    for (const auto &agent : registry_->agents())
        result.agentNames.push_back(agent.name);
    result.liveAgents = result.agentNames.size();

    if (registry_->empty()) {
        // Idle system: publish the empty allocation and drop any
        // stale enforcement.
        result.enforcementChanged = !enforcedNames_.empty();
        if (result.enforcementChanged)
            lastEnforcedEpoch_ = epoch_;
        enforced_ = core::Allocation();
        enforcedNames_.clear();
        result.latency = std::chrono::steady_clock::now() - start;
        return result;
    }

    result.allocation = registry_->allocate();

    if (config_.verifyIncremental) {
        result.incrementalMatchesScratch = bitIdentical(
            result.allocation, registry_->allocateFromScratch());
    }

    if (config_.checkProperties) {
        const core::AgentList agents = registry_->agentList();
        result.sharingIncentives = core::checkSharingIncentives(
            agents, registry_->capacity(), result.allocation,
            config_.tolerance);
        result.envyFreeness = core::checkEnvyFreeness(
            agents, result.allocation, config_.tolerance);
        result.propertiesChecked = true;
    }

    const bool sameAgents = result.agentNames == enforcedNames_;
    result.maxRelativeChange =
        sameAgents
            ? maxRelativeChange(result.allocation, enforced_)
            : std::numeric_limits<double>::infinity();
    result.enforcementChanged =
        result.maxRelativeChange > config_.hysteresis;
    if (result.enforcementChanged) {
        enforced_ = result.allocation;
        enforcedNames_ = result.agentNames;
        lastEnforcedEpoch_ = epoch_;
    }

    result.latency = std::chrono::steady_clock::now() - start;
    return result;
}

void
EpochDriver::restore(std::uint64_t epoch,
                     std::uint64_t last_enforced_epoch,
                     core::Allocation enforced,
                     std::vector<std::string> enforced_names)
{
    REF_REQUIRE(enforced.agents() == enforced_names.size(),
                "enforced allocation has " << enforced.agents()
                    << " rows for " << enforced_names.size()
                    << " agent names");
    epoch_ = epoch;
    lastEnforcedEpoch_ = last_enforced_epoch;
    enforced_ = std::move(enforced);
    enforcedNames_ = std::move(enforced_names);
}

} // namespace ref::svc
