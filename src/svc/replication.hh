/**
 * @file
 * Replication sink seam between the allocation service and the
 * shipping layer (src/repl).
 *
 * The service publishes every journaled mutation through this
 * interface *after* it is applied and encoded, under the write
 * mutex, so a sink observes the exact record byte stream the WAL
 * holds, in WAL order. The sink lives one layer up (ref_repl
 * depends on ref_svc, not the reverse); the service only ever sees
 * this abstract edge.
 *
 * Durability ordering: the sink is notified when the record is
 * *appended*, not when it is durable. Shipped frames leave the
 * process through the same transport flush that acknowledges
 * clients, and that flush runs the group-commit barrier first — so
 * anything a follower receives was fsynced on the primary before it
 * hit the wire.
 */

#ifndef REF_SVC_REPLICATION_HH
#define REF_SVC_REPLICATION_HH

#include <cstdint>
#include <string>

namespace ref::svc {

/** Where the service hands accepted records for shipping. */
class ReplicationSink
{
  public:
    virtual ~ReplicationSink() = default;

    /**
     * One accepted record, already encoded as a journal-record
     * payload (encodeJournalRecord). @p isTick marks epoch ticks;
     * for those @p stateHash is the CRC32 of the service's full
     * post-tick state (generation zeroed), the follower's
     * divergence check. Called under the service write mutex.
     */
    virtual void onRecord(const std::string &payload, bool isTick,
                          std::uint64_t epoch,
                          std::uint32_t stateHash) = 0;

    /** Sequence number of the last record handed to onRecord. */
    virtual std::uint64_t headSeq() const = 0;

    /**
     * The service replaced its state wholesale (adoptState — a
     * follower loading a snapshot resync). Records shipped before
     * this point describe a history that no longer leads to the
     * current state, so a sink that fans out to its own followers
     * must invalidate the stream: chained subscribers resync from a
     * fresh snapshot instead of silently applying on a stale base.
     * Called under the service write mutex, like onRecord.
     */
    virtual void onStateAdopted() {}
};

} // namespace ref::svc

#endif // REF_SVC_REPLICATION_HH
