#include "wire.hh"

#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::svc::wire {
namespace {

/** Validate and narrow a decoded opcode byte. */
Command::Op
opFromByte(std::uint8_t byte)
{
    switch (static_cast<Command::Op>(byte)) {
    case Command::Op::Admit:
    case Command::Op::Update:
    case Command::Op::Depart:
    case Command::Op::Tick:
    case Command::Op::Query:
    case Command::Op::Plan:
    case Command::Op::Stats:
    case Command::Op::Metrics:
    case Command::Op::Shutdown:
    case Command::Op::Pool:
    case Command::Op::Sync:
    case Command::Op::Promote:
    case Command::Op::Cohort:
        return static_cast<Command::Op>(byte);
    }
    REF_FATAL("unknown binary opcode "
              << static_cast<unsigned>(byte));
}

/** Validate and narrow a decoded pool sub-op byte. */
Command::PoolOp
poolOpFromByte(std::uint8_t byte)
{
    switch (static_cast<Command::PoolOp>(byte)) {
    case Command::PoolOp::Create:
    case Command::PoolOp::Assign:
    case Command::PoolOp::Query:
        return static_cast<Command::PoolOp>(byte);
    }
    REF_FATAL("unknown pool sub-opcode "
              << static_cast<unsigned>(byte));
}

} // namespace

std::string
encodeCommand(const Command &command)
{
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(command.op));
    switch (command.op) {
    case Command::Op::Admit:
    case Command::Op::Update:
        writer.str(command.name);
        writer.doubles(command.elasticities);
        break;
    case Command::Op::Depart:
        writer.str(command.name);
        break;
    case Command::Op::Cohort:
        writer.str(command.name);
        writer.str(command.cohortLabel);
        break;
    case Command::Op::Tick:
        writer.u64(command.tickCount);
        break;
    case Command::Op::Query:
        writer.u8(command.hasName ? 1 : 0);
        writer.str(command.hasName ? command.name
                                   : std::string_view());
        break;
    case Command::Op::Metrics:
        writer.str(command.metricsFormat);
        break;
    case Command::Op::Pool:
        writer.u8(static_cast<std::uint8_t>(command.poolOp));
        switch (command.poolOp) {
        case Command::PoolOp::Create:
            writer.str(command.poolPath);
            writer.f64(command.poolWeight);
            break;
        case Command::PoolOp::Assign:
            writer.str(command.name);
            writer.str(command.poolPath);
            break;
        case Command::PoolOp::Query:
            // Empty path means "all pools", as in the text grammar.
            writer.str(command.poolPath);
            break;
        }
        break;
    case Command::Op::Sync:
        writer.u64(command.syncStreamId);
        writer.u64(command.syncSeq);
        break;
    case Command::Op::Plan:
    case Command::Op::Stats:
    case Command::Op::Shutdown:
    case Command::Op::Promote:
        break;
    }
    return writer.take();
}

Command
decodeCommand(std::string_view payload)
{
    ByteReader reader(payload);
    Command command;
    command.op = opFromByte(reader.u8());
    switch (command.op) {
    case Command::Op::Admit:
    case Command::Op::Update:
        command.name = reader.str();
        command.elasticities = reader.doubles();
        break;
    case Command::Op::Depart:
        command.name = reader.str();
        break;
    case Command::Op::Cohort:
        command.name = reader.str();
        command.cohortLabel = reader.str();
        break;
    case Command::Op::Tick:
        command.tickCount = reader.u64();
        break;
    case Command::Op::Query:
        command.hasName = reader.u8() != 0;
        command.name = reader.str();
        break;
    case Command::Op::Metrics:
        command.metricsFormat = reader.str();
        break;
    case Command::Op::Pool:
        command.poolOp = poolOpFromByte(reader.u8());
        switch (command.poolOp) {
        case Command::PoolOp::Create:
            command.poolPath = reader.str();
            command.poolWeight = reader.f64();
            break;
        case Command::PoolOp::Assign:
            command.name = reader.str();
            command.poolPath = reader.str();
            break;
        case Command::PoolOp::Query:
            command.poolPath = reader.str();
            break;
        }
        break;
    case Command::Op::Sync:
        command.syncStreamId = reader.u64();
        command.syncSeq = reader.u64();
        break;
    case Command::Op::Plan:
    case Command::Op::Stats:
    case Command::Op::Shutdown:
    case Command::Op::Promote:
        break;
    }
    REF_REQUIRE(reader.atEnd(), "request frame has "
                                    << reader.remaining()
                                    << " trailing bytes");
    return command;
}

std::string
encodeReply(ReplyStatus status, std::string_view text)
{
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(status));
    writer.str(text);
    return writer.take();
}

Reply
decodeReply(std::string_view payload)
{
    ByteReader reader(payload);
    Reply reply;
    const std::uint8_t status = reader.u8();
    REF_REQUIRE(status <=
                    static_cast<std::uint8_t>(ReplyStatus::Hello),
                "unknown reply status "
                    << static_cast<unsigned>(status));
    reply.status = static_cast<ReplyStatus>(status);
    reply.text = reader.str();
    REF_REQUIRE(reader.atEnd(), "reply frame has "
                                    << reader.remaining()
                                    << " trailing bytes");
    return reply;
}

std::string
encodeHelloAck()
{
    return encodeReply(ReplyStatus::Hello, "REF binary protocol v1");
}

} // namespace ref::svc::wire
