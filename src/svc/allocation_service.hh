/**
 * @file
 * Thread-safe facade over the online REF runtime.
 *
 * Writers (admit/depart/update/tick) serialize on one mutex; readers
 * never take it. Every tick publishes an immutable ServiceSnapshot
 * behind a shared_ptr swapped under a tiny pointer lock, so queries
 * cost one refcounted pointer copy and proceed concurrently with the
 * next epoch's reallocation (copy-on-write: old snapshots stay valid
 * for readers still holding them).
 *
 * With a journal directory configured (svc/journal.hh), every
 * accepted mutation and tick is appended to a CRC32-framed
 * write-ahead log after it is applied, and construction first
 * recovers whatever a previous process left behind: snapshot
 * restore, wal replay through the exact same registry/driver code
 * paths, tail truncation on torn frames, then a fresh compaction so
 * the new process starts on its own generation. Journal IO errors
 * degrade gracefully — the service keeps serving, skipped records
 * are counted, and journaling resumes through a resync snapshot
 * once the disk recovers.
 */

#ifndef REF_SVC_ALLOCATION_SERVICE_HH
#define REF_SVC_ALLOCATION_SERVICE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fairness_series.hh"
#include "pool/pool_tree.hh"
#include "svc/agent_registry.hh"
#include "svc/enforcement_bridge.hh"
#include "svc/epoch_driver.hh"
#include "svc/journal.hh"
#include "svc/replication.hh"
#include "svc/service_metrics.hh"
#include "svc/snapshot.hh"

namespace ref::svc {

/** Service-wide configuration. */
struct ServiceConfig
{
    core::SystemCapacity capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    EpochConfig epoch;
    /** L2 ways available to the enforcement bridge. */
    unsigned associativity = 16;
    /** Derive enforcement artifacts each enforced epoch (requires
     *  the 2-resource bandwidth+cache convention). */
    bool buildEnforcement = true;
    /** Durability; journal.directory empty keeps the service
     *  memory-only. */
    JournalConfig journal;
    /**
     * Run the hierarchical pool tree instead of the flat registry.
     * Pooled mode keeps epochs O(changed paths): ticks never build a
     * dense allocation, QUERY answers from the live tree, and
     * enforcement must be off (incompatible with lazy shares).
     */
    bool pooled = false;
    /** Leaf-registry hash shards for the pooled tree. */
    std::size_t poolShards = 8;
};

/** Immutable view of the service after some epoch. */
struct ServiceSnapshot
{
    std::uint64_t epoch = 0;
    std::vector<std::string> agents;  //!< Allocation-row order.
    core::Allocation allocation;
    /** Enforcement artifacts of the last *enforced* epoch (carried
     *  forward unchanged across hysteresis holds). */
    EnforcementPlan enforcement;
    /** Last epoch's property-check outcomes. */
    bool propertiesChecked = false;
    core::PropertyCheck sharingIncentives;
    core::PropertyCheck envyFreeness;

    /** Row of @p name, or agents.size() when absent. */
    std::size_t indexOf(const std::string &name) const;
};

/** Exposition formats served by the METRICS command. */
enum class MetricsFormat
{
    Prometheus,
    Json,
};

/** Long-lived allocation service: registry + epochs + metrics. */
class AllocationService
{
  public:
    /**
     * With config.journal enabled, recovers the journal directory's
     * state before accepting traffic. Throws FatalError when the
     * directory holds a corrupt snapshot or state written for a
     * different capacity configuration.
     */
    explicit AllocationService(ServiceConfig config = {});

    /** @name Churn (validated; throws FatalError on bad input). */
    ///@{
    void admit(const std::string &name,
               const linalg::Vector &elasticities);
    void depart(const std::string &name);
    void update(const std::string &name,
                const linalg::Vector &elasticities);
    ///@}

    /** Advance one epoch, publish a fresh snapshot. */
    EpochResult tick();

    /** @name Pooled mode (throw unless config.pooled). */
    ///@{
    /** Create a pool (idempotent for an identical weight). */
    void createPool(const std::string &path, double weight);
    /** Move an agent into a pool. */
    void assignPool(const std::string &name,
                    const std::string &path);
    /** Agent @p name's live shares (current tree, not the published
     *  snapshot — pooled ticks never materialize allocations). */
    linalg::Vector agentShares(const std::string &name) const;
    /** Owning pool path of @p name. */
    std::string agentPool(const std::string &name) const;
    /** All pools in creation order (root first). */
    std::vector<pool::PoolView> pools() const;
    /** Capacity fraction held by the subtree at @p path. */
    linalg::Vector poolShareFractions(const std::string &path) const;
    std::size_t poolCount() const;
    ///@}

    bool pooled() const { return tree_ != nullptr; }

    /** @name Fairness cohorts (flat mode only).
     *
     * A cohort is an observability-only label over live agents: each
     * checked epoch additionally appends one labelled fairness
     * sample per cohort, whose SI margin is the minimum over the
     * cohort's members (vs the equal split) and whose EF margin is
     * the minimum over the cohort's members against the whole
     * population. This is how the adversary fleet reads honest-agent
     * damage separately from the liars' own series. Labels are not
     * journaled, not replicated, and excluded from stateHash();
     * departure drops the departing agent's label. */
    ///@{
    /** Label @p name (must be live). Throws FatalError on a pooled
     *  service, an unknown agent, or a malformed label. */
    void setCohort(const std::string &name,
                   const std::string &label);
    /** True when at least one live agent carries a label. */
    bool hasCohorts() const;
    ///@}

    /**
     * Current snapshot (never null; epoch 0 snapshot before the
     * first tick). Safe to call concurrently with everything.
     */
    std::shared_ptr<const ServiceSnapshot> snapshot() const;

    /** Service metrics, journal/durability counters included. */
    MetricsSnapshot metrics() const;

    /**
     * Write the full metrics registry in the requested exposition
     * format. Journal and recovery counters are refreshed into the
     * registry first, so this always agrees with metrics()/STATS.
     */
    void writeMetrics(std::ostream &os, MetricsFormat format) const;

    /** Per-epoch fairness time series (ticks only, never replay). */
    const obs::FairnessSeries &fairnessSeries() const
    {
        return series_;
    }

    /** Count a command rejected at the protocol layer. */
    void noteRejected() { metrics_.recordRejected(); }

    /** Count a query served from the snapshot. */
    void noteQuery() { metrics_.recordQuery(); }

    /** How construction-time recovery went. */
    const RecoveryInfo &recovery() const { return recovery_; }

    /** Flush + fsync the journal now (shutdown/signal path). */
    void syncJournal();

    /**
     * Group-commit ack barrier: make every appended journal record
     * durable before client replies leave the process. One barrier
     * covers every record appended since the last — the transport
     * calls this once per flush pass, amortizing the fsync across
     * all connections' batched replies.
     */
    void journalBarrier();

    /** @name Replication (see svc/replication.hh, src/repl). */
    ///@{
    /**
     * Attach the shipping sink. Every journaled record is handed to
     * it, encoded, in WAL order, under the write mutex. Must be set
     * before traffic; pass nullptr to detach.
     */
    void setReplicationSink(ReplicationSink *sink);

    /**
     * Apply one shipped record through the live mutation paths —
     * exactly the wal-replay code, so a follower's state is
     * bit-identical to the primary's by the same argument as crash
     * recovery. The record is re-journaled locally (the follower
     * keeps its own durable history) and re-shipped to any chained
     * sink.
     */
    void applyShipped(const JournalRecord &record);

    /**
     * Replace the entire service state with @p state (snapshot
     * resync): reset the registry/tree/driver, restore, and — when
     * journaling — compact so the adopted state is durable under a
     * fresh local generation.
     */
    void adoptState(const ServiceState &state);

    /**
     * CRC32 of the full encoded service state with the generation
     * zeroed: generations are process-local (a follower runs its
     * own), everything else must match the primary bit for bit.
     */
    std::uint32_t stateHash() const;

    /**
     * Encode the full state for a snapshot resync, atomically with
     * the sink's head sequence (@p atSeq): records after atSeq are
     * exactly the ones not reflected in the returned state, so a
     * subscriber resumes from atSeq with no gap and no repeat.
     */
    std::string captureReplicationSnapshot(std::uint64_t &atSeq) const;

    /**
     * Promotion: the follower stops replaying and starts serving.
     * Compacts onto a fresh generation so the promoted history is
     * distinguishable from the dead primary's.
     */
    void promote();
    ///@}

    std::size_t liveAgents() const;
    const ServiceConfig &config() const { return config_; }

  private:
    void publish(std::shared_ptr<const ServiceSnapshot> next);
    /** Build + publish the post-tick snapshot (tick and replay). */
    void publishEpochLocked(const EpochResult &result);
    /** Recover snapshot + wal from the journal directory. */
    void recoverLocked();
    /** Restore @p state into registry/tree/driver + publish. */
    void restoreStateLocked(const ServiceState &state);
    /** Drop all live state: fresh registry/tree/driver/snapshot. */
    void resetRuntimeLocked();
    /** CRC32 of the encoded state, generation zeroed. */
    std::uint32_t stateHashLocked() const;
    /** Apply one replayed wal record through the normal paths. */
    void applyRecordLocked(const JournalRecord &record);
    /** Journal one accepted record; handles degraded mode. */
    void journalAppendLocked(const JournalRecord &record);
    /** Write snapshot generation+1, then restart the wal on it. */
    bool compactLocked();
    /** Full service state for a snapshot. */
    ServiceState captureStateLocked() const;
    /** Mirror live journal/recovery state into the registry. */
    void refreshRegistryLocked() const;
    /** Append the epoch's fairness sample and update the gauges. */
    void recordFairnessLocked(const ServiceSnapshot &previous,
                              const EpochResult &result);
    /** Pooled variant: global + per-pool labelled samples, with
     *  drift computed over pool share fractions (O(pools), never
     *  O(agents)). */
    void recordPooledFairnessLocked(const EpochResult &result);
    /** Flat-mode cohorts: one labelled sample per cohort with the
     *  cohort's own worst SI/EF margins (members vs the whole
     *  population). Only runs when cohorts exist and this epoch's
     *  properties were checked. */
    void appendCohortFairnessLocked(const EpochResult &result,
                                    const obs::FairnessSample &base);

    ServiceConfig config_;
    mutable std::mutex writeMutex_;  //!< Serializes churn and ticks.
    AgentRegistry registry_;
    /** Pooled mode only; flat mode leaves this null and the
     *  registry carries the population. */
    std::unique_ptr<pool::PoolTree> tree_;
    EpochDriver driver_;
    mutable ServiceMetrics metrics_;
    obs::FairnessSeries series_;
    /** Last epoch's per-pool share fractions, indexed by pool
     *  creation order (pools are append-only), for pooled drift. */
    std::vector<linalg::Vector> lastPoolShares_;
    /** Agent -> cohort label (flat mode, observability only; sorted
     *  so per-epoch labelled appends iterate deterministically). */
    std::map<std::string, std::string> cohorts_;

    std::unique_ptr<Journal> journal_;  //!< Null when disabled.
    RecoveryInfo recovery_;
    std::uint64_t generation_ = 0;  //!< Current snapshot generation.
    ReplicationSink *sink_ = nullptr;  //!< Shipping edge; unowned.

    mutable std::mutex snapshotMutex_;  //!< Guards the pointer only.
    std::shared_ptr<const ServiceSnapshot> snapshot_;
};

} // namespace ref::svc

#endif // REF_SVC_ALLOCATION_SERVICE_HH
