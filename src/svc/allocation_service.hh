/**
 * @file
 * Thread-safe facade over the online REF runtime.
 *
 * Writers (admit/depart/update/tick) serialize on one mutex; readers
 * never take it. Every tick publishes an immutable ServiceSnapshot
 * behind a shared_ptr swapped under a tiny pointer lock, so queries
 * cost one refcounted pointer copy and proceed concurrently with the
 * next epoch's reallocation (copy-on-write: old snapshots stay valid
 * for readers still holding them).
 */

#ifndef REF_SVC_ALLOCATION_SERVICE_HH
#define REF_SVC_ALLOCATION_SERVICE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/agent_registry.hh"
#include "svc/enforcement_bridge.hh"
#include "svc/epoch_driver.hh"
#include "svc/service_metrics.hh"

namespace ref::svc {

/** Service-wide configuration. */
struct ServiceConfig
{
    core::SystemCapacity capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    EpochConfig epoch;
    /** L2 ways available to the enforcement bridge. */
    unsigned associativity = 16;
    /** Derive enforcement artifacts each enforced epoch (requires
     *  the 2-resource bandwidth+cache convention). */
    bool buildEnforcement = true;
};

/** Immutable view of the service after some epoch. */
struct ServiceSnapshot
{
    std::uint64_t epoch = 0;
    std::vector<std::string> agents;  //!< Allocation-row order.
    core::Allocation allocation;
    /** Enforcement artifacts of the last *enforced* epoch (carried
     *  forward unchanged across hysteresis holds). */
    EnforcementPlan enforcement;
    /** Last epoch's property-check outcomes. */
    bool propertiesChecked = false;
    core::PropertyCheck sharingIncentives;
    core::PropertyCheck envyFreeness;

    /** Row of @p name, or agents.size() when absent. */
    std::size_t indexOf(const std::string &name) const;
};

/** Long-lived allocation service: registry + epochs + metrics. */
class AllocationService
{
  public:
    explicit AllocationService(ServiceConfig config = {});

    /** @name Churn (validated; throws FatalError on bad input). */
    ///@{
    void admit(const std::string &name,
               const linalg::Vector &elasticities);
    void depart(const std::string &name);
    void update(const std::string &name,
                const linalg::Vector &elasticities);
    ///@}

    /** Advance one epoch, publish a fresh snapshot. */
    EpochResult tick();

    /**
     * Current snapshot (never null; epoch 0 snapshot before the
     * first tick). Safe to call concurrently with everything.
     */
    std::shared_ptr<const ServiceSnapshot> snapshot() const;

    MetricsSnapshot metrics() const { return metrics_.snapshot(); }

    /** Count a command rejected at the protocol layer. */
    void noteRejected() { metrics_.recordRejected(); }

    /** Count a query served from the snapshot. */
    void noteQuery() { metrics_.recordQuery(); }

    std::size_t liveAgents() const;
    const ServiceConfig &config() const { return config_; }

  private:
    void publish(std::shared_ptr<const ServiceSnapshot> next);

    ServiceConfig config_;
    mutable std::mutex writeMutex_;  //!< Serializes churn and ticks.
    AgentRegistry registry_;
    EpochDriver driver_;
    ServiceMetrics metrics_;

    mutable std::mutex snapshotMutex_;  //!< Guards the pointer only.
    std::shared_ptr<const ServiceSnapshot> snapshot_;
};

} // namespace ref::svc

#endif // REF_SVC_ALLOCATION_SERVICE_HH
