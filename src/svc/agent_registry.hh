/**
 * @file
 * Registry of live agents for the online allocation service.
 *
 * The REF closed form (paper Eq. 13) allocates each resource in
 * proportion to the agents' re-scaled elasticities; the only
 * cross-agent state it needs is the per-resource sum of those
 * re-scaled elasticities. The registry therefore maintains each
 * resource's denominator in an order-independent ExactSum as agents
 * are admitted, updated and departed — O(changed agents) bookkeeping
 * per epoch — and emits allocations that are bit-identical to a
 * from-scratch ProportionalElasticityMechanism run over the
 * surviving agents (the recompute path kept for verification).
 */

#ifndef REF_SVC_AGENT_REGISTRY_HH
#define REF_SVC_AGENT_REGISTRY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.hh"
#include "core/allocation.hh"
#include "core/resource.hh"
#include "util/exact_sum.hh"

namespace ref::svc {

/** One live agent with its derived allocation state. */
struct RegisteredAgent
{
    std::string name;
    /** Reported elasticities, as admitted/updated. */
    linalg::Vector elasticities;
    /** The same elasticities re-scaled to sum to one (Eq. 12). */
    linalg::Vector rescaled;
    /** Epoch at which the agent was admitted (0 = before any tick). */
    std::uint64_t admittedEpoch = 0;
};

/**
 * Live-agent bookkeeping with incremental REF denominators.
 *
 * Not thread-safe on its own; the AllocationService facade
 * serializes mutation. Agents keep admission order, so the n-th row
 * of an allocation always corresponds to the n-th surviving agent.
 */
class AgentRegistry
{
  public:
    explicit AgentRegistry(core::SystemCapacity capacity);

    /**
     * Admit a new agent. Throws FatalError when the name is empty,
     * contains whitespace, or is already registered, or when the
     * elasticity vector has the wrong width or any non-positive or
     * non-finite entry (which would otherwise poison every agent's
     * share with NaN).
     */
    void admit(const std::string &name,
               const linalg::Vector &elasticities,
               std::uint64_t epoch = 0);

    /** Remove an agent. Throws FatalError when unknown. */
    void depart(const std::string &name);

    /**
     * Replace an agent's reported elasticities (on-line
     * re-profiling, paper §4.4). Same validation as admit().
     */
    void update(const std::string &name,
                const linalg::Vector &elasticities);

    std::size_t size() const { return agents_.size(); }
    bool empty() const { return agents_.empty(); }
    bool contains(const std::string &name) const;

    /** Index of @p name in admission order. Throws when unknown. */
    std::size_t indexOf(const std::string &name) const;

    /** Agents in admission order. */
    const std::vector<RegisteredAgent> &agents() const
    {
        return agents_;
    }

    /** The surviving agents as a core::AgentList (admission order). */
    core::AgentList agentList() const;

    const core::SystemCapacity &capacity() const { return capacity_; }

    /**
     * REF allocation over the live agents using the incrementally
     * maintained denominators. O(agents x resources) share writes,
     * but no cross-agent reduction. @pre !empty().
     */
    core::Allocation allocate() const;

    /**
     * Verification path: run the stock
     * ProportionalElasticityMechanism from scratch over the
     * surviving agents. Bit-identical to allocate() by construction;
     * the epoch driver's self-check and the churn property tests
     * assert this. @pre !empty().
     */
    core::Allocation allocateFromScratch() const;

    /** Total admits + departs + updates applied so far. */
    std::uint64_t churnEvents() const { return churnEvents_; }

    /**
     * Recovery only: restore the lifetime churn counter after a
     * snapshot re-admitted the surviving agents (each re-admission
     * bumped it once, which would otherwise undercount the departed
     * agents' history).
     */
    void restoreChurnEvents(std::uint64_t events)
    {
        churnEvents_ = events;
    }

  private:
    void validate(const std::string &name,
                  const linalg::Vector &elasticities) const;

    core::SystemCapacity capacity_;
    std::vector<RegisteredAgent> agents_;  //!< Admission order.
    std::unordered_map<std::string, std::size_t> index_;
    /** Per-resource exact sums of the re-scaled elasticities. */
    std::vector<ExactSum> denominators_;
    std::uint64_t churnEvents_ = 0;
};

} // namespace ref::svc

#endif // REF_SVC_AGENT_REGISTRY_HH
