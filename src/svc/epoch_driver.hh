/**
 * @file
 * Epoch clock for the online allocation service.
 *
 * REF's closed form is cheap enough to rerun every scheduling epoch
 * (the paper's strategy-proofness-in-the-large argument assumes
 * exactly this dynamic setting). The driver owns the monotonic epoch
 * counter: each tick() computes the current REF allocation from the
 * registry's incremental state, optionally verifies it against a
 * from-scratch recompute, runs the SI/EF property checks, and
 * decides — via a configurable hysteresis threshold — whether the
 * change is large enough to justify re-programming enforcement
 * (way partitions and WFQ weights are not free to install).
 */

#ifndef REF_SVC_EPOCH_DRIVER_HH
#define REF_SVC_EPOCH_DRIVER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fairness.hh"
#include "pool/pool_tree.hh"
#include "svc/agent_registry.hh"

namespace ref::svc {

/**
 * Pooled ticks skip the SI/EF property checks above this population
 * (the EF check is O(N^2) pairwise — exactly the full-population cost
 * pooled mode exists to avoid) and when any pool carries a non-unit
 * weight (weighted trees intentionally favour heavy pools, so the
 * flat equal-split baselines no longer apply).
 */
inline constexpr std::size_t kPooledPropertyCheckCap = 1024;

/** Epoch policy knobs. */
struct EpochConfig
{
    /**
     * Reallocation hysteresis: when the same agent set is live and
     * every share moved by less than this relative amount since the
     * last enforced allocation, keep the old enforcement (the epoch
     * still advances and the new allocation is still published to
     * queries). 0 re-enforces every epoch.
     */
    double hysteresis = 0.0;
    /**
     * Verify each epoch's incremental allocation bit-for-bit against
     * the from-scratch recompute (the soak and property tests run
     * with this on).
     */
    bool verifyIncremental = false;
    /** Run the SI and EF property checks each epoch. */
    bool checkProperties = true;
    /** Tolerances for the property checks. */
    core::FairnessTolerance tolerance{1e-6, 1e-6, 1e-9};
};

/** Outcome of one epoch tick. */
struct EpochResult
{
    std::uint64_t epoch = 0;
    /** True for a pool-tree tick: agentNames/allocation stay empty
     *  (no dense enumeration) and liveAgents/pools carry the scale. */
    bool pooled = false;
    /** Live population (equals agentNames.size() when not pooled). */
    std::uint64_t liveAgents = 0;
    /** Pool count including the root (pooled ticks only). */
    std::uint64_t pools = 0;
    /** Live agents this epoch, admission order (allocation rows).
     *  Empty on pooled ticks. */
    std::vector<std::string> agentNames;
    /** The epoch's allocation (empty when no agents are live and on
     *  pooled ticks, which never build the dense matrix). */
    core::Allocation allocation;
    /** False when hysteresis kept the previous enforcement. */
    bool enforcementChanged = false;
    /** Largest relative per-share change vs the enforced allocation;
     *  +inf when the agent set changed. */
    double maxRelativeChange = 0.0;
    /** Self-check outcome; true when verification is off or passed. */
    bool incrementalMatchesScratch = true;
    /** SI/EF results (left defaulted when checks are off or no
     *  agents are live). */
    core::PropertyCheck sharingIncentives;
    core::PropertyCheck envyFreeness;
    bool propertiesChecked = false;
    /** Wall time spent computing this tick. */
    std::chrono::nanoseconds latency{0};
};

/** Monotonic epoch clock driving per-epoch reallocation. */
class EpochDriver
{
  public:
    /** @param registry Live-agent state; must outlive the driver. */
    explicit EpochDriver(AgentRegistry &registry,
                         EpochConfig config = {});

    /**
     * Pooled mode: drive a pool tree instead of the flat registry.
     * Ticks never build the dense allocation (shares are computed
     * lazily per query), so the per-epoch cost is O(pools), not
     * O(population); verifyIncremental runs the tree's three-way
     * denominator self-check plus the dense bitwise compare, and the
     * property checks run only for small unweighted populations (see
     * kPooledPropertyCheckCap). @param tree must outlive the driver.
     */
    explicit EpochDriver(pool::PoolTree &tree, EpochConfig config = {});

    /** Advance one epoch and reallocate. */
    EpochResult tick();

    /** Epochs completed so far. */
    std::uint64_t epoch() const { return epoch_; }

    const EpochConfig &config() const { return config_; }

    /** The allocation enforcement currently runs (for hysteresis). */
    const core::Allocation &enforced() const { return enforced_; }

    /** Agents of the enforced allocation, admission order. */
    const std::vector<std::string> &enforcedNames() const
    {
        return enforcedNames_;
    }

    /** Epoch whose tick last re-programmed enforcement. */
    std::uint64_t lastEnforcedEpoch() const
    {
        return lastEnforcedEpoch_;
    }

    /**
     * Recovery only: restore the epoch clock and the hysteresis
     * baseline exactly as a snapshot captured them, so the first
     * post-recovery tick takes the same enforce-vs-hold branch a
     * never-crashed service would.
     */
    void restore(std::uint64_t epoch,
                 std::uint64_t last_enforced_epoch,
                 core::Allocation enforced,
                 std::vector<std::string> enforced_names);

  private:
    EpochResult pooledTick();

    AgentRegistry *registry_ = nullptr;  //!< Null in pooled mode.
    pool::PoolTree *tree_ = nullptr;     //!< Null in flat mode.
    EpochConfig config_;
    std::uint64_t epoch_ = 0;
    std::uint64_t lastEnforcedEpoch_ = 0;
    core::Allocation enforced_;
    std::vector<std::string> enforcedNames_;
};

} // namespace ref::svc

#endif // REF_SVC_EPOCH_DRIVER_HH
