/**
 * @file
 * Hand-off from epoch allocations to the enforcement substrate.
 *
 * The service computes continuous shares; the hardware enforces
 * discrete artifacts (paper §4.4): the cache share becomes an
 * integral way partition (sched/partition.hh) and the bandwidth
 * share becomes the weight vector of a WFQ arbiter (sched/wfq.hh).
 * The bridge performs that translation once per enforced epoch,
 * following the repository-wide resource convention (resource 0 =
 * memory bandwidth, resource 1 = cache capacity).
 */

#ifndef REF_SVC_ENFORCEMENT_BRIDGE_HH
#define REF_SVC_ENFORCEMENT_BRIDGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocation.hh"
#include "core/resource.hh"
#include "sched/partition.hh"

namespace ref::svc {

/** Resource indices of the bandwidth/cache convention. */
inline constexpr std::size_t kBandwidthResource = 0;
inline constexpr std::size_t kCacheResource = 1;

/** The artifacts enforcement needs for one epoch. */
struct EnforcementPlan
{
    /** Epoch this plan was derived from. */
    std::uint64_t epoch = 0;
    /** Agents in allocation-row order. */
    std::vector<std::string> agents;
    /** Per-agent bandwidth fractions; the WFQ arbiter's weights. */
    std::vector<double> wfqWeights;
    /**
     * Integral L2 way partition for the cache fractions; only
     * meaningful when hasPartition (enough ways for every agent).
     */
    sched::WayPartition partition;
    bool hasPartition = false;
    /** Why hasPartition is false, for operators. */
    std::string partitionNote;

    bool empty() const { return agents.empty(); }
};

/**
 * Build the enforcement plan for one epoch's allocation.
 *
 * @param agents Agent names in allocation-row order.
 * @param allocation The epoch allocation; may be empty (idle system).
 * @param capacity Must describe the bandwidth+cache pair (2
 *        resources) — the only substrate sched/ enforces today.
 * @param associativity L2 ways to partition (<= 64).
 */
EnforcementPlan buildEnforcementPlan(
    const std::vector<std::string> &agents,
    const core::Allocation &allocation,
    const core::SystemCapacity &capacity, unsigned associativity);

} // namespace ref::svc

#endif // REF_SVC_ENFORCEMENT_BRIDGE_HH
