/**
 * @file
 * Deterministic line protocol for the allocation service.
 *
 * One command per line on an istream, one reply block per command on
 * an ostream — the transport ref_serve speaks over stdin/stdout so
 * the service is scriptable from tests and shell pipelines without
 * sockets. Grammar:
 *
 *   ADMIT <name> <e0> <e1> ...   admit agent with raw elasticities
 *   UPDATE <name> <e0> <e1> ...  replace an agent's elasticities
 *   DEPART <name>                remove an agent
 *   TICK [count]                 advance count epochs (default 1)
 *   QUERY [name]                 print snapshot shares (one agent or
 *                                all), no epoch advance
 *   PLAN                         print the enforcement artifacts of
 *                                the last enforced epoch
 *   STATS                        print service metrics
 *   METRICS [prom|json|fairness] print the metrics registry in
 *                                Prometheus (default) or JSON
 *                                exposition, or the per-epoch
 *                                fairness time series as CSV (a
 *                                pooled service, or a flat one with
 *                                cohorts, emits the labelled variant
 *                                with a leading label column)
 *   COHORT <name> <label>        tag an agent into a labelled
 *                                fairness cohort (flat mode only);
 *                                per-cohort SI/EF margins then ride
 *                                the labelled fairness series beside
 *                                the _total row — how the adversary
 *                                fleet separates honest-agent damage
 *                                from the liars' own telemetry
 *   POOL CREATE <path> [weight]  create a pool (pooled mode only;
 *                                weight defaults to 1)
 *   POOL ASSIGN <name> <path>    move an agent into a pool
 *   POOL QUERY [path]            print one pool or all pools
 *   SYNC <streamId> <seq>        subscribe to the WAL stream (binary
 *                                transport only; over text it draws
 *                                an ERR pointing at the framing)
 *   PROMOTE                      flip a warm-standby follower to
 *                                serving (fresh generation); an ERR
 *                                on a non-follower
 *   SHUTDOWN                     reply OK and end the session
 *   # ...                        comment; blank lines are ignored
 *
 * Pooled QUERY semantics: a pooled service never materializes dense
 * allocations, so QUERY answers from the *live* tree (shares as of
 * the last mutation), not the published epoch snapshot — the pooled
 * SNAPSHOT header reports live agents/pools with per-pool rows
 * instead of per-agent SHARE rows.
 *
 * Replies: "OK ..." / "EPOCH ..." / "SHARE ..." data lines, or
 * "ERR <reason>" — invalid input never aborts the session (the
 * offending command is rejected, counted, and the stream continues),
 * matching the registry's validation contract.
 */

#ifndef REF_SVC_PROTOCOL_HH
#define REF_SVC_PROTOCOL_HH

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "svc/allocation_service.hh"

namespace ref::svc {

/**
 * Session-side view of a warm-standby follower (implemented by
 * repl::FollowerClient; abstract here so ref_svc never depends on
 * the replication layer). While following() is true every mutating
 * command draws "ERR read-only follower"; PROMOTE calls promote().
 */
class FollowerControl
{
  public:
    virtual ~FollowerControl() = default;
    /** True while the service replays a primary (read-only). */
    virtual bool following() const = 0;
    /** Stop following and start serving; @p message gets the OK
     *  detail line. False when promotion is impossible. */
    virtual bool promote(std::string &message) = 0;
};

/** Largest count one TICK command may request. */
inline constexpr std::uint64_t kMaxTickCount = 100000;

/**
 * One parsed protocol command, transport-independent: the text
 * transport produces it from a tokenized line, the binary transport
 * (svc/wire.hh) decodes it from a CRC32 frame. Executing a Command
 * produces the exact same reply bytes either way — that equivalence
 * is what lets the binary wire format ride the text protocol's
 * entire test surface.
 */
struct Command
{
    /** Values are the binary wire opcodes (svc/wire.hh); keep them
     *  stable. */
    enum class Op : std::uint8_t
    {
        Admit = 1,
        Update = 2,
        Depart = 3,
        Tick = 4,
        Query = 5,
        Plan = 6,
        Stats = 7,
        Metrics = 8,
        Shutdown = 9,
        Pool = 10,
        /** Follower pull: subscribe this connection to the WAL
         *  stream (binary transport only — the reply is a stream of
         *  repl frames, which the text framing cannot carry). */
        Sync = 11,
        /** Flip a follower to serving (fresh generation). */
        Promote = 12,
        /** Tag an agent into a labelled fairness cohort. */
        Cohort = 13,
    };

    /** Pool sub-operation; values are wire bytes, keep them stable. */
    enum class PoolOp : std::uint8_t
    {
        Create = 1,
        Assign = 2,
        Query = 3,
    };

    Op op = Op::Stats;
    /** Agent name for Admit/Update/Depart, and for Query when
     *  hasName is set. */
    std::string name;
    /** Raw elasticities for Admit/Update. */
    linalg::Vector elasticities;
    /** Epochs one Tick advances (validated against kMaxTickCount at
     *  execution). */
    std::uint64_t tickCount = 1;
    /** Query: true = one agent (name), false = whole snapshot. */
    bool hasName = false;
    /** Metrics exposition format: prom, json, or fairness. */
    std::string metricsFormat = "prom";
    /** Pool sub-operation for Op::Pool. */
    PoolOp poolOp = PoolOp::Query;
    /** Pool path for Create/Assign; for PoolOp::Query, empty means
     *  "all pools" (paths are validated non-empty, so this is
     *  unambiguous). */
    std::string poolPath;
    /** Pool weight for PoolOp::Create. */
    double poolWeight = 1.0;
    /** Cohort label for Op::Cohort (agent goes in name). */
    std::string cohortLabel;
    /** Sync: the primary stream identity the follower last saw (0
     *  on a cold start — forces a snapshot resync). */
    std::uint64_t syncStreamId = 0;
    /** Sync: last record sequence the follower holds; streaming
     *  resumes at syncSeq + 1 when the ring still covers it. */
    std::uint64_t syncSeq = 0;
};

/** Protocol-session knobs. */
struct SessionOptions
{
    /** Echo each command line, prefixed "> ", before its reply —
     *  turns a piped session into a readable transcript. */
    bool echo = false;
    /**
     * Optional async stop flag (a signal handler's sig_atomic_t).
     * When it becomes non-zero the session stops before the next
     * command, as if the stream had hit EOF.
     */
    const volatile std::sig_atomic_t *stopFlag = nullptr;
    /** When non-empty, rewrite this file with the Prometheus
     *  exposition after every TICK command and at session end. */
    std::string metricsOutPath;
    /** When non-empty, append new fairness-series CSV rows to this
     *  file after every TICK command and at session end. */
    std::string fairnessOutPath;
    /**
     * Append the process-global registry (ref_net_* transport
     * counters, pool counters) to METRICS prom output. The socket
     * front-end turns this on so one scrape covers service and
     * transport; stdio sessions keep their exposition byte-stable.
     */
    bool includeGlobalMetrics = false;
    /**
     * Warm-standby state, shared by every session of a follower
     * process. Null on a normal primary: PROMOTE then answers "ERR
     * not a follower" and nothing is read-only.
     */
    FollowerControl *follower = nullptr;
};

/** What happened over one session. */
struct SessionResult
{
    std::uint64_t commands = 0;
    std::uint64_t errors = 0;  //!< ERR replies (rejected commands).
    /** Epochs whose SI or EF check failed or whose incremental
     *  allocation diverged from the from-scratch recompute. */
    std::uint64_t epochFailures = 0;
    /** True when the session ended via SHUTDOWN or the stop flag
     *  rather than EOF. */
    bool shutdown = false;

    bool clean() const { return errors == 0 && epochFailures == 0; }
};

/**
 * Transport-independent session core: executes one protocol line at
 * a time against the service, writing the reply block for that line
 * to the ostream handed in. runSession() wraps it in a getline loop
 * for the stdio transport; the socket front-end (net/socket_server)
 * feeds it lines as they are framed off each connection, one
 * CommandSession per client, all sharing one AllocationService.
 *
 * Behaviour is byte-for-byte the stdio protocol: CR stripping,
 * comment/blank skipping, optional echo, ERR-per-bad-line, and the
 * observability flushes after TICK ride inside executeLine().
 */
class CommandSession
{
  public:
    /** What one line did to the session. */
    enum class LineStatus
    {
        Idle,      //!< Blank line or comment; nothing counted.
        Executed,  //!< Command ran and replied (OK/EPOCH/... lines).
        Rejected,  //!< Command rejected with one ERR line.
        Shutdown,  //!< SHUTDOWN accepted; the session is over.
    };

    CommandSession(AllocationService &service,
                   const SessionOptions &options = {});
    ~CommandSession();
    CommandSession(const CommandSession &) = delete;
    CommandSession &operator=(const CommandSession &) = delete;

    /**
     * Execute one protocol line (no trailing newline required; a
     * trailing CR is stripped). Writes the complete reply block for
     * the line to @p out. Invalid input never throws — it produces
     * one ERR reply and LineStatus::Rejected.
     */
    LineStatus executeLine(const std::string &line,
                           std::ostream &out);

    /**
     * Execute one already-parsed command (the binary transport's
     * entry point; executeLine funnels here after tokenizing).
     * Counts the command, writes the identical reply block the text
     * transport would produce, and never throws: semantic errors
     * (bad elasticities, unknown agents, out-of-range TICK counts)
     * produce one ERR reply and LineStatus::Rejected.
     */
    LineStatus executeCommand(const Command &command,
                              std::ostream &out);

    /**
     * Final observability flush (metrics exposition rewrite +
     * fairness CSV append). runSession calls it at EOF; transports
     * call it when the connection ends. Idempotent; also run by the
     * destructor so an abandoned session still flushes.
     */
    void finish();

    /** Running totals (mutable: transports set .shutdown on an
     *  async stop, mirroring the stdio stop-flag path). */
    SessionResult &result() { return result_; }
    const SessionResult &result() const { return result_; }

  private:
    struct FlushState
    {
        bool headerWritten = false;
        std::uint64_t rowsFlushed = 0;
    };

    /** Metrics exposition rewrite + fairness CSV append (after each
     *  TICK and at finish()); IO failures are ignored. */
    void flushObservability();

    AllocationService &service_;
    SessionOptions options_;
    SessionResult result_;
    FlushState fairness_;
    bool finished_ = false;
};

/**
 * Run commands from @p in against @p service until EOF, writing
 * replies to @p out.
 */
SessionResult runSession(AllocationService &service, std::istream &in,
                         std::ostream &out,
                         const SessionOptions &options = {});

} // namespace ref::svc

#endif // REF_SVC_PROTOCOL_HH
