/**
 * @file
 * Deterministic line protocol for the allocation service.
 *
 * One command per line on an istream, one reply block per command on
 * an ostream — the transport ref_serve speaks over stdin/stdout so
 * the service is scriptable from tests and shell pipelines without
 * sockets. Grammar:
 *
 *   ADMIT <name> <e0> <e1> ...   admit agent with raw elasticities
 *   UPDATE <name> <e0> <e1> ...  replace an agent's elasticities
 *   DEPART <name>                remove an agent
 *   TICK [count]                 advance count epochs (default 1)
 *   QUERY [name]                 print snapshot shares (one agent or
 *                                all), no epoch advance
 *   PLAN                         print the enforcement artifacts of
 *                                the last enforced epoch
 *   STATS                        print service metrics
 *   METRICS [prom|json|fairness] print the metrics registry in
 *                                Prometheus (default) or JSON
 *                                exposition, or the per-epoch
 *                                fairness time series as CSV
 *   SHUTDOWN                     reply OK and end the session
 *   # ...                        comment; blank lines are ignored
 *
 * Replies: "OK ..." / "EPOCH ..." / "SHARE ..." data lines, or
 * "ERR <reason>" — invalid input never aborts the session (the
 * offending command is rejected, counted, and the stream continues),
 * matching the registry's validation contract.
 */

#ifndef REF_SVC_PROTOCOL_HH
#define REF_SVC_PROTOCOL_HH

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "svc/allocation_service.hh"

namespace ref::svc {

/** Largest count one TICK command may request. */
inline constexpr std::uint64_t kMaxTickCount = 100000;

/** Protocol-session knobs. */
struct SessionOptions
{
    /** Echo each command line, prefixed "> ", before its reply —
     *  turns a piped session into a readable transcript. */
    bool echo = false;
    /**
     * Optional async stop flag (a signal handler's sig_atomic_t).
     * When it becomes non-zero the session stops before the next
     * command, as if the stream had hit EOF.
     */
    const volatile std::sig_atomic_t *stopFlag = nullptr;
    /** When non-empty, rewrite this file with the Prometheus
     *  exposition after every TICK command and at session end. */
    std::string metricsOutPath;
    /** When non-empty, append new fairness-series CSV rows to this
     *  file after every TICK command and at session end. */
    std::string fairnessOutPath;
};

/** What happened over one session. */
struct SessionResult
{
    std::uint64_t commands = 0;
    std::uint64_t errors = 0;  //!< ERR replies (rejected commands).
    /** Epochs whose SI or EF check failed or whose incremental
     *  allocation diverged from the from-scratch recompute. */
    std::uint64_t epochFailures = 0;
    /** True when the session ended via SHUTDOWN or the stop flag
     *  rather than EOF. */
    bool shutdown = false;

    bool clean() const { return errors == 0 && epochFailures == 0; }
};

/**
 * Run commands from @p in against @p service until EOF, writing
 * replies to @p out.
 */
SessionResult runSession(AllocationService &service, std::istream &in,
                         std::ostream &out,
                         const SessionOptions &options = {});

} // namespace ref::svc

#endif // REF_SVC_PROTOCOL_HH
