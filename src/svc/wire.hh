/**
 * @file
 * Binary wire format for the allocation-service protocol.
 *
 * The text line protocol (svc/protocol.hh) stays the default and is
 * byte-for-byte untouched; this header defines the opt-in binary
 * framing a client negotiates by sending an 8-byte magic hello as
 * its very first bytes. The magic begins with NUL, which no text
 * command can start with, so the server can sniff the first bytes of
 * a connection and route it without ambiguity — text clients, shell
 * pipelines and old tooling never notice the binary path exists.
 *
 * Frames reuse the util/record_io CRC32 record format — the exact
 * frame the write-ahead journal and snapshots use — so the wire
 * format IS the journal format:
 *
 *     u32 payload length | u32 crc32(payload) | payload bytes
 *
 * and the torn/corrupt classification semantics (and their tests)
 * carry over to the transport: a short frame is "torn" (wait for
 * more bytes), a CRC mismatch is "corrupt" (one ERR reply, resync
 * past the declared length, never a disconnect).
 *
 * Request payloads encode a svc::Command (little-endian fields via
 * ByteWriter): one u8 opcode — the Command::Op value — followed by
 * the op's fields. Reply payloads are a u8 status followed by the
 * *identical reply text* the text transport would have produced for
 * the same command, so binary and text transcripts are bit-equal by
 * construction and every reply-format test covers both framings.
 */

#ifndef REF_SVC_WIRE_HH
#define REF_SVC_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/protocol.hh"

namespace ref::svc::wire {

/** Bytes a binary client sends first: NUL "REFBIN" version. The
 *  leading NUL guarantees no text-protocol stream ever matches. */
inline constexpr char kHelloMagic[8] = {'\0', 'R', 'E', 'F',
                                        'B',  'I', 'N', '\x01'};
inline constexpr std::size_t kHelloBytes = sizeof(kHelloMagic);

/** The magic as a string_view (embedded NUL included). */
inline std::string_view
helloMagic()
{
    return std::string_view(kHelloMagic, kHelloBytes);
}

/** Largest request frame payload a server accepts by default; the
 *  reply direction is bounded by the server's backlog cap. */
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;

/** First payload byte of every reply frame. */
enum class ReplyStatus : std::uint8_t
{
    Ok = 0,        //!< Command executed (OK/EPOCH/SHARE/... text).
    Err = 1,       //!< Command rejected; text is the one ERR line.
    Shutdown = 2,  //!< SHUTDOWN accepted; the server is draining.
    Hello = 3,     //!< Negotiation ack (first frame of a session).
};

/** A decoded reply frame. */
struct Reply
{
    ReplyStatus status = ReplyStatus::Ok;
    /** The text-protocol reply block, byte-identical to what the
     *  same command produces over stdio/text sockets. */
    std::string text;
};

/** Encode @p command into a request payload (not yet framed — wrap
 *  with ref::frameRecord for the wire). */
std::string encodeCommand(const Command &command);

/** Decode a request payload. Throws FatalError on an unknown opcode,
 *  a truncated payload, or trailing bytes. */
Command decodeCommand(std::string_view payload);

/** Encode a reply payload (status + reply text; frame before
 *  sending). */
std::string encodeReply(ReplyStatus status, std::string_view text);

/** Decode a reply payload. Throws FatalError on a truncated payload
 *  or an unknown status byte. */
Reply decodeReply(std::string_view payload);

/** The hello-ack payload the server sends once after the magic. */
std::string encodeHelloAck();

} // namespace ref::svc::wire

#endif // REF_SVC_WIRE_HH
