/**
 * @file
 * Full-state snapshots for journal compaction.
 *
 * A snapshot captures everything the allocation service needs to
 * resume at a record boundary: the registry (agents with their raw
 * reported elasticities — the rescaled vectors and exact-sum
 * denominators are recomputed by re-admission, which the ExactSum's
 * order independence makes bit-identical), the epoch clock with its
 * hysteresis baseline, and the published query snapshot. Doubles are
 * stored as raw IEEE-754 bits, so recovered shares are the same
 * doubles, not near-equal ones.
 *
 * On disk a snapshot is an 8-byte magic followed by one CRC32 frame
 * (util/record_io.hh), written to snapshot.tmp, fsynced, renamed
 * over snapshot.ref, directory-fsynced — a crash at any point leaves
 * either the old or the new snapshot intact, never a hybrid.
 */

#ifndef REF_SVC_SNAPSHOT_HH
#define REF_SVC_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocation.hh"
#include "core/fairness.hh"
#include "linalg/matrix.hh"

namespace ref::svc {

/**
 * Snapshot payload version this build writes. v1 payloads end after
 * the property checks; v2 appends the pooled-mode section (pooled
 * flag, pool table, per-agent pool paths). Decode accepts v1 (the
 * appended section simply defaults) and refuses anything newer.
 */
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/** One registry agent as persisted. */
struct PersistedAgent
{
    std::string name;
    linalg::Vector elasticities;  //!< Raw reported values.
    std::uint64_t admittedEpoch = 0;
    /** Owning pool path; empty for non-pooled services. */
    std::string pool;
};

/** One pool-tree node as persisted (creation order, root included). */
struct PersistedPool
{
    std::string path;
    double weight = 1.0;
    std::uint64_t createdEpoch = 0;
};

/** Everything a snapshot must capture to resume bit-identically. */
struct ServiceState
{
    std::uint64_t generation = 0;
    /** Capacity echo: recovery refuses a mismatched configuration. */
    std::vector<double> capacities;

    /** Registry. */
    std::vector<PersistedAgent> agents;  //!< Admission order.
    std::uint64_t churnEvents = 0;

    /** Epoch driver. */
    std::uint64_t epoch = 0;
    std::uint64_t lastEnforcedEpoch = 0;
    std::vector<std::string> enforcedNames;
    core::Allocation enforced;

    /** Published query snapshot. */
    std::uint64_t publishedEpoch = 0;
    std::vector<std::string> publishedAgents;
    core::Allocation publishedAllocation;
    bool propertiesChecked = false;
    core::PropertyCheck sharingIncentives;
    core::PropertyCheck envyFreeness;

    /** Pooled-mode section (v2): present when the writing service
     *  ran a pool tree. Recovery refuses a mode mismatch. */
    bool pooled = false;
    std::vector<PersistedPool> pools;  //!< Creation order.
};

/** Serialize to a frame payload (no framing/magic). */
std::string encodeServiceState(const ServiceState &state);

/** Parse a frame payload; throws FatalError on malformed bytes. */
ServiceState decodeServiceState(std::string_view payload);

/** Result of looking for a snapshot on disk. */
enum class SnapshotReadStatus {
    Missing,  //!< No file: fresh directory.
    Ok,
    Bad,      //!< Exists but unreadable/corrupt (see error).
};

/**
 * Atomically publish @p state to @p finalPath via @p tmpPath
 * (write + fsync + rename + fsync of @p directory). All IO goes
 * through the failpoint-aware shim (sites snapshot.open,
 * snapshot.write, snapshot.fsync, snapshot.rename,
 * snapshot.dirsync). False on IO failure, with errno in @p error.
 */
bool writeSnapshotFile(const std::string &directory,
                       const std::string &tmpPath,
                       const std::string &finalPath,
                       const ServiceState &state, std::string &error);

/** Load and validate a snapshot file. */
SnapshotReadStatus readSnapshotFile(const std::string &path,
                                    ServiceState &state,
                                    std::string &error);

} // namespace ref::svc

#endif // REF_SVC_SNAPSHOT_HH
