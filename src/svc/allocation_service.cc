#include "allocation_service.hh"

#include "util/logging.hh"

namespace ref::svc {

std::size_t
ServiceSnapshot::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < agents.size(); ++i)
        if (agents[i] == name)
            return i;
    return agents.size();
}

AllocationService::AllocationService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.capacity),
      driver_(registry_, config_.epoch),
      snapshot_(std::make_shared<const ServiceSnapshot>())
{
    if (config_.buildEnforcement) {
        REF_REQUIRE(config_.capacity.count() == 2,
                    "enforcement requires the bandwidth+cache pair; "
                    "disable buildEnforcement for "
                        << config_.capacity.count()
                        << "-resource systems");
    }
}

void
AllocationService::admit(const std::string &name,
                         const linalg::Vector &elasticities)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    registry_.admit(name, elasticities, driver_.epoch());
    metrics_.recordAdmit();
}

void
AllocationService::depart(const std::string &name)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    registry_.depart(name);
    metrics_.recordDepart();
}

void
AllocationService::update(const std::string &name,
                          const linalg::Vector &elasticities)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    registry_.update(name, elasticities);
    metrics_.recordUpdate();
}

EpochResult
AllocationService::tick()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    EpochResult result = driver_.tick();
    metrics_.recordEpoch(result);

    auto next = std::make_shared<ServiceSnapshot>();
    next->epoch = result.epoch;
    next->agents = result.agentNames;
    next->allocation = result.allocation;
    next->propertiesChecked = result.propertiesChecked;
    next->sharingIncentives = result.sharingIncentives;
    next->envyFreeness = result.envyFreeness;
    if (config_.buildEnforcement) {
        if (result.enforcementChanged) {
            next->enforcement = buildEnforcementPlan(
                result.agentNames, result.allocation,
                config_.capacity, config_.associativity);
            next->enforcement.epoch = result.epoch;
        } else {
            // Hysteresis hold: enforcement keeps running the plan of
            // the last enforced epoch.
            next->enforcement = snapshot()->enforcement;
        }
    }
    publish(std::move(next));
    return result;
}

std::shared_ptr<const ServiceSnapshot>
AllocationService::snapshot() const
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    return snapshot_;
}

void
AllocationService::publish(std::shared_ptr<const ServiceSnapshot> next)
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    snapshot_ = std::move(next);
}

std::size_t
AllocationService::liveAgents() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return registry_.size();
}

} // namespace ref::svc
