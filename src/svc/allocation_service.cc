#include "allocation_service.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/trace.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace ref::svc {

std::size_t
ServiceSnapshot::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < agents.size(); ++i)
        if (agents[i] == name)
            return i;
    return agents.size();
}

AllocationService::AllocationService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.capacity),
      tree_(config_.pooled
                ? std::make_unique<pool::PoolTree>(config_.capacity,
                                                   config_.poolShards)
                : nullptr),
      driver_(tree_ ? EpochDriver(*tree_, config_.epoch)
                    : EpochDriver(registry_, config_.epoch)),
      snapshot_(std::make_shared<const ServiceSnapshot>())
{
    if (config_.pooled) {
        REF_REQUIRE(!config_.buildEnforcement,
                    "pooled mode never materializes dense "
                    "allocations, so enforcement cannot run; disable "
                    "buildEnforcement for pooled services");
    }
    if (config_.buildEnforcement) {
        REF_REQUIRE(config_.capacity.count() == 2,
                    "enforcement requires the bandwidth+cache pair; "
                    "disable buildEnforcement for "
                        << config_.capacity.count()
                        << "-resource systems");
    }
    if (config_.journal.enabled()) {
        journal_ = std::make_unique<Journal>(config_.journal);
        recoverLocked();
    }
}

void
AllocationService::admit(const std::string &name,
                         const linalg::Vector &elasticities)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    const std::uint64_t epoch = driver_.epoch();
    if (tree_)
        tree_->admit(name, elasticities, pool::kRootPath, epoch);
    else
        registry_.admit(name, elasticities, epoch);
    metrics_.recordAdmit();
    JournalRecord record;
    record.type = JournalRecord::Type::Admit;
    record.name = name;
    record.elasticities = elasticities;
    record.epoch = epoch;
    journalAppendLocked(record);
}

void
AllocationService::depart(const std::string &name)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (tree_)
        tree_->depart(name);
    else
        registry_.depart(name);
    cohorts_.erase(name);
    metrics_.recordDepart();
    JournalRecord record;
    record.type = JournalRecord::Type::Depart;
    record.name = name;
    journalAppendLocked(record);
}

void
AllocationService::update(const std::string &name,
                          const linalg::Vector &elasticities)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (tree_)
        tree_->update(name, elasticities);
    else
        registry_.update(name, elasticities);
    metrics_.recordUpdate();
    JournalRecord record;
    record.type = JournalRecord::Type::Update;
    record.name = name;
    record.elasticities = elasticities;
    journalAppendLocked(record);
}

EpochResult
AllocationService::tick()
{
    obs::Span span("epoch.tick", "svc");
    std::lock_guard<std::mutex> lock(writeMutex_);
    const auto previous = snapshot();
    EpochResult result = driver_.tick();
    metrics_.recordEpoch(result);
    publishEpochLocked(result);
    recordFairnessLocked(*previous, result);
    JournalRecord record;
    record.type = JournalRecord::Type::Tick;
    record.epoch = result.epoch;
    journalAppendLocked(record);
    return result;
}

namespace {

void
requirePooled(const std::unique_ptr<pool::PoolTree> &tree)
{
    REF_REQUIRE(tree != nullptr,
                "POOL commands require a pooled service (--pooled)");
}

} // namespace

void
AllocationService::setCohort(const std::string &name,
                             const std::string &label)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    REF_REQUIRE(tree_ == nullptr,
                "COHORT requires a flat service (pooled telemetry "
                "is already labelled per pool)");
    REF_REQUIRE(registry_.contains(name),
                "agent '" << name << "' is not registered");
    REF_REQUIRE(!label.empty(), "cohort label must not be empty");
    for (const char c : label) {
        REF_REQUIRE(
            std::isgraph(static_cast<unsigned char>(c)) && c != ',',
            "cohort label must be printable without spaces or "
            "commas, got '"
                << label << "'");
    }
    REF_REQUIRE(label != "_total",
                "cohort label '_total' is reserved for the global "
                "series");
    cohorts_[name] = label;
}

bool
AllocationService::hasCohorts() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return !cohorts_.empty();
}

void
AllocationService::createPool(const std::string &path, double weight)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    const bool existed = tree_->hasPool(path);
    const std::uint64_t epoch = driver_.epoch();
    // Throws on a weight mismatch even when the pool exists, so the
    // idempotent-create check below only passes for true no-ops.
    tree_->createPool(path, weight, epoch);
    if (existed)
        return;
    metrics_.recordPoolCreate();
    JournalRecord record;
    record.type = JournalRecord::Type::PoolCreate;
    record.name = path;
    record.weight = weight;
    record.epoch = epoch;
    journalAppendLocked(record);
}

void
AllocationService::assignPool(const std::string &name,
                              const std::string &path)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    tree_->assign(name, path);
    metrics_.recordPoolAssign();
    JournalRecord record;
    record.type = JournalRecord::Type::PoolAssign;
    record.name = name;
    record.pool = path;
    journalAppendLocked(record);
}

linalg::Vector
AllocationService::agentShares(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    return tree_->sharesOf(name);
}

std::string
AllocationService::agentPool(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    return tree_->poolOf(name);
}

std::vector<pool::PoolView>
AllocationService::pools() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    return tree_->pools();
}

linalg::Vector
AllocationService::poolShareFractions(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    return tree_->poolShareFractions(path);
}

std::size_t
AllocationService::poolCount() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    requirePooled(tree_);
    return tree_->poolCount();
}

namespace {

/** Sum of |row| over one agent's bundle. */
double
bundleMass(const core::Allocation &allocation, std::size_t row)
{
    double mass = 0;
    for (std::size_t r = 0; r < allocation.resources(); ++r)
        mass += std::abs(allocation.at(row, r));
    return mass;
}

/**
 * L1 distance between two epochs' allocations over the union of
 * their agents; an agent present in only one epoch contributes its
 * whole bundle (it went from something to nothing or vice versa).
 */
double
allocationDrift(const std::vector<std::string> &old_names,
                const core::Allocation &old_alloc,
                const std::vector<std::string> &new_names,
                const core::Allocation &new_alloc)
{
    double drift = 0;
    std::vector<bool> matched(old_names.size(), false);
    for (std::size_t i = 0; i < new_names.size(); ++i) {
        std::size_t j = 0;
        while (j < old_names.size() && old_names[j] != new_names[i])
            ++j;
        if (j == old_names.size()) {
            drift += bundleMass(new_alloc, i);
            continue;
        }
        matched[j] = true;
        const std::size_t resources =
            std::min(old_alloc.resources(), new_alloc.resources());
        for (std::size_t r = 0; r < resources; ++r)
            drift +=
                std::abs(new_alloc.at(i, r) - old_alloc.at(j, r));
    }
    for (std::size_t j = 0; j < old_names.size(); ++j)
        if (!matched[j])
            drift += bundleMass(old_alloc, j);
    return drift;
}

} // namespace

void
AllocationService::recordPooledFairnessLocked(
    const EpochResult &result)
{
    const std::vector<pool::PoolView> views = tree_->pools();
    const std::uint64_t population = result.liveAgents;
    const auto latencyNs = static_cast<std::uint64_t>(
        std::max<std::chrono::nanoseconds::rep>(
            result.latency.count(), 0));

    obs::FairnessSample global;
    global.epoch = result.epoch;
    global.agents = population;
    global.checked = result.propertiesChecked;
    if (result.propertiesChecked) {
        global.siMargin =
            std::exp(result.sharingIncentives.worstSlack);
        global.efMargin = std::exp(result.envyFreeness.worstSlack);
    }
    global.maxRelativeChange = result.maxRelativeChange;
    global.latencyNs = latencyNs;

    // Pools are append-only, so creation order indexes both the last
    // epoch's fractions and this epoch's views stably.
    lastPoolShares_.resize(views.size());
    double totalDrift = 0;
    for (std::size_t p = 0; p < views.size(); ++p) {
        const linalg::Vector fractions =
            tree_->poolShareFractions(views[p].path);
        const linalg::Vector &last = lastPoolShares_[p];
        double drift = 0;
        for (std::size_t r = 0; r < fractions.size(); ++r) {
            const double before = r < last.size() ? last[r] : 0.0;
            drift += std::abs(fractions[r] - before);
        }
        // Every tree level contributes, so one agent moving between
        // sibling subtrees counts once per ancestor it crossed —
        // deeper reshuffles read as larger drift by design.
        totalDrift += drift;

        obs::FairnessSample sample;
        sample.epoch = result.epoch;
        sample.agents = views[p].agents;
        sample.checked = population > 0 && views[p].agents > 0;
        if (sample.checked) {
            // Population-proportional isolation margin: the pool's
            // worst resource fraction over its head-count share;
            // >= 1 means the subtree collectively holds at least
            // its proportional slice of every resource.
            const double fairShare =
                static_cast<double>(views[p].agents) /
                static_cast<double>(population);
            double margin =
                std::numeric_limits<double>::infinity();
            for (std::size_t r = 0; r < fractions.size(); ++r)
                margin = std::min(margin, fractions[r] / fairShare);
            sample.siMargin = margin;
        }
        // Envy is agent-granular; at pool granularity the column is
        // reserved (identically 1).
        sample.l1Drift = drift;
        sample.latencyNs = latencyNs;
        series_.appendLabelled(views[p].path, sample);
        lastPoolShares_[p] = fractions;
    }
    global.l1Drift = totalDrift;
    series_.append(global);
    metrics_.setFairnessGauges(global.siMargin, global.efMargin,
                               global.l1Drift);
    metrics_.setPoolGauges(views, lastPoolShares_);
}

void
AllocationService::recordFairnessLocked(
    const ServiceSnapshot &previous, const EpochResult &result)
{
    if (tree_) {
        recordPooledFairnessLocked(result);
        return;
    }
    obs::FairnessSample sample;
    sample.epoch = result.epoch;
    sample.agents = result.agentNames.size();
    sample.checked = result.propertiesChecked;
    if (result.propertiesChecked) {
        // worstSlack is in log-utility units, so exp() turns it into
        // the paper's multiplicative margin (>= 1 iff satisfied).
        sample.siMargin =
            std::exp(result.sharingIncentives.worstSlack);
        sample.efMargin = std::exp(result.envyFreeness.worstSlack);
    }
    sample.l1Drift = allocationDrift(
        previous.agents, previous.allocation, result.agentNames,
        result.allocation);
    sample.enforced = result.enforcementChanged;
    sample.maxRelativeChange = result.maxRelativeChange;
    sample.latencyNs = static_cast<std::uint64_t>(
        std::max<std::chrono::nanoseconds::rep>(
            result.latency.count(), 0));
    series_.append(sample);
    metrics_.setFairnessGauges(sample.siMargin, sample.efMargin,
                               sample.l1Drift);
    if (!cohorts_.empty() && result.propertiesChecked)
        appendCohortFairnessLocked(result, sample);
}

/**
 * One labelled sample per cohort. SI is each member against the
 * equal split C/N; EF is each member against every agent's bundle —
 * the same constraints the global check minimizes, re-minimized over
 * the cohort only, so an honest cohort's margin isolates the damage
 * strategic agents do to everyone else. Cost is O(members * N * R),
 * bounded by the global EF check that already ran this epoch.
 */
void
AllocationService::appendCohortFairnessLocked(
    const EpochResult &result, const obs::FairnessSample &base)
{
    const std::size_t count = result.agentNames.size();
    if (count == 0)
        return;
    const std::size_t resources = config_.capacity.count();

    // Rescaled elasticities in allocation-row order; rows whose
    // agent is unlabelled stay null.
    std::map<std::string, std::vector<std::size_t>> members;
    std::vector<const linalg::Vector *> rescaled(count, nullptr);
    for (std::size_t i = 0; i < count; ++i) {
        const auto labelled = cohorts_.find(result.agentNames[i]);
        if (labelled == cohorts_.end())
            continue;
        const std::size_t row =
            registry_.indexOf(result.agentNames[i]);
        if (row >= registry_.agents().size())
            continue;  // Departed between tick and label walk.
        members[labelled->second].push_back(i);
        rescaled[i] = &registry_.agents()[row].rescaled;
    }
    if (members.empty())
        return;

    const auto logUtility = [&](const linalg::Vector &alphas,
                                const auto &bundleAt) {
        double log_u = 0;
        for (std::size_t r = 0; r < resources; ++r)
            log_u += alphas[r] * std::log(bundleAt(r));
        return log_u;
    };

    for (const auto &[label, rows] : members) {
        double si_slack = std::numeric_limits<double>::infinity();
        double ef_slack = std::numeric_limits<double>::infinity();
        for (const std::size_t i : rows) {
            const linalg::Vector &alphas = *rescaled[i];
            const double own = logUtility(alphas, [&](std::size_t r) {
                return result.allocation.at(i, r);
            });
            const double equal =
                logUtility(alphas, [&](std::size_t r) {
                    return config_.capacity.capacity(r) /
                           static_cast<double>(count);
                });
            si_slack = std::min(si_slack, own - equal);
            for (std::size_t j = 0; j < count; ++j) {
                if (j == i)
                    continue;
                const double theirs =
                    logUtility(alphas, [&](std::size_t r) {
                        return result.allocation.at(j, r);
                    });
                ef_slack = std::min(ef_slack, own - theirs);
            }
        }
        obs::FairnessSample sample = base;
        sample.agents = rows.size();
        sample.siMargin = std::exp(si_slack);
        // A singleton population has no pairs; margin stays 1.
        sample.efMargin =
            std::isinf(ef_slack) ? 1.0 : std::exp(ef_slack);
        series_.appendLabelled(label, sample);
    }
}

void
AllocationService::publishEpochLocked(const EpochResult &result)
{
    auto next = std::make_shared<ServiceSnapshot>();
    next->epoch = result.epoch;
    next->agents = result.agentNames;
    next->allocation = result.allocation;
    next->propertiesChecked = result.propertiesChecked;
    next->sharingIncentives = result.sharingIncentives;
    next->envyFreeness = result.envyFreeness;
    if (config_.buildEnforcement) {
        if (result.enforcementChanged) {
            next->enforcement = buildEnforcementPlan(
                result.agentNames, result.allocation,
                config_.capacity, config_.associativity);
            next->enforcement.epoch = result.epoch;
        } else {
            // Hysteresis hold: enforcement keeps running the plan of
            // the last enforced epoch.
            next->enforcement = snapshot()->enforcement;
        }
    }
    publish(std::move(next));
}

std::shared_ptr<const ServiceSnapshot>
AllocationService::snapshot() const
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    return snapshot_;
}

void
AllocationService::publish(std::shared_ptr<const ServiceSnapshot> next)
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    snapshot_ = std::move(next);
}

std::size_t
AllocationService::liveAgents() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return tree_ ? tree_->size() : registry_.size();
}

void
AllocationService::refreshRegistryLocked() const
{
    metrics_.setJournal(journal_ ? journal_->stats()
                                 : JournalStats{});
    metrics_.setRecovery(recovery_);
}

MetricsSnapshot
AllocationService::metrics() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    refreshRegistryLocked();
    return metrics_.snapshot();
}

void
AllocationService::writeMetrics(std::ostream &os,
                                MetricsFormat format) const
{
    {
        std::lock_guard<std::mutex> lock(writeMutex_);
        refreshRegistryLocked();
    }
    switch (format) {
    case MetricsFormat::Prometheus:
        metrics_.registry().writePrometheus(os);
        break;
    case MetricsFormat::Json:
        metrics_.registry().writeJson(os);
        break;
    }
}

void
AllocationService::syncJournal()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (journal_)
        journal_->sync();
}

void
AllocationService::journalBarrier()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (journal_)
        journal_->barrier();
}

void
AllocationService::setReplicationSink(ReplicationSink *sink)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    sink_ = sink;
}

void
AllocationService::applyShipped(const JournalRecord &record)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    applyRecordLocked(record);
    // Re-journal locally: the follower keeps its own durable
    // history (and re-ships to any chained sink), so a promoted
    // follower restarts from its own snapshot + wal like any
    // primary.
    journalAppendLocked(record);
}

std::uint32_t
AllocationService::stateHashLocked() const
{
    ServiceState state = captureStateLocked();
    // Generations are process-local lineage counters; the primary
    // and a bit-identical follower legitimately differ there.
    state.generation = 0;
    return crc32(encodeServiceState(state));
}

std::uint32_t
AllocationService::stateHash() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return stateHashLocked();
}

std::string
AllocationService::captureReplicationSnapshot(
    std::uint64_t &atSeq) const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    // Both reads sit under the write mutex, and every sink notify
    // happens under it too, so the state reflects exactly the
    // records up to and including atSeq.
    atSeq = sink_ ? sink_->headSeq() : 0;
    return encodeServiceState(captureStateLocked());
}

void
AllocationService::resetRuntimeLocked()
{
    registry_ = AgentRegistry(config_.capacity);
    if (tree_)
        tree_ = std::make_unique<pool::PoolTree>(
            config_.capacity, config_.poolShards);
    // The driver holds raw pointers into the registry/tree, so it
    // must be rebuilt right after they are.
    driver_ = tree_ ? EpochDriver(*tree_, config_.epoch)
                    : EpochDriver(registry_, config_.epoch);
    lastPoolShares_.clear();
    cohorts_.clear();
    publish(std::make_shared<const ServiceSnapshot>());
}

void
AllocationService::adoptState(const ServiceState &state)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    resetRuntimeLocked();
    restoreStateLocked(state);
    if (journal_)
        compactLocked();  // Adopted state durable, fresh generation.
    // Any chained followers were replaying the pre-adoption
    // history; force them onto a fresh stream so they resync.
    if (sink_)
        sink_->onStateAdopted();
}

void
AllocationService::promote()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (journal_)
        compactLocked();
}

ServiceState
AllocationService::captureStateLocked() const
{
    ServiceState state;
    state.capacities = config_.capacity.capacities();
    if (tree_) {
        state.pooled = true;
        for (const pool::PoolView &view : tree_->pools())
            state.pools.push_back(PersistedPool{
                view.path, view.weight, view.createdEpoch});
        // Persist agents in admission (seq) order so re-admission
        // reproduces the dense-allocation order bit for bit.
        struct Ordered
        {
            std::uint64_t seq;
            PersistedAgent agent;
        };
        std::vector<Ordered> ordered;
        ordered.reserve(tree_->size());
        tree_->forEachAgent([&](const pool::PooledAgent &agent) {
            ordered.push_back(Ordered{
                agent.seq,
                PersistedAgent{agent.name, agent.elasticities,
                               agent.admittedEpoch,
                               tree_->poolPath(agent.pool)}});
        });
        std::sort(ordered.begin(), ordered.end(),
                  [](const Ordered &a, const Ordered &b) {
                      return a.seq < b.seq;
                  });
        state.agents.reserve(ordered.size());
        for (Ordered &entry : ordered)
            state.agents.push_back(std::move(entry.agent));
        state.churnEvents = tree_->churnEvents();
    } else {
        state.agents.reserve(registry_.size());
        for (const auto &agent : registry_.agents()) {
            state.agents.push_back(PersistedAgent{
                agent.name, agent.elasticities,
                agent.admittedEpoch, std::string()});
        }
        state.churnEvents = registry_.churnEvents();
    }
    state.epoch = driver_.epoch();
    state.lastEnforcedEpoch = driver_.lastEnforcedEpoch();
    state.enforcedNames = driver_.enforcedNames();
    state.enforced = driver_.enforced();

    const auto published = snapshot();
    state.publishedEpoch = published->epoch;
    state.publishedAgents = published->agents;
    state.publishedAllocation = published->allocation;
    state.propertiesChecked = published->propertiesChecked;
    state.sharingIncentives = published->sharingIncentives;
    state.envyFreeness = published->envyFreeness;
    return state;
}

void
AllocationService::applyRecordLocked(const JournalRecord &record)
{
    switch (record.type) {
    case JournalRecord::Type::Admit:
        // Pooled admits land at the root; the PoolAssign record
        // that may follow replays the move, exactly as it happened.
        if (tree_)
            tree_->admit(record.name, record.elasticities,
                         pool::kRootPath, record.epoch);
        else
            registry_.admit(record.name, record.elasticities,
                            record.epoch);
        break;
    case JournalRecord::Type::Update:
        if (tree_)
            tree_->update(record.name, record.elasticities);
        else
            registry_.update(record.name, record.elasticities);
        break;
    case JournalRecord::Type::Depart:
        if (tree_)
            tree_->depart(record.name);
        else
            registry_.depart(record.name);
        break;
    case JournalRecord::Type::PoolCreate:
        REF_REQUIRE(tree_ != nullptr,
                    "wal holds pool records but the service is not "
                    "pooled; restart with pooled mode on");
        tree_->createPool(record.name, record.weight, record.epoch);
        break;
    case JournalRecord::Type::PoolAssign:
        REF_REQUIRE(tree_ != nullptr,
                    "wal holds pool records but the service is not "
                    "pooled; restart with pooled mode on");
        tree_->assign(record.name, record.pool);
        break;
    case JournalRecord::Type::Tick: {
        const EpochResult result = driver_.tick();
        // The journal only holds accepted operations, so replay is
        // deterministic; a mismatched epoch means the wal and the
        // process disagree about history — refuse to guess.
        REF_REQUIRE(result.epoch == record.epoch,
                    "journal tick record expects epoch "
                        << record.epoch << ", replay reached "
                        << result.epoch);
        publishEpochLocked(result);
        break;
    }
    case JournalRecord::Type::Begin:
        REF_PANIC("Begin record leaked out of wal replay");
    }
}

void
AllocationService::restoreStateLocked(const ServiceState &state)
{
    REF_REQUIRE(state.capacities == config_.capacity.capacities(),
                "journal directory '"
                    << config_.journal.directory
                    << "' was written for a different capacity "
                       "configuration");
    REF_REQUIRE(state.pooled == config_.pooled,
                "journal directory '"
                    << config_.journal.directory
                    << "' was written by a "
                    << (state.pooled ? "pooled" : "flat")
                    << " service; restart with the matching "
                       "mode");
    if (tree_) {
        for (const PersistedPool &pool : state.pools) {
            if (pool.path == pool::kRootPath)
                continue;  // The ctor already made the root.
            tree_->createPool(pool.path, pool.weight,
                              pool.createdEpoch);
        }
        for (const auto &agent : state.agents)
            tree_->admit(agent.name, agent.elasticities,
                         agent.pool.empty() ? pool::kRootPath
                                            : agent.pool,
                         agent.admittedEpoch);
        tree_->restoreChurnEvents(state.churnEvents);
    } else {
        for (const auto &agent : state.agents)
            registry_.admit(agent.name, agent.elasticities,
                            agent.admittedEpoch);
        registry_.restoreChurnEvents(state.churnEvents);
    }
    driver_.restore(state.epoch, state.lastEnforcedEpoch,
                    state.enforced, state.enforcedNames);

    auto published = std::make_shared<ServiceSnapshot>();
    published->epoch = state.publishedEpoch;
    published->agents = state.publishedAgents;
    published->allocation = state.publishedAllocation;
    published->propertiesChecked = state.propertiesChecked;
    published->sharingIncentives = state.sharingIncentives;
    published->envyFreeness = state.envyFreeness;
    if (config_.buildEnforcement && !state.enforcedNames.empty()) {
        // The plan is a pure function of the enforced
        // allocation, so re-deriving it beats persisting it.
        published->enforcement = buildEnforcementPlan(
            state.enforcedNames, state.enforced, config_.capacity,
            config_.associativity);
        published->enforcement.epoch = state.lastEnforcedEpoch;
    }
    publish(std::move(published));
}

void
AllocationService::recoverLocked()
{
    // 1. Snapshot, if any.
    ServiceState state;
    std::string error;
    const SnapshotReadStatus status = readSnapshotFile(
        journal_->snapshotPath(), state, error);
    REF_REQUIRE(status != SnapshotReadStatus::Bad,
                "cannot recover journal directory '"
                    << config_.journal.directory << "': " << error);

    std::uint64_t generation = 0;
    if (status == SnapshotReadStatus::Ok) {
        restoreStateLocked(state);
        generation = state.generation;
        recovery_.snapshotLoaded = true;
    }

    // 2. Wal replay through the normal mutation paths.
    const Journal::WalReplay wal = journal_->replay(generation);
    for (const auto &record : wal.records)
        applyRecordLocked(record);
    recovery_.replayedRecords = wal.records.size();
    recovery_.truncatedBytes = wal.truncatedBytes;
    if (wal.discardedStale)
        recovery_.outcome = RecoveryOutcome::DiscardedWal;
    else if (wal.truncatedTail)
        recovery_.outcome = RecoveryOutcome::TruncatedTail;
    else if (!recovery_.snapshotLoaded && !wal.hadWal)
        recovery_.outcome = RecoveryOutcome::Fresh;
    else
        recovery_.outcome = RecoveryOutcome::Clean;

    // 3. Start this process's own generation: compact so the wal
    // never re-grows across restarts and the torn tail (if any) is
    // physically discarded.
    generation_ = generation;
    compactLocked();
    recovery_.generation = generation_;
}

void
AllocationService::journalAppendLocked(const JournalRecord &record)
{
    if (sink_) {
        // Ship the exact WAL byte stream. Ticks carry the post-tick
        // state hash so the follower can prove bit-identity after
        // applying each epoch (restore-is-bit-identical makes any
        // divergence a hard fault, never silent drift).
        const bool isTick =
            record.type == JournalRecord::Type::Tick;
        sink_->onRecord(encodeJournalRecord(record), isTick,
                        record.epoch,
                        isTick ? stateHashLocked() : 0);
    }
    if (!journal_)
        return;
    if (journal_->degraded()) {
        // The mutation is already applied in memory; if backoff says
        // so, try to resync. Success or not, this record is covered:
        // a successful resync snapshot captured post-mutation state.
        if (journal_->noteSkippedAndMaybeRetry()) {
            if (compactLocked())
                journal_->noteReopened();
        }
        return;
    }
    if (!journal_->append(record))
        return;  // Entered degraded mode; resync will re-capture.
    if (config_.journal.snapshotEvery != 0 &&
        journal_->recordsSinceBegin() >=
            config_.journal.snapshotEvery &&
        journal_->recordsSinceBegin() %
                config_.journal.snapshotEvery ==
            0)
        compactLocked();
}

bool
AllocationService::compactLocked()
{
    ServiceState state = captureStateLocked();
    state.generation = generation_ + 1;
    std::string error;
    if (!writeSnapshotFile(config_.journal.directory,
                           journal_->snapshotTmpPath(),
                           journal_->snapshotPath(), state, error)) {
        journal_->noteSnapshot(false);
        REF_WARN("snapshot compaction failed ("
                 << error << "); journal keeps the current wal");
        return false;
    }
    journal_->noteSnapshot(true);
    generation_ = state.generation;
    return journal_->begin(generation_,
                           config_.capacity.capacities());
}

} // namespace ref::svc
