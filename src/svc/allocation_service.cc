#include "allocation_service.hh"

#include <cmath>
#include <ostream>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace ref::svc {

std::size_t
ServiceSnapshot::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < agents.size(); ++i)
        if (agents[i] == name)
            return i;
    return agents.size();
}

AllocationService::AllocationService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.capacity),
      driver_(registry_, config_.epoch),
      snapshot_(std::make_shared<const ServiceSnapshot>())
{
    if (config_.buildEnforcement) {
        REF_REQUIRE(config_.capacity.count() == 2,
                    "enforcement requires the bandwidth+cache pair; "
                    "disable buildEnforcement for "
                        << config_.capacity.count()
                        << "-resource systems");
    }
    if (config_.journal.enabled()) {
        journal_ = std::make_unique<Journal>(config_.journal);
        recoverLocked();
    }
}

void
AllocationService::admit(const std::string &name,
                         const linalg::Vector &elasticities)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    const std::uint64_t epoch = driver_.epoch();
    registry_.admit(name, elasticities, epoch);
    metrics_.recordAdmit();
    JournalRecord record;
    record.type = JournalRecord::Type::Admit;
    record.name = name;
    record.elasticities = elasticities;
    record.epoch = epoch;
    journalAppendLocked(record);
}

void
AllocationService::depart(const std::string &name)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    registry_.depart(name);
    metrics_.recordDepart();
    JournalRecord record;
    record.type = JournalRecord::Type::Depart;
    record.name = name;
    journalAppendLocked(record);
}

void
AllocationService::update(const std::string &name,
                          const linalg::Vector &elasticities)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    registry_.update(name, elasticities);
    metrics_.recordUpdate();
    JournalRecord record;
    record.type = JournalRecord::Type::Update;
    record.name = name;
    record.elasticities = elasticities;
    journalAppendLocked(record);
}

EpochResult
AllocationService::tick()
{
    obs::Span span("epoch.tick", "svc");
    std::lock_guard<std::mutex> lock(writeMutex_);
    const auto previous = snapshot();
    EpochResult result = driver_.tick();
    metrics_.recordEpoch(result);
    publishEpochLocked(result);
    recordFairnessLocked(*previous, result);
    JournalRecord record;
    record.type = JournalRecord::Type::Tick;
    record.epoch = result.epoch;
    journalAppendLocked(record);
    return result;
}

namespace {

/** Sum of |row| over one agent's bundle. */
double
bundleMass(const core::Allocation &allocation, std::size_t row)
{
    double mass = 0;
    for (std::size_t r = 0; r < allocation.resources(); ++r)
        mass += std::abs(allocation.at(row, r));
    return mass;
}

/**
 * L1 distance between two epochs' allocations over the union of
 * their agents; an agent present in only one epoch contributes its
 * whole bundle (it went from something to nothing or vice versa).
 */
double
allocationDrift(const std::vector<std::string> &old_names,
                const core::Allocation &old_alloc,
                const std::vector<std::string> &new_names,
                const core::Allocation &new_alloc)
{
    double drift = 0;
    std::vector<bool> matched(old_names.size(), false);
    for (std::size_t i = 0; i < new_names.size(); ++i) {
        std::size_t j = 0;
        while (j < old_names.size() && old_names[j] != new_names[i])
            ++j;
        if (j == old_names.size()) {
            drift += bundleMass(new_alloc, i);
            continue;
        }
        matched[j] = true;
        const std::size_t resources =
            std::min(old_alloc.resources(), new_alloc.resources());
        for (std::size_t r = 0; r < resources; ++r)
            drift +=
                std::abs(new_alloc.at(i, r) - old_alloc.at(j, r));
    }
    for (std::size_t j = 0; j < old_names.size(); ++j)
        if (!matched[j])
            drift += bundleMass(old_alloc, j);
    return drift;
}

} // namespace

void
AllocationService::recordFairnessLocked(
    const ServiceSnapshot &previous, const EpochResult &result)
{
    obs::FairnessSample sample;
    sample.epoch = result.epoch;
    sample.agents = result.agentNames.size();
    sample.checked = result.propertiesChecked;
    if (result.propertiesChecked) {
        // worstSlack is in log-utility units, so exp() turns it into
        // the paper's multiplicative margin (>= 1 iff satisfied).
        sample.siMargin =
            std::exp(result.sharingIncentives.worstSlack);
        sample.efMargin = std::exp(result.envyFreeness.worstSlack);
    }
    sample.l1Drift = allocationDrift(
        previous.agents, previous.allocation, result.agentNames,
        result.allocation);
    sample.enforced = result.enforcementChanged;
    sample.maxRelativeChange = result.maxRelativeChange;
    sample.latencyNs = static_cast<std::uint64_t>(
        std::max<std::chrono::nanoseconds::rep>(
            result.latency.count(), 0));
    series_.append(sample);
    metrics_.setFairnessGauges(sample.siMargin, sample.efMargin,
                               sample.l1Drift);
}

void
AllocationService::publishEpochLocked(const EpochResult &result)
{
    auto next = std::make_shared<ServiceSnapshot>();
    next->epoch = result.epoch;
    next->agents = result.agentNames;
    next->allocation = result.allocation;
    next->propertiesChecked = result.propertiesChecked;
    next->sharingIncentives = result.sharingIncentives;
    next->envyFreeness = result.envyFreeness;
    if (config_.buildEnforcement) {
        if (result.enforcementChanged) {
            next->enforcement = buildEnforcementPlan(
                result.agentNames, result.allocation,
                config_.capacity, config_.associativity);
            next->enforcement.epoch = result.epoch;
        } else {
            // Hysteresis hold: enforcement keeps running the plan of
            // the last enforced epoch.
            next->enforcement = snapshot()->enforcement;
        }
    }
    publish(std::move(next));
}

std::shared_ptr<const ServiceSnapshot>
AllocationService::snapshot() const
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    return snapshot_;
}

void
AllocationService::publish(std::shared_ptr<const ServiceSnapshot> next)
{
    std::lock_guard<std::mutex> lock(snapshotMutex_);
    snapshot_ = std::move(next);
}

std::size_t
AllocationService::liveAgents() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return registry_.size();
}

void
AllocationService::refreshRegistryLocked() const
{
    metrics_.setJournal(journal_ ? journal_->stats()
                                 : JournalStats{});
    metrics_.setRecovery(recovery_);
}

MetricsSnapshot
AllocationService::metrics() const
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    refreshRegistryLocked();
    return metrics_.snapshot();
}

void
AllocationService::writeMetrics(std::ostream &os,
                                MetricsFormat format) const
{
    {
        std::lock_guard<std::mutex> lock(writeMutex_);
        refreshRegistryLocked();
    }
    switch (format) {
    case MetricsFormat::Prometheus:
        metrics_.registry().writePrometheus(os);
        break;
    case MetricsFormat::Json:
        metrics_.registry().writeJson(os);
        break;
    }
}

void
AllocationService::syncJournal()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (journal_)
        journal_->sync();
}

ServiceState
AllocationService::captureStateLocked() const
{
    ServiceState state;
    state.capacities = config_.capacity.capacities();
    state.agents.reserve(registry_.size());
    for (const auto &agent : registry_.agents()) {
        state.agents.push_back(PersistedAgent{
            agent.name, agent.elasticities, agent.admittedEpoch});
    }
    state.churnEvents = registry_.churnEvents();
    state.epoch = driver_.epoch();
    state.lastEnforcedEpoch = driver_.lastEnforcedEpoch();
    state.enforcedNames = driver_.enforcedNames();
    state.enforced = driver_.enforced();

    const auto published = snapshot();
    state.publishedEpoch = published->epoch;
    state.publishedAgents = published->agents;
    state.publishedAllocation = published->allocation;
    state.propertiesChecked = published->propertiesChecked;
    state.sharingIncentives = published->sharingIncentives;
    state.envyFreeness = published->envyFreeness;
    return state;
}

void
AllocationService::applyRecordLocked(const JournalRecord &record)
{
    switch (record.type) {
    case JournalRecord::Type::Admit:
        registry_.admit(record.name, record.elasticities,
                        record.epoch);
        break;
    case JournalRecord::Type::Update:
        registry_.update(record.name, record.elasticities);
        break;
    case JournalRecord::Type::Depart:
        registry_.depart(record.name);
        break;
    case JournalRecord::Type::Tick: {
        const EpochResult result = driver_.tick();
        // The journal only holds accepted operations, so replay is
        // deterministic; a mismatched epoch means the wal and the
        // process disagree about history — refuse to guess.
        REF_REQUIRE(result.epoch == record.epoch,
                    "journal tick record expects epoch "
                        << record.epoch << ", replay reached "
                        << result.epoch);
        publishEpochLocked(result);
        break;
    }
    case JournalRecord::Type::Begin:
        REF_PANIC("Begin record leaked out of wal replay");
    }
}

void
AllocationService::recoverLocked()
{
    // 1. Snapshot, if any.
    ServiceState state;
    std::string error;
    const SnapshotReadStatus status = readSnapshotFile(
        journal_->snapshotPath(), state, error);
    REF_REQUIRE(status != SnapshotReadStatus::Bad,
                "cannot recover journal directory '"
                    << config_.journal.directory << "': " << error);

    std::uint64_t generation = 0;
    if (status == SnapshotReadStatus::Ok) {
        REF_REQUIRE(state.capacities ==
                        config_.capacity.capacities(),
                    "journal directory '"
                        << config_.journal.directory
                        << "' was written for a different capacity "
                           "configuration");
        for (const auto &agent : state.agents)
            registry_.admit(agent.name, agent.elasticities,
                            agent.admittedEpoch);
        registry_.restoreChurnEvents(state.churnEvents);
        driver_.restore(state.epoch, state.lastEnforcedEpoch,
                        state.enforced, state.enforcedNames);

        auto published = std::make_shared<ServiceSnapshot>();
        published->epoch = state.publishedEpoch;
        published->agents = state.publishedAgents;
        published->allocation = state.publishedAllocation;
        published->propertiesChecked = state.propertiesChecked;
        published->sharingIncentives = state.sharingIncentives;
        published->envyFreeness = state.envyFreeness;
        if (config_.buildEnforcement &&
            !state.enforcedNames.empty()) {
            // The plan is a pure function of the enforced
            // allocation, so re-deriving it beats persisting it.
            published->enforcement = buildEnforcementPlan(
                state.enforcedNames, state.enforced,
                config_.capacity, config_.associativity);
            published->enforcement.epoch = state.lastEnforcedEpoch;
        }
        publish(std::move(published));
        generation = state.generation;
        recovery_.snapshotLoaded = true;
    }

    // 2. Wal replay through the normal mutation paths.
    const Journal::WalReplay wal = journal_->replay(generation);
    for (const auto &record : wal.records)
        applyRecordLocked(record);
    recovery_.replayedRecords = wal.records.size();
    recovery_.truncatedBytes = wal.truncatedBytes;
    if (wal.discardedStale)
        recovery_.outcome = RecoveryOutcome::DiscardedWal;
    else if (wal.truncatedTail)
        recovery_.outcome = RecoveryOutcome::TruncatedTail;
    else if (!recovery_.snapshotLoaded && !wal.hadWal)
        recovery_.outcome = RecoveryOutcome::Fresh;
    else
        recovery_.outcome = RecoveryOutcome::Clean;

    // 3. Start this process's own generation: compact so the wal
    // never re-grows across restarts and the torn tail (if any) is
    // physically discarded.
    generation_ = generation;
    compactLocked();
    recovery_.generation = generation_;
}

void
AllocationService::journalAppendLocked(const JournalRecord &record)
{
    if (!journal_)
        return;
    if (journal_->degraded()) {
        // The mutation is already applied in memory; if backoff says
        // so, try to resync. Success or not, this record is covered:
        // a successful resync snapshot captured post-mutation state.
        if (journal_->noteSkippedAndMaybeRetry()) {
            if (compactLocked())
                journal_->noteReopened();
        }
        return;
    }
    if (!journal_->append(record))
        return;  // Entered degraded mode; resync will re-capture.
    if (config_.journal.snapshotEvery != 0 &&
        journal_->recordsSinceBegin() >=
            config_.journal.snapshotEvery &&
        journal_->recordsSinceBegin() %
                config_.journal.snapshotEvery ==
            0)
        compactLocked();
}

bool
AllocationService::compactLocked()
{
    ServiceState state = captureStateLocked();
    state.generation = generation_ + 1;
    std::string error;
    if (!writeSnapshotFile(config_.journal.directory,
                           journal_->snapshotTmpPath(),
                           journal_->snapshotPath(), state, error)) {
        journal_->noteSnapshot(false);
        REF_WARN("snapshot compaction failed ("
                 << error << "); journal keeps the current wal");
        return false;
    }
    journal_->noteSnapshot(true);
    generation_ = state.generation;
    return journal_->begin(generation_,
                           config_.capacity.capacities());
}

} // namespace ref::svc
