#include "snapshot.hh"

#include <cstring>
#include <string_view>

#include "obs/trace.hh"
#include "svc/journal.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::svc {
namespace {

constexpr std::string_view kMagic = "REFSNAP1";

void
putStrings(ByteWriter &writer,
           const std::vector<std::string> &values)
{
    writer.u32(static_cast<std::uint32_t>(values.size()));
    for (const auto &value : values)
        writer.str(value);
}

std::vector<std::string>
getStrings(ByteReader &reader)
{
    const std::uint32_t count = reader.u32();
    std::vector<std::string> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        values.push_back(reader.str());
    return values;
}

void
putAllocation(ByteWriter &writer, const core::Allocation &allocation)
{
    writer.u32(static_cast<std::uint32_t>(allocation.agents()));
    writer.u32(static_cast<std::uint32_t>(allocation.resources()));
    for (std::size_t i = 0; i < allocation.agents(); ++i)
        for (std::size_t r = 0; r < allocation.resources(); ++r)
            writer.f64(allocation.at(i, r));
}

core::Allocation
getAllocation(ByteReader &reader)
{
    const std::uint32_t agents = reader.u32();
    const std::uint32_t resources = reader.u32();
    if (agents == 0 && resources == 0)
        return core::Allocation();
    core::Allocation allocation(agents, resources);
    for (std::uint32_t i = 0; i < agents; ++i)
        for (std::uint32_t r = 0; r < resources; ++r)
            allocation.at(i, r) = reader.f64();
    return allocation;
}

void
putCheck(ByteWriter &writer, const core::PropertyCheck &check)
{
    writer.u8(check.satisfied ? 1 : 0);
    writer.f64(check.worstSlack);
    writer.str(check.binding);
}

core::PropertyCheck
getCheck(ByteReader &reader)
{
    core::PropertyCheck check;
    check.satisfied = reader.u8() != 0;
    check.worstSlack = reader.f64();
    check.binding = reader.str();
    return check;
}

} // namespace

std::string
encodeServiceState(const ServiceState &state)
{
    ByteWriter writer;
    writer.u64(state.generation);
    writer.doubles(state.capacities);

    writer.u32(static_cast<std::uint32_t>(state.agents.size()));
    for (const auto &agent : state.agents) {
        writer.str(agent.name);
        writer.doubles(agent.elasticities);
        writer.u64(agent.admittedEpoch);
    }
    writer.u64(state.churnEvents);

    writer.u64(state.epoch);
    writer.u64(state.lastEnforcedEpoch);
    putStrings(writer, state.enforcedNames);
    putAllocation(writer, state.enforced);

    writer.u64(state.publishedEpoch);
    putStrings(writer, state.publishedAgents);
    putAllocation(writer, state.publishedAllocation);
    writer.u8(state.propertiesChecked ? 1 : 0);
    putCheck(writer, state.sharingIncentives);
    putCheck(writer, state.envyFreeness);

    // v2 section. Appended after everything v1 decoded (v1 readers
    // required the payload to end above, so they fail loudly on a v2
    // snapshot instead of misreading it); v2 readers treat an
    // early end as a v1 payload with the section defaulted.
    writer.u32(kSnapshotFormatVersion);
    writer.u8(state.pooled ? 1 : 0);
    writer.u32(static_cast<std::uint32_t>(state.pools.size()));
    for (const auto &pool : state.pools) {
        writer.str(pool.path);
        writer.f64(pool.weight);
        writer.u64(pool.createdEpoch);
    }
    std::vector<std::string> agentPools;
    agentPools.reserve(state.agents.size());
    for (const auto &agent : state.agents)
        agentPools.push_back(agent.pool);
    putStrings(writer, agentPools);
    return writer.take();
}

ServiceState
decodeServiceState(std::string_view payload)
{
    ByteReader reader(payload);
    ServiceState state;
    state.generation = reader.u64();
    state.capacities = reader.doubles();

    const std::uint32_t agents = reader.u32();
    state.agents.reserve(agents);
    for (std::uint32_t i = 0; i < agents; ++i) {
        PersistedAgent agent;
        agent.name = reader.str();
        agent.elasticities = reader.doubles();
        agent.admittedEpoch = reader.u64();
        state.agents.push_back(std::move(agent));
    }
    state.churnEvents = reader.u64();

    state.epoch = reader.u64();
    state.lastEnforcedEpoch = reader.u64();
    state.enforcedNames = getStrings(reader);
    state.enforced = getAllocation(reader);

    state.publishedEpoch = reader.u64();
    state.publishedAgents = getStrings(reader);
    state.publishedAllocation = getAllocation(reader);
    state.propertiesChecked = reader.u8() != 0;
    state.sharingIncentives = getCheck(reader);
    state.envyFreeness = getCheck(reader);

    if (reader.atEnd())
        return state;  // v1 payload: no pooled section.
    const std::uint32_t version = reader.u32();
    REF_REQUIRE(version >= 2 && version <= kSnapshotFormatVersion,
                "snapshot format version "
                    << version << " is outside the supported range "
                    << "[2, " << kSnapshotFormatVersion
                    << "]; refusing to load with older semantics");
    state.pooled = reader.u8() != 0;
    const std::uint32_t pools = reader.u32();
    state.pools.reserve(pools);
    for (std::uint32_t i = 0; i < pools; ++i) {
        PersistedPool pool;
        pool.path = reader.str();
        pool.weight = reader.f64();
        pool.createdEpoch = reader.u64();
        state.pools.push_back(std::move(pool));
    }
    const std::vector<std::string> agentPools = getStrings(reader);
    REF_REQUIRE(agentPools.size() == state.agents.size(),
                "snapshot has " << agentPools.size()
                                << " agent pool paths for "
                                << state.agents.size() << " agents");
    for (std::size_t i = 0; i < agentPools.size(); ++i)
        state.agents[i].pool = agentPools[i];
    REF_REQUIRE(reader.atEnd(),
                "snapshot has " << reader.remaining()
                                << " trailing bytes");
    return state;
}

bool
writeSnapshotFile(const std::string &directory,
                  const std::string &tmpPath,
                  const std::string &finalPath,
                  const ServiceState &state, std::string &error)
{
    obs::Span span("snapshot.write", "journal");
    std::string bytes(kMagic);
    bytes += frameRecord(encodeServiceState(state));

    const auto fail = [&error](const char *site, int err) {
        error = std::string(site) + ": " + std::strerror(err);
        return false;
    };

    int fd = -1;
    if (const int err = io::openTrunc(tmpPath, fd, "snapshot.open"))
        return fail("snapshot.open", err);
    if (const int err = io::writeAll(fd, bytes, "snapshot.write")) {
        io::closeFd(fd);
        return fail("snapshot.write", err);
    }
    if (const int err = io::syncFd(fd, "snapshot.fsync")) {
        io::closeFd(fd);
        return fail("snapshot.fsync", err);
    }
    io::closeFd(fd);
    if (const int err =
            io::renameFile(tmpPath, finalPath, "snapshot.rename"))
        return fail("snapshot.rename", err);
    if (const int err = io::syncDir(directory, "snapshot.dirsync"))
        return fail("snapshot.dirsync", err);
    return true;
}

SnapshotReadStatus
readSnapshotFile(const std::string &path, ServiceState &state,
                 std::string &error)
{
    std::string bytes;
    if (!io::readFile(path, bytes))
        return SnapshotReadStatus::Missing;
    if (bytes.size() < kMagic.size() ||
        std::string_view(bytes).substr(0, kMagic.size()) != kMagic) {
        error = "bad snapshot magic";
        return SnapshotReadStatus::Bad;
    }
    std::size_t offset = kMagic.size();
    std::string_view payload;
    const FrameStatus status =
        readFrame(bytes, offset, payload);
    if (status != FrameStatus::Ok) {
        error = status == FrameStatus::Corrupt
                    ? "snapshot CRC mismatch"
                    : "snapshot truncated";
        return SnapshotReadStatus::Bad;
    }
    try {
        state = decodeServiceState(payload);
    } catch (const FatalError &parseError) {
        error = parseError.what();
        return SnapshotReadStatus::Bad;
    }
    return SnapshotReadStatus::Ok;
}

} // namespace ref::svc
