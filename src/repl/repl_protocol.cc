#include "repl_protocol.hh"

#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::repl {

bool
isReplMessage(std::string_view payload)
{
    if (payload.empty())
        return false;
    const auto byte =
        static_cast<std::uint8_t>(payload.front());
    return byte >= static_cast<std::uint8_t>(MessageKind::Snapshot) &&
           byte <= static_cast<std::uint8_t>(MessageKind::Ack);
}

std::string
encodeReplMessage(const ReplMessage &message)
{
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(message.kind));
    switch (message.kind) {
    case MessageKind::Snapshot:
        writer.u64(message.streamId);
        writer.u64(message.seq);
        writer.str(message.payload);
        break;
    case MessageKind::Record:
        writer.u64(message.seq);
        writer.u64(message.timestampNs);
        writer.u32(message.stateHash);
        writer.str(message.payload);
        break;
    case MessageKind::Heartbeat:
        writer.u64(message.seq);
        writer.u64(message.timestampNs);
        break;
    case MessageKind::Ack:
        writer.u64(message.seq);
        writer.u64(message.timestampNs);
        break;
    }
    return writer.take();
}

ReplMessage
decodeReplMessage(std::string_view payload)
{
    ByteReader reader(payload);
    ReplMessage message;
    const std::uint8_t kind = reader.u8();
    REF_REQUIRE(
        kind >= static_cast<std::uint8_t>(MessageKind::Snapshot) &&
            kind <= static_cast<std::uint8_t>(MessageKind::Ack),
        "unknown replication frame kind "
            << static_cast<unsigned>(kind));
    message.kind = static_cast<MessageKind>(kind);
    switch (message.kind) {
    case MessageKind::Snapshot:
        message.streamId = reader.u64();
        message.seq = reader.u64();
        message.payload = reader.str();
        break;
    case MessageKind::Record:
        message.seq = reader.u64();
        message.timestampNs = reader.u64();
        message.stateHash = reader.u32();
        message.payload = reader.str();
        break;
    case MessageKind::Heartbeat:
    case MessageKind::Ack:
        message.seq = reader.u64();
        message.timestampNs = reader.u64();
        break;
    }
    REF_REQUIRE(reader.atEnd(),
                "replication frame has " << reader.remaining()
                                         << " trailing bytes");
    return message;
}

} // namespace ref::repl
