/**
 * @file
 * Frame payloads of the WAL shipping stream.
 *
 * After a binary connection's SYNC command is accepted, the server
 * turns it into a replication channel: the same CRC32 record frames
 * (util/record_io.hh) keep flowing, but their payloads are repl
 * messages instead of command/reply payloads. Kinds live in a byte
 * range (0x40+) disjoint from both Command opcodes and ReplyStatus
 * values, so a misrouted frame decodes loudly, never plausibly.
 *
 *   Snapshot   primary -> follower: full encoded ServiceState, the
 *              stream identity, and the sequence the state covers
 *              (records after it are exactly what the state lacks).
 *   Record     primary -> follower: one journal-record payload —
 *              the literal WAL bytes — with its sequence, the
 *              ship-time wall clock, and (ticks only) the primary's
 *              post-tick state hash for the divergence check.
 *   Heartbeat  primary -> follower: liveness + head sequence, so a
 *              caught-up follower can see the primary is idle (and
 *              a silent one is dead: the promote timeout runs on
 *              heartbeat arrival, not record arrival).
 *   Ack        follower -> primary: last applied sequence and the
 *              measured ship lag, feeding the ref_repl_* gauges.
 */

#ifndef REF_REPL_REPL_PROTOCOL_HH
#define REF_REPL_REPL_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace ref::repl {

/** First payload byte of every replication frame. */
enum class MessageKind : std::uint8_t {
    Snapshot = 0x40,
    Record = 0x41,
    Heartbeat = 0x42,
    Ack = 0x43,
};

/** One decoded replication frame payload. */
struct ReplMessage
{
    MessageKind kind = MessageKind::Heartbeat;
    /** Snapshot: the primary's stream identity. */
    std::uint64_t streamId = 0;
    /** Snapshot: sequence the state covers through. Record: this
     *  record's sequence. Heartbeat: head sequence. Ack: last
     *  applied sequence. */
    std::uint64_t seq = 0;
    /** Record: CLOCK_REALTIME ns at ship time. Heartbeat: ns at
     *  send. Ack: measured ship lag in ns. */
    std::uint64_t timestampNs = 0;
    /** Record, ticks only: primary's post-tick state hash; 0 for
     *  every other record type. */
    std::uint32_t stateHash = 0;
    /** Snapshot: encodeServiceState bytes. Record: the journal
     *  record payload (encodeJournalRecord). */
    std::string payload;
};

/** True when @p payload starts with a replication kind byte. */
bool isReplMessage(std::string_view payload);

/** Encode to a frame payload (wrap with frameRecord for the wire). */
std::string encodeReplMessage(const ReplMessage &message);

/** Decode a frame payload; throws FatalError on malformed bytes. */
ReplMessage decodeReplMessage(std::string_view payload);

} // namespace ref::repl

#endif // REF_REPL_REPL_PROTOCOL_HH
