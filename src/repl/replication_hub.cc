#include "replication_hub.hh"

#include <unistd.h>

#include <chrono>

namespace ref::repl {

namespace {

std::uint64_t
wallClockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
mintStreamId()
{
    // Unique per primary incarnation, never 0 (0 is the follower's
    // "no stream yet" sentinel that forces a snapshot resync).
    const std::uint64_t id =
        wallClockNs() ^
        (static_cast<std::uint64_t>(::getpid()) << 32);
    return id == 0 ? 1 : id;
}

} // namespace

ReplicationHub::ReplicationHub(std::size_t ringCapacity)
    : capacity_(ringCapacity == 0 ? 1 : ringCapacity),
      streamId_(mintStreamId()),
      headSeqGauge_(obs::MetricsRegistry::global().gauge(
          "ref_repl_head_seq",
          "Newest WAL record sequence shipped by this primary")),
      ackedSeqGauge_(obs::MetricsRegistry::global().gauge(
          "ref_repl_acked_seq",
          "Last record sequence acknowledged by a follower")),
      lagRecordsGauge_(obs::MetricsRegistry::global().gauge(
          "ref_repl_follower_lag_records",
          "Records between the stream head and the last follower "
          "ack")),
      followersGauge_(obs::MetricsRegistry::global().gauge(
          "ref_repl_followers",
          "Currently subscribed replication followers")),
      shipped_(obs::MetricsRegistry::global().counter(
          "ref_repl_records_shipped_total",
          "WAL records handed to the replication stream")),
      snapshotSyncs_(obs::MetricsRegistry::global().counter(
          "ref_repl_snapshot_syncs_total",
          "Followers (re)synced from a full state snapshot")),
      heartbeats_(obs::MetricsRegistry::global().counter(
          "ref_repl_heartbeats_total",
          "Heartbeat frames sent to followers")),
      shipLagNs_(obs::MetricsRegistry::global().histogram(
          "ref_repl_ship_lag_ns",
          "Follower-measured ship-to-apply lag in nanoseconds "
          "(log-2 buckets)",
          40))
{}

void
ReplicationHub::onRecord(const std::string &payload, bool isTick,
                         std::uint64_t epoch [[maybe_unused]],
                         std::uint32_t stateHash)
{
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry entry;
        entry.seq = ++head_;
        entry.payload = payload;
        entry.shipTimestampNs = wallClockNs();
        entry.stateHash = stateHash;
        entry.isTick = isTick;
        ring_.push_back(std::move(entry));
        while (ring_.size() > capacity_)
            ring_.pop_front();
        callbacks = wakeCallbacks_;
    }
    shipped_.add();
    headSeqGauge_.set(static_cast<double>(headSeq()));
    for (const auto &wake : callbacks)
        wake();
}

std::uint64_t
ReplicationHub::headSeq() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return head_;
}

void
ReplicationHub::onStateAdopted()
{
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ring_.clear();
        head_ = 0;
        // Mix in the old identity: mintStreamId is wall-clock
        // granular, and an adoption can land within the same tick
        // it was minted on. The new id must differ or a chained
        // follower would tail-resume across the history break.
        const std::uint64_t old =
            streamId_.load(std::memory_order_relaxed);
        std::uint64_t fresh = mintStreamId() ^ (old << 1);
        if (fresh == 0 || fresh == old)
            fresh = old + 1 == 0 ? 1 : old + 1;
        streamId_.store(fresh, std::memory_order_relaxed);
        callbacks = wakeCallbacks_;
    }
    headSeqGauge_.set(0);
    // Wake the transports: their replica cursors now point past the
    // (empty) ring, so the next pump snapshot-resyncs each one.
    for (const auto &wake : callbacks)
        wake();
}

bool
ReplicationHub::fetchAfter(std::uint64_t cursor,
                           std::size_t maxEntries,
                           std::vector<Entry> &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (cursor > head_)
        return false;  // A future cursor is a different stream.
    if (cursor == head_)
        return true;
    // Oldest seq still held; entries are contiguous by design.
    const std::uint64_t tail = head_ - ring_.size() + 1;
    if (cursor + 1 < tail)
        return false;  // Evicted: subscriber must snapshot-resync.
    const std::size_t first =
        static_cast<std::size_t>(cursor + 1 - tail);
    for (std::size_t i = first;
         i < ring_.size() && out.size() < maxEntries; ++i)
        out.push_back(ring_[i]);
    return true;
}

void
ReplicationHub::addWakeCallback(std::function<void()> callback)
{
    std::lock_guard<std::mutex> lock(mutex_);
    wakeCallbacks_.push_back(std::move(callback));
}

void
ReplicationHub::noteAck(std::uint64_t seq, std::uint64_t lagNs)
{
    ackedSeqGauge_.set(static_cast<double>(seq));
    const std::uint64_t head = headSeq();
    lagRecordsGauge_.set(
        static_cast<double>(head > seq ? head - seq : 0));
    shipLagNs_.observe(lagNs);
}

void
ReplicationHub::noteSubscribe()
{
    std::lock_guard<std::mutex> lock(mutex_);
    followersGauge_.set(static_cast<double>(++followers_));
}

void
ReplicationHub::noteUnsubscribe()
{
    std::lock_guard<std::mutex> lock(mutex_);
    followersGauge_.set(static_cast<double>(--followers_));
}

void
ReplicationHub::noteSnapshotSync()
{
    snapshotSyncs_.add();
}

void
ReplicationHub::noteHeartbeat()
{
    heartbeats_.add();
}

} // namespace ref::repl
