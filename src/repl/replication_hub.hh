/**
 * @file
 * Primary-side fan-out point of the replication stream.
 *
 * The hub sits on the svc::ReplicationSink seam: every journaled
 * record arrives (encoded, in WAL order, under the service write
 * mutex), gets the next sequence number of this primary's stream,
 * and lands in a bounded ring. Transport shards pull entries after
 * each subscriber's cursor; a cursor that has fallen off the ring's
 * tail forces a snapshot resync — exactly the compaction story the
 * journal already tells on disk, replayed over the wire.
 *
 * Stream identity: streamId is minted once per hub (wall clock ^
 * pid), so a follower reconnecting after a primary restart presents
 * a stale id and is resynced from a snapshot instead of being fed a
 * tail from a different history.
 *
 * Lag accounting: follower Acks report the last applied sequence
 * and the measured ship lag; both surface as ref_repl_* series on
 * the process-global registry (scraped through METRICS prom like
 * the ref_net_* transport counters).
 */

#ifndef REF_REPL_REPLICATION_HUB_HH
#define REF_REPL_REPLICATION_HUB_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "svc/replication.hh"

namespace ref::repl {

/** Fan-out ring between the service and the transport shards. */
class ReplicationHub final : public svc::ReplicationSink
{
  public:
    /** One shipped record as the transport sees it. */
    struct Entry
    {
        std::uint64_t seq = 0;
        std::string payload;  //!< encodeJournalRecord bytes.
        std::uint64_t shipTimestampNs = 0;
        std::uint32_t stateHash = 0;  //!< Ticks only; else 0.
        bool isTick = false;
    };

    explicit ReplicationHub(std::size_t ringCapacity = 8192);

    /** @name svc::ReplicationSink */
    ///@{
    void onRecord(const std::string &payload, bool isTick,
                  std::uint64_t epoch,
                  std::uint32_t stateHash) override;
    std::uint64_t headSeq() const override;
    /** State replaced wholesale (snapshot resync on a chained
     *  follower): drop the ring and mint a fresh stream identity so
     *  every subscriber is forced onto a snapshot of the new
     *  history instead of tailing records from the old one. */
    void onStateAdopted() override;
    ///@}

    /** This primary incarnation's stream identity (never 0). */
    std::uint64_t streamId() const
    {
        return streamId_.load(std::memory_order_relaxed);
    }

    /**
     * Copy up to @p maxEntries entries with seq > @p cursor into
     * @p out. False when cursor+1 has been evicted from the ring —
     * the subscriber is too far behind and must snapshot-resync.
     * (cursor == headSeq returns true with no entries.)
     */
    bool fetchAfter(std::uint64_t cursor, std::size_t maxEntries,
                    std::vector<Entry> &out) const;

    /**
     * Register a wake hook (self-pipe write); fired after every
     * onRecord so a poll-blocked transport shard pumps its
     * replica connections promptly. Hooks must be async-safe-ish:
     * they run under no hub lock but on the mutating thread.
     */
    void addWakeCallback(std::function<void()> callback);

    /** @name Gauge feed from the transport. */
    ///@{
    void noteAck(std::uint64_t seq, std::uint64_t lagNs);
    void noteSubscribe();
    void noteUnsubscribe();
    void noteSnapshotSync();
    void noteHeartbeat();
    ///@}

  private:
    mutable std::mutex mutex_;
    std::deque<Entry> ring_;
    std::size_t capacity_;
    std::uint64_t head_ = 0;  //!< Seq of the newest entry; 0 = none.
    /** Atomic: reset by onStateAdopted while transports read it. */
    std::atomic<std::uint64_t> streamId_;
    std::vector<std::function<void()>> wakeCallbacks_;

    obs::Gauge &headSeqGauge_;
    obs::Gauge &ackedSeqGauge_;
    obs::Gauge &lagRecordsGauge_;
    obs::Gauge &followersGauge_;
    obs::Counter &shipped_;
    obs::Counter &snapshotSyncs_;
    obs::Counter &heartbeats_;
    obs::Histogram &shipLagNs_;
    std::int64_t followers_ = 0;
};

} // namespace ref::repl

#endif // REF_REPL_REPLICATION_HUB_HH
