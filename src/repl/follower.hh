/**
 * @file
 * Warm-standby follower: the client side of WAL shipping.
 *
 * A FollowerClient owns one background thread that keeps a binary
 * protocol connection to the primary: hello, `SYNC <stream> <seq>`,
 * then an endless stream of replication frames (repl_protocol.hh).
 * Every shipped record is replayed through the SAME AllocationService
 * code paths a live command would take (applyShipped), so the
 * standby's state is not a copy of bytes but a re-execution — and
 * because REF's ExactSum accumulators make allocation order-
 * independent and bit-exact, any divergence between the two
 * processes is detectable, not latent: each shipped TICK carries the
 * primary's post-tick state hash, and the follower compares it
 * against its own after applying. A mismatch triggers a full
 * snapshot resync (never a silent drift).
 *
 * Resume protocol: the follower remembers (streamId, lastApplied)
 * and offers them on every (re)connect. The primary answers with
 * either the record tail after that sequence (cheap catch-up) or a
 * full Snapshot frame when the stream identity changed (primary
 * restarted) or the tail fell off the primary's ring.
 *
 * Promotion: PROMOTE (via svc::FollowerControl, wired into the
 * protocol session) or — when configured — a primary-silence timeout
 * flips the process to serving: shipping stops, the journal compacts
 * onto a fresh generation, and the read-only command gate opens.
 * Promotion and record application serialize on one mutex, so no
 * stale primary record can land after the flip.
 */

#ifndef REF_REPL_FOLLOWER_HH
#define REF_REPL_FOLLOWER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hh"
#include "svc/allocation_service.hh"
#include "svc/protocol.hh"

namespace ref::repl {

/** Background WAL-shipping client; also the FollowerControl the
 *  protocol session consults for the read-only gate and PROMOTE. */
class FollowerClient final : public svc::FollowerControl
{
  public:
    struct Options
    {
        /** Primary's TCP address, numeric IPv4 "host:port". */
        std::string address;
        /** Auto-promote after this long with no bytes from the
         *  primary (frames and heartbeats both count). 0: only an
         *  explicit PROMOTE flips the follower. */
        int promoteTimeoutMs = 0;
        /** Delay between reconnect attempts. */
        int reconnectDelayMs = 200;
    };

    /** Monotonic progress counters (atomically readable). */
    struct Stats
    {
        std::uint64_t recordsApplied = 0;
        std::uint64_t snapshotsLoaded = 0;
        std::uint64_t divergences = 0;
        std::uint64_t reconnects = 0;
        std::uint64_t lastAppliedSeq = 0;
    };

    FollowerClient(svc::AllocationService &service, Options options);
    ~FollowerClient() override;
    FollowerClient(const FollowerClient &) = delete;
    FollowerClient &operator=(const FollowerClient &) = delete;

    /** Spawn the shipping thread. */
    void start();

    /** Stop following WITHOUT promoting (process shutdown). Joins
     *  the thread; idempotent. */
    void stop();

    /** @name svc::FollowerControl */
    ///@{
    bool following() const override;
    bool promote(std::string &message) override;
    ///@}

    Stats stats() const;

  private:
    enum class SessionEnd { Retry, Stop };

    void threadMain();
    /** One connection lifetime: connect, sync, apply until error,
     *  stop, or promotion. */
    SessionEnd runSession();
    /** Apply one replication frame payload; false => resync needed
     *  (the session returns Retry). */
    bool handleMessage(std::string_view payload, int fd);
    bool autoPromoteDue();

    svc::AllocationService &service_;
    Options options_;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> promoted_{false};
    /** Serializes record application against promote(): once the
     *  flip happens no further shipped record can touch state. */
    std::mutex applyMutex_;

    /** Resume cursor: stream identity + last applied sequence. 0/0
     *  until the first snapshot (forces a snapshot sync). */
    std::uint64_t streamId_ = 0;
    std::uint64_t lastApplied_ = 0;
    /** Mirror of lastApplied_ readable without applyMutex_ (the
     *  global gauge is shared by every follower in the process, so
     *  stats() must not read it back). */
    std::atomic<std::uint64_t> lastAppliedSeq_{0};
    std::atomic<std::int64_t> lastContactMs_{0};

    std::atomic<std::uint64_t> recordsApplied_{0};
    std::atomic<std::uint64_t> snapshotsLoaded_{0};
    std::atomic<std::uint64_t> divergences_{0};
    std::atomic<std::uint64_t> reconnects_{0};

    obs::Counter &appliedMetric_;
    obs::Counter &snapshotsMetric_;
    obs::Counter &divergencesMetric_;
    obs::Counter &reconnectsMetric_;
    obs::Gauge &lastSeqGauge_;
    obs::Gauge &followingGauge_;
};

} // namespace ref::repl

#endif // REF_REPL_FOLLOWER_HH
