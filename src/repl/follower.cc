#include "follower.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "repl_protocol.hh"
#include "svc/journal.hh"
#include "svc/snapshot.hh"
#include "svc/wire.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::repl {
namespace {

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
wallClockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Blocking-with-deadline connect to a numeric IPv4 "host:port";
 *  returns -1 (with errno) instead of throwing — the shipping
 *  thread retries forever, a bad address only warns. */
int
connectTo(const std::string &spec, int timeoutMs)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0) {
        errno = EINVAL;
        return -1;
    }
    const std::string host = spec.substr(0, colon);
    int port = 0;
    try {
        std::size_t consumed = 0;
        port = std::stoi(spec.substr(colon + 1), &consumed);
        if (consumed != spec.size() - colon - 1 || port <= 0 ||
            port > 65535) {
            errno = EINVAL;
            return -1;
        }
    } catch (const std::logic_error &) {
        errno = EINVAL;
        return -1;
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return -1;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return -1;
        }
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, timeoutMs) <= 0) {
            ::close(fd);
            errno = ETIMEDOUT;
            return -1;
        }
        int soError = 0;
        socklen_t length = sizeof(soError);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &length);
        if (soError != 0) {
            ::close(fd);
            errno = soError;
            return -1;
        }
    }
    return fd;
}

/** Write all of @p data, polling through EAGAIN; false on error. */
bool
writeAll(int fd, std::string_view data)
{
    std::size_t at = 0;
    while (at < data.size()) {
        const ssize_t wrote =
            ::send(fd, data.data() + at, data.size() - at,
                   MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd pfd{fd, POLLOUT, 0};
                if (::poll(&pfd, 1, 5000) <= 0)
                    return false;
                continue;
            }
            return false;
        }
        at += static_cast<std::size_t>(wrote);
    }
    return true;
}

} // namespace

FollowerClient::FollowerClient(svc::AllocationService &service,
                               Options options)
    : service_(service), options_(std::move(options)),
      appliedMetric_(obs::MetricsRegistry::global().counter(
          "ref_repl_follower_records_applied_total",
          "Shipped WAL records replayed by this follower")),
      snapshotsMetric_(obs::MetricsRegistry::global().counter(
          "ref_repl_follower_snapshots_total",
          "Full snapshot resyncs this follower performed")),
      divergencesMetric_(obs::MetricsRegistry::global().counter(
          "ref_repl_follower_divergences_total",
          "Tick state-hash mismatches against the primary (each "
          "forces a snapshot resync)")),
      reconnectsMetric_(obs::MetricsRegistry::global().counter(
          "ref_repl_follower_reconnects_total",
          "Connection attempts after the first")),
      lastSeqGauge_(obs::MetricsRegistry::global().gauge(
          "ref_repl_follower_last_seq",
          "Last primary sequence applied by this follower")),
      followingGauge_(obs::MetricsRegistry::global().gauge(
          "ref_repl_following",
          "1 while this process follows a primary (read-only)"))
{}

FollowerClient::~FollowerClient()
{
    stop();
}

void
FollowerClient::start()
{
    if (thread_.joinable())
        return;
    lastContactMs_.store(nowMs(), std::memory_order_relaxed);
    followingGauge_.set(1);
    thread_ = std::thread([this] { threadMain(); });
}

void
FollowerClient::stop()
{
    stopping_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (!promoted_.load(std::memory_order_relaxed))
        followingGauge_.set(0);
}

bool
FollowerClient::following() const
{
    return !promoted_.load(std::memory_order_relaxed);
}

bool
FollowerClient::promote(std::string &message)
{
    std::lock_guard<std::mutex> lock(applyMutex_);
    if (promoted_.load(std::memory_order_relaxed)) {
        message = "already serving";
        return false;
    }
    // Flag first: the shipping thread checks it under applyMutex_
    // before every record, so nothing lands after the compaction.
    promoted_.store(true, std::memory_order_relaxed);
    service_.promote();
    followingGauge_.set(0);
    std::ostringstream detail;
    detail << "serving (followed " << options_.address
           << ", applied "
           << recordsApplied_.load(std::memory_order_relaxed)
           << " records through seq " << lastApplied_ << ")";
    message = detail.str();
    return true;
}

FollowerClient::Stats
FollowerClient::stats() const
{
    Stats stats;
    stats.recordsApplied =
        recordsApplied_.load(std::memory_order_relaxed);
    stats.snapshotsLoaded =
        snapshotsLoaded_.load(std::memory_order_relaxed);
    stats.divergences =
        divergences_.load(std::memory_order_relaxed);
    stats.reconnects = reconnects_.load(std::memory_order_relaxed);
    // Per-instance atomic, NOT the process-global gauge: several
    // followers in one process (chained hops, tests) share the
    // gauge's name, so the gauge cannot answer for this instance.
    stats.lastAppliedSeq =
        lastAppliedSeq_.load(std::memory_order_relaxed);
    return stats;
}

bool
FollowerClient::autoPromoteDue()
{
    if (options_.promoteTimeoutMs <= 0)
        return false;
    if (promoted_.load(std::memory_order_relaxed) ||
        stopping_.load(std::memory_order_relaxed))
        return false;
    const std::int64_t last =
        lastContactMs_.load(std::memory_order_relaxed);
    return nowMs() - last >=
           static_cast<std::int64_t>(options_.promoteTimeoutMs);
}

void
FollowerClient::threadMain()
{
    bool first = true;
    while (!stopping_.load(std::memory_order_relaxed) &&
           !promoted_.load(std::memory_order_relaxed)) {
        if (!first) {
            reconnects_.fetch_add(1, std::memory_order_relaxed);
            reconnectsMetric_.add();
        }
        first = false;
        if (runSession() == SessionEnd::Stop)
            return;
        // Disconnected: wait, keep checking the promote clock.
        const std::int64_t until =
            nowMs() + std::max(1, options_.reconnectDelayMs);
        while (nowMs() < until) {
            if (stopping_.load(std::memory_order_relaxed) ||
                promoted_.load(std::memory_order_relaxed))
                return;
            if (autoPromoteDue()) {
                std::string message;
                if (promote(message))
                    REF_WARN("primary silent for "
                             << options_.promoteTimeoutMs
                             << " ms; promoting: " << message);
                return;
            }
            ::usleep(20 * 1000);
        }
    }
}

FollowerClient::SessionEnd
FollowerClient::runSession()
{
    const int fd = connectTo(options_.address, 1000);
    if (fd < 0) {
        REF_WARN("follower cannot reach " << options_.address
                                          << ": "
                                          << std::strerror(errno));
        return SessionEnd::Retry;
    }

    // Hello, then SYNC with our resume cursor. streamId 0 (no
    // snapshot yet, or a forced resync) never matches a real
    // stream, so the primary answers with a Snapshot frame.
    svc::Command sync;
    sync.op = svc::Command::Op::Sync;
    sync.syncStreamId = streamId_;
    sync.syncSeq = lastApplied_;
    std::string opening(svc::wire::helloMagic());
    opening += frameRecord(svc::wire::encodeCommand(sync));
    if (!writeAll(fd, opening)) {
        ::close(fd);
        return SessionEnd::Retry;
    }

    std::string buffer;
    char chunk[65536];
    SessionEnd end = SessionEnd::Retry;
    for (;;) {
        if (stopping_.load(std::memory_order_relaxed) ||
            promoted_.load(std::memory_order_relaxed)) {
            end = SessionEnd::Stop;
            break;
        }
        if (autoPromoteDue()) {
            std::string message;
            if (promote(message))
                REF_WARN("primary silent for "
                         << options_.promoteTimeoutMs
                         << " ms; promoting: " << message);
            end = SessionEnd::Stop;
            break;
        }

        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;

        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            break;
        }
        if (got == 0)
            break;  // Primary closed (or died): reconnect loop.
        lastContactMs_.store(nowMs(), std::memory_order_relaxed);
        buffer.append(chunk, static_cast<std::size_t>(got));

        std::size_t offset = 0;
        bool resync = false;
        for (;;) {
            std::string_view payload;
            const FrameStatus status =
                readFrame(buffer, offset, payload);
            if (status == FrameStatus::Torn ||
                status == FrameStatus::End)
                break;  // Wait for the rest of the frame.
            if (status == FrameStatus::Corrupt) {
                // Bit rot on the channel: drop the connection and
                // resume from the last applied sequence — the
                // cursor makes the retry lossless.
                REF_WARN("corrupt replication frame from "
                         << options_.address << "; resyncing");
                resync = true;
                break;
            }
            if (!handleMessage(payload, fd)) {
                resync = true;
                break;
            }
            if (promoted_.load(std::memory_order_relaxed)) {
                end = SessionEnd::Stop;
                resync = true;  // Leave the read loop either way.
                break;
            }
        }
        buffer.erase(0, offset);
        if (resync)
            break;
    }
    ::close(fd);
    return end;
}

bool
FollowerClient::handleMessage(std::string_view payload, int fd)
{
    if (!isReplMessage(payload)) {
        // Command replies: the hello ack and the SYNC status line.
        try {
            const svc::wire::Reply reply =
                svc::wire::decodeReply(payload);
            if (reply.status == svc::wire::ReplyStatus::Err) {
                REF_WARN("primary refused sync: " << reply.text);
                return false;
            }
        } catch (const FatalError &error) {
            REF_WARN("unintelligible reply from primary: "
                     << error.what());
            return false;
        }
        return true;
    }

    ReplMessage message;
    try {
        message = decodeReplMessage(payload);
    } catch (const FatalError &error) {
        REF_WARN("bad replication frame: " << error.what());
        return false;
    }

    switch (message.kind) {
    case MessageKind::Snapshot: {
        svc::ServiceState state;
        try {
            state = svc::decodeServiceState(message.payload);
        } catch (const FatalError &error) {
            REF_WARN("bad snapshot from primary: " << error.what());
            return false;
        }
        {
            std::lock_guard<std::mutex> lock(applyMutex_);
            if (promoted_.load(std::memory_order_relaxed))
                return true;
            service_.adoptState(state);
            streamId_ = message.streamId;
            lastApplied_ = message.seq;
        }
        snapshotsLoaded_.fetch_add(1, std::memory_order_relaxed);
        snapshotsMetric_.add();
        lastAppliedSeq_.store(message.seq,
                              std::memory_order_relaxed);
        lastSeqGauge_.set(static_cast<double>(message.seq));
        REF_INFORM("follower synced from snapshot: stream="
                   << message.streamId << " seq=" << message.seq);
        return true;
    }
    case MessageKind::Record: {
        svc::JournalRecord record;
        try {
            record = svc::decodeJournalRecord(message.payload);
        } catch (const FatalError &error) {
            REF_WARN("bad shipped record: " << error.what());
            return false;
        }
        bool diverged = false;
        {
            std::lock_guard<std::mutex> lock(applyMutex_);
            if (promoted_.load(std::memory_order_relaxed))
                return true;
            if (message.seq != lastApplied_ + 1) {
                REF_WARN("replication gap: expected seq "
                         << lastApplied_ + 1 << ", got "
                         << message.seq << "; resyncing");
                return false;
            }
            service_.applyShipped(record);
            lastApplied_ = message.seq;
            if (record.type == svc::JournalRecord::Type::Tick) {
                const std::uint32_t mine = service_.stateHash();
                if (mine != message.stateHash) {
                    // The whole point of the hash: a divergent
                    // replica must never serve. Drop everything
                    // and resync from a full snapshot.
                    diverged = true;
                    streamId_ = 0;
                    REF_WARN("follower diverged at seq "
                             << message.seq << ": state hash "
                             << mine << " != primary "
                             << message.stateHash
                             << "; forcing snapshot resync");
                }
            }
        }
        recordsApplied_.fetch_add(1, std::memory_order_relaxed);
        appliedMetric_.add();
        lastAppliedSeq_.store(message.seq,
                              std::memory_order_relaxed);
        lastSeqGauge_.set(static_cast<double>(message.seq));
        if (diverged) {
            divergences_.fetch_add(1, std::memory_order_relaxed);
            divergencesMetric_.add();
            return false;
        }
        ReplMessage ack;
        ack.kind = MessageKind::Ack;
        ack.seq = message.seq;
        const std::uint64_t now = wallClockNs();
        ack.timestampNs = now > message.timestampNs
                              ? now - message.timestampNs
                              : 0;
        return writeAll(fd, frameRecord(encodeReplMessage(ack)));
    }
    case MessageKind::Heartbeat: {
        ReplMessage ack;
        ack.kind = MessageKind::Ack;
        ack.seq = lastApplied_;
        const std::uint64_t now = wallClockNs();
        ack.timestampNs = now > message.timestampNs
                              ? now - message.timestampNs
                              : 0;
        return writeAll(fd, frameRecord(encodeReplMessage(ack)));
    }
    case MessageKind::Ack:
        REF_WARN("unexpected Ack from primary; resyncing");
        return false;
    }
    return true;
}

} // namespace ref::repl
