#include "metrics.hh"

#include <bit>
#include <charconv>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string_view>

namespace ref::obs {
namespace {

/** Shortest decimal that round-trips the exact double; integral
 *  values inside the exact-double range print without a fraction. */
std::string
formatNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (value == std::floor(value) &&
        std::abs(value) <= 9007199254740992.0) {  // 2^53.
        char buffer[32];
        const auto [end, ec] = std::to_chars(
            buffer, buffer + sizeof(buffer),
            static_cast<long long>(value));
        if (ec == std::errc())
            return std::string(buffer, end);
    }
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc())
        throw std::logic_error("metric value formatting failed");
    return std::string(buffer, end);
}

/** JSON has no Inf/NaN literals; represent them as strings. */
std::string
formatJsonNumber(double value)
{
    if (std::isnan(value) || std::isinf(value))
        return "\"" + formatNumber(value) + "\"";
    return formatNumber(value);
}

bool
validNameChar(char c, bool first)
{
    const bool alpha = (c >= 'a' && c <= 'z') ||
                       (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

/** Validate `key="value"` label pairs between braces. Values may
 *  hold anything but '"', '\\' and newline (no escape support —
 *  registrants control their own label values). */
bool
validLabelBlock(const std::string &name, std::size_t open)
{
    if (name.back() != '}' || open + 2 >= name.size())
        return false;
    std::size_t pos = open + 1;
    const std::size_t end = name.size() - 1;  // The '}'.
    while (pos < end) {
        std::size_t key = pos;
        while (key < end && validNameChar(name[key], key == pos))
            ++key;
        if (key == pos || key + 1 >= end || name[key] != '=' ||
            name[key + 1] != '"')
            return false;
        pos = key + 2;
        while (pos < end && name[pos] != '"' && name[pos] != '\\' &&
               name[pos] != '\n')
            ++pos;
        if (pos >= end || name[pos] != '"')
            return false;
        ++pos;
        if (pos < end) {
            if (name[pos] != ',')
                return false;
            ++pos;
        }
    }
    return true;
}

/**
 * A metric name, optionally carrying a Prometheus label block:
 * `ref_net_accepted_total` or `ref_net_accepted_total{shard="0"}`.
 * Labeled series of one base name sort adjacently in the registry
 * map, so the expositions can group them under one HELP/TYPE.
 */
void
requireValidName(const std::string &name)
{
    const std::size_t open = name.find('{');
    const std::size_t baseEnd =
        open == std::string::npos ? name.size() : open;
    bool ok = baseEnd > 0;
    for (std::size_t i = 0; ok && i < baseEnd; ++i)
        ok = validNameChar(name[i], i == 0);
    if (ok && open != std::string::npos)
        ok = validLabelBlock(name, open);
    if (!ok)
        throw std::invalid_argument(
            "'" + name + "' is not a valid metric name");
}

/** Series name without its label block. */
std::string_view
baseName(const std::string &name)
{
    const std::size_t open = name.find('{');
    return std::string_view(name).substr(
        0, open == std::string::npos ? name.size() : open);
}

/** Label block contents (between the braces), empty when absent. */
std::string_view
labelBlock(const std::string &name)
{
    const std::size_t open = name.find('{');
    if (open == std::string::npos)
        return {};
    return std::string_view(name).substr(open + 1,
                                         name.size() - open - 2);
}

/** `base_bucket{labels,le="N"}` — merges a histogram series' own
 *  labels with the bucket's le label. */
void
writeBucketSeries(std::ostream &os, std::string_view base,
                  std::string_view labels)
{
    os << base << "_bucket{";
    if (!labels.empty())
        os << labels << ",";
    os << "le=\"";
}

} // namespace

void
Gauge::set(double value) noexcept
{
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

double
Gauge::value() const noexcept
{
    return std::bit_cast<double>(
        bits_.load(std::memory_order_relaxed));
}

void
Gauge::updateMin(double candidate) noexcept
{
    std::uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (candidate < std::bit_cast<double>(observed) &&
           !bits_.compare_exchange_weak(
               observed, std::bit_cast<std::uint64_t>(candidate),
               std::memory_order_relaxed))
        ;
}

void
Gauge::updateMax(double candidate) noexcept
{
    std::uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (candidate > std::bit_cast<double>(observed) &&
           !bits_.compare_exchange_weak(
               observed, std::bit_cast<std::uint64_t>(candidate),
               std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets)
{
    if (buckets < 2 || buckets > 64)
        throw std::invalid_argument(
            "histogram needs between 2 and 64 buckets");
}

std::size_t
Histogram::bucketFor(std::uint64_t value,
                     std::size_t buckets) noexcept
{
    const std::size_t width =
        static_cast<std::size_t>(std::bit_width(value));
    return width < buckets ? width : buckets - 1;
}

std::uint64_t
Histogram::bucketUpperInclusive(std::size_t bucket,
                                std::size_t buckets)
{
    if (bucket + 1 >= buckets)
        return UINT64_MAX;
    // Bucket b covers [2^(b-1), 2^b), so its largest member is
    // 2^b - 1; bucket 0 covers exactly {0}.
    return (std::uint64_t{1} << bucket) - 1;
}

void
Histogram::observe(std::uint64_t value) noexcept
{
    counts_[bucketFor(value, counts_.size())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::quantile(const Snapshot &snap, double q)
{
    if (snap.count == 0)
        return 0;
    if (q <= 0)
        return snap.min;
    if (q > 1)
        q = 1;
    // Rank of the requested quantile, 1-based: the smallest sample
    // index whose cumulative share reaches q.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(snap.count))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        if (snap.counts[b] == 0)
            continue;
        if (cumulative + snap.counts[b] < rank) {
            cumulative += snap.counts[b];
            continue;
        }
        // The rank lands in bucket b: interpolate linearly between
        // the bucket's bounds, with the unbounded last bucket (and
        // any bucket edge beyond the data) clamped to the observed
        // extremes.
        const std::uint64_t rawLo =
            b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
        const std::uint64_t rawHi =
            bucketUpperInclusive(b, snap.counts.size());
        const std::uint64_t lo = std::max(rawLo, snap.min);
        const std::uint64_t hi =
            std::max(lo, std::min(rawHi, snap.max));
        const double within =
            static_cast<double>(rank - cumulative) /
            static_cast<double>(snap.counts[b]);
        return lo + static_cast<std::uint64_t>(
                        within * static_cast<double>(hi - lo));
    }
    return snap.max;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.counts.reserve(counts_.size());
    for (const auto &count : counts_)
        snap.counts.push_back(count.load(std::memory_order_relaxed));
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t min = min_.load(std::memory_order_relaxed);
    snap.min = min == UINT64_MAX ? 0 : min;
    snap.max = max_.load(std::memory_order_relaxed);
    return snap;
}

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name,
                       const std::string &help, Kind kind,
                       std::size_t buckets)
{
    requireValidName(name);
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = metrics_.find(name);
    if (found == metrics_.end()) {
        // Every series of one base name (labeled or not) must agree
        // on kind, or the exposition's shared TYPE header would lie.
        const std::string_view base = baseName(name);
        for (auto it = metrics_.lower_bound(std::string(base));
             it != metrics_.end() &&
             std::string_view(it->first).substr(0, base.size()) ==
                 base;
             ++it) {
            const bool sameSeries =
                it->first.size() == base.size() ||
                it->first[base.size()] == '{';
            if (sameSeries && it->second.kind != kind)
                throw std::invalid_argument(
                    "metric '" + name +
                    "' is already registered with a different kind");
        }
        Entry fresh;
        fresh.kind = kind;
        fresh.help = help;
        switch (kind) {
        case Kind::Counter:
            fresh.counter = std::make_unique<Counter>();
            break;
        case Kind::Gauge:
            fresh.gauge = std::make_unique<Gauge>();
            break;
        case Kind::Histogram:
            fresh.histogram = std::make_unique<Histogram>(buckets);
            break;
        }
        found = metrics_.emplace(name, std::move(fresh)).first;
    } else if (found->second.kind != kind) {
        throw std::invalid_argument(
            "metric '" + name +
            "' is already registered with a different kind");
    }
    return found->second;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    return *entry(name, help, Kind::Counter, 0).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help)
{
    return *entry(name, help, Kind::Gauge, 0).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           std::size_t buckets)
{
    return *entry(name, help, Kind::Histogram, buckets).histogram;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Labeled series of one base name (adjacent in the sorted map)
    // share a single HELP/TYPE header, per the exposition format.
    std::string_view lastBase;
    for (const auto &[name, entry] : metrics_) {
        const std::string_view base = baseName(name);
        const std::string_view labels = labelBlock(name);
        if (base != lastBase) {
            os << "# HELP " << base << " " << entry.help << "\n";
            lastBase = base;
            switch (entry.kind) {
            case Kind::Counter:
                os << "# TYPE " << base << " counter\n";
                break;
            case Kind::Gauge:
                os << "# TYPE " << base << " gauge\n";
                break;
            case Kind::Histogram:
                os << "# TYPE " << base << " histogram\n";
                break;
            }
        }
        switch (entry.kind) {
        case Kind::Counter:
            os << name << " " << entry.counter->value() << "\n";
            break;
        case Kind::Gauge:
            os << name << " " << formatNumber(entry.gauge->value())
               << "\n";
            break;
        case Kind::Histogram: {
            const Histogram::Snapshot snap =
                entry.histogram->snapshot();
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                cumulative += snap.counts[b];
                writeBucketSeries(os, base, labels);
                if (b + 1 == snap.counts.size())
                    os << "+Inf";
                else
                    os << Histogram::bucketUpperInclusive(
                        b, snap.counts.size());
                os << "\"} " << cumulative << "\n";
            }
            os << base << "_sum";
            if (!labels.empty())
                os << "{" << labels << "}";
            os << " " << snap.sum << "\n" << base << "_count";
            if (!labels.empty())
                os << "{" << labels << "}";
            os << " " << snap.count << "\n";
            // Pre-computed quantiles as untyped companion series:
            // log-2 buckets are too coarse for dashboards to
            // histogram_quantile() well, the interpolated estimate
            // here is clamped to real observed extremes.
            for (const auto &[suffix, q] :
                 {std::pair<const char *, double>{"_p50", 0.50},
                  {"_p90", 0.90},
                  {"_p99", 0.99}}) {
                os << base << suffix;
                if (!labels.empty())
                    os << "{" << labels << "}";
                os << " " << Histogram::quantile(snap, q) << "\n";
            }
            break;
        }
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"counters\":{";
    const char *separator = "";
    for (const auto &[name, entry] : metrics_) {
        if (entry.kind != Kind::Counter)
            continue;
        os << separator << "\"" << name
           << "\":" << entry.counter->value();
        separator = ",";
    }
    os << "},\"gauges\":{";
    separator = "";
    for (const auto &[name, entry] : metrics_) {
        if (entry.kind != Kind::Gauge)
            continue;
        os << separator << "\"" << name
           << "\":" << formatJsonNumber(entry.gauge->value());
        separator = ",";
    }
    os << "},\"histograms\":{";
    separator = "";
    for (const auto &[name, entry] : metrics_) {
        if (entry.kind != Kind::Histogram)
            continue;
        const Histogram::Snapshot snap = entry.histogram->snapshot();
        os << separator << "\"" << name << "\":{\"buckets\":[";
        for (std::size_t b = 0; b < snap.counts.size(); ++b)
            os << (b ? "," : "") << snap.counts[b];
        os << "],\"count\":" << snap.count << ",\"sum\":" << snap.sum
           << ",\"min\":" << snap.min << ",\"max\":" << snap.max
           << ",\"p50\":" << Histogram::quantile(snap, 0.50)
           << ",\"p90\":" << Histogram::quantile(snap, 0.90)
           << ",\"p99\":" << Histogram::quantile(snap, 0.99)
           << "}";
        separator = ",";
    }
    os << "}}";
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace ref::obs
