#include "metrics.hh"

#include <bit>
#include <charconv>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace ref::obs {
namespace {

/** Shortest decimal that round-trips the exact double; integral
 *  values inside the exact-double range print without a fraction. */
std::string
formatNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (value == std::floor(value) &&
        std::abs(value) <= 9007199254740992.0) {  // 2^53.
        char buffer[32];
        const auto [end, ec] = std::to_chars(
            buffer, buffer + sizeof(buffer),
            static_cast<long long>(value));
        if (ec == std::errc())
            return std::string(buffer, end);
    }
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc())
        throw std::logic_error("metric value formatting failed");
    return std::string(buffer, end);
}

/** JSON has no Inf/NaN literals; represent them as strings. */
std::string
formatJsonNumber(double value)
{
    if (std::isnan(value) || std::isinf(value))
        return "\"" + formatNumber(value) + "\"";
    return formatNumber(value);
}

bool
validNameChar(char c, bool first)
{
    const bool alpha = (c >= 'a' && c <= 'z') ||
                       (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

void
requireValidName(const std::string &name)
{
    bool ok = !name.empty();
    for (std::size_t i = 0; ok && i < name.size(); ++i)
        ok = validNameChar(name[i], i == 0);
    if (!ok)
        throw std::invalid_argument(
            "'" + name + "' is not a valid metric name");
}

} // namespace

void
Gauge::set(double value) noexcept
{
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

double
Gauge::value() const noexcept
{
    return std::bit_cast<double>(
        bits_.load(std::memory_order_relaxed));
}

void
Gauge::updateMin(double candidate) noexcept
{
    std::uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (candidate < std::bit_cast<double>(observed) &&
           !bits_.compare_exchange_weak(
               observed, std::bit_cast<std::uint64_t>(candidate),
               std::memory_order_relaxed))
        ;
}

void
Gauge::updateMax(double candidate) noexcept
{
    std::uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (candidate > std::bit_cast<double>(observed) &&
           !bits_.compare_exchange_weak(
               observed, std::bit_cast<std::uint64_t>(candidate),
               std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets)
{
    if (buckets < 2 || buckets > 64)
        throw std::invalid_argument(
            "histogram needs between 2 and 64 buckets");
}

std::size_t
Histogram::bucketFor(std::uint64_t value,
                     std::size_t buckets) noexcept
{
    const std::size_t width =
        static_cast<std::size_t>(std::bit_width(value));
    return width < buckets ? width : buckets - 1;
}

std::uint64_t
Histogram::bucketUpperInclusive(std::size_t bucket,
                                std::size_t buckets)
{
    if (bucket + 1 >= buckets)
        return UINT64_MAX;
    // Bucket b covers [2^(b-1), 2^b), so its largest member is
    // 2^b - 1; bucket 0 covers exactly {0}.
    return (std::uint64_t{1} << bucket) - 1;
}

void
Histogram::observe(std::uint64_t value) noexcept
{
    counts_[bucketFor(value, counts_.size())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.counts.reserve(counts_.size());
    for (const auto &count : counts_)
        snap.counts.push_back(count.load(std::memory_order_relaxed));
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t min = min_.load(std::memory_order_relaxed);
    snap.min = min == UINT64_MAX ? 0 : min;
    snap.max = max_.load(std::memory_order_relaxed);
    return snap;
}

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name,
                       const std::string &help, Kind kind,
                       std::size_t buckets)
{
    requireValidName(name);
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = metrics_.find(name);
    if (found == metrics_.end()) {
        Entry fresh;
        fresh.kind = kind;
        fresh.help = help;
        switch (kind) {
        case Kind::Counter:
            fresh.counter = std::make_unique<Counter>();
            break;
        case Kind::Gauge:
            fresh.gauge = std::make_unique<Gauge>();
            break;
        case Kind::Histogram:
            fresh.histogram = std::make_unique<Histogram>(buckets);
            break;
        }
        found = metrics_.emplace(name, std::move(fresh)).first;
    } else if (found->second.kind != kind) {
        throw std::invalid_argument(
            "metric '" + name +
            "' is already registered with a different kind");
    }
    return found->second;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    return *entry(name, help, Kind::Counter, 0).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help)
{
    return *entry(name, help, Kind::Gauge, 0).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           std::size_t buckets)
{
    return *entry(name, help, Kind::Histogram, buckets).histogram;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : metrics_) {
        os << "# HELP " << name << " " << entry.help << "\n";
        switch (entry.kind) {
        case Kind::Counter:
            os << "# TYPE " << name << " counter\n"
               << name << " " << entry.counter->value() << "\n";
            break;
        case Kind::Gauge:
            os << "# TYPE " << name << " gauge\n"
               << name << " " << formatNumber(entry.gauge->value())
               << "\n";
            break;
        case Kind::Histogram: {
            const Histogram::Snapshot snap =
                entry.histogram->snapshot();
            os << "# TYPE " << name << " histogram\n";
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                cumulative += snap.counts[b];
                os << name << "_bucket{le=\"";
                if (b + 1 == snap.counts.size())
                    os << "+Inf";
                else
                    os << Histogram::bucketUpperInclusive(
                        b, snap.counts.size());
                os << "\"} " << cumulative << "\n";
            }
            os << name << "_sum " << snap.sum << "\n"
               << name << "_count " << snap.count << "\n";
            break;
        }
        }
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"counters\":{";
    const char *separator = "";
    for (const auto &[name, entry] : metrics_) {
        if (entry.kind != Kind::Counter)
            continue;
        os << separator << "\"" << name
           << "\":" << entry.counter->value();
        separator = ",";
    }
    os << "},\"gauges\":{";
    separator = "";
    for (const auto &[name, entry] : metrics_) {
        if (entry.kind != Kind::Gauge)
            continue;
        os << separator << "\"" << name
           << "\":" << formatJsonNumber(entry.gauge->value());
        separator = ",";
    }
    os << "},\"histograms\":{";
    separator = "";
    for (const auto &[name, entry] : metrics_) {
        if (entry.kind != Kind::Histogram)
            continue;
        const Histogram::Snapshot snap = entry.histogram->snapshot();
        os << separator << "\"" << name << "\":{\"buckets\":[";
        for (std::size_t b = 0; b < snap.counts.size(); ++b)
            os << (b ? "," : "") << snap.counts[b];
        os << "],\"count\":" << snap.count << ",\"sum\":" << snap.sum
           << ",\"min\":" << snap.min << ",\"max\":" << snap.max
           << "}";
        separator = ",";
    }
    os << "}}";
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace ref::obs
