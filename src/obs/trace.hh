/**
 * @file
 * RAII span tracing with Chrome trace-event JSON export.
 *
 * A Span marks one timed region (an epoch tick, a journal fsync, a
 * sweep-cell simulation). Spans report into the process-wide Tracer,
 * which keeps a bounded in-memory ring buffer — old events are
 * overwritten, never reallocated — and can down-sample (record every
 * Nth span) so long soaks stay cheap. The buffer exports as Chrome
 * trace-event JSON ("traceEvents" array of "ph":"X" complete
 * events), loadable directly in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Disabled cost: one relaxed atomic load per span — the Tracer
 * starts disabled, so instrumented hot paths pay nothing until a
 * tool opts in (ref_serve/ref_profile --trace-out).
 *
 * Span names and categories must be string literals (or otherwise
 * outlive the Tracer): the ring stores the pointers, not copies.
 */

#ifndef REF_OBS_TRACE_HH
#define REF_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace ref::obs {

/** One completed span. */
struct TraceEvent
{
    const char *name = "";
    const char *category = "";
    std::uint64_t startNs = 0;  //!< Since Tracer::enable().
    std::uint64_t durationNs = 0;
    std::uint32_t tid = 0;  //!< Small per-thread id, first-use order.
};

/** Tracer bookkeeping for tests and trace metadata. */
struct TracerStats
{
    bool enabled = false;
    std::size_t capacity = 0;
    std::uint64_t sampleEvery = 1;
    std::uint64_t recorded = 0;    //!< Events written to the ring.
    std::uint64_t overwritten = 0; //!< Ring-full overwrites.
    std::uint64_t sampledOut = 0;  //!< Dropped by down-sampling.
};

/** Process-wide span sink (see file comment). */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start recording: allocates the ring, resets counters, and
     * makes "now" timestamp zero. @p sampleEvery records every Nth
     * span (1 records all); 0 is treated as 1.
     */
    void enable(std::size_t capacity = kDefaultCapacity,
                std::uint64_t sampleEvery = 1);

    /** Stop recording; the buffered events stay readable. */
    void disable();

    bool enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since enable() on the steady clock. */
    std::uint64_t nowNs() const;

    /** Record one completed span (used by Span; tests may call it
     *  directly). No-op when disabled. */
    void record(const char *name, const char *category,
                std::uint64_t start_ns, std::uint64_t duration_ns);

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> events() const;

    TracerStats stats() const;

    /** Drop all buffered events (counters reset too). */
    void clear();

    /**
     * Chrome trace-event JSON of the buffered events. Metadata about
     * sampling/overwrites rides along in "otherData" so a sampled
     * trace is self-describing.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** The process-wide tracer every Span reports to. */
    static Tracer &global();

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;   //!< Next slot to write.
    std::size_t count_ = 0;  //!< Valid events in the ring.
    std::uint64_t sampleEvery_ = 1;
    std::uint64_t sampleCounter_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t overwritten_ = 0;
    std::uint64_t sampledOut_ = 0;
    std::uint64_t baseNs_ = 0;  //!< Steady-clock origin of ts 0.
};

/**
 * RAII span: times construction to destruction and reports to
 * Tracer::global(). Name/category must be string literals.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *category = "ref")
        : name_(name), category_(category),
          active_(Tracer::global().enabled()),
          startNs_(active_ ? Tracer::global().nowNs() : 0)
    {}

    ~Span()
    {
        if (!active_)
            return;
        Tracer &tracer = Tracer::global();
        tracer.record(name_, category_, startNs_,
                      tracer.nowNs() - startNs_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    const char *category_;
    bool active_;
    std::uint64_t startNs_;
};

} // namespace ref::obs

#endif // REF_OBS_TRACE_HH
