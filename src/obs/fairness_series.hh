/**
 * @file
 * Per-epoch fairness time series for the online allocation service.
 *
 * The paper's SI/EF checks are point-in-time booleans; an online
 * service needs the *quantitative* margins tracked across epochs so
 * fairness erosion shows up as a trend, not a surprise violation
 * (cf. Zahedi & Freeman, "Credit Fairness: Online Fairness In Shared
 * Resource Pools": online fairness must be measured across periods).
 * Each sample records:
 *
 *  - si_margin: min over agents of u_i(REF) / u_i(equal split) —
 *    the sharing-incentives ratio; >= 1 means SI holds with margin.
 *  - ef_margin: min over ordered pairs of u_i(x_i) / u_i(x_j) — the
 *    envy-freeness ratio; >= 1 means nobody envies anyone.
 *  - l1_drift: sum of |share(t) - share(t-1)| over the union of both
 *    epochs' agents (an agent absent from one side contributes its
 *    whole share), i.e. how much allocation mass moved this epoch.
 *  - the hysteresis decision (enforced or held) and the relative
 *    change that drove it, plus the epoch's compute latency.
 *
 * Storage is a bounded ring (oldest samples drop first) guarded by a
 * mutex; exports are CSV (one row per epoch, plottable directly) and
 * JSON (array of objects).
 */

#ifndef REF_OBS_FAIRNESS_SERIES_HH
#define REF_OBS_FAIRNESS_SERIES_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ref::obs {

/** One epoch's fairness record. */
struct FairnessSample
{
    std::uint64_t epoch = 0;
    std::uint64_t agents = 0;
    /** True when si/ef margins were computed this epoch (property
     *  checks on and at least one agent live). */
    bool checked = false;
    double siMargin = 1.0;
    double efMargin = 1.0;
    double l1Drift = 0.0;
    bool enforced = false;  //!< False: hysteresis held the old plan.
    /** Largest relative per-share change vs the enforced allocation
     *  (+inf when the agent set changed). */
    double maxRelativeChange = 0.0;
    std::uint64_t latencyNs = 0;
};

/** Bounded, thread-safe per-epoch series (see file comment). */
class FairnessSeries
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 20;

    /** Distinct labelled sub-series the series will hold; appends
     *  for labels beyond the cap are dropped (and counted), so a
     *  runaway pool population cannot exhaust memory. */
    static constexpr std::size_t kMaxLabels = 4096;

    explicit FairnessSeries(
        std::size_t capacity = kDefaultCapacity);

    void append(const FairnessSample &sample);

    /**
     * Append to the labelled sub-series @p label (pooled mode: one
     * per pool path). Labelled rings share the main ring's capacity
     * and grow lazily.
     */
    void appendLabelled(const std::string &label,
                        const FairnessSample &sample);

    /** Buffered samples, oldest first. */
    std::vector<FairnessSample> samples() const;

    /** Labels with at least one sample, sorted. */
    std::vector<std::string> labels() const;

    /** Buffered samples of @p label, oldest first (empty when the
     *  label is unknown). */
    std::vector<FairnessSample>
    labelledSamples(const std::string &label) const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    /** Lifetime appends, including samples the ring since dropped. */
    std::uint64_t totalAppended() const;
    /** Lifetime labelled appends across all labels. */
    std::uint64_t totalLabelledAppended() const;
    /** Labelled appends dropped by the kMaxLabels cap. */
    std::uint64_t droppedLabelled() const;

    /** CSV column header (no trailing newline). */
    static const char *csvHeader();

    /** Labelled CSV header: a leading "label" column (pool
     *  path in pooled mode, cohort label in flat mode). */
    static const char *labelledCsvHeader();

    /** One sample as a CSV row (no trailing newline). */
    static void writeCsvRow(std::ostream &os,
                            const FairnessSample &sample);

    /** Header plus every buffered sample, newline-terminated. */
    void writeCsv(std::ostream &os) const;

    /**
     * Labelled export: header, then the main series as label
     * "_total", then every labelled series in sorted label order.
     */
    void writeLabelledCsv(std::ostream &os) const;

    /** JSON array of sample objects. */
    void writeJson(std::ostream &os) const;

  private:
    /** One bounded ring (storage grows lazily toward capacity). */
    struct Ring
    {
        std::vector<FairnessSample> ring;
        std::size_t head = 0;
        std::size_t count = 0;
        std::uint64_t appended = 0;

        void push(const FairnessSample &sample,
                  std::size_t capacity);
        std::vector<FairnessSample> snapshot() const;
    };

    std::size_t capacity_;
    mutable std::mutex mutex_;
    Ring main_;
    std::map<std::string, Ring> labelled_;  //!< Sorted by label.
    std::uint64_t labelledAppended_ = 0;
    std::uint64_t droppedLabelled_ = 0;
};

} // namespace ref::obs

#endif // REF_OBS_FAIRNESS_SERIES_HH
