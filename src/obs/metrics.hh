/**
 * @file
 * Process-wide metrics registry: named counters, gauges and log-2
 * histograms with atomic hot paths, plus Prometheus-style text and
 * JSON expositions.
 *
 * The registry is the one source of truth for operational counters
 * across every layer: the svc ServiceMetrics, the sim sweep cache,
 * the util thread pool and the journal all register here, so the
 * STATS protocol command, the METRICS expositions and the
 * --metrics-out scrape file can never disagree.
 *
 * Concurrency: metric handles returned by the registry are stable
 * for the registry's lifetime; updates (add/set/observe) are lock-
 * free relaxed atomics, so the hot path costs one atomic RMW.
 * Registration and exposition take a mutex. Lookup is get-or-create:
 * asking twice for the same name returns the same metric, which lets
 * independent components (several thread pools, several sweep
 * runners) accumulate into one process-wide series.
 *
 * This library depends on nothing but the standard library so every
 * other layer — util included — can link it without cycles.
 */

#ifndef REF_OBS_METRICS_HH
#define REF_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ref::obs {

/** Monotonically increasing counter. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-writer-wins value; doubles cover integral counters exactly
 *  up to 2^53. */
class Gauge
{
  public:
    void set(double value) noexcept;
    double value() const noexcept;

    /** CAS-min/-max updates so concurrent extremes never regress.
     *  min() treats the +inf initial state as "no sample yet". */
    void updateMin(double candidate) noexcept;
    void updateMax(double candidate) noexcept;

  private:
    /** Doubles stored as bit patterns: atomic<double> CAS support is
     *  spotty, the bit image round-trips exactly. */
    std::atomic<std::uint64_t> bits_{0};
};

/**
 * Log-2 histogram of non-negative integer samples. Bucket 0 counts
 * the value 0; bucket b (b >= 1) counts values in [2^(b-1), 2^b);
 * the last bucket is unbounded above. Exact powers of two therefore
 * land in the bucket whose *lower* bound they are: value 2^k is
 * counted by bucket k+1.
 */
class Histogram
{
  public:
    /** @param buckets Bucket count in [2, 64]. */
    explicit Histogram(std::size_t buckets);

    void observe(std::uint64_t value) noexcept;

    /** Bucket index @p value falls into for a @p buckets-wide
     *  histogram (see class comment). */
    static std::size_t bucketFor(std::uint64_t value,
                                 std::size_t buckets) noexcept;

    /** Largest value bucket @p bucket counts (inclusive);
     *  UINT64_MAX for the unbounded last bucket. */
    static std::uint64_t bucketUpperInclusive(std::size_t bucket,
                                              std::size_t buckets);

    std::size_t buckets() const { return counts_.size(); }

    /** Consistent-enough copy for exposition (each field is
     *  individually atomic). min is 0 when no sample was observed:
     *  the internal sentinel (UINT64_MAX) never leaks out. */
    struct Snapshot
    {
        std::vector<std::uint64_t> counts;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
    };

    Snapshot snapshot() const;

    /**
     * Estimate the @p q quantile (0 < q <= 1) of @p snap by linear
     * interpolation inside the log-2 bucket the rank lands in,
     * clamped to the exact observed [min, max] (so p0-ish and
     * p100-ish asks never invent values outside the data, and the
     * unbounded last bucket tops out at the true max instead of
     * +inf). 0 when the histogram is empty. Feeds the p50/p90/p99
     * series of the expositions and the replication-lag gauges.
     */
    static std::uint64_t quantile(const Snapshot &snap, double q);

  private:
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    /** Sentinel-initialised so the first observation, whatever its
     *  value, becomes the minimum (a 0 start could never record a
     *  true minimum above 0). */
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
};

/** Named metrics, get-or-create, with deterministic expositions. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Get or create a metric. The name must be a valid Prometheus
     * metric name, optionally carrying a label block — e.g.
     * `ref_net_accepted_total{shard="0"}` — in which case the
     * labeled series of one base name share a single HELP/TYPE
     * header in the Prometheus exposition. Re-registering an
     * existing name returns the same instance (the help text of the
     * first registration wins) and throws std::invalid_argument if
     * the existing metric is of a different kind.
     */
    Counter &counter(const std::string &name,
                     const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::size_t buckets = 16);

    std::size_t size() const;

    /**
     * Prometheus text exposition (text/plain version 0.0.4):
     * HELP/TYPE headers, metrics sorted by name, histograms with
     * cumulative le buckets, _sum and _count series.
     */
    void writePrometheus(std::ostream &os) const;

    /**
     * JSON exposition: one object with "counters", "gauges" and
     * "histograms" maps, keys sorted, suitable for jq-style
     * post-processing in CI.
     */
    void writeJson(std::ostream &os) const;

    /** The process-wide registry shared by util/sim components. */
    static MetricsRegistry &global();

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &entry(const std::string &name, const std::string &help,
                 Kind kind, std::size_t buckets);

    mutable std::mutex mutex_;  //!< Guards the map, not the values.
    std::map<std::string, Entry> metrics_;
};

} // namespace ref::obs

#endif // REF_OBS_METRICS_HH
