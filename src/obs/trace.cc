#include "trace.hh"

#include <chrono>
#include <ostream>

namespace ref::obs {
namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Small dense thread ids, assigned in first-record order, so trace
 *  rows are stable and readable ("tid 0..N" instead of opaque
 *  pthread handles). */
std::uint32_t
currentTid()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

/** Microseconds with nanosecond fraction, as Chrome's "ts" wants. */
void
writeMicros(std::ostream &os, std::uint64_t ns)
{
    os << ns / 1000 << "." << static_cast<char>('0' + ns % 1000 / 100)
       << static_cast<char>('0' + ns % 100 / 10)
       << static_cast<char>('0' + ns % 10);
}

} // namespace

void
Tracer::enable(std::size_t capacity, std::uint64_t sampleEvery)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.assign(capacity == 0 ? kDefaultCapacity : capacity,
                 TraceEvent{});
    head_ = 0;
    count_ = 0;
    sampleEvery_ = sampleEvery == 0 ? 1 : sampleEvery;
    sampleCounter_ = 0;
    recorded_ = 0;
    overwritten_ = 0;
    sampledOut_ = 0;
    baseNs_ = steadyNowNs();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t
Tracer::nowNs() const
{
    const std::uint64_t now = steadyNowNs();
    return now >= baseNs_ ? now - baseNs_ : 0;
}

void
Tracer::record(const char *name, const char *category,
               std::uint64_t start_ns, std::uint64_t duration_ns)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.empty())
        return;
    if (sampleCounter_++ % sampleEvery_ != 0) {
        ++sampledOut_;
        return;
    }
    if (count_ == ring_.size())
        ++overwritten_;
    else
        ++count_;
    ring_[head_] = TraceEvent{name, category, start_ns, duration_ns,
                              currentTid()};
    head_ = (head_ + 1) % ring_.size();
    ++recorded_;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(count_);
    const std::size_t first =
        (head_ + ring_.size() - count_) % (ring_.empty()
                                               ? 1
                                               : ring_.size());
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(first + i) % ring_.size()]);
    return out;
}

TracerStats
Tracer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TracerStats stats;
    stats.enabled = enabled_.load(std::memory_order_relaxed);
    stats.capacity = ring_.size();
    stats.sampleEvery = sampleEvery_;
    stats.recorded = recorded_;
    stats.overwritten = overwritten_;
    stats.sampledOut = sampledOut_;
    return stats;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = 0;
    count_ = 0;
    sampleCounter_ = 0;
    recorded_ = 0;
    overwritten_ = 0;
    sampledOut_ = 0;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    const std::vector<TraceEvent> buffered = events();
    const TracerStats meta = stats();
    os << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < buffered.size(); ++i) {
        const TraceEvent &event = buffered[i];
        if (i)
            os << ",";
        os << "{\"name\":\"" << event.name << "\",\"cat\":\""
           << event.category << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << event.tid << ",\"ts\":";
        writeMicros(os, event.startNs);
        os << ",\"dur\":";
        writeMicros(os, event.durationNs);
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"sample_every\":" << meta.sampleEvery
       << ",\"recorded\":" << meta.recorded
       << ",\"overwritten\":" << meta.overwritten
       << ",\"sampled_out\":" << meta.sampledOut << "}}\n";
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

} // namespace ref::obs
