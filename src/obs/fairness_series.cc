#include "fairness_series.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace ref::obs {
namespace {

/** Shortest decimal that round-trips; inf/nan spelled out (CSV) —
 *  the JSON writer quotes them. */
std::string
formatDouble(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc())
        throw std::logic_error("fairness value formatting failed");
    return std::string(buffer, end);
}

std::string
formatJsonDouble(double value)
{
    if (std::isnan(value) || std::isinf(value))
        return "\"" + formatDouble(value) + "\"";
    return formatDouble(value);
}

} // namespace

FairnessSeries::FairnessSeries(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{}

void
FairnessSeries::Ring::push(const FairnessSample &sample,
                           std::size_t capacity)
{
    if (ring.size() < capacity) {
        // Grow lazily toward the cap instead of reserving a million
        // slots for short sessions.
        ring.push_back(sample);
        head = ring.size() % capacity;
        ++count;
    } else {
        ring[head] = sample;
        head = (head + 1) % capacity;
        if (count < capacity)
            ++count;
    }
    ++appended;
}

std::vector<FairnessSample>
FairnessSeries::Ring::snapshot() const
{
    std::vector<FairnessSample> out;
    out.reserve(count);
    if (count == 0)
        return out;
    const std::size_t size = ring.size();
    const std::size_t first = (head + size - count) % size;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(first + i) % size]);
    return out;
}

void
FairnessSeries::append(const FairnessSample &sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    main_.push(sample, capacity_);
}

void
FairnessSeries::appendLabelled(const std::string &label,
                               const FairnessSample &sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = labelled_.find(label);
    if (found == labelled_.end()) {
        if (labelled_.size() >= kMaxLabels) {
            ++droppedLabelled_;
            return;
        }
        found = labelled_.emplace(label, Ring{}).first;
    }
    found->second.push(sample, capacity_);
    ++labelledAppended_;
}

std::vector<FairnessSample>
FairnessSeries::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return main_.snapshot();
}

std::vector<std::string>
FairnessSeries::labels() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(labelled_.size());
    for (const auto &entry : labelled_)
        out.push_back(entry.first);
    return out;
}

std::vector<FairnessSample>
FairnessSeries::labelledSamples(const std::string &label) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = labelled_.find(label);
    if (found == labelled_.end())
        return {};
    return found->second.snapshot();
}

std::size_t
FairnessSeries::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return main_.count;
}

std::uint64_t
FairnessSeries::totalAppended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return main_.appended;
}

std::uint64_t
FairnessSeries::totalLabelledAppended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return labelledAppended_;
}

std::uint64_t
FairnessSeries::droppedLabelled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return droppedLabelled_;
}

const char *
FairnessSeries::csvHeader()
{
    return "epoch,agents,checked,si_margin,ef_margin,l1_drift,"
           "enforced,max_rel_change,latency_ns";
}

const char *
FairnessSeries::labelledCsvHeader()
{
    return "label,epoch,agents,checked,si_margin,ef_margin,l1_drift,"
           "enforced,max_rel_change,latency_ns";
}

void
FairnessSeries::writeCsvRow(std::ostream &os,
                            const FairnessSample &sample)
{
    os << sample.epoch << "," << sample.agents << ","
       << (sample.checked ? 1 : 0) << ","
       << formatDouble(sample.siMargin) << ","
       << formatDouble(sample.efMargin) << ","
       << formatDouble(sample.l1Drift) << ","
       << (sample.enforced ? 1 : 0) << ","
       << formatDouble(sample.maxRelativeChange) << ","
       << sample.latencyNs;
}

void
FairnessSeries::writeCsv(std::ostream &os) const
{
    os << csvHeader() << "\n";
    for (const FairnessSample &sample : samples()) {
        writeCsvRow(os, sample);
        os << "\n";
    }
}

void
FairnessSeries::writeLabelledCsv(std::ostream &os) const
{
    os << labelledCsvHeader() << "\n";
    // The pool tree reserves the literal path "_total", so the
    // global series cannot collide with a pool's label.
    for (const FairnessSample &sample : samples()) {
        os << "_total,";
        writeCsvRow(os, sample);
        os << "\n";
    }
    for (const std::string &label : labels()) {
        for (const FairnessSample &sample : labelledSamples(label)) {
            os << label << ",";
            writeCsvRow(os, sample);
            os << "\n";
        }
    }
}

void
FairnessSeries::writeJson(std::ostream &os) const
{
    os << "[";
    const std::vector<FairnessSample> buffered = samples();
    for (std::size_t i = 0; i < buffered.size(); ++i) {
        const FairnessSample &sample = buffered[i];
        if (i)
            os << ",";
        os << "{\"epoch\":" << sample.epoch
           << ",\"agents\":" << sample.agents << ",\"checked\":"
           << (sample.checked ? "true" : "false")
           << ",\"si_margin\":" << formatJsonDouble(sample.siMargin)
           << ",\"ef_margin\":" << formatJsonDouble(sample.efMargin)
           << ",\"l1_drift\":" << formatJsonDouble(sample.l1Drift)
           << ",\"enforced\":" << (sample.enforced ? "true" : "false")
           << ",\"max_rel_change\":"
           << formatJsonDouble(sample.maxRelativeChange)
           << ",\"latency_ns\":" << sample.latencyNs << "}";
    }
    os << "]";
}

} // namespace ref::obs
