#include "fairness_series.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace ref::obs {
namespace {

/** Shortest decimal that round-trips; inf/nan spelled out (CSV) —
 *  the JSON writer quotes them. */
std::string
formatDouble(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (ec != std::errc())
        throw std::logic_error("fairness value formatting failed");
    return std::string(buffer, end);
}

std::string
formatJsonDouble(double value)
{
    if (std::isnan(value) || std::isinf(value))
        return "\"" + formatDouble(value) + "\"";
    return formatDouble(value);
}

} // namespace

FairnessSeries::FairnessSeries(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{}

void
FairnessSeries::append(const FairnessSample &sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        // Grow lazily toward the cap instead of reserving a million
        // slots for short sessions.
        ring_.push_back(sample);
        head_ = ring_.size() % capacity_;
        ++count_;
    } else {
        ring_[head_] = sample;
        head_ = (head_ + 1) % capacity_;
        if (count_ < capacity_)
            ++count_;
    }
    ++appended_;
}

std::vector<FairnessSample>
FairnessSeries::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FairnessSample> out;
    out.reserve(count_);
    if (count_ == 0)
        return out;
    const std::size_t size = ring_.size();
    const std::size_t first = (head_ + size - count_) % size;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(first + i) % size]);
    return out;
}

std::size_t
FairnessSeries::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

std::uint64_t
FairnessSeries::totalAppended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_;
}

const char *
FairnessSeries::csvHeader()
{
    return "epoch,agents,checked,si_margin,ef_margin,l1_drift,"
           "enforced,max_rel_change,latency_ns";
}

void
FairnessSeries::writeCsvRow(std::ostream &os,
                            const FairnessSample &sample)
{
    os << sample.epoch << "," << sample.agents << ","
       << (sample.checked ? 1 : 0) << ","
       << formatDouble(sample.siMargin) << ","
       << formatDouble(sample.efMargin) << ","
       << formatDouble(sample.l1Drift) << ","
       << (sample.enforced ? 1 : 0) << ","
       << formatDouble(sample.maxRelativeChange) << ","
       << sample.latencyNs;
}

void
FairnessSeries::writeCsv(std::ostream &os) const
{
    os << csvHeader() << "\n";
    for (const FairnessSample &sample : samples()) {
        writeCsvRow(os, sample);
        os << "\n";
    }
}

void
FairnessSeries::writeJson(std::ostream &os) const
{
    os << "[";
    const std::vector<FairnessSample> buffered = samples();
    for (std::size_t i = 0; i < buffered.size(); ++i) {
        const FairnessSample &sample = buffered[i];
        if (i)
            os << ",";
        os << "{\"epoch\":" << sample.epoch
           << ",\"agents\":" << sample.agents << ",\"checked\":"
           << (sample.checked ? "true" : "false")
           << ",\"si_margin\":" << formatJsonDouble(sample.siMargin)
           << ",\"ef_margin\":" << formatJsonDouble(sample.efMargin)
           << ",\"l1_drift\":" << formatJsonDouble(sample.l1Drift)
           << ",\"enforced\":" << (sample.enforced ? "true" : "false")
           << ",\"max_rel_change\":"
           << formatJsonDouble(sample.maxRelativeChange)
           << ",\"latency_ns\":" << sample.latencyNs << "}";
    }
    os << "]";
}

} // namespace ref::obs
