#include "logging.hh"

#include <atomic>
#include <iostream>

namespace ref {

namespace {

std::atomic<LogLevel> globalLogLevel{LogLevel::Warn};

std::string
formatPrefixed(const char *tag, const char *file, int line,
               const std::string &message)
{
    detail::MessageBuilder builder;
    builder << tag << ": " << file << ":" << line << ": " << message;
    return builder.str();
}

} // namespace

LogLevel
logLevel()
{
    return globalLogLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLogLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &message)
{
    throw PanicError(formatPrefixed("panic", file, line, message));
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    throw FatalError(formatPrefixed("fatal", file, line, message));
}

void
warnImpl(const char *file, int line, const std::string &message)
{
    if (logLevel() >= LogLevel::Warn)
        std::cerr << formatPrefixed("warn", file, line, message) << "\n";
}

void
informImpl(const std::string &message)
{
    if (logLevel() >= LogLevel::Inform)
        std::cerr << "info: " << message << "\n";
}

} // namespace detail
} // namespace ref
