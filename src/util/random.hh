/**
 * @file
 * Deterministic pseudo-random number generation for REF.
 *
 * Simulations and property tests need reproducible streams that are
 * cheap to fork (one independent stream per workload or per agent).
 * We implement xoshiro256** (Blackman & Vigna), a small, fast, well
 * tested generator, plus the distributions the simulator needs:
 * uniform, exponential, normal, and Zipf (for reuse-distance
 * locality).
 */

#ifndef REF_UTIL_RANDOM_HH
#define REF_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace ref {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * handed to <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential with the given rate (mean 1/rate). @pre rate > 0. */
    double exponential(double rate);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p in [0, 1]. */
    bool bernoulli(double p);

    /**
     * Fork an independent child stream. The child is seeded from this
     * stream's output, so forking N children from one parent yields N
     * decorrelated streams.
     */
    Rng fork();

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf-distributed integers over {0, ..., n-1} with exponent s.
 *
 * P(k) is proportional to 1 / (k+1)^s. Sampling uses an inverted
 * cumulative table, built once at construction, so draws are
 * O(log n). Zipf reuse ranks are the standard way to synthesize
 * cache-friendly reference streams with tunable locality: larger s
 * concentrates references on recently used data.
 */
class ZipfDistribution
{
  public:
    /**
     * @param n Number of ranks; must be positive.
     * @param s Skew exponent; s = 0 degenerates to uniform.
     */
    ZipfDistribution(std::size_t n, double s);

    /** Draw one rank in [0, n). */
    std::size_t operator()(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }
    double exponent() const { return exponent_; }

  private:
    std::vector<double> cdf_;
    double exponent_;
};

} // namespace ref

#endif // REF_UTIL_RANDOM_HH
