/**
 * @file
 * Work-stealing thread pool for the parallel profiling sweep and any
 * future fan-out (sharded allocation, online re-profiling).
 *
 * Each worker owns a deque: it pops its own work from the front and,
 * when empty, steals from the back of a sibling's deque, so bursts
 * submitted to one queue spread across idle cores. Tasks submitted
 * from outside the pool are distributed round-robin. Results and
 * exceptions travel through std::future, so a task that throws
 * surfaces the original exception at future.get().
 *
 * Shutdown is graceful: the destructor drains every queued task
 * before joining, so work submitted before destruction always runs.
 */

#ifndef REF_UTIL_THREAD_POOL_HH
#define REF_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ref {

/** Fixed-size pool of worker threads with per-worker deques. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means defaultJobs().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Queue a nullary callable; its result (or exception) is
     * delivered through the returned future. Safe to call from any
     * thread, including pool workers. Throws PanicError once
     * destruction has begun.
     *
     * Do not block inside a task on a future of another task queued
     * on the same pool: with all workers occupied by blocked parents
     * no worker is left to run the children.
     */
    template <typename Fn>
    auto submit(Fn &&fn)
        -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Worker count implied by the environment: REF_JOBS when set to
     * a positive integer, otherwise the hardware concurrency (at
     * least 1).
     */
    static std::size_t defaultJobs();

  private:
    using Task = std::function<void()>;

    /** One worker's deque; the owner pops the front, thieves the back. */
    struct Queue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void enqueue(Task task);
    void workerLoop(std::size_t self);
    bool popTask(std::size_t self, Task &task);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleepMutex_;
    std::condition_variable wakeup_;
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<std::size_t> queued_{0};  //!< Enqueued, not yet popped.
    std::atomic<bool> stopping_{false};
};

} // namespace ref

#endif // REF_UTIL_THREAD_POOL_HH
