/**
 * @file
 * CSV emission for figure series.
 *
 * The Edgeworth-box figures (Figs. 1-7) are curves; examples and
 * benches emit them as CSV so they can be plotted externally.
 */

#ifndef REF_UTIL_CSV_HH
#define REF_UTIL_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ref {

/**
 * Incremental CSV writer with RFC-4180 style quoting.
 *
 * Cells containing commas, quotes, or newlines are quoted; embedded
 * quotes are doubled.
 */
class CsvWriter
{
  public:
    /** Write to an externally owned stream; emits the header row. */
    CsvWriter(std::ostream &os, std::vector<std::string> header);

    /** Append a row of string cells; must match the header width. */
    void writeRow(const std::vector<std::string> &cells);

    /** Append a row of numeric cells; must match the header width. */
    void writeRow(const std::vector<double> &values);

    /** Rows written so far, excluding the header. */
    std::size_t rowsWritten() const { return rows_; }

  private:
    void emitRow(const std::vector<std::string> &cells);

    std::ostream &os_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

/** Quote a single CSV cell if needed. */
std::string csvEscape(const std::string &cell);

} // namespace ref

#endif // REF_UTIL_CSV_HH
