#include "math.hh"

#include "logging.hh"

namespace ref {

double
geometricMean(const std::vector<double> &values)
{
    REF_REQUIRE(!values.empty(), "geometric mean of empty range");
    double log_sum = 0;
    for (double value : values) {
        REF_REQUIRE(value > 0, "geometric mean needs positive values, got "
                                   << value);
        log_sum += std::log(value);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
sum(const std::vector<double> &values)
{
    double total = 0;
    for (double value : values)
        total += value;
    return total;
}

std::vector<double>
normalizeToUnitSum(const std::vector<double> &values)
{
    REF_REQUIRE(!values.empty(), "cannot normalize an empty vector");
    double total = 0;
    for (double value : values) {
        REF_REQUIRE(std::isfinite(value),
                    "cannot normalize non-finite value " << value);
        REF_REQUIRE(value >= 0, "cannot normalize negative value "
                                    << value);
        total += value;
    }
    REF_REQUIRE(total > 0 && std::isfinite(total),
                "cannot normalize an all-zero vector");

    std::vector<double> normalized(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        normalized[i] = values[i] / total;
    return normalized;
}

std::size_t
nextPowerOfTwo(std::size_t value)
{
    if (value <= 1)
        return 1;
    std::size_t result = 1;
    while (result < value)
        result <<= 1;
    return result;
}

unsigned
log2Exact(std::size_t value)
{
    REF_REQUIRE(isPowerOfTwo(value),
                value << " is not a power of two");
    unsigned exponent = 0;
    while (value > 1) {
        value >>= 1;
        ++exponent;
    }
    return exponent;
}

} // namespace ref
