/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * ranges, the checksum framing every durable record in the repository
 * (svc journal frames, svc snapshots, sim profile disk-cache cells).
 * Table-driven, incremental: crc32(b, crc32(a)) == crc32(a + b).
 */

#ifndef REF_UTIL_CRC32_HH
#define REF_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ref {

/**
 * CRC-32 of @p size bytes at @p data, continuing from @p seed (pass
 * the previous call's return value to checksum a split buffer).
 * The empty range maps to 0.
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Convenience overload for string-ish payloads. */
inline std::uint32_t
crc32(std::string_view bytes, std::uint32_t seed = 0)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace ref

#endif // REF_UTIL_CRC32_HH
