#include "random.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "logging.hh"

namespace ref {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    REF_REQUIRE(lo <= hi, "empty interval [" << lo << ", " << hi << ")");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    REF_REQUIRE(n > 0, "uniformInt needs a positive range");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return draw % n;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    REF_REQUIRE(lo <= hi, "empty range [" << lo << ", " << hi << "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::exponential(double rate)
{
    REF_REQUIRE(rate > 0, "exponential rate must be positive");
    return -std::log1p(-uniform()) / rate;
}

double
Rng::normal()
{
    // Box-Muller; uniform() can return 0, so nudge away from log(0).
    double u1 = uniform();
    if (u1 <= 0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    REF_REQUIRE(stddev >= 0, "negative standard deviation");
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    REF_REQUIRE(p >= 0 && p <= 1, "probability " << p << " outside [0,1]");
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s)
    : exponent_(s)
{
    REF_REQUIRE(n > 0, "Zipf needs at least one rank");
    REF_REQUIRE(s >= 0, "Zipf exponent must be non-negative");

    cdf_.resize(n);
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = total;
    }
    for (auto &entry : cdf_)
        entry /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfDistribution::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace ref
