#include "crc32.hh"

#include <array>

namespace ref {
namespace {

/** The 256-entry table for the reflected IEEE polynomial. */
constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit) {
            value = (value >> 1) ^
                    ((value & 1u) ? 0xedb88320u : 0u);
        }
        table[i] = value;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xffu];
    return ~crc;
}

} // namespace ref
