#include "exact_sum.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref {

void
ExactSum::add(double value)
{
    REF_REQUIRE(std::isfinite(value),
                "ExactSum requires finite values, got " << value);
    // Shewchuk grow-expansion: run the new value through every
    // partial with two-sum, keeping the exact round-off terms. The
    // partials stay non-overlapping and sorted by magnitude, and
    // their real-number sum equals the exact sum of everything added.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < partials_.size(); ++i) {
        double x = value;
        double y = partials_[i];
        if (std::abs(x) < std::abs(y))
            std::swap(x, y);
        const double high = x + y;
        const double low = y - (high - x);
        if (low != 0.0)
            partials_[kept++] = low;
        value = high;
    }
    partials_.resize(kept);
    if (value != 0.0 || partials_.empty())
        partials_.push_back(value);
}

void
ExactSum::merge(const ExactSum &other)
{
    // Copy first: merging a sum into itself must still double it.
    const std::vector<double> partials = other.partials_;
    for (double partial : partials)
        if (partial != 0.0)
            add(partial);
}

double
ExactSum::round() const
{
    // Correctly rounded sum of the partials (CPython fsum's final
    // step): accumulate from the largest partial down and, when the
    // first non-zero round-off appears, inspect the next partial to
    // resolve round-half-even ties exactly.
    if (partials_.empty())
        return 0.0;
    std::size_t n = partials_.size();
    double high = partials_[--n];
    double low = 0.0;
    while (n > 0) {
        const double x = high;
        const double y = partials_[--n];
        high = x + y;
        const double y_rounded = high - x;
        low = y - y_rounded;
        if (low != 0.0)
            break;
    }
    if (n > 0 && ((low < 0.0 && partials_[n - 1] < 0.0) ||
                  (low > 0.0 && partials_[n - 1] > 0.0))) {
        const double y = low * 2.0;
        const double x = high + y;
        if (y == x - high)
            high = x;
    }
    return high;
}

} // namespace ref
