#include "table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "logging.hh"

namespace ref {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    REF_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    REF_REQUIRE(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ")
               << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t rule_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule_width += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(rule_width, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
formatFixed(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatFixed(fraction * 100.0, decimals) + "%";
}

} // namespace ref
