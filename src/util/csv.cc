#include "csv.hh"

#include <ostream>
#include <sstream>

#include "logging.hh"

namespace ref {

std::string
csvEscape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;

    std::string escaped = "\"";
    for (char ch : cell) {
        if (ch == '"')
            escaped += '"';
        escaped += ch;
    }
    escaped += '"';
    return escaped;
}

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> header)
    : os_(os), columns_(header.size())
{
    REF_REQUIRE(columns_ > 0, "CSV needs at least one column");
    emitRow(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    REF_REQUIRE(cells.size() == columns_,
                "row has " << cells.size() << " cells, expected "
                           << columns_);
    emitRow(cells);
    ++rows_;
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double value : values) {
        std::ostringstream cell;
        cell << value;
        cells.push_back(cell.str());
    }
    writeRow(cells);
}

void
CsvWriter::emitRow(const std::vector<std::string> &cells)
{
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c > 0)
            os_ << ',';
        os_ << csvEscape(cells[c]);
    }
    os_ << '\n';
}

} // namespace ref
