#include "record_io.hh"

#include <bit>
#include <cstring>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace ref {
namespace {

template <typename Int>
void
appendLe(std::string &bytes, Int value)
{
    for (std::size_t i = 0; i < sizeof(Int); ++i)
        bytes.push_back(static_cast<char>(
            (value >> (8 * i)) & 0xffu));
}

template <typename Int>
Int
loadLe(const char *data)
{
    Int value = 0;
    for (std::size_t i = 0; i < sizeof(Int); ++i)
        value |= static_cast<Int>(
                     static_cast<unsigned char>(data[i]))
                 << (8 * i);
    return value;
}

} // namespace

void
ByteWriter::u8(std::uint8_t value)
{
    bytes_.push_back(static_cast<char>(value));
}

void
ByteWriter::u32(std::uint32_t value)
{
    appendLe(bytes_, value);
}

void
ByteWriter::u64(std::uint64_t value)
{
    appendLe(bytes_, value);
}

void
ByteWriter::f64(double value)
{
    appendLe(bytes_, std::bit_cast<std::uint64_t>(value));
}

void
ByteWriter::str(std::string_view value)
{
    REF_REQUIRE(value.size() < kMaxFrameBytes,
                "string field of " << value.size()
                                   << " bytes is too large");
    u32(static_cast<std::uint32_t>(value.size()));
    bytes_.append(value);
}

void
ByteWriter::doubles(const std::vector<double> &values)
{
    REF_REQUIRE(values.size() < kMaxFrameBytes / sizeof(double),
                "double array of " << values.size()
                                   << " entries is too large");
    u32(static_cast<std::uint32_t>(values.size()));
    for (double value : values)
        f64(value);
}

void
ByteReader::need(std::size_t count) const
{
    REF_REQUIRE(remaining() >= count,
                "record payload truncated: need " << count
                    << " bytes, have " << remaining());
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(
        static_cast<unsigned char>(bytes_[pos_++]));
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    const auto value = loadLe<std::uint32_t>(bytes_.data() + pos_);
    pos_ += 4;
    return value;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    const auto value = loadLe<std::uint64_t>(bytes_.data() + pos_);
    pos_ += 8;
    return value;
}

double
ByteReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
ByteReader::str()
{
    const std::uint32_t size = u32();
    need(size);
    std::string value(bytes_.substr(pos_, size));
    pos_ += size;
    return value;
}

std::vector<double>
ByteReader::doubles()
{
    const std::uint32_t count = u32();
    need(std::size_t{count} * sizeof(double));
    std::vector<double> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        values.push_back(f64());
    return values;
}

std::string
frameRecord(std::string_view payload)
{
    REF_REQUIRE(payload.size() <= kMaxFrameBytes,
                "record payload of " << payload.size()
                                     << " bytes exceeds the frame cap");
    std::string frame;
    frame.reserve(8 + payload.size());
    appendLe(frame,
             static_cast<std::uint32_t>(payload.size()));
    appendLe(frame, crc32(payload));
    frame.append(payload);
    return frame;
}

FrameStatus
readFrame(std::string_view bytes, std::size_t &offset,
          std::string_view &payload)
{
    REF_ASSERT(offset <= bytes.size(), "frame offset out of range");
    const std::size_t available = bytes.size() - offset;
    if (available == 0)
        return FrameStatus::End;
    if (available < 8)
        return FrameStatus::Torn;
    const auto length =
        loadLe<std::uint32_t>(bytes.data() + offset);
    const auto expected =
        loadLe<std::uint32_t>(bytes.data() + offset + 4);
    if (length > kMaxFrameBytes)
        return FrameStatus::Corrupt;
    if (available - 8 < length)
        return FrameStatus::Torn;
    const std::string_view body = bytes.substr(offset + 8, length);
    if (crc32(body) != expected)
        return FrameStatus::Corrupt;
    payload = body;
    offset += 8 + length;
    return FrameStatus::Ok;
}

} // namespace ref
