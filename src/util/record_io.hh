/**
 * @file
 * CRC32-framed binary records.
 *
 * One serialization idiom for every durable byte the repository
 * writes: the svc write-ahead journal, svc snapshots, and the sim
 * profile disk cache all store little-endian fields (doubles as raw
 * IEEE-754 bits, so values round-trip bit-identically) inside frames
 * of the form
 *
 *     u32 payload length | u32 crc32(payload) | payload bytes
 *
 * A reader walking a byte stream classifies each position as a whole
 * valid frame, a clean end-of-stream, a torn frame (the stream ends
 * mid-frame — the tail a crashed writer leaves behind), or a corrupt
 * frame (bit rot: CRC mismatch or an absurd length). Torn and corrupt
 * tails are recoverable by truncation; everything before them is
 * trustworthy.
 */

#ifndef REF_UTIL_RECORD_IO_HH
#define REF_UTIL_RECORD_IO_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ref {

/** Appends little-endian fields to a byte buffer. */
class ByteWriter
{
  public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    /** Raw IEEE-754 bits; NaN payloads and -0.0 survive intact. */
    void f64(double value);
    /** u32 length followed by the bytes. */
    void str(std::string_view value);
    void doubles(const std::vector<double> &values);

    const std::string &bytes() const { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/**
 * Reads little-endian fields off a byte range. All accessors throw
 * FatalError on underrun or (for str/doubles) absurd lengths, so a
 * CRC-valid but semantically short payload is a loud error, never an
 * out-of-bounds read.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    std::vector<double> doubles();

    std::size_t remaining() const { return bytes_.size() - pos_; }
    bool atEnd() const { return remaining() == 0; }

  private:
    void need(std::size_t count) const;

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

/** Frame classification while scanning a byte stream. */
enum class FrameStatus {
    Ok,       //!< A whole frame with a matching CRC.
    End,      //!< Clean end of stream: no bytes left.
    Torn,     //!< Stream ends mid-frame (crashed writer's tail).
    Corrupt,  //!< CRC mismatch or implausible length (bit rot).
};

/** Frames longer than this are treated as Corrupt, not allocated. */
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/** Wrap @p payload in a length+CRC frame. */
std::string frameRecord(std::string_view payload);

/**
 * Scan one frame at @p offset of @p bytes. On Ok, @p payload is the
 * frame's payload view (into @p bytes) and @p offset advances past
 * the frame; on any other status both are left untouched.
 */
FrameStatus readFrame(std::string_view bytes, std::size_t &offset,
                      std::string_view &payload);

} // namespace ref

#endif // REF_UTIL_RECORD_IO_HH
