/**
 * @file
 * Status and error reporting for the REF library.
 *
 * Follows the gem5 convention in spirit: panic-class errors flag
 * internal invariant violations (library bugs), fatal-class errors
 * flag unrecoverable user errors (bad configuration, invalid
 * arguments), and warn()/inform() report conditions that do not stop
 * execution. Because this is a library, the terminating variants
 * throw typed exceptions instead of calling abort()/exit(), so hosts
 * and tests can intercept them.
 */

#ifndef REF_UTIL_LOGGING_HH
#define REF_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ref {

/** Thrown on internal invariant violations: a bug in REF itself. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

/** Thrown on unrecoverable user errors (bad inputs, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Verbosity levels for non-terminating messages. */
enum class LogLevel { Silent, Warn, Inform };

/** Global verbosity for warn()/inform(); defaults to LogLevel::Warn. */
LogLevel logLevel();

/** Set the global verbosity for warn()/inform(). */
void setLogLevel(LogLevel level);

namespace detail {

/** Throw PanicError after formatting a file:line prefix. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Throw FatalError after formatting a file:line prefix. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning to stderr when the log level allows. */
void warnImpl(const char *file, int line, const std::string &message);

/** Print routine status to stderr when the log level allows. */
void informImpl(const std::string &message);

/** Stream-style message builder used by the macros below. */
class MessageBuilder
{
  public:
    template <typename T>
    MessageBuilder &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

    std::string str() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

} // namespace detail
} // namespace ref

/**
 * Raise a PanicError. Use for conditions that indicate a bug in the
 * REF library itself, never for user errors.
 */
#define REF_PANIC(msg)                                                      \
    ::ref::detail::panicImpl(__FILE__, __LINE__,                            \
        (::ref::detail::MessageBuilder() << msg).str())

/**
 * Raise a FatalError. Use for conditions caused by the caller (bad
 * configuration, invalid arguments) that make continuing impossible.
 */
#define REF_FATAL(msg)                                                      \
    ::ref::detail::fatalImpl(__FILE__, __LINE__,                            \
        (::ref::detail::MessageBuilder() << msg).str())

/** Warn about a survivable but suspicious condition. */
#define REF_WARN(msg)                                                       \
    ::ref::detail::warnImpl(__FILE__, __LINE__,                             \
        (::ref::detail::MessageBuilder() << msg).str())

/** Report routine status to the user. */
#define REF_INFORM(msg)                                                     \
    ::ref::detail::informImpl(                                              \
        (::ref::detail::MessageBuilder() << msg).str())

/** Check an invariant; raises PanicError (library bug) when violated. */
#define REF_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            REF_PANIC("assertion '" #cond "' failed: " << msg);            \
        }                                                                   \
    } while (0)

/** Validate a caller argument; raises FatalError when violated. */
#define REF_REQUIRE(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            REF_FATAL("requirement '" #cond "' failed: " << msg);          \
        }                                                                   \
    } while (0)

#endif // REF_UTIL_LOGGING_HH
