#include "thread_pool.hh"

#include <cstdlib>
#include <string>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace ref {
namespace {

/**
 * Process-wide pool telemetry. All ThreadPool instances share these
 * counters (get-or-create registry semantics), which is what a scrape
 * wants: total work through the process, not per-pool shards.
 */
obs::Counter &
submittedCounter()
{
    static obs::Counter &counter = obs::MetricsRegistry::global().counter(
        "ref_threadpool_tasks_submitted_total",
        "Tasks enqueued across all thread pools");
    return counter;
}

obs::Counter &
executedCounter()
{
    static obs::Counter &counter = obs::MetricsRegistry::global().counter(
        "ref_threadpool_tasks_executed_total",
        "Tasks completed across all thread pools");
    return counter;
}

obs::Counter &
stolenCounter()
{
    static obs::Counter &counter = obs::MetricsRegistry::global().counter(
        "ref_threadpool_tasks_stolen_total",
        "Tasks taken from a sibling worker's queue");
    return counter;
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultJobs();
    queues_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stopping_.store(true, std::memory_order_relaxed);
    }
    wakeup_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(Task task)
{
    REF_ASSERT(!stopping_.load(std::memory_order_relaxed),
               "submit on a stopping ThreadPool");
    const std::size_t index =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        // Count before publishing the task: a worker that pops it
        // decrements queued_, so incrementing afterwards could
        // transiently underflow the counter. Taking the sleep mutex
        // here also means a worker checking the wait predicate
        // cannot miss the increment between its failed scan and its
        // wait.
        std::lock_guard<std::mutex> lock(sleepMutex_);
        queued_.fetch_add(1, std::memory_order_relaxed);
    }
    {
        std::lock_guard<std::mutex> lock(queues_[index]->mutex);
        queues_[index]->tasks.push_back(std::move(task));
    }
    submittedCounter().add();
    wakeup_.notify_one();
}

bool
ThreadPool::popTask(std::size_t self, Task &task)
{
    // Own queue first, front (FIFO for the owner keeps submission
    // order on a single worker)...
    {
        Queue &own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    // ...then steal from the back of a sibling's queue.
    for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
        Queue &victim = *queues_[(self + offset) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            queued_.fetch_sub(1, std::memory_order_relaxed);
            stolenCounter().add();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        Task task;
        if (popTask(self, task)) {
            task();
            executedCounter().add();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wakeup_.wait(lock, [this] {
            return stopping_.load(std::memory_order_relaxed) ||
                   queued_.load(std::memory_order_relaxed) > 0;
        });
        if (stopping_.load(std::memory_order_relaxed) &&
            queued_.load(std::memory_order_relaxed) == 0) {
            return;
        }
    }
}

std::size_t
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("REF_JOBS")) {
        char *end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value > 0)
            return static_cast<std::size_t>(value);
        REF_WARN("ignoring REF_JOBS='"
                 << env << "': not a positive integer");
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

} // namespace ref
