/**
 * @file
 * Small numeric helpers shared across modules.
 */

#ifndef REF_UTIL_MATH_HH
#define REF_UTIL_MATH_HH

#include <cmath>
#include <cstddef>
#include <vector>

namespace ref {

/**
 * Approximate equality with mixed absolute/relative tolerance.
 *
 * True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|). Suitable
 * for comparing utilities and allocations that span several orders
 * of magnitude.
 */
inline bool
almostEqual(double a, double b, double rel_tol = 1e-9,
            double abs_tol = 1e-12)
{
    return std::abs(a - b) <=
           abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

/** Geometric mean of a non-empty range of positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic sum. */
double sum(const std::vector<double> &values);

/**
 * Normalize values so they sum to one (the paper's Eq. 12 rescaling).
 * @pre values must be non-negative with a positive sum.
 */
std::vector<double> normalizeToUnitSum(const std::vector<double> &values);

/** Round up to the next power of two; 0 maps to 1. */
std::size_t nextPowerOfTwo(std::size_t value);

/** True when value is a power of two (and nonzero). */
inline bool
isPowerOfTwo(std::size_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 for powers of two. @pre isPowerOfTwo(value). */
unsigned log2Exact(std::size_t value);

} // namespace ref

#endif // REF_UTIL_MATH_HH
