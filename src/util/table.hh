/**
 * @file
 * ASCII table formatting for benchmark and example output.
 *
 * Every experiment harness prints paper-shaped rows; this keeps the
 * formatting in one place so bench output stays uniform and easy to
 * diff against EXPERIMENTS.md.
 */

#ifndef REF_UTIL_TABLE_HH
#define REF_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ref {

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"workload", "alpha_cache", "alpha_mem", "class"});
 *   t.addRow({"dedup", "0.18", "0.82", "M"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per column. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Number of columns. */
    std::size_t columns() const { return headers_.size(); }

    /** Render with a header rule and column padding. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimal places. */
std::string formatFixed(double value, int decimals = 3);

/** Format a fraction as a percentage string, e.g. "42.0%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace ref

#endif // REF_UTIL_TABLE_HH
