/**
 * @file
 * Order-independent exact accumulation of doubles.
 *
 * An ExactSum holds the EXACT real-number sum of every value added so
 * far as a list of non-overlapping partials (Shewchuk's expansion
 * arithmetic, as popularised by Python's math.fsum). round() returns
 * that exact value correctly rounded to the nearest double, which is
 * a pure function of the multiset of added values: insertion order
 * never changes the result, and adding a value then its negation
 * restores the previous state exactly.
 *
 * This is what lets the online allocation service maintain
 * per-resource elasticity denominators incrementally (add on admit,
 * subtract on depart) while staying bit-identical to a from-scratch
 * recompute over the surviving agents — the property the epoch
 * self-check and the churn property tests assert.
 */

#ifndef REF_UTIL_EXACT_SUM_HH
#define REF_UTIL_EXACT_SUM_HH

#include <vector>

namespace ref {

/**
 * Exact, order-independent running sum of doubles.
 *
 * add() is amortised O(p) where p is the number of partials; for
 * values of bounded magnitude p stays small (tens at most, bounded by
 * the exponent range divided by the 53-bit mantissa width), so in
 * practice add() is a handful of flops.
 */
class ExactSum
{
  public:
    /** Add @p value to the sum. @pre value is finite. */
    void add(double value);

    /** Subtract @p value; exact inverse of add(value). */
    void subtract(double value) { add(-value); }

    /**
     * The exact sum correctly rounded to the nearest double
     * (round-half-even). Depends only on the multiset of added
     * values, never on the order they were added or removed in.
     */
    double round() const;

    /**
     * Fold @p other into this sum, exactly. Each of the other sum's
     * partials is itself a double whose real values add up to the
     * other sum's exact total, so adding them one by one keeps this
     * sum's invariant: afterwards round() equals the correctly
     * rounded sum of BOTH multisets of added values. This is what
     * makes sharded sub-sums composable — merging per-shard (or
     * per-pool-subtree) ExactSums yields bit-identical results to a
     * single flat sum over all values, in any merge order.
     */
    void merge(const ExactSum &other);

    /** Reset to an empty (zero) sum. */
    void clear() { partials_.clear(); }

    /** Number of non-overlapping partials currently held. */
    std::size_t partials() const { return partials_.size(); }

    /** The non-overlapping partials (increasing magnitude). */
    const std::vector<double> &partialValues() const { return partials_; }

  private:
    /** Non-overlapping partials in increasing magnitude order. */
    std::vector<double> partials_;
};

} // namespace ref

#endif // REF_UTIL_EXACT_SUM_HH
