/**
 * @file
 * Multi-shard socket front-end: N SocketServer event loops on
 * SO_REUSEPORT listeners bound to one TCP address.
 *
 * Each shard is one SocketServer (socket_server.hh) running its own
 * single-threaded poll loop on its own thread; the kernel's
 * SO_REUSEPORT hashing spreads incoming connections across the
 * shards' listeners, so accept load and per-connection framing/IO
 * scale with cores while every command still lands on the one
 * thread-safe AllocationService (writers serialize on its mutex,
 * reads take lock-free snapshots — the same contract the stdio
 * transport relies on).
 *
 * What changes versus one shard: state-mutating commands from
 * *different* connections are serialized by the service's write
 * mutex, not by loop arrival order — the same interleaving freedom
 * concurrent stdio sessions already have. Per-connection ordering is
 * untouched (one connection lives on exactly one shard for its whole
 * life).
 *
 * Shutdown: a SHUTDOWN command on any shard (or requestStop, or the
 * signal stop flag) stops every shard — the first shard to leave its
 * run() loop calls requestStop() on the rest, whose self-pipes wake
 * their polls immediately. Stats are aggregated after every shard
 * thread has joined, so reading them is race-free.
 *
 * The Unix-domain listener (when configured) lives on shard 0 only:
 * SO_REUSEPORT is a TCP/UDP facility and one path can hold one
 * socket. Shards label their ref_net_* metric series {shard="i"}.
 */

#ifndef REF_NET_SHARDED_SERVER_HH
#define REF_NET_SHARDED_SERVER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/socket_server.hh"

namespace ref::net {

/** Per-shard results plus their sum. */
struct ShardedStats
{
    std::vector<ServerStats> shards;
    /** Counter sums across shards; shutdown is the OR. */
    ServerStats total;
};

/**
 * Use mirrors SocketServer:
 *
 *   ShardedServer server(service, options, shardCount);
 *   server.start();                 // binds every shard
 *   ShardedStats stats = server.run();  // blocks until all drain
 *
 * shardCount == 1 degenerates to exactly one SocketServer with the
 * unlabeled metric series and no SO_REUSEPORT — the pre-shard
 * behaviour. shardCount > 1 requires a TCP listen address (port 0 is
 * fine: shard 0 binds first and the rest join its concrete port).
 */
class ShardedServer
{
  public:
    ShardedServer(svc::AllocationService &service,
                  ServerOptions options, std::size_t shardCount);
    ~ShardedServer() = default;
    ShardedServer(const ShardedServer &) = delete;
    ShardedServer &operator=(const ShardedServer &) = delete;

    /** Bind + listen every shard (throws on error). */
    void start();

    /** Concrete TCP port all shards share; 0 when TCP is off. */
    std::uint16_t tcpPort() const;

    /** Run every shard on its own thread; block until all drained. */
    ShardedStats run();

    /** Thread-safe: stop every shard promptly. */
    void requestStop();

    std::size_t shardCount() const { return shards_.size(); }

  private:
    svc::AllocationService &service_;
    ServerOptions options_;
    std::size_t requestedShards_;
    std::vector<std::unique_ptr<SocketServer>> shards_;
};

} // namespace ref::net

#endif // REF_NET_SHARDED_SERVER_HH
