/**
 * @file
 * Socket front-end for the online allocation service.
 *
 * A poll(2)-driven TCP + Unix-domain server that fans N concurrent
 * client connections into one thread-safe AllocationService. Each
 * connection owns a svc::CommandSession, so every client speaks the
 * exact stdin/stdout protocol (svc/protocol.hh) — ADMIT through
 * SHUTDOWN, byte-for-byte — over its own socket.
 *
 * Concurrency model (the "fan-in serialization" contract): the event
 * loop is single-threaded, so state-mutating commands from different
 * clients are serialized in arrival order by construction, while
 * QUERY/PLAN read from the service's copy-on-write snapshots and
 * METRICS/STATS from the atomic registries — the same lock-free read
 * paths the stdio transport uses. One misbehaving client can
 * therefore corrupt nothing and block nobody except (transiently)
 * the loop iteration its own bytes occupy.
 *
 * Framing: input is line-buffered with a hard per-line byte bound.
 * Partial reads accumulate until '\n'; a line that exceeds the bound
 * draws exactly one "ERR line too long" reply and the overflow is
 *discarded through the next newline (one ERR per bad line, never a
 * disconnect). Replies go through a per-connection output buffer
 * flushed opportunistically, so partial writes and EAGAIN never
 * drop or reorder reply bytes.
 *
 * Timeouts: a connection with no inbound bytes and nothing left to
 * write for idleTimeoutMs is dropped; a connection whose pending
 * output makes no progress for writeTimeoutMs (slow-loris reader) is
 * dropped; pending output above maxPendingBytes is dropped
 * immediately. All drops increment per-reason counters on
 * MetricsRegistry::global() and never disturb other clients.
 *
 * Shutdown: a SHUTDOWN command from any client, or the stop flag
 * (SIGTERM path), puts the server into drain — stop accepting,
 * stop reading, flush every connection's pending output (bounded by
 * drainTimeoutMs), then close everything and return from run().
 *
 * Fault injection: the accept/read/write syscall sites consult
 * svc/failpoints (sites "net.accept", "net.read", "net.write"), so
 * tests can exercise degraded IO deterministically: an injected
 * read/write error behaves like a peer reset (the connection is
 * dropped, the allocator state stays consistent); an injected short
 * write exercises the partial-write path.
 *
 * Binary framing (opt-in per connection): a client whose FIRST bytes
 * are the svc/wire hello magic switches its connection to the
 * length-prefixed CRC32 binary protocol — the same frame the journal
 * uses — and every request/reply from then on is one frame. The
 * sniff is unambiguous (the magic starts with NUL; no text command
 * does), so text clients and stdio transcripts are untouched. A bad
 * frame mirrors the text transport's bad-line contract: an oversized
 * declared length or a CRC mismatch draws exactly one framed ERR and
 * the stream resyncs past the declared length — never a disconnect.
 *
 * Sharding: one SocketServer is one event-loop shard. ShardedServer
 * (sharded_server.hh) runs N of them on SO_REUSEPORT listeners
 * bound to the same address, one thread per shard, all fanning into
 * the one thread-safe AllocationService; options.shardIndex/
 * shardCount label this shard's ref_net_* metric series
 * (`{shard="i"}`) so per-shard load is visible in one scrape.
 */

#ifndef REF_NET_SOCKET_SERVER_HH
#define REF_NET_SOCKET_SERVER_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "svc/protocol.hh"

namespace ref::repl {
class ReplicationHub;
}

namespace ref::net {

/** Socket-server knobs (svc::SessionOptions rides along so echo and
 *  the observability out-files behave exactly as on stdio). */
struct ServerOptions
{
    /** TCP listen address as "addr:port" ("127.0.0.1:7070"; port 0
     *  binds an ephemeral port — see SocketServer::tcpPort()).
     *  Empty: no TCP listener. */
    std::string listenAddress;
    /** Unix-domain socket path (an existing socket file at the path
     *  is replaced). Empty: no Unix listener. */
    std::string unixPath;
    /** Concurrent-connection cap; an accept beyond it is answered
     *  with one "ERR server full" line and closed (counted as
     *  dropped). */
    std::size_t maxClients = 64;
    /** Hard per-line byte bound (the '\n' excluded). */
    std::size_t maxLineBytes = 65536;
    /** Largest reply backlog a connection may hold before it is
     *  dropped as a slow reader. */
    std::size_t maxPendingBytes = 4 << 20;
    /** Drop a connection idle (no inbound bytes, no pending output)
     *  this long. 0 disables. */
    int idleTimeoutMs = 30000;
    /** Drop a connection whose pending output made no progress for
     *  this long. 0 disables. */
    int writeTimeoutMs = 10000;
    /** Bound on the drain phase (flushing replies at shutdown). */
    int drainTimeoutMs = 5000;
    /** Per-connection protocol options (echo, metrics/fairness out
     *  files, stop flag shared with the signal handler). */
    svc::SessionOptions session;
    /** Accept the binary hello (svc/wire.hh) and serve framed
     *  requests on connections that send it. */
    bool enableBinary = true;
    /** Largest binary request-frame payload accepted; a frame
     *  declaring more draws one ERR and is skipped. */
    std::size_t maxFrameBytes = 1 << 20;
    /** Bind the TCP listener with SO_REUSEPORT (the multi-shard
     *  path; the kernel load-balances accepts across shards). */
    bool reusePort = false;
    /** This event loop's shard identity. shardCount > 1 labels the
     *  ref_net_* series with {shard="<index>"}. */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    /** WAL shipping fan-out (repl/replication_hub.hh). Non-null
     *  turns binary-protocol SYNC commands into replica
     *  subscriptions on this server; the hub must outlive the
     *  server (ref_serve wires the same hub in as the service's
     *  replication sink). */
    repl::ReplicationHub *replicationHub = nullptr;
    /** Heartbeat cadence to caught-up replicas (liveness signal the
     *  follower's promote timeout watches). 0 disables. */
    int heartbeatIntervalMs = 1000;
};

/** Lifetime counters for one server run (mirrored onto
 *  MetricsRegistry::global() as ref_net_* series). */
struct ServerStats
{
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;       //!< All drop reasons combined.
    std::uint64_t idleTimeouts = 0;
    std::uint64_t writeTimeouts = 0;
    std::uint64_t overflowDrops = 0; //!< maxPendingBytes exceeded.
    std::uint64_t acceptRejects = 0; //!< "server full" turnaways.
    std::uint64_t ioErrors = 0;      //!< read/write errno drops.
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t lines = 0;         //!< Complete lines framed.
    std::uint64_t overlongLines = 0; //!< Lines beyond maxLineBytes.
    std::uint64_t frames = 0;        //!< Binary request frames served.
    std::uint64_t badFrames = 0;     //!< Oversized/corrupt/torn frames.
    std::uint64_t binaryConnections = 0;  //!< Hellos negotiated.
    std::uint64_t replicas = 0;  //!< SYNC subscriptions accepted.
    /** Aggregated per-session protocol totals of every connection
     *  that finished (plus, after run(), the ones open at drain). */
    svc::SessionResult protocol;
    bool shutdown = false;  //!< SHUTDOWN command or stop flag seen.
};

/**
 * The server. Intended use:
 *
 *   AllocationService service(config);
 *   SocketServer server(service, options);
 *   server.start();                // binds + listens (throws on error)
 *   ServerStats stats = server.run();  // blocks until drained
 *
 * start() is separate from run() so callers (tests, ref_serve's
 * stderr banner) can learn the bound port before traffic flows.
 * requestStop() may be called from any thread (or a signal handler
 * via options.session.stopFlag) to trigger the drain.
 */
class SocketServer
{
  public:
    SocketServer(svc::AllocationService &service,
                 ServerOptions options);
    ~SocketServer();
    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind and listen on the configured endpoints. Throws
     *  FatalError when neither endpoint is configured or a bind
     *  fails. */
    void start();

    /** Port the TCP listener actually bound (useful with port 0);
     *  0 when no TCP listener is configured. */
    std::uint16_t tcpPort() const { return tcpPort_; }

    /** Event loop: serve until SHUTDOWN / stop, then drain. */
    ServerStats run();

    /** Thread-safe asynchronous stop: wakes the poll loop (via the
     *  self-pipe) so the drain starts promptly even when idle. */
    void requestStop();

    const ServerStats &stats() const { return stats_; }

  private:
    struct Connection;
    struct Metrics;

    void acceptPending(int listenFd);
    /** Read whatever is available; frame and dispatch. */
    void handleReadable(Connection &conn);
    /** Mode-aware framing over whatever inbuf holds. */
    void processInput(Connection &conn);
    /** Sniff the hello magic; settles the connection's mode. */
    void detectMode(Connection &conn);
    void processText(Connection &conn);
    void processBinary(Connection &conn);
    /** Flush as much pending output as the socket accepts. */
    void flushWrites(Connection &conn);
    void dispatchLine(Connection &conn, const std::string &line);
    /** Decode + execute one binary request frame; frame the reply. */
    void dispatchFrame(Connection &conn, std::string_view payload);
    /** Turn a binary connection into a replica subscription. */
    void handleSync(Connection &conn, const svc::Command &command);
    /** Inbound frame on a replica connection (Ack expected). */
    void handleReplicaFrame(Connection &conn,
                            std::string_view payload);
    /** Queue a full-state Snapshot frame and reset the cursor. */
    void queueSnapshot(Connection &conn);
    /** Ship new records / heartbeats to every replica connection. */
    void pumpReplicas();
    /** Reply the one line-too-long ERR and count the rejection. */
    void rejectOverlong(Connection &conn);
    /** Reply one framed ERR for a bad binary frame; never drops. */
    void rejectBadFrame(Connection &conn, const std::string &reason);
    void dropConnection(Connection &conn, const char *reason);
    void closeConnection(Connection &conn);
    /** Sweep idle/write timeouts; returns ms until the next
     *  deadline (or -1 when nothing is pending). */
    int sweepTimeouts();
    void drainAndClose();
    bool stopFlagSet() const;

    svc::AllocationService &service_;
    ServerOptions options_;
    ServerStats stats_;
    std::unique_ptr<Metrics> metrics_;  //!< Shard-labelled series.
    std::atomic<bool> stopRequested_{false};
    bool draining_ = false;
    /** Ack-after-durable across framings: set when a dispatched
     *  command (or a shipped record) may have journaled; the next
     *  flushWrites runs one journal barrier first, so one fsync
     *  amortizes every reply queued this poll pass. */
    bool barrierPending_ = false;

    int tcpListenFd_ = -1;
    int unixListenFd_ = -1;
    int wakeFds_[2] = {-1, -1};  //!< Self-pipe: requestStop wakeup.
    std::uint16_t tcpPort_ = 0;
    std::string boundUnixPath_;  //!< Unlinked on close.

    std::vector<std::unique_ptr<Connection>> connections_;
};

} // namespace ref::net

#endif // REF_NET_SOCKET_SERVER_HH
